"""Shared builders and measurement helpers for the benchmark suite.

The centerpiece is :func:`table1_rows`, which regenerates the paper's
Table 1 — source-code size, simulation speed (cycles/sec) and process
size (MByte) for the HCOR and DECT designs across the four simulation
approaches — on this machine.
"""

from __future__ import annotations

import gc
import inspect
import time
import tracemalloc
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

#: The paper's Table 1 (for side-by-side reporting).
PAPER_TABLE1 = {
    ("HCOR", "interpreted"): {"speed": 606, "size_mb": 4.4, "loc": 320},
    ("HCOR", "compiled"): {"speed": 4545, "size_mb": 2.8, "loc": 1700},
    ("HCOR", "event_rt"): {"speed": 355, "size_mb": 14.0, "loc": 1600},
    ("HCOR", "netlist"): {"speed": 3.5, "size_mb": None, "loc": 77000},
    ("DECT", "interpreted"): {"speed": 70, "size_mb": 9.5, "loc": 8000},
    ("DECT", "compiled"): {"speed": 492, "size_mb": 4.2, "loc": 26000},
    ("DECT", "netlist"): {"speed": 0.46, "size_mb": None, "loc": 59000},
}


def source_lines(module) -> int:
    """Non-blank, non-comment source lines of a module."""
    lines = inspect.getsource(module).splitlines()
    return sum(
        1 for line in lines
        if line.strip() and not line.strip().startswith("#")
    )


def _timed_rate(step: Callable[[], None], min_seconds: float = 0.4,
                max_cycles: int = 200000) -> float:
    """Cycles per second of a single-cycle step callable."""
    count = 0
    start = time.perf_counter()
    while True:
        step()
        count += 1
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds or count >= max_cycles:
            return count / elapsed


def _traced_mb(build: Callable[[], object]):
    """Peak incremental memory (MB) of building an object, plus the object."""
    gc.collect()
    tracemalloc.start()
    obj = build()
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return obj, peak / 1e6


# -- HCOR measurement -----------------------------------------------------------


def hcor_interpreted_rate() -> float:
    from repro.designs.hcor import build_hcor
    from repro.sim import CycleScheduler

    design = build_hcor()
    scheduler = CycleScheduler(design.system)
    pin = design.soft_in
    return _timed_rate(lambda: scheduler.step({pin: 0.25}))


def hcor_compiled_rate() -> float:
    from repro.designs.hcor import build_hcor
    from repro.sim import CompiledSimulator

    design = build_hcor()
    simulator = CompiledSimulator(design.system)
    pins = {"soft": 0.25}
    return _timed_rate(lambda: simulator.step(pins))


def hcor_event_rate() -> float:
    from repro.designs.hcor import build_hcor
    from repro.sim import EventSimulator

    design = build_hcor()
    simulator = EventSimulator(design.system)
    pins = {"soft": 0.25}
    return _timed_rate(lambda: simulator.step(pins))


def hcor_netlist_rate() -> float:
    from repro.designs.hcor import build_hcor
    from repro.synth import GateSimulator, synthesize_process

    design = build_hcor()
    synthesis = synthesize_process(design.process)
    simulator = GateSimulator(synthesis.netlist)
    pins = {"soft": 16}
    return _timed_rate(lambda: simulator.step(pins), min_seconds=0.3,
                       max_cycles=2000)


def hcor_compiled_batched_rate(lanes: int = 64) -> float:
    """Lane-cycles/sec of the batched compiled engine (64 streams)."""
    from repro.designs.hcor import build_hcor
    from repro.sim import BatchedCompiledSimulator

    simulator = BatchedCompiledSimulator(build_hcor().system, lanes=lanes)
    pins = {"soft": 0.25}
    return lanes * _timed_rate(lambda: simulator.step(pins))


def hcor_netlist_batched_rate(lanes: int = 64) -> float:
    """Lane-cycles/sec of the word-parallel gate engine (64 streams)."""
    from repro.designs.hcor import build_hcor
    from repro.synth import GateSimulator, synthesize_process

    synthesis = synthesize_process(build_hcor().process)
    simulator = GateSimulator(synthesis.netlist, lanes=lanes)
    pins = {"soft": 16}
    return lanes * _timed_rate(lambda: simulator.step(pins),
                               min_seconds=0.3, max_cycles=2000)


def hcor_loc() -> Dict[str, int]:
    import repro.designs.hcor as hcor_module
    from repro.designs.hcor import build_hcor
    from repro.hdl import generate_vhdl, line_count

    design = build_hcor()
    return {
        "python": source_lines(hcor_module),
        "vhdl": line_count(generate_vhdl(design.system)),
    }


# -- DECT measurement ---------------------------------------------------------------


def _dect_stimulus():
    from repro.dsp import (
        ComplexLmsEqualizer, build_burst, modulate, random_payloads,
    )

    rng = np.random.default_rng(33)
    a, b = random_payloads(rng)
    burst = build_burst(a, b)
    samples = modulate(burst.bits, 8)
    equalizer = ComplexLmsEqualizer()
    equalizer.train(samples, burst.bits[:32])
    return burst, list(samples[::4]), equalizer.weights


def dect_interpreted_rate(cycles: int = 400) -> float:
    from repro.designs.dect import DectTransceiver

    _burst, grid, weights = _dect_stimulus()
    transceiver = DectTransceiver()
    coefs = transceiver.chip_coefficients(weights)
    chip = transceiver.chip
    pointer = [0]

    def step():
        sample = grid[pointer[0]] if pointer[0] < len(grid) else 0j
        transceiver.scheduler.step({
            chip.sample_i: float(np.real(sample)),
            chip.sample_q: float(np.imag(sample)),
            chip.hold: 0,
            chip.coef_re: float(np.real(coefs[0])),
            chip.coef_im: float(np.imag(coefs[0])),
        })
        if chip.ack.valid and int(chip.ack.value):
            pointer[0] += 1

    start = time.perf_counter()
    for _ in range(cycles):
        step()
    return cycles / (time.perf_counter() - start)


def dect_compiled_rate(cycles: int = 3000) -> float:
    from repro.designs.dect import build_transceiver
    from repro.sim import CompiledSimulator

    _burst, grid, weights = _dect_stimulus()
    chip = build_transceiver()
    simulator = CompiledSimulator(chip.system)
    pins = {"sample_i": 0.5, "sample_q": -0.25, "hold_request": 0,
            "ctl_coef_re": 0.1, "ctl_coef_im": 0.0}
    start = time.perf_counter()
    for _ in range(cycles):
        simulator.step(pins)
    return cycles / (time.perf_counter() - start)


def dect_event_rate(cycles: int = 150) -> float:
    from repro.designs.dect import build_transceiver
    from repro.sim import EventSimulator

    chip = build_transceiver()
    simulator = EventSimulator(chip.system)
    pins = {"sample_i": 0.5, "sample_q": -0.25, "hold_request": 0,
            "ctl_coef_re": 0.1, "ctl_coef_im": 0.0}
    start = time.perf_counter()
    for _ in range(cycles):
        simulator.step(pins)
    return cycles / (time.perf_counter() - start)


def dect_netlist_rate(cycles: int = 4):
    from repro.designs.dect import build_transceiver
    from repro.synth import GateSimulator, synthesize_system

    chip = build_transceiver()
    synthesis = synthesize_system(chip.system)
    # Simulate the largest component (a FIR slice) plus count the rest:
    # gate-level system simulation time scales with total cell count, so
    # we simulate every component netlist once per cycle.
    simulators = [GateSimulator(c.netlist) for c in synthesis.components]
    start = time.perf_counter()
    for _ in range(cycles):
        for simulator in simulators:
            simulator.step()
    rate = cycles / (time.perf_counter() - start)
    return rate, synthesis


def dect_loc() -> Dict[str, int]:
    import repro.designs.dect.controller as controller_mod
    import repro.designs.dect.datapaths as datapaths_mod
    import repro.designs.dect.formats as formats_mod
    import repro.designs.dect.irom as irom_mod
    import repro.designs.dect.pcctrl as pcctrl_mod
    import repro.designs.dect.program as program_mod
    import repro.designs.dect.ram as ram_mod
    import repro.designs.dect.transceiver as transceiver_mod
    from repro.designs.dect import build_transceiver
    from repro.hdl import generate_vhdl, line_count

    python = sum(source_lines(m) for m in (
        controller_mod, datapaths_mod, formats_mod, irom_mod, pcctrl_mod,
        program_mod, ram_mod, transceiver_mod,
    ))
    chip = build_transceiver()
    return {"python": python, "vhdl": line_count(generate_vhdl(chip.system))}


# -- the table --------------------------------------------------------------------


@dataclass
class Table1Row:
    design: str
    approach: str
    loc: Optional[int]
    speed: float
    size_mb: Optional[float]

    def paper(self) -> Dict[str, object]:
        return PAPER_TABLE1.get((self.design, self.approach), {})


def table1_rows(include_dect: bool = True,
                include_netlist: bool = True) -> List[Table1Row]:
    """Measure every Table 1 cell on this machine."""
    rows: List[Table1Row] = []
    hcor_sizes = hcor_loc()

    from repro.designs.hcor import build_hcor
    from repro.sim import CompiledSimulator, CycleScheduler, EventSimulator

    _design, interp_mb = _traced_mb(
        lambda: CycleScheduler(build_hcor().system))
    _sim, compiled_mb = _traced_mb(
        lambda: CompiledSimulator(build_hcor().system))
    _ev, event_mb = _traced_mb(
        lambda: EventSimulator(build_hcor().system))

    rows.append(Table1Row("HCOR", "interpreted", hcor_sizes["python"],
                          hcor_interpreted_rate(), interp_mb))
    rows.append(Table1Row("HCOR", "compiled", hcor_sizes["python"],
                          hcor_compiled_rate(), compiled_mb))
    rows.append(Table1Row("HCOR", "event_rt", hcor_sizes["vhdl"],
                          hcor_event_rate(), event_mb))
    if include_netlist:
        rows.append(Table1Row("HCOR", "netlist", None,
                              hcor_netlist_rate(), None))
    if include_dect:
        dect_sizes = dect_loc()
        rows.append(Table1Row("DECT", "interpreted", dect_sizes["python"],
                              dect_interpreted_rate(), None))
        rows.append(Table1Row("DECT", "compiled", dect_sizes["python"],
                              dect_compiled_rate(), None))
        rows.append(Table1Row("DECT", "event_rt", dect_sizes["vhdl"],
                              dect_event_rate(), None))
        if include_netlist:
            rate, _synthesis = dect_netlist_rate()
            rows.append(Table1Row("DECT", "netlist", None, rate, None))
    return rows


def format_table1(rows: List[Table1Row]) -> str:
    """Render measured rows next to the paper's numbers."""
    header = (f"{'design':<6} {'approach':<12} {'LoC':>7} "
              f"{'cyc/s':>10} {'MB':>7} | {'paper c/s':>10} {'paper LoC':>10}")
    lines = [header, "-" * len(header)]
    for row in rows:
        paper = row.paper()
        lines.append(
            f"{row.design:<6} {row.approach:<12} "
            f"{row.loc if row.loc is not None else '-':>7} "
            f"{row.speed:>10.1f} "
            f"{f'{row.size_mb:.1f}' if row.size_mb is not None else '-':>7} | "
            f"{paper.get('speed', '-'):>10} {paper.get('loc', '-'):>10}"
        )
    return "\n".join(lines)
