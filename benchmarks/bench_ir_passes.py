"""IR pass-pipeline ablation: compiled simulation and synthesis.

Measures, with the pass pipeline on and off:

* compiled-simulator op count and cycles/sec on the DECT transceiver;
* synthesized gate count on DECT datapaths (as allocated, and after the
  netlist post-optimization — structural hashing independently converges
  on most of the sharing the IR passes expose, so both are reported).

Writes ``BENCH_ir.json`` next to this file and prints a summary.  Run
from the repository root::

    PYTHONPATH=src python benchmarks/bench_ir_passes.py
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict

sys.path.insert(0, os.path.dirname(__file__))

OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_ir.json")

#: DECT datapaths in the synthesis ablation (with per-run tap counts
#: where the builder needs them).
DATAPATHS = ("disc", "sum", "lms")

SIM_CYCLES = int(os.environ.get("BENCH_IR_CYCLES", "1500"))


def _compiled_rate(optimize: bool, passes=None) -> Dict[str, float]:
    from repro.designs.dect import build_transceiver
    from repro.sim import CompiledSimulator

    chip = build_transceiver()
    simulator = CompiledSimulator(chip.system, optimize=optimize,
                                  passes=passes)
    pins = {"sample_i": 0.5, "sample_q": -0.25, "hold_request": 0,
            "ctl_coef_re": 0.1, "ctl_coef_im": 0.0}
    for _ in range(200):  # warm caches so the timed loop is steady-state
        simulator.step(pins)
    start = time.perf_counter()
    for _ in range(SIM_CYCLES):
        simulator.step(pins)
    elapsed = time.perf_counter() - start
    return {
        "cycles_per_sec": SIM_CYCLES / elapsed,
        "ir_op_count": simulator.ir_op_count,
        "ir_op_count_raw": simulator.ir_op_count_raw,
    }


def _build_datapath(name: str):
    from repro.core import Clock
    from repro.designs.dect import datapaths

    clk = Clock(f"bench_{name}")
    builders = {
        "disc": lambda: datapaths.build_disc(clk),
        "sum": lambda: datapaths.build_sum(clk),
        "lms": lambda: datapaths.build_lms(clk),
        "fir0": lambda: datapaths.build_fir_slice(0, 4, clk),
    }
    return builders[name]()


def _gate_counts(name: str, ir_passes: bool,
                 passes=None) -> Dict[str, int]:
    from repro.synth.flow import synthesize_process

    raw = synthesize_process(_build_datapath(name), ir_passes=ir_passes,
                             passes=passes, optimize=False)
    final = synthesize_process(_build_datapath(name), ir_passes=ir_passes,
                               passes=passes, optimize=True)
    return {
        "gates_synthesized": raw.gate_count,
        "gates_after_netlist_opt": final.gate_count,
    }


def _pipeline_without(dropped: str):
    """The aggressive pipeline minus one pass (leave-one-out ablation)."""
    from repro.ir import AGGRESSIVE_PASSES

    return tuple(entry for entry in AGGRESSIVE_PASSES
                 if entry[0] != dropped)


#: New aggressive-pipeline passes with their own ablation rows.
NEW_PASSES = ("mux_restructure", "strength_reduce")


def run() -> Dict[str, object]:
    results: Dict[str, object] = {
        "bench": "ir_passes",
        "sim_cycles": SIM_CYCLES,
        "compiled_sim": {
            "passes_on": _compiled_rate(True),
            "passes_off": _compiled_rate(False),
            "aggressive": _compiled_rate(True, passes="aggressive"),
        },
        "synthesis": {},
        "ablation": {},
    }
    for name in DATAPATHS:
        results["synthesis"][name] = {
            "passes_on": _gate_counts(name, True),
            "passes_off": _gate_counts(name, False),
            "aggressive": _gate_counts(name, True, passes="aggressive"),
        }
    # Leave-one-out rows for the new passes, on the datapath where the
    # aggressive pipeline moves the needle (disc: the chain hoist halves
    # the array multipliers).
    for dropped in NEW_PASSES:
        results["ablation"][f"aggressive-no-{dropped}"] = _gate_counts(
            "disc", True, passes=_pipeline_without(dropped))
    return results


def main() -> int:
    results = run()
    with open(OUT_PATH, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)

    sim = results["compiled_sim"]
    on, off = sim["passes_on"], sim["passes_off"]
    print(f"compiled sim (DECT transceiver, {results['sim_cycles']} cycles)")
    print(f"  passes on : {on['cycles_per_sec']:8.1f} cyc/s, "
          f"{on['ir_op_count']} IR ops")
    print(f"  passes off: {off['cycles_per_sec']:8.1f} cyc/s, "
          f"{off['ir_op_count']} IR ops")

    agg = sim["aggressive"]
    print(f"  aggressive: {agg['cycles_per_sec']:8.1f} cyc/s, "
          f"{agg['ir_op_count']} IR ops")

    ok = on["ir_op_count"] < off["ir_op_count"]
    agg_ok = agg["ir_op_count"] <= off["ir_op_count"]
    any_gate_win = False
    best_opt_win = 0.0
    print("synthesis (gates as allocated / after netlist opt)")
    for name, cells in results["synthesis"].items():
        g_on, g_off = cells["passes_on"], cells["passes_off"]
        g_agg = cells["aggressive"]
        print(f"  {name:6} on : {g_on['gates_synthesized']:6} / "
              f"{g_on['gates_after_netlist_opt']:6}"
              f"   off: {g_off['gates_synthesized']:6} / "
              f"{g_off['gates_after_netlist_opt']:6}"
              f"   aggressive: {g_agg['gates_synthesized']:6} / "
              f"{g_agg['gates_after_netlist_opt']:6}")
        if g_on["gates_synthesized"] < g_off["gates_synthesized"]:
            any_gate_win = True
        base = g_off["gates_after_netlist_opt"]
        if base:
            best_opt_win = max(
                best_opt_win,
                (base - g_agg["gates_after_netlist_opt"]) / base)

    print("ablation (disc, gates as allocated / after netlist opt)")
    for row, cells in results["ablation"].items():
        print(f"  {row:32} {cells['gates_synthesized']:6} / "
              f"{cells['gates_after_netlist_opt']:6}")

    if not ok:
        print("FAIL: passes did not reduce the compiled-sim op count")
        return 1
    if not agg_ok:
        print("FAIL: aggressive pipeline increased compiled-sim op count")
        return 1
    if not any_gate_win:
        print("FAIL: passes did not reduce gates on any DECT datapath")
        return 1
    if best_opt_win < 0.05:
        print("FAIL: aggressive pipeline won <5% post-opt gates on every "
              "DECT datapath")
        return 1
    print(f"best aggressive post-opt gate win: {100 * best_opt_win:.1f}%")
    print(f"wrote {os.path.normpath(OUT_PATH)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
