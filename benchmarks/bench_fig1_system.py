"""Figure 1 — the DECT base-station scenario, end to end.

The full system context of the paper: a burst travels RF -> multipath
radio link -> transceiver ASIC -> (equalize, decode) -> wire-link driver.
This benchmark runs the complete flow — reference models for the link,
the captured ASIC for the receiver — and reports burst decode quality
and throughput, including the equalizer-on/off ablation that motivates
the whole design (the "152 data multiplies per DECT symbol").
"""

import numpy as np
import pytest

from repro.dsp import (
    ComplexLmsEqualizer,
    bit_error_rate,
    build_burst,
    demodulate,
    modulate,
    random_payloads,
    severe_channel,
)


def make_link(seed=41, snr_db=18):
    rng = np.random.default_rng(seed)
    a, b = random_payloads(rng)
    burst = build_burst(a, b)
    samples = modulate(burst.bits, 8)
    rx = severe_channel(8).apply(samples, rng, snr_db=snr_db)
    return burst, rx


class TestEndToEnd:
    def test_chip_decodes_what_raw_slicing_cannot(self):
        """The motivation of section 1: without equalization the burst is
        lost; the transceiver recovers it."""
        from repro.designs.dect import DectTransceiver

        burst, rx = make_link()
        _soft, raw_bits = demodulate(rx, len(burst.bits), 8)
        raw_ber = bit_error_rate(burst.bits, raw_bits, skip=32)
        assert raw_ber > 0.05  # the raw path is badly broken

        equalizer = ComplexLmsEqualizer()
        equalizer.train(rx, burst.bits[:32])
        transceiver = DectTransceiver()
        result = transceiver.run_burst_compiled(
            list(rx[::4]),
            transceiver.chip_coefficients(equalizer.weights),
            max_cycles=4000,
        )
        assert result["sync_found"]
        assert result["crc_ok"]
        assert result["a_bits"] == burst.a_field
        chip_errors = sum(
            1 for x, y in zip(result["b_bits"][:320], burst.b_field)
            if x != y
        )
        assert chip_errors / 320 < raw_ber / 3

    def test_equalizer_budget_is_papers_figure(self):
        assert ComplexLmsEqualizer().multiplies_per_symbol() == 152


def test_bench_burst_decode_compiled(benchmark):
    """Wall time to decode one full DECT burst on the compiled chip."""
    from repro.designs.dect import DectTransceiver

    burst, rx = make_link()
    equalizer = ComplexLmsEqualizer()
    equalizer.train(rx, burst.bits[:32])
    grid = list(rx[::4])

    def decode():
        transceiver = DectTransceiver()
        return transceiver.run_burst_compiled(
            grid, transceiver.chip_coefficients(equalizer.weights),
            max_cycles=4000)

    result = benchmark.pedantic(decode, rounds=1, iterations=1)
    assert result["crc_ok"]


def test_bench_reference_chain(benchmark):
    """The Matlab-level reference chain for the same burst (the speed
    gap is why the bit-true chip model exists as generated code)."""
    burst, rx = make_link()

    def reference():
        equalizer = ComplexLmsEqualizer()
        soft = equalizer.equalize_burst(rx, burst.bits[:32], len(burst.bits))
        return [1 if value > 0 else 0 for value in soft]

    bits = benchmark.pedantic(reference, rounds=2, iterations=1)
    assert bit_error_rate(burst.bits, bits, skip=32) < 0.02
