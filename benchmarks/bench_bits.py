"""Bit-level narrowing ablation: gates with and without ``narrow``.

Synthesizes the hcor correlator datapath and two DECT datapaths with the
``aggressive`` pipeline and with ``narrow`` (aggressive plus the
known-bits/liveness ``narrow_bitwidth`` pass), reporting gate counts as
allocated and after the netlist post-optimization — which now includes
the ternary sequential-constant sweep.  Also records the wordlength
report totals (allocated vs provably-minimal bits) for each design.

Writes ``BENCH_bits.json`` next to this file and prints a summary.  The
exit status enforces the acceptance criterion: ``narrow`` must beat
``aggressive`` on post-optimization gates for at least one design.  Run
from the repository root::

    PYTHONPATH=src python benchmarks/bench_bits.py
"""

from __future__ import annotations

import json
import os
import sys
from typing import Dict

sys.path.insert(0, os.path.dirname(__file__))

OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_bits.json")

#: Datapaths in the ablation: the hcor correlator plus the DECT rows
#: where the aggressive pipeline already moves the needle.
DESIGNS = ("hcor", "disc", "sum", "lms")


def _build(name: str):
    from repro.core import Clock
    from repro.designs.dect import datapaths
    from repro.designs.hcor import build_hcor

    clk = Clock(f"bench_bits_{name}")
    builders = {
        "hcor": lambda: build_hcor().process,
        "disc": lambda: datapaths.build_disc(clk),
        "sum": lambda: datapaths.build_sum(clk),
        "lms": lambda: datapaths.build_lms(clk),
    }
    return builders[name]()


def _gate_counts(name: str, passes: str) -> Dict[str, int]:
    from repro.synth.flow import synthesize_process

    raw = synthesize_process(_build(name), passes=passes, optimize=False)
    final = synthesize_process(_build(name), passes=passes, optimize=True)
    return {
        "gates_synthesized": raw.gate_count,
        "gates_after_netlist_opt": final.gate_count,
    }


def _wordlengths(name: str) -> Dict[str, int]:
    from repro.lint.bits import wordlength_report

    report = wordlength_report(_build(name))
    return {
        "signals": len(report.rows),
        "total_bits": report.total_bits,
        "minimal_bits": report.minimal_bits,
        "const_bits": sum(row.const_bits for row in report.rows),
        "dead_bits": sum(row.dead_bits for row in report.rows),
    }


def run() -> Dict[str, object]:
    results: Dict[str, object] = {
        "bench": "bits",
        "synthesis": {},
        "wordlengths": {},
    }
    for name in DESIGNS:
        results["synthesis"][name] = {
            "aggressive": _gate_counts(name, "aggressive"),
            "narrow": _gate_counts(name, "narrow"),
        }
        results["wordlengths"][name] = _wordlengths(name)
    return results


def main() -> int:
    results = run()
    with open(OUT_PATH, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)

    strict_win = False
    never_worse = True
    print("synthesis (gates as allocated / after netlist opt)")
    for name, cells in results["synthesis"].items():
        agg, nar = cells["aggressive"], cells["narrow"]
        base = agg["gates_after_netlist_opt"]
        win = ((base - nar["gates_after_netlist_opt"]) / base
               if base else 0.0)
        print(f"  {name:6} aggressive: {agg['gates_synthesized']:6} / "
              f"{agg['gates_after_netlist_opt']:6}"
              f"   narrow: {nar['gates_synthesized']:6} / "
              f"{nar['gates_after_netlist_opt']:6}"
              f"   ({100 * win:+.1f}% post-opt)")
        if nar["gates_after_netlist_opt"] < agg["gates_after_netlist_opt"]:
            strict_win = True
        if nar["gates_after_netlist_opt"] > agg["gates_after_netlist_opt"]:
            never_worse = False

    print("wordlengths (allocated -> provably minimal bits)")
    for name, row in results["wordlengths"].items():
        print(f"  {name:6} {row['total_bits']:5} -> {row['minimal_bits']:5} "
              f"bits over {row['signals']} signals "
              f"({row['const_bits']} const, {row['dead_bits']} dead)")

    if not strict_win:
        print("FAIL: narrow did not beat aggressive post-opt gates on any "
              "design")
        return 1
    if not never_worse:
        print("FAIL: narrow lost gates to aggressive on some design")
        return 1
    print(f"wrote {os.path.normpath(OUT_PATH)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
