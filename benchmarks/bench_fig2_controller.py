"""Figure 2 — the cycle-true VLIW controller hold behaviour.

The paper's central claim for Fig. 2: when hold_request asserts, the
current instruction is delayed, nops freeze the datapath state, the PC
is retained, and on release the interrupted instruction executes.  The
benchmarks measure the controller's simulation cost and verify the
freeze/resume semantics at the transceiver level.
"""

import pytest

from repro.core import Clock, System
from repro.designs.dect import build_pcctrl, build_vliw
from repro.designs.dect.irom import InstructionRom, Program
from repro.sim import CycleScheduler


def build_sequencer_system(program: Program):
    """PC controller + VLIW distributor + IROM, with dangling buses."""
    clk = Clock("seq")
    pcctrl = build_pcctrl(clk)
    vliw = build_vliw(clk)
    irom = InstructionRom(program.assemble())
    system = System("sequencer")
    system.add(pcctrl)
    system.add(vliw)
    system.add(irom)
    pc = system.connect(pcctrl.port("pc"), irom.port("pc"), name="pc")
    system.connect(irom.port("word"), vliw.port("word"))
    system.connect(pcctrl.port("hold_active"), vliw.port("hold_active"),
                   name="hold_active")
    system.connect(vliw.port("pc_op"), pcctrl.port("pc_op"))
    system.connect(vliw.port("cond"), pcctrl.port("cond_sel"))
    system.connect(vliw.port("target"), pcctrl.port("target"))
    hold = system.connect(None, pcctrl.port("hold"), name="hold")
    flags = {}
    from repro.designs.dect.irom import CONDITIONS

    for name in CONDITIONS:
        flags[name] = system.connect(None, pcctrl.port(name), name=f"f_{name}")
    # Instruction buses terminate unconnected (observability only).
    from repro.designs.dect.datapaths import DATAPATH_TABLES

    buses = {}
    for name, _table in DATAPATH_TABLES:
        buses[name] = system.connect(vliw.port(name), name=f"bus_{name}")
    return system, pc, hold, flags, buses


def straight_line_program(n: int = 32) -> Program:
    program = Program()
    for index in range(n):
        program.step(io_i="LOAD" if index % 2 else "NOP")
    program.label("end")
    program.step(pc_op="JMP", target="end")
    return program


class TestHoldSemantics:
    def test_pc_freezes_and_resumes(self):
        system, pc, hold, _flags, _buses = build_sequencer_system(
            straight_line_program())
        scheduler = CycleScheduler(system)
        trace = []
        for cycle in range(20):
            assert_hold = 1 if 5 <= cycle < 10 else 0
            inputs = {hold: assert_hold}
            for chan in _flags.values():
                inputs[chan] = 0
            scheduler.step(inputs)
            trace.append(int(pc.value))
        # The pin is sampled into a register (one cycle) and the FSM
        # reacts one cycle later; the PC then freezes for the 5 held
        # cycles and resumes counting.
        frozen = [value for value, nxt in zip(trace, trace[1:])
                  if value == nxt]
        assert len(frozen) == 5
        assert trace[-1] == trace[0] + 19 - 5

    def test_nop_distributed_during_hold(self):
        system, pc, hold, flags, buses = build_sequencer_system(
            straight_line_program())
        scheduler = CycleScheduler(system)
        io_bus = buses["io_i"]
        saw_load = saw_nop_during_hold = False
        for cycle in range(20):
            inputs = {hold: 1 if 6 <= cycle < 12 else 0}
            for chan in flags.values():
                inputs[chan] = 0
            scheduler.step(inputs)
            value = int(io_bus.value)
            if 8 <= cycle < 12:
                saw_nop_during_hold = True
                assert value == 0, f"cycle {cycle} issued {value} during hold"
            elif value == 1:
                saw_load = True
        assert saw_load and saw_nop_during_hold

    def test_interrupted_instruction_reissued(self):
        """The instruction at the held PC executes exactly once, after
        the hold releases — no microword is skipped."""
        system, pc, hold, flags, buses = build_sequencer_system(
            straight_line_program())
        scheduler = CycleScheduler(system)
        issued = []
        for cycle in range(24):
            inputs = {hold: 1 if 7 <= cycle < 10 else 0}
            for chan in flags.values():
                inputs[chan] = 0
            scheduler.step(inputs)
            if int(buses["io_i"].value) == 1:
                issued.append(int(pc.value))
        # Every LOAD microword address appears exactly once.
        assert len(issued) == len(set(issued))


def test_bench_sequencer_throughput(benchmark):
    """Simulation cost of one controller cycle (Fig. 2 machinery)."""
    system, _pc, hold, flags, _buses = build_sequencer_system(
        straight_line_program())
    scheduler = CycleScheduler(system)
    inputs = {hold: 0}
    for chan in flags.values():
        inputs[chan] = 0
    benchmark(lambda: scheduler.step(inputs))


def test_bench_hold_cycle_cost(benchmark):
    """A held cycle costs no more than an executing cycle."""
    system, _pc, hold, flags, _buses = build_sequencer_system(
        straight_line_program())
    scheduler = CycleScheduler(system)
    inputs = {hold: 1}
    for chan in flags.values():
        inputs[chan] = 0
    benchmark(lambda: scheduler.step(inputs))
