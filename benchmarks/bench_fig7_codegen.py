"""Figure 7 — code generation and simulation strategy.

The dual-path claim: the same control/data-flow data structure drives
(a) an interpreted simulator, (b) a regenerated, compiled simulator used
for extensive verification, and (c) HDL code generation.  Benchmarks
measure the codegen cost, the compiled-vs-interpreted speedup across
design sizes, and the equivalence of the two paths.
"""

import pytest

from repro.core import SFG, Clock, Register, Sig, System, TimedProcess
from repro.fixpt import FxFormat
from repro.hdl import generate_verilog, generate_vhdl
from repro.sim import CompiledSimulator, CycleScheduler

import sys, os
sys.path.insert(0, os.path.dirname(__file__))
from common import _timed_rate  # noqa: E402

W = FxFormat(16, 8)


def datapath_system(n_ops: int):
    """A single component with an n-operation arithmetic pipeline."""
    clk = Clock()
    x = Sig("x", W)
    regs = [Register(f"r{i}", clk, W, init=i % 5) for i in range(n_ops)]
    sfg = SFG("dp")
    with sfg:
        for i, reg in enumerate(regs):
            source = x if i == 0 else regs[i - 1]
            if i % 3 == 0:
                reg <<= source + reg
            elif i % 3 == 1:
                reg <<= source * 2 - reg
            else:
                reg <<= (source >> 1) + (reg << 1)
    sfg.inp(x)
    process = TimedProcess("dp", clk, sfgs=[sfg])
    process.add_input("x", x)
    process.add_output("y", regs[-1])
    system = System(f"dp{n_ops}")
    system.add(process)
    pin = system.connect(None, process.port("x"), name="x")
    system.connect(process.port("y"), name="y")
    return system, pin, regs


class TestEquivalence:
    @pytest.mark.parametrize("size", [4, 32])
    def test_compiled_matches_interpreted(self, size):
        system_i, pin_i, regs_i = datapath_system(size)
        scheduler = CycleScheduler(system_i)
        for value in range(40):
            scheduler.step({pin_i: value % 13})
        system_c, _pin, _regs = datapath_system(size)
        simulator = CompiledSimulator(system_c)
        for value in range(40):
            simulator.step({"x": value % 13})
        snapshot = simulator.snapshot()
        for reg in regs_i:
            assert snapshot[reg.name].raw == reg.current.raw, reg.name


class TestGeneratedArtifacts:
    def test_all_three_outputs_from_one_structure(self):
        """One captured structure => compiled sim + VHDL + Verilog."""
        system, _pin, _regs = datapath_system(8)
        simulator = CompiledSimulator(system)
        vhdl = generate_vhdl(system)
        verilog = generate_verilog(system)
        assert "def step(" in simulator.source
        assert any("entity dp is" in text for text in vhdl.values())
        assert any("module dp (" in text for text in verilog.values())


@pytest.mark.parametrize("size", [8, 64])
def test_bench_codegen_cost(benchmark, size):
    """Generating + compiling the specialized simulator is cheap."""
    system, _pin, _regs = datapath_system(size)
    benchmark.pedantic(lambda: CompiledSimulator(system),
                       rounds=3, iterations=1)


@pytest.mark.parametrize("size", [8, 64])
def test_bench_interpreted_step(benchmark, size):
    system, pin, _regs = datapath_system(size)
    scheduler = CycleScheduler(system)
    inputs = {pin: 3}
    benchmark(lambda: scheduler.step(inputs))


@pytest.mark.parametrize("size", [8, 64])
def test_bench_compiled_step(benchmark, size):
    system, _pin, _regs = datapath_system(size)
    simulator = CompiledSimulator(system)
    pins = {"x": 3}
    benchmark(lambda: simulator.step(pins))


def test_speedup_grows_with_design_size():
    """The compiled advantage grows as designs get bigger, because the
    interpreted scheduler re-walks the data structure each cycle."""
    ratios = {}
    for size in (8, 64):
        system_i, pin_i, _r = datapath_system(size)
        scheduler = CycleScheduler(system_i)
        interp = _timed_rate(lambda: scheduler.step({pin_i: 3}),
                             min_seconds=0.3)
        system_c, _pin, _r2 = datapath_system(size)
        simulator = CompiledSimulator(system_c)
        pins = {"x": 3}
        compiled = _timed_rate(lambda: simulator.step(pins), min_seconds=0.3)
        ratios[size] = compiled / interp
    assert ratios[8] > 3
    assert ratios[64] > ratios[8]
