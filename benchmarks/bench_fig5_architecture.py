"""Figure 5 — the DECT transceiver system architecture.

Regenerates the architecture inventory the paper reports: a central
(VLIW) controller, a program counter controller, 22 datapaths decoding
between 2 and 57 instructions, 7 RAM cells — and the synthesized
complexity figure (the paper: 75 Kgates in 0.7 um CMOS).
"""

import pytest

from repro.designs.dect import DATAPATH_TABLES, build_rams, build_transceiver


class TestInventory:
    def test_paper_architecture_counts(self):
        assert len(DATAPATH_TABLES) == 22
        counts = sorted(len(table) for _n, table in DATAPATH_TABLES)
        assert counts[0] == 2
        assert counts[-1] == 57
        assert len(build_rams()) == 7

    def test_instruction_word_width(self):
        from repro.designs.dect import WORD_BITS

        # 22 opcode fields + sequencer fields: a genuinely "very long
        # instruction word".
        assert WORD_BITS > 60


@pytest.fixture(scope="module")
def synthesis():
    from repro.synth import synthesize_system

    chip = build_transceiver()
    return synthesize_system(chip.system)


class TestComplexity:
    def test_total_complexity_same_order_as_paper(self, synthesis, capsys):
        from repro.synth import system_report, total_complexity

        total = total_complexity(synthesis)
        with capsys.disabled():
            print()
            print(system_report(synthesis))
            print(f"  (paper: 75 Kgate, 194 mm^2 in 0.7 um CMOS; ours spends "
                  f"extra area on the fully parallel FIR multipliers)")
        # Same order of magnitude as the paper's 75 Kgates.
        assert 40_000 <= total <= 400_000

    def test_every_component_synthesized(self, synthesis):
        names = {c.process.name for c in synthesis.components}
        for name, _table in DATAPATH_TABLES:
            assert name in names
        assert "vliw" in names
        assert "pcctrl" in names

    def test_fir_dominates_area(self, synthesis):
        """The 152-multiply/symbol equalizer is the area driver."""
        by_name = {c.process.name: c.area for c in synthesis.components}
        fir_area = sum(by_name[f"fir{i}"] for i in range(4))
        assert fir_area > 0.4 * sum(by_name.values())


def test_bench_build_architecture(benchmark):
    """Elaboration cost of the full 22-datapath system."""
    benchmark.pedantic(build_transceiver, rounds=3, iterations=1)


def test_bench_synthesize_architecture(benchmark):
    """Whole-chip synthesis wall time (the paper: tool runtimes under
    15 minutes per datapath; ours synthesizes the full chip in seconds)."""
    chip = build_transceiver()
    from repro.synth import synthesize_system

    benchmark.pedantic(lambda: synthesize_system(chip.system),
                       rounds=1, iterations=1)
