"""Figure 6 — the three-phase cycle scheduler.

The paper's argument: a traditional two-phase (evaluate / update)
scheduler cannot start the loop of Fig. 6 because of the apparent
deadlock between components; the cycle scheduler's token-production
phase creates the initial tokens that a data-flow view would need buffer
hardware for.  The benchmarks demonstrate the deadlock of a naive
two-phase whole-component scheduler, and measure the three-phase
scheduler's cost as systems scale.
"""

import pytest

from repro.core import (
    SFG,
    Clock,
    DeadlockError,
    Register,
    Sig,
    System,
    TimedProcess,
    actor,
)
from repro.fixpt import FxFormat
from repro.sim import CycleScheduler

import sys, os
sys.path.insert(0, os.path.dirname(__file__))
from common import _timed_rate  # noqa: E402

W = FxFormat(16, 16)


def build_fig6_system():
    """Two timed components + an untimed RAM in a circular dependency."""
    clk = Clock()
    addr = Register("addr", clk, W)
    d_in = Sig("d_in", W)
    hold = Register("hold", clk, W)
    sfg1 = SFG("c1")
    with sfg1:
        addr <<= addr + 1
        hold <<= d_in
    sfg1.inp(d_in)
    c1 = TimedProcess("c1", clk, sfgs=[sfg1])
    c1.add_output("addr", addr)
    c1.add_input("d", d_in)

    a_in, a_out = Sig("a_in", W), Sig("a_out", W)
    sfg2 = SFG("c2")
    with sfg2:
        a_out <<= a_in + 100
    sfg2.inp(a_in).out(a_out)
    c2 = TimedProcess("c2", clk, sfgs=[sfg2])
    c2.add_input("a", a_in)
    c2.add_output("y", a_out)

    memory = {i: i * 2 for i in range(4096)}
    ram = actor("ram", lambda addr: {"q": memory.get(int(addr), 0)},
                inputs={"addr": 1}, outputs={"q": 1})

    system = System("fig6")
    system.add(c1)
    system.add(c2)
    system.add(ram)
    system.connect(c1.port("addr"), c2.port("a"))
    system.connect(c2.port("y"), ram.port("addr"))
    system.connect(ram.port("q"), c1.port("d"))
    return system, hold


class TwoPhaseScheduler:
    """A traditional whole-component evaluate/update scheduler.

    Components fire only when ALL their inputs carry tokens (no token
    production phase, no partial evaluation) — the strawman the paper's
    three-phase scheduler improves on.
    """

    def __init__(self, system: System):
        self.system = system
        self.timed = system.timed_processes()
        self.untimed = system.untimed_processes()
        self.clocks = system.clocks()

    def step(self) -> None:
        for chan in self.system.channels:
            chan.clear()
        pending = list(self.timed) + list(self.untimed)
        progress = True
        while pending and progress:
            progress = False
            for process in list(pending):
                ready = all(
                    port.channel is not None and port.channel.valid
                    for port in process.in_ports()
                )
                if not ready:
                    continue
                pending.remove(process)
                progress = True
                if process.is_timed():
                    for sfg in process.select_sfgs():
                        for port in process.in_ports():
                            port.sig.value = port.channel.value
                        sfg.run()
                    for port in process.out_ports():
                        value = port.sig.current if port.sig.is_register() \
                            else port.sig.value
                        if port.channel is not None:
                            port.channel.put(value)
                    process.commit()
                else:
                    kwargs = {p.name: p.channel.value
                              for p in process.in_ports()}
                    results = process.behavior(**kwargs)
                    for port in process.out_ports():
                        port.channel.put(results[port.name])
        if pending:
            raise DeadlockError(
                "two-phase scheduler deadlocked: "
                + ", ".join(p.name for p in pending)
            )
        for clock in self.clocks:
            clock.tick()


class TestDeadlockAvoidance:
    def test_two_phase_deadlocks_on_fig6(self):
        """The strawman cannot simulate the paper's Fig. 6 loop."""
        system, _hold = build_fig6_system()
        scheduler = TwoPhaseScheduler(system)
        with pytest.raises(DeadlockError):
            scheduler.step()

    def test_three_phase_simulates_fig6(self):
        system, hold = build_fig6_system()
        scheduler = CycleScheduler(system)
        scheduler.run(8)
        assert float(hold.current) == float((7 + 100) * 2)


def _chain_system(n_components: int):
    """A pipeline of n timed components (for scaling measurements)."""
    clk = Clock()
    system = System(f"chain{n_components}")
    previous = None
    for index in range(n_components):
        x, y = Sig(f"x{index}", W), Sig(f"y{index}", W)
        reg = Register(f"r{index}", clk, W)
        sfg = SFG(f"s{index}")
        with sfg:
            reg <<= x + 1
            y <<= reg + x
        sfg.inp(x).out(y)
        process = TimedProcess(f"p{index}", clk, sfgs=[sfg])
        process.add_input("x", x)
        process.add_output("y", y)
        system.add(process)
        if previous is None:
            first = system.connect(None, process.port("x"), name="in")
        else:
            system.connect(previous.port("y"), process.port("x"))
        previous = process
    system.connect(previous.port("y"), name="out")
    return system, first


@pytest.mark.parametrize("size", [4, 16, 64])
def test_bench_scheduler_scaling(benchmark, size):
    """Cycle cost grows ~linearly with component count."""
    system, pin = _chain_system(size)
    scheduler = CycleScheduler(system)
    inputs = {pin: 1}
    benchmark(lambda: scheduler.step(inputs))


def test_scaling_is_subquadratic():
    small_sys, small_pin = _chain_system(8)
    large_sys, large_pin = _chain_system(64)
    small = CycleScheduler(small_sys)
    large = CycleScheduler(large_sys)
    small_rate = _timed_rate(lambda: small.step({small_pin: 1}),
                             min_seconds=0.3)
    large_rate = _timed_rate(lambda: large.step({large_pin: 1}),
                             min_seconds=0.3)
    # 8x the components must not cost more than ~24x the time.
    assert small_rate / large_rate < 24
