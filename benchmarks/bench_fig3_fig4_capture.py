"""Figures 3 and 4 — design capture through the embedded DSL.

Fig. 3: operator overloading re-uses the host-language parser to build
the signal-flow-graph data structure.  Fig. 4: the FSM textual form maps
one-to-one onto the graphical machine.  These benchmarks measure capture
(elaboration) cost — the "lightweight environment, only a compiler and a
library" claim of the conclusions — and check the structural fidelity of
what gets built.
"""

import pytest

from repro.core import (
    FSM,
    SFG,
    BinOp,
    Clock,
    Register,
    Sig,
    always,
    cnd,
)
from repro.fixpt import FxFormat

W = FxFormat(16, 8)


class TestFig3Structure:
    def test_expression_is_a_data_structure(self):
        a, b = Sig("a", W), Sig("b", W)
        node = a + b
        assert isinstance(node, BinOp)
        assert node.left is a and node.right is b

    def test_deep_expression_capture(self):
        a = Sig("a", W)
        node = a
        for _ in range(200):
            node = node + 1
        assert len(list(node.leaves())) == 201


class TestFig4Structure:
    def test_textual_fsm_equals_graphical(self):
        clk = Clock()
        eof = Register("eof", clk, FxFormat(1, 1, signed=False))
        sfg1, sfg2, sfg3 = SFG("sfg1"), SFG("sfg2"), SFG("sfg3")
        f = FSM("f")
        s0 = f.initial("s0")
        s1 = f.state("s1")
        s0 << always << sfg1 << s1
        s1 << cnd(eof) << sfg2 << s1
        s1 << ~cnd(eof) << sfg3 << s0
        # The graphical machine of Fig. 4, edge for edge:
        assert [(t.source.name, t.target.name, t.sfgs[0].name)
                for t in f.transitions] == [
            ("s0", "s1", "sfg1"),
            ("s1", "s1", "sfg2"),
            ("s1", "s0", "sfg3"),
        ]


def _capture_sfg(n_terms: int) -> SFG:
    a = Sig("a", W)
    out = Sig("out", W)
    sfg = SFG("big")
    with sfg:
        node = a
        for i in range(n_terms):
            node = node + (a * i) if i % 2 else node - (a >> 1)
        out <<= node
    sfg.inp(a).out(out)
    return sfg


@pytest.mark.parametrize("size", [10, 100, 1000])
def test_bench_sfg_capture(benchmark, size):
    """Elaboration speed of SFG capture (Fig. 3 mechanism)."""
    benchmark(lambda: _capture_sfg(size))


def test_bench_fsm_capture(benchmark):
    """Elaboration speed of a 57-transition FSM (Fig. 4 mechanism)."""
    clk = Clock()
    flag = Register("flag", clk, FxFormat(1, 1, signed=False))

    def build():
        f = FSM("big")
        states = [f.state(f"s{i}") for i in range(57)]
        for i, state in enumerate(states):
            state << cnd(flag) << states[(i + 1) % 57]
            state << ~cnd(flag) << states[(i * 3 + 1) % 57]
        return f

    fsm = benchmark(build)
    assert len(fsm.transitions) == 114
