"""Table 1 — performances of interpreted and compiled approaches.

Regenerates every row of the paper's Table 1 on this machine:

===========  ======  =================  ============  =========
Design       Size    Type               Speed (c/s)   Src lines
===========  ======  =================  ============  =========
HCOR         6K      C++ interpreted    606           320
                     C++ compiled       4545          1.7K
                     VHDL (RT)          355           1.6K
                     VHDL (netlist)     3.5           77K
DECT         75K     C++ interpreted    70            8K
                     C++ compiled       492           26K
                     Verilog (netlist)  0.46          59K
===========  ======  =================  ============  =========

The expected *shape*: compiled >> interpreted > event-driven RT >>
netlist, and the Python capture several times more compact than the
generated RT HDL.  Run with ``pytest benchmarks/bench_table1.py
--benchmark-only -s`` to see the regenerated table.
"""

import pytest

from common import (
    dect_loc,
    format_table1,
    hcor_compiled_batched_rate,
    hcor_compiled_rate,
    hcor_event_rate,
    hcor_interpreted_rate,
    hcor_loc,
    hcor_netlist_batched_rate,
    hcor_netlist_rate,
    table1_rows,
)


class TestHcorRows:
    def test_speed_ordering_matches_paper(self):
        """Compiled >> interpreted > event-RT — the core Table 1 claim."""
        interpreted = hcor_interpreted_rate()
        compiled = hcor_compiled_rate()
        event = hcor_event_rate()
        assert compiled > interpreted > event

    def test_netlist_is_slowest_by_orders_of_magnitude(self):
        netlist = hcor_netlist_rate()
        compiled = hcor_compiled_rate()
        assert compiled > 50 * netlist

    def test_code_size_ratio(self):
        """Section 5: 'a factor of 5 in code size ... over RT-VHDL'."""
        sizes = hcor_loc()
        assert sizes["vhdl"] > 2.5 * sizes["python"]


class TestDectRows:
    def test_code_size_ratio(self):
        sizes = dect_loc()
        assert sizes["vhdl"] > 1.5 * sizes["python"]


def test_bench_hcor_interpreted(benchmark):
    from repro.designs.hcor import build_hcor
    from repro.sim import CycleScheduler

    design = build_hcor()
    scheduler = CycleScheduler(design.system)
    pin = design.soft_in
    benchmark(lambda: scheduler.step({pin: 0.25}))


def test_bench_hcor_compiled(benchmark):
    from repro.designs.hcor import build_hcor
    from repro.sim import CompiledSimulator

    simulator = CompiledSimulator(build_hcor().system)
    pins = {"soft": 0.25}
    benchmark(lambda: simulator.step(pins))


def test_bench_hcor_event(benchmark):
    from repro.designs.hcor import build_hcor
    from repro.sim import EventSimulator

    simulator = EventSimulator(build_hcor().system)
    pins = {"soft": 0.25}
    benchmark(lambda: simulator.step(pins))


def test_bench_hcor_netlist(benchmark):
    from repro.designs.hcor import build_hcor
    from repro.synth import GateSimulator, synthesize_process

    synthesis = synthesize_process(build_hcor().process)
    simulator = GateSimulator(synthesis.netlist)
    pins = {"soft": 16}
    benchmark.pedantic(lambda: simulator.step(pins), rounds=5, iterations=4)


def test_bench_hcor_compiled_batched(benchmark):
    """One step = 64 stimulus streams advancing one cycle each."""
    from repro.designs.hcor import build_hcor
    from repro.sim import BatchedCompiledSimulator

    simulator = BatchedCompiledSimulator(build_hcor().system, lanes=64)
    pins = {"soft": 0.25}
    benchmark(lambda: simulator.step(pins))


def test_bench_hcor_netlist_batched(benchmark):
    """One step = 64 stimulus streams through the word-parallel engine."""
    from repro.designs.hcor import build_hcor
    from repro.synth import GateSimulator, synthesize_process

    synthesis = synthesize_process(build_hcor().process)
    simulator = GateSimulator(synthesis.netlist, lanes=64)
    pins = {"soft": 16}
    benchmark.pedantic(lambda: simulator.step(pins), rounds=5, iterations=4)


class TestBatchedColumn:
    def test_word_parallel_netlist_beats_scalar_per_lane_cycle(self):
        """The batched column's claim: packing 64 streams into machine
        words makes each *lane-cycle* far cheaper than a scalar cycle."""
        scalar = hcor_netlist_rate()
        batched = hcor_netlist_batched_rate()
        assert batched > 8 * scalar

    def test_batched_compiled_throughput_not_worse(self):
        """Vectorization must at least break even on lane-cycles/sec."""
        scalar = hcor_compiled_rate()
        batched = hcor_compiled_batched_rate()
        assert batched > 0.9 * scalar


def test_bench_dect_interpreted(benchmark):
    from common import dect_interpreted_rate

    rate = benchmark.pedantic(lambda: dect_interpreted_rate(cycles=120),
                              rounds=1, iterations=1)


def test_bench_dect_compiled(benchmark):
    from repro.designs.dect import build_transceiver
    from repro.sim import CompiledSimulator

    simulator = CompiledSimulator(build_transceiver().system)
    pins = {"sample_i": 0.5, "sample_q": -0.25, "hold_request": 0,
            "ctl_coef_re": 0.1, "ctl_coef_im": 0.0}
    benchmark(lambda: simulator.step(pins))


def test_full_table_report(benchmark, capsys):
    """Regenerate and print the complete Table 1."""
    rows = benchmark.pedantic(
        lambda: table1_rows(include_dect=True, include_netlist=True),
        rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("Table 1 (regenerated) — this machine vs the paper:")
        print(format_table1(rows))
    by_key = {(r.design, r.approach): r.speed for r in rows}
    # Shape assertions across the whole table.
    assert by_key[("HCOR", "compiled")] > by_key[("HCOR", "interpreted")]
    assert by_key[("HCOR", "interpreted")] > by_key[("HCOR", "event_rt")]
    assert by_key[("HCOR", "event_rt")] > by_key[("HCOR", "netlist")]
    assert by_key[("DECT", "compiled")] > by_key[("DECT", "interpreted")]
    assert by_key[("DECT", "interpreted")] > by_key[("DECT", "netlist")]
    # HCOR (6K gates) simulates faster than DECT (75K-class) everywhere.
    assert by_key[("HCOR", "interpreted")] > by_key[("DECT", "interpreted")]
    assert by_key[("HCOR", "compiled")] > by_key[("DECT", "compiled")]
