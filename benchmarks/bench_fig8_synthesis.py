"""Figure 8 — the divide-and-conquer synthesis strategy.

Benchmarked claims:

* datapath synthesis run time stays small even for the 57-instruction
  datapath (the paper: "run times less than 15 minutes even for the most
  complex, 57-instruction datapath");
* word-level operator sharing (Cathedral-3's contribution) reduces area
  versus direct mapping once instructions share expensive operators;
* controller encodings (binary/gray/one-hot) and two-level minimization
  are area/verification ablations;
* generated testbenches verify every synthesized component (the
  "verification generation" boxes of Fig. 8).
"""

import time

import pytest

from repro.core import BOOL, FSM, SFG, Clock, Register, Sig, System, TimedProcess, cnd, eq
from repro.fixpt import FxFormat
from repro.sim import CycleScheduler, PortLog
from repro.synth import synthesize_process, verify_component

W = FxFormat(10, 5)


def instruction_datapath(n_instructions: int):
    """A datapath with n mutually exclusive arithmetic instructions,
    selected by an opcode register — the Cathedral-3 workload shape."""
    clk = Clock()
    opcode_bits = max(1, (n_instructions - 1).bit_length())
    op_fmt = FxFormat(opcode_bits, opcode_bits, signed=False)
    op_pin = Sig("op_pin", op_fmt)
    op_reg = Register("op", clk, op_fmt)
    x = Sig("x", W)
    acc = Register("acc", clk, W)

    sample = SFG("sample")
    with sample:
        op_reg <<= op_pin
    sample.inp(op_pin)

    fsm = FSM("seq")
    state = fsm.initial("s0")
    for index in range(n_instructions):
        body = SFG(f"instr{index}")
        with body:
            # A multiplier-heavy instruction mix — the workload shape
            # where Cathedral-3's word-level sharing pays off.
            if index % 4 == 0:
                acc <<= x * acc
            elif index % 4 == 1:
                acc <<= x * x
            elif index % 4 == 2:
                acc <<= (x + index) * acc
            else:
                acc <<= acc + (x >> (index % 3))
        body.inp(x)
        if index < n_instructions - 1:
            state << cnd(eq(op_reg, index)) << body << state
        else:
            from repro.core import always

            state << always << body << state

    process = TimedProcess(f"dp{n_instructions}", clk, fsm=fsm,
                           sfgs=[sample])
    process.add_input("x", x)
    process.add_input("op", op_pin)
    process.add_output("acc", acc)
    system = System(f"sys{n_instructions}")
    system.add(process)
    x_pin = system.connect(None, process.port("x"), name="x")
    op_chan = system.connect(None, process.port("op"), name="op")
    system.connect(process.port("acc"), name="acc")
    return system, process, x_pin, op_chan


class TestSynthesisRuntime:
    def test_57_instruction_datapath_synthesizes_fast(self):
        """The paper's bound: < 15 minutes; ours: a few seconds."""
        _system, process, _x, _op = instruction_datapath(57)
        start = time.perf_counter()
        synthesis = synthesize_process(process)
        elapsed = time.perf_counter() - start
        assert elapsed < 120
        assert synthesis.gate_count > 0

    def test_runtime_grows_mildly_with_instruction_count(self):
        times = {}
        for count in (2, 16, 57):
            _system, process, _x, _op = instruction_datapath(count)
            start = time.perf_counter()
            synthesize_process(process)
            times[count] = time.perf_counter() - start
        assert times[57] < 80 * max(times[2], 1e-3)


class TestSharingAblation:
    def test_sharing_reduces_multiplier_instances(self):
        _system, process, _x, _op = instruction_datapath(16)
        shared = synthesize_process(process, share=True)
        unshared = synthesize_process(process, share=False)
        assert shared.sharing["instances"] < unshared.sharing["instances"]
        assert shared.gate_count < unshared.gate_count

    def test_both_variants_verify(self):
        import random

        rng = random.Random(3)
        system, process, x_pin, op_chan = instruction_datapath(8)
        log = PortLog(process)
        scheduler = CycleScheduler(system)
        scheduler.monitors.append(log)
        for _ in range(50):
            scheduler.step({x_pin: rng.randint(-10, 10),
                            op_chan: rng.randint(0, 7)})
        for share in (True, False):
            synthesis = synthesize_process(process, share=share)
            assert verify_component(log, synthesis) == [], share


class TestControllerAblation:
    @pytest.mark.parametrize("encoding", ["binary", "gray", "onehot"])
    def test_encodings_verify_and_report_area(self, encoding):
        import random

        rng = random.Random(9)
        system, process, x_pin, op_chan = instruction_datapath(6)
        log = PortLog(process)
        scheduler = CycleScheduler(system)
        scheduler.monitors.append(log)
        for _ in range(30):
            scheduler.step({x_pin: rng.randint(-5, 5),
                            op_chan: rng.randint(0, 5)})
        synthesis = synthesize_process(process, encoding=encoding)
        assert verify_component(log, synthesis) == []


@pytest.mark.parametrize("count", [2, 8, 24, 57])
def test_bench_datapath_synthesis(benchmark, count):
    """Synthesis wall time per instruction-set size (the Fig. 8 sweep)."""
    _system, process, _x, _op = instruction_datapath(count)
    benchmark.pedantic(lambda: synthesize_process(process),
                       rounds=2, iterations=1)


def test_bench_optimizer(benchmark):
    """Post-optimization pass cost on an unoptimized netlist."""
    _system, process, _x, _op = instruction_datapath(24)
    raw = synthesize_process(process, optimize=False)
    from repro.synth import optimize_netlist

    benchmark.pedantic(lambda: optimize_netlist(raw.netlist),
                       rounds=2, iterations=1)
