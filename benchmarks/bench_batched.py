"""Batched value planes: 64 stimulus streams per pass vs 64 scalar runs.

Measures, for the same 64-stimulus workload, the wall-clock cost of

* the compiled engine on HCOR: 64 independent scalar simulators vs one
  numpy-vectorized batched simulator with 64 lanes;
* the gate-level engine on the HCOR netlist and on a synthesized DECT
  datapath (the LMS equalizer tap): 64 scalar simulators vs one
  word-parallel simulator packing the 64 streams into machine-word ints.

Writes ``BENCH_batched.json`` next to this file and prints a summary.
Exits 1 when no engine clears an 8x speedup — the refactor's reason to
exist.  Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_batched.py
"""

from __future__ import annotations

import json
import os
import random
import sys
import time
from typing import Dict

sys.path.insert(0, os.path.dirname(__file__))

OUT_PATH = os.path.join(os.path.dirname(__file__), "..",
                        "BENCH_batched.json")

LANES = 64
COMPILED_CYCLES = int(os.environ.get("BENCH_BATCHED_CYCLES", "400"))
GATE_CYCLES = int(os.environ.get("BENCH_BATCHED_GATE_CYCLES", "40"))


def _programs(names, cycles, seed, lo=-3.5, hi=3.5):
    rng = random.Random(seed)
    return [
        [{name: rng.uniform(lo, hi) for name in names}
         for _ in range(cycles)]
        for _ in range(LANES)
    ]


def _bench_compiled_hcor() -> Dict[str, float]:
    from repro.designs.hcor import build_hcor
    from repro.sim import BatchedCompiledSimulator, CompiledSimulator
    from repro.sim.stimuli import StimulusBatch

    programs = _programs(("soft",), COMPILED_CYCLES, seed=7)
    batch = StimulusBatch(programs)

    sims = [CompiledSimulator(build_hcor().system) for _ in range(LANES)]
    start = time.perf_counter()
    for lane, sim in enumerate(sims):
        for pins in programs[lane]:
            sim.step(pins)
    scalar_s = time.perf_counter() - start

    batched_sim = BatchedCompiledSimulator(build_hcor().system, lanes=LANES)
    start = time.perf_counter()
    batched_sim.run_batch(batch)
    batched_s = time.perf_counter() - start

    return {
        "workload": f"hcor, {LANES} streams x {COMPILED_CYCLES} cycles",
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "speedup": scalar_s / batched_s,
    }


def _bench_gate(name: str, netlist) -> Dict[str, float]:
    from repro.synth.gatesim import GateSimulator
    from repro.verify import random_stimulus

    programs = [random_stimulus(netlist, GATE_CYCLES, seed=100 + lane)
                for lane in range(LANES)]

    sims = [GateSimulator(netlist) for _ in range(LANES)]
    start = time.perf_counter()
    for lane, sim in enumerate(sims):
        for pins in programs[lane]:
            sim.step(pins)
    scalar_s = time.perf_counter() - start

    wide = GateSimulator(netlist, lanes=LANES)
    start = time.perf_counter()
    for cycle in range(GATE_CYCLES):
        wide.step({
            pin: [programs[lane][cycle][pin] for lane in range(LANES)]
            for pin in netlist.inputs
        })
    batched_s = time.perf_counter() - start

    return {
        "workload": f"{name} netlist, {LANES} streams x {GATE_CYCLES} "
                    "cycles",
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "speedup": scalar_s / batched_s,
    }


def run() -> Dict[str, object]:
    from repro.core import Clock
    from repro.designs.dect import datapaths
    from repro.designs.hcor import build_hcor
    from repro.synth.flow import synthesize_process

    hcor_netlist = synthesize_process(build_hcor().process).netlist
    lms_netlist = synthesize_process(
        datapaths.build_lms(Clock("bench_lms"))).netlist

    return {
        "bench": "batched",
        "lanes": LANES,
        "compiled": {"hcor": _bench_compiled_hcor()},
        "gate": {
            "hcor": _bench_gate("hcor", hcor_netlist),
            "dect_lms": _bench_gate("dect_lms", lms_netlist),
        },
    }


def main() -> int:
    results = run()
    with open(OUT_PATH, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)

    rows = [("compiled", key, cell)
            for key, cell in results["compiled"].items()]
    rows += [("gate", key, cell) for key, cell in results["gate"].items()]
    print(f"batched value planes — {results['lanes']} stimulus streams "
          "per pass")
    for engine, key, cell in rows:
        print(f"  {engine:8} {key:9} scalar {cell['scalar_s']:7.3f}s  "
              f"batched {cell['batched_s']:7.3f}s  "
              f"speedup {cell['speedup']:6.2f}x")

    best = max(cell["speedup"] for _, _, cell in rows)
    if best < 8.0:
        print(f"FAIL: best speedup {best:.2f}x < 8x — batching is not "
              "paying for itself")
        return 1
    print(f"wrote {os.path.normpath(OUT_PATH)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
