"""Observability overhead: what instrumentation costs per cycle.

Measures HCOR cycles/sec on both state-carrying engines in three
configurations:

* ``bare``           — no capture at all (``obs=None``);
* ``disabled``       — a capture with every feature off (must be free:
  the cycle scheduler attaches no monitor, the compiled simulator
  emits no instrumentation code);
* ``spans_disabled`` — like ``disabled``, with every ``SPAN_BLOCK``-cycle
  batch additionally wrapped in a span of a *disabled*
  :class:`~repro.obs.spans.SpanTracer` (the shared no-op handle must
  make untraced code free too; a span per work item matches how the
  sharded runner traces — one span per shard, never per clock edge);
* ``full``           — activity + FSM + events + engine self-profiling.

Every configuration batches ``SPAN_BLOCK`` cycles per timed call so the
timer overhead amortizes identically across rows.

Writes ``BENCH_obs.json`` next to ``BENCH_ir.json`` and prints a
summary.  Fails (exit 1) when either disabled configuration costs more
than ``MAX_DISABLED_OVERHEAD_PCT`` — the acceptance threshold for
"instrumentation you didn't ask for is instrumentation you don't pay
for".  Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Callable, Dict, Optional

sys.path.insert(0, os.path.dirname(__file__))

OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_obs.json")

#: Acceptance threshold: a disabled capture may cost at most this much.
MAX_DISABLED_OVERHEAD_PCT = 5.0
BENCH_SECONDS = float(os.environ.get("BENCH_OBS_SECONDS", "0.5"))
#: Repeat each measurement and keep the best rate (least-noise sample).
REPEATS = int(os.environ.get("BENCH_OBS_REPEATS", "3"))
#: Cycles per timed call — the size of one work item.  Spans delimit
#: units of work (the runner opens one span per shard), so this is the
#: granularity the ``spans_disabled`` row wraps one span around.
SPAN_BLOCK = 64


def _rate(step: Callable[[], None], min_seconds: float,
          cycles_per_call: int = 1) -> float:
    best = 0.0
    for _ in range(REPEATS):
        count = 0
        start = time.perf_counter()
        while True:
            step()
            count += cycles_per_call
            elapsed = time.perf_counter() - start
            if elapsed >= min_seconds:
                break
        best = max(best, count / elapsed)
    return best


def _make_capture(config: str):
    from repro.obs import Capture

    if config == "bare":
        return None
    if config in ("disabled", "spans_disabled"):
        return Capture(activity=False, fsm=False, events=False,
                       profile=False)
    return Capture(profile=True)


def _make_step(config: str, step: Callable[[], None]) -> Callable[[], None]:
    """Batch *step* into one ``SPAN_BLOCK``-cycle work item per call.

    For ``spans_disabled`` the batch is additionally wrapped in a span
    of a disabled tracer — the granularity the runner traces at.
    """
    def block() -> None:
        for _ in range(SPAN_BLOCK):
            step()

    if config != "spans_disabled":
        return block
    from repro.obs import SpanTracer

    tracer = SpanTracer(enabled=False)

    def traced() -> None:
        with tracer.span("item"):
            block()

    return traced


def _cycle_rate(config: str) -> float:
    from repro.designs.hcor import build_hcor
    from repro.sim import CycleScheduler

    design = build_hcor()
    scheduler = CycleScheduler(design.system, obs=_make_capture(config))
    pin = design.soft_in
    pins = {pin: 0.25}
    for _ in range(50):
        scheduler.step(pins)
    return _rate(_make_step(config, lambda: scheduler.step(pins)),
                 BENCH_SECONDS, cycles_per_call=SPAN_BLOCK)


def _compiled_rate(config: str) -> float:
    from repro.designs.hcor import build_hcor
    from repro.sim import CompiledSimulator

    design = build_hcor()
    simulator = CompiledSimulator(design.system, obs=_make_capture(config))
    pins = {"soft": 0.25}
    for _ in range(200):
        simulator.step(pins)
    return _rate(_make_step(config, lambda: simulator.step(pins)),
                 BENCH_SECONDS, cycles_per_call=SPAN_BLOCK)


def _overhead_pct(bare: float, instrumented: float) -> float:
    if bare <= 0:
        return 0.0
    return 100.0 * (bare - instrumented) / bare


def run() -> Dict[str, object]:
    results: Dict[str, object] = {"bench": "obs_overhead",
                                  "threshold_pct": MAX_DISABLED_OVERHEAD_PCT,
                                  "engines": {}}
    for engine, measure in (("interpreted", _cycle_rate),
                            ("compiled", _compiled_rate)):
        rates = {config: measure(config)
                 for config in ("bare", "disabled", "spans_disabled",
                                "full")}
        results["engines"][engine] = {
            "cycles_per_sec": rates,
            "disabled_overhead_pct":
                _overhead_pct(rates["bare"], rates["disabled"]),
            "spans_disabled_overhead_pct":
                _overhead_pct(rates["bare"], rates["spans_disabled"]),
            "full_overhead_pct":
                _overhead_pct(rates["bare"], rates["full"]),
        }
    return results


def main() -> int:
    results = run()
    with open(OUT_PATH, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)

    ok = True
    print(f"observability overhead (HCOR, best of {REPEATS})")
    for engine, data in results["engines"].items():
        rates = data["cycles_per_sec"]
        print(f"  {engine}")
        for config in ("bare", "disabled", "spans_disabled", "full"):
            print(f"    {config:14}: {rates[config]:10.1f} cyc/s")
        print(f"    disabled overhead: {data['disabled_overhead_pct']:+.2f}% "
              f"(spans {data['spans_disabled_overhead_pct']:+.2f}%, "
              f"limit {MAX_DISABLED_OVERHEAD_PCT}%), "
              f"full overhead: {data['full_overhead_pct']:+.2f}%")
        if data["disabled_overhead_pct"] > MAX_DISABLED_OVERHEAD_PCT:
            ok = False
        if data["spans_disabled_overhead_pct"] > MAX_DISABLED_OVERHEAD_PCT:
            ok = False

    if not ok:
        print("FAIL: a disabled capture (with or without spans) must be "
              "(near) free")
        return 1
    print(f"wrote {os.path.normpath(OUT_PATH)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
