"""Observability overhead: what instrumentation costs per cycle.

Measures HCOR cycles/sec on both state-carrying engines in three
configurations:

* ``bare``      — no capture at all (``obs=None``);
* ``disabled``  — a capture with every feature off (must be free: the
  cycle scheduler attaches no monitor, the compiled simulator emits no
  instrumentation code);
* ``full``      — activity + FSM + events + engine self-profiling.

Writes ``BENCH_obs.json`` next to ``BENCH_ir.json`` and prints a
summary.  Fails (exit 1) when the *disabled* configuration costs more
than ``MAX_DISABLED_OVERHEAD_PCT`` — the acceptance threshold for
"instrumentation you didn't ask for is instrumentation you don't pay
for".  Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Callable, Dict, Optional

sys.path.insert(0, os.path.dirname(__file__))

OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_obs.json")

#: Acceptance threshold: a disabled capture may cost at most this much.
MAX_DISABLED_OVERHEAD_PCT = 5.0
BENCH_SECONDS = float(os.environ.get("BENCH_OBS_SECONDS", "0.5"))
#: Repeat each measurement and keep the best rate (least-noise sample).
REPEATS = int(os.environ.get("BENCH_OBS_REPEATS", "3"))


def _rate(step: Callable[[], None], min_seconds: float) -> float:
    best = 0.0
    for _ in range(REPEATS):
        count = 0
        start = time.perf_counter()
        while True:
            step()
            count += 1
            elapsed = time.perf_counter() - start
            if elapsed >= min_seconds:
                break
        best = max(best, count / elapsed)
    return best


def _make_capture(config: str):
    from repro.obs import Capture

    if config == "bare":
        return None
    if config == "disabled":
        return Capture(activity=False, fsm=False, events=False,
                       profile=False)
    return Capture(profile=True)


def _cycle_rate(config: str) -> float:
    from repro.designs.hcor import build_hcor
    from repro.sim import CycleScheduler

    design = build_hcor()
    scheduler = CycleScheduler(design.system, obs=_make_capture(config))
    pin = design.soft_in
    pins = {pin: 0.25}
    for _ in range(50):
        scheduler.step(pins)
    return _rate(lambda: scheduler.step(pins), BENCH_SECONDS)


def _compiled_rate(config: str) -> float:
    from repro.designs.hcor import build_hcor
    from repro.sim import CompiledSimulator

    design = build_hcor()
    simulator = CompiledSimulator(design.system, obs=_make_capture(config))
    pins = {"soft": 0.25}
    for _ in range(200):
        simulator.step(pins)
    return _rate(lambda: simulator.step(pins), BENCH_SECONDS)


def _overhead_pct(bare: float, instrumented: float) -> float:
    if bare <= 0:
        return 0.0
    return 100.0 * (bare - instrumented) / bare


def run() -> Dict[str, object]:
    results: Dict[str, object] = {"bench": "obs_overhead",
                                  "threshold_pct": MAX_DISABLED_OVERHEAD_PCT,
                                  "engines": {}}
    for engine, measure in (("interpreted", _cycle_rate),
                            ("compiled", _compiled_rate)):
        rates = {config: measure(config)
                 for config in ("bare", "disabled", "full")}
        results["engines"][engine] = {
            "cycles_per_sec": rates,
            "disabled_overhead_pct":
                _overhead_pct(rates["bare"], rates["disabled"]),
            "full_overhead_pct":
                _overhead_pct(rates["bare"], rates["full"]),
        }
    return results


def main() -> int:
    results = run()
    with open(OUT_PATH, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)

    ok = True
    print(f"observability overhead (HCOR, best of {REPEATS})")
    for engine, data in results["engines"].items():
        rates = data["cycles_per_sec"]
        print(f"  {engine}")
        for config in ("bare", "disabled", "full"):
            print(f"    {config:9}: {rates[config]:10.1f} cyc/s")
        print(f"    disabled overhead: {data['disabled_overhead_pct']:+.2f}% "
              f"(limit {MAX_DISABLED_OVERHEAD_PCT}%), "
              f"full overhead: {data['full_overhead_pct']:+.2f}%")
        if data["disabled_overhead_pct"] > MAX_DISABLED_OVERHEAD_PCT:
            ok = False

    if not ok:
        print("FAIL: a disabled capture must be (near) free")
        return 1
    print(f"wrote {os.path.normpath(OUT_PATH)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
