"""Fault-campaign throughput and the payoff of the robustness rails.

Benchmarked claims:

* per-fault replay cost on the 2.2 Kgate HCOR netlist (checkpoint
  restore + N-cycle replay + output compare);
* structural collapsing removes a measurable fraction of the stuck-at
  universe before any simulation happens;
* checkpoint/restore of the gate simulator is much cheaper than
  rebuilding (re-levelizing) it, which is what makes one-simulator
  campaigns viable;
* a watchdog wall-clock budget bounds campaign latency while still
  returning partial coverage.
"""

import random
import time

import pytest

from repro.designs.hcor import build_hcor
from repro.synth import GateSimulator, synthesize_process
from repro.verify import (
    FaultCampaign,
    Watchdog,
    collapse_faults,
    enumerate_faults,
    random_stimulus,
)


@pytest.fixture(scope="module")
def hcor_netlist():
    return synthesize_process(build_hcor().process).netlist


def test_bench_fault_replays(benchmark, hcor_netlist):
    """24 fault replays over a 6-cycle stimulus, one reused simulator."""
    stimuli = random_stimulus(hcor_netlist, 6, seed=1)
    sample = random.Random(2).sample(enumerate_faults(hcor_netlist), 24)
    benchmark(lambda: FaultCampaign(hcor_netlist, stimuli,
                                    faults=sample).run())


def test_bench_fault_replays_batched(benchmark, hcor_netlist):
    """The same 24 faults, packed one per bit-lane (one golden replay)."""
    stimuli = random_stimulus(hcor_netlist, 6, seed=1)
    sample = random.Random(2).sample(enumerate_faults(hcor_netlist), 24)
    benchmark(lambda: FaultCampaign(hcor_netlist, stimuli,
                                    faults=sample, lanes=64).run())


def test_batched_campaign_cuts_gate_evals(hcor_netlist):
    """The batched column's claim, in gate evaluations not wall clock:
    one lane-packed replay per 64 faults must cut word-level gate
    evaluations by an order of magnitude on the full universe."""
    stimuli = random_stimulus(hcor_netlist, 8, seed=3)
    sample = random.Random(4).sample(enumerate_faults(hcor_netlist), 256)

    scalar = FaultCampaign(hcor_netlist, stimuli, faults=sample)
    batched = FaultCampaign(hcor_netlist, stimuli, faults=sample, lanes=64)
    assert scalar.run() == batched.run()
    assert scalar.gate_evals >= 10 * batched.gate_evals


def test_collapsing_shrinks_the_universe(hcor_netlist):
    result = collapse_faults(hcor_netlist)
    assert result.collapsed < result.total
    # The HCOR netlist is mux/xor heavy; still, the chain equivalences
    # must remove a solid chunk of the universe.
    assert result.ratio < 0.95


def test_restore_beats_rebuilding(hcor_netlist):
    """Restoring a snapshot must beat constructing a fresh simulator."""
    reps = 20

    start = time.perf_counter()
    for _ in range(reps):
        GateSimulator(hcor_netlist)
    rebuild = time.perf_counter() - start

    sim = GateSimulator(hcor_netlist)
    snap = sim.save_state()
    start = time.perf_counter()
    for _ in range(reps):
        sim.restore_state(snap)
    restore = time.perf_counter() - start

    assert restore < rebuild


def test_watchdog_bounds_campaign_latency(hcor_netlist):
    stimuli = random_stimulus(hcor_netlist, 8, seed=3)
    budget = 0.5
    start = time.perf_counter()
    report = FaultCampaign(hcor_netlist, stimuli,
                           watchdog=Watchdog(max_seconds=budget)).run()
    elapsed = time.perf_counter() - start
    assert not report.complete  # the full universe needs far longer
    assert report.results  # but partial coverage came back
    # Overshoot is at most the golden run plus one in-flight fault.
    assert elapsed < budget + 5.0
