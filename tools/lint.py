#!/usr/bin/env python
"""Repo-level lint driver: ``python tools/lint.py [options] <paths>``.

Thin wrapper putting ``src/`` on the path and delegating to
:mod:`repro.lint.cli` so the linter runs without an installed package
(the same convention as ``tools/check_layering.py``).
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.lint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
