#!/usr/bin/env python
"""Import-layering check for the back-end subpackages.

The lowered IR (:mod:`repro.ir`) is the one shared layer between the
back-ends; ``repro.hdl``, ``repro.sim`` and ``repro.synth`` must not
reach into each other's private names.  This script walks every module
in those subpackages with :mod:`ast` and fails (exit 1) when a module
imports an underscore-prefixed name — or star-imports — from a
*different* back-end subpackage.  Public cross-imports (a documented
API) are allowed; private ones are the layering violations that used to
couple the Verilog generator to VHDL internals.

Run from the repository root::

    python tools/check_layering.py
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import List, Optional, Tuple

#: Back-end subpackages that must stay privately independent.
LAYERS = ("hdl", "sim", "synth")
PACKAGE = "repro"


def _resolve(module_pkg: str, node: ast.ImportFrom) -> Optional[str]:
    """Absolute dotted module a ``from ... import`` statement targets."""
    if node.level == 0:
        return node.module
    parts = module_pkg.split(".")
    if node.level > len(parts):
        return None
    base = parts[: len(parts) - (node.level - 1)]
    if node.module:
        base.append(node.module)
    return ".".join(base)


def _layer_of(dotted: str) -> Optional[str]:
    parts = dotted.split(".")
    if len(parts) >= 2 and parts[0] == PACKAGE and parts[1] in LAYERS:
        return parts[1]
    return None


def check_tree(src_root: Path) -> List[str]:
    """All private cross-layer imports under *src_root*, as messages."""
    violations: List[str] = []
    for layer in LAYERS:
        for path in sorted((src_root / PACKAGE / layer).rglob("*.py")):
            rel = path.relative_to(src_root)
            module_pkg = ".".join(rel.with_suffix("").parts[:-1])
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                if not isinstance(node, ast.ImportFrom):
                    continue
                target = _resolve(module_pkg, node)
                if target is None:
                    continue
                target_layer = _layer_of(target)
                if target_layer is None or target_layer == layer:
                    continue
                private = [
                    alias.name for alias in node.names
                    if alias.name.startswith("_") or alias.name == "*"
                ]
                for name in private:
                    violations.append(
                        f"{rel}:{node.lineno}: imports private name "
                        f"{name!r} from {target} (layer {target_layer!r} "
                        f"!= {layer!r})"
                    )
    return violations


def main(argv: Tuple[str, ...] = ()) -> int:
    root = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent
    src_root = root / "src"
    violations = check_tree(src_root)
    if violations:
        print("layering violations:")
        for message in violations:
            print(f"  {message}")
        return 1
    print(f"layering clean: {', '.join(LAYERS)} share no private names")
    return 0


if __name__ == "__main__":
    sys.exit(main(tuple(sys.argv[1:])))
