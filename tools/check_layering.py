#!/usr/bin/env python
"""Import-layering check for the back-end subpackages and the linter.

Two layering contracts are enforced by walking every module with
:mod:`ast` (exit 1 on violation):

1. The lowered IR (:mod:`repro.ir`) is the one shared layer between the
   back-ends; ``repro.hdl``, ``repro.sim`` and ``repro.synth`` must not
   reach into each other's private names (no underscore-prefixed or
   star imports from a *different* back-end subpackage).  Public
   cross-imports (a documented API) are allowed; private ones are the
   layering violations that used to couple the Verilog generator to
   VHDL internals.

2. ``repro.lint`` is an *analysis* layer: it may depend only on the
   model (``repro.core``), the shared IR (``repro.ir``) and the number
   system (``repro.fixpt``) — never on a back-end — and nothing in
   ``repro.sim``/``repro.hdl``/``repro.synth`` may import ``repro.lint``
   (the back-ends must stay buildable without the analyzer).

3. ``repro.obs`` is the *observability* layer: like the linter it may
   depend only on ``core``/``ir``/``fixpt``.  Engines import obs (they
   accept a capture and feed it), never the reverse — and the model
   layers obs builds on (``core``/``ir``/``fixpt``) must not import
   obs, or instrumentation would become load-bearing.

4. Lane/batch machinery lives only in the engines (``repro.sim``,
   ``repro.synth``, ``repro.verify``).  The scalar-semantics layers —
   ``repro.core``, ``repro.ir``, ``repro.fixpt`` and ``repro.lint`` —
   stay lane-agnostic: they must not import an engine package, and no
   definition, argument or assigned name in them may mention lanes or
   batches ("what a signal computes" never knows "how many stimuli
   evaluate it at once").

5. ``repro.runner`` is the *orchestration* layer — the top of the
   stack.  It may import anything, but nothing else in ``repro`` may
   import it: campaigns, engines and the observability layer must stay
   fully usable (and testable) without the multiprocess machinery.

6. Translation validation (``repro.ir.equiv``) sits between the IR and
   the analysis layer: within ``repro.ir`` only ``equiv.py`` may import
   ``repro.lint``, and only the interval domain
   (``repro.lint.interval``) — plus the one edge contract 7 sanctions.
   Engines (``sim``/``hdl``/``synth``) never import ``repro.ir.equiv``
   directly — they state equivalence obligations through the
   ``PassManager``'s ``validate=`` knob, so the back-ends stay buildable
   without the checker's internals.

7. The bit-level domain (``repro.lint.bits``) is a leaf analysis: it
   may import only ``repro.core``, ``repro.ir``, ``repro.fixpt`` and
   its sibling interval domain (``repro.lint.interval``) — never the
   rule modules, the linter driver, or a back-end.  Within ``repro.ir``
   exactly one module may reach back into it: ``passes.py`` (lazily,
   for the ``narrow_bitwidth`` pass), mirroring the ``equiv.py`` ->
   ``lint.interval`` edge of contract 6.  Engines never import
   ``repro.lint.bits``: narrowing reaches them only as an ordinary
   validated pass in a pipeline.

8. The distributed-observability core — ``repro.obs.spans``,
   ``repro.obs.aggregate`` and ``repro.obs.tail`` — is what the
   orchestration layer builds *on*, so it must be importable without
   it: those modules may import only ``repro.core`` and sibling
   ``repro.obs`` modules (not even ``ir``/``fixpt``; ``repro.runner``
   is already banned package-wide by contract 5 — the tail reads the
   runner's journal as plain JSONL precisely so watching a campaign
   never loads the orchestration layer).

Run from the repository root::

    python tools/check_layering.py
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

#: Back-end subpackages that must stay privately independent.
LAYERS = ("hdl", "sim", "synth")
#: Subpackages repro.lint is allowed to import from.
LINT_MAY_IMPORT = ("lint", "core", "ir", "fixpt")
#: Subpackages that must not depend on repro.lint.
LINT_FREE = ("sim", "hdl", "synth")
#: Subpackages repro.obs is allowed to import from.
OBS_MAY_IMPORT = ("obs", "core", "ir", "fixpt")
#: Model layers that must not depend on repro.obs (engines *may* import
#: obs — that direction is the whole point).
OBS_FREE = ("core", "ir", "fixpt")
#: Scalar-semantics layers that must stay lane-agnostic.
LANE_FREE = ("core", "ir", "fixpt", "lint")
#: Engine packages allowed to own lane/batch machinery.
LANE_OWNERS = ("sim", "synth", "verify")
#: Identifier fragments that mark lane/batch machinery.
LANE_WORDS = ("lane", "batch")
#: The orchestration layer nothing else may depend on.
TOP_LAYER = "runner"
#: The one repro.ir module allowed to import repro.lint, and the one
#: lint module it may reach.
EQUIV_MODULE = ("ir", "equiv.py")
EQUIV_MAY_IMPORT = "repro.lint.interval"
#: Engine packages that must not import repro.ir.equiv directly.
EQUIV_FREE = ("sim", "hdl", "synth")
#: The sanctioned repro.ir -> repro.lint edges: module file -> the one
#: lint module it may import (contracts 6 and 7).
IR_LINT_EDGES = {
    ("ir", "equiv.py"): "repro.lint.interval",
    ("ir", "passes.py"): "repro.lint.bits",
}
#: Contract 7: the bit-level domain module and its permitted imports.
BITS_MODULE = ("lint", "bits.py")
BITS_MAY_IMPORT = ("core", "ir", "fixpt")
BITS_LINT_MAY_IMPORT = ("repro.lint.interval",)
#: Engine packages that must not import repro.lint.bits.
BITS_FREE = ("sim", "hdl", "synth")
#: Contract 8: the distributed-observability core modules and the only
#: subpackages they may import.
SPANS_MODULES = ("spans.py", "aggregate.py", "tail.py")
SPANS_MAY_IMPORT = ("obs", "core")
PACKAGE = "repro"


def _resolve(module_pkg: str, node: ast.ImportFrom) -> Optional[str]:
    """Absolute dotted module a ``from ... import`` statement targets."""
    if node.level == 0:
        return node.module
    parts = module_pkg.split(".")
    if node.level > len(parts):
        return None
    base = parts[: len(parts) - (node.level - 1)]
    if node.module:
        base.append(node.module)
    return ".".join(base)


def _layer_of(dotted: str) -> Optional[str]:
    parts = dotted.split(".")
    if len(parts) >= 2 and parts[0] == PACKAGE and parts[1] in LAYERS:
        return parts[1]
    return None


def _subpackage_of(dotted: str) -> Optional[str]:
    parts = dotted.split(".")
    if len(parts) >= 2 and parts[0] == PACKAGE:
        return parts[1]
    return None


def _imports(src_root: Path, subpackage: str) -> Iterator[Tuple[Path, int, str]]:
    """Every absolute import target in *subpackage*: (file, line, dotted)."""
    for path in sorted((src_root / PACKAGE / subpackage).rglob("*.py")):
        rel = path.relative_to(src_root)
        module_pkg = ".".join(rel.with_suffix("").parts[:-1])
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    yield rel, node.lineno, alias.name
            elif isinstance(node, ast.ImportFrom):
                target = _resolve(module_pkg, node)
                if target is not None:
                    yield rel, node.lineno, target


def check_tree(src_root: Path) -> List[str]:
    """All private cross-layer imports under *src_root*, as messages."""
    violations: List[str] = []
    for layer in LAYERS:
        for path in sorted((src_root / PACKAGE / layer).rglob("*.py")):
            rel = path.relative_to(src_root)
            module_pkg = ".".join(rel.with_suffix("").parts[:-1])
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                if not isinstance(node, ast.ImportFrom):
                    continue
                target = _resolve(module_pkg, node)
                if target is None:
                    continue
                target_layer = _layer_of(target)
                if target_layer is None or target_layer == layer:
                    continue
                private = [
                    alias.name for alias in node.names
                    if alias.name.startswith("_") or alias.name == "*"
                ]
                for name in private:
                    violations.append(
                        f"{rel}:{node.lineno}: imports private name "
                        f"{name!r} from {target} (layer {target_layer!r} "
                        f"!= {layer!r})"
                    )
    return violations


def check_lint_layer(src_root: Path) -> List[str]:
    """Violations of the repro.lint dependency contract, as messages."""
    violations: List[str] = []
    for rel, lineno, target in _imports(src_root, "lint"):
        subpackage = _subpackage_of(target)
        if subpackage is not None and subpackage not in LINT_MAY_IMPORT:
            violations.append(
                f"{rel}:{lineno}: repro.lint imports {target} — the "
                f"linter may depend only on "
                f"{', '.join(sorted(set(LINT_MAY_IMPORT) - {'lint'}))}"
            )
    for subpackage in LINT_FREE:
        for rel, lineno, target in _imports(src_root, subpackage):
            if _subpackage_of(target) == "lint":
                violations.append(
                    f"{rel}:{lineno}: repro.{subpackage} imports {target} — "
                    "back-ends must not depend on repro.lint"
                )
    return violations


def check_obs_layer(src_root: Path) -> List[str]:
    """Violations of the repro.obs dependency contract, as messages."""
    violations: List[str] = []
    if (src_root / PACKAGE / "obs").is_dir():
        for rel, lineno, target in _imports(src_root, "obs"):
            subpackage = _subpackage_of(target)
            if subpackage is not None and subpackage not in OBS_MAY_IMPORT:
                violations.append(
                    f"{rel}:{lineno}: repro.obs imports {target} — the "
                    f"observability layer may depend only on "
                    f"{', '.join(sorted(set(OBS_MAY_IMPORT) - {'obs'}))}"
                )
    for subpackage in OBS_FREE:
        if not (src_root / PACKAGE / subpackage).is_dir():
            continue
        for rel, lineno, target in _imports(src_root, subpackage):
            if _subpackage_of(target) == "obs":
                violations.append(
                    f"{rel}:{lineno}: repro.{subpackage} imports {target} — "
                    "model layers must not depend on repro.obs"
                )
    return violations


def _lane_named(name: str) -> bool:
    lowered = name.lower()
    return any(word in lowered for word in LANE_WORDS)


def check_lane_layer(src_root: Path) -> List[str]:
    """Violations of the lane-agnosticism contract, as messages."""
    violations: List[str] = []
    for subpackage in LANE_FREE:
        pkg = src_root / PACKAGE / subpackage
        if not pkg.is_dir():
            continue
        for rel, lineno, target in _imports(src_root, subpackage):
            if _subpackage_of(target) in LANE_OWNERS:
                violations.append(
                    f"{rel}:{lineno}: repro.{subpackage} imports {target} — "
                    "scalar-semantics layers must not depend on an engine "
                    "package"
                )
        for path in sorted(pkg.rglob("*.py")):
            rel = path.relative_to(src_root)
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                names: List[str] = []
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    names.append(node.name)
                elif isinstance(node, ast.arg):
                    names.append(node.arg)
                elif isinstance(node, ast.Name) \
                        and isinstance(node.ctx, ast.Store):
                    names.append(node.id)
                elif isinstance(node, ast.Attribute) \
                        and isinstance(node.ctx, ast.Store):
                    names.append(node.attr)
                for name in names:
                    if _lane_named(name):
                        violations.append(
                            f"{rel}:{node.lineno}: repro.{subpackage} "
                            f"defines {name!r} — lane/batch machinery "
                            f"belongs to {', '.join(LANE_OWNERS)} only"
                        )
    return violations


def check_runner_layer(src_root: Path) -> List[str]:
    """Violations of the repro.runner top-layer contract, as messages."""
    violations: List[str] = []
    for pkg in sorted((src_root / PACKAGE).iterdir()):
        if not pkg.is_dir() or pkg.name == TOP_LAYER:
            continue
        for rel, lineno, target in _imports(src_root, pkg.name):
            if _subpackage_of(target) == TOP_LAYER:
                violations.append(
                    f"{rel}:{lineno}: repro.{pkg.name} imports {target} — "
                    "repro.runner is the top orchestration layer; nothing "
                    "may depend on it"
                )
    return violations


def check_equiv_layer(src_root: Path) -> List[str]:
    """Violations of the translation-validation contract, as messages."""
    violations: List[str] = []
    allowed = {Path(PACKAGE) / pkg / name: target
               for (pkg, name), target in IR_LINT_EDGES.items()}
    for rel, lineno, target in _imports(src_root, "ir"):
        if _subpackage_of(target) != "lint":
            continue
        if rel not in allowed:
            edges = ", ".join(str(path) for path in sorted(allowed))
            violations.append(
                f"{rel}:{lineno}: repro.ir imports {target} — within "
                f"repro.ir only {edges} may import repro.lint"
            )
        elif target != allowed[rel]:
            violations.append(
                f"{rel}:{lineno}: imports {target} — {rel} may only "
                f"import {allowed[rel]}"
            )
    for subpackage in EQUIV_FREE:
        for rel, lineno, target in _imports(src_root, subpackage):
            if target == f"{PACKAGE}.ir.equiv" \
                    or target.startswith(f"{PACKAGE}.ir.equiv."):
                violations.append(
                    f"{rel}:{lineno}: repro.{subpackage} imports {target} — "
                    "engines state equivalence obligations through "
                    "PassManager(validate=...), never by importing "
                    "repro.ir.equiv"
                )
    return violations


def check_bits_layer(src_root: Path) -> List[str]:
    """Violations of the bit-level-domain contract (7), as messages."""
    violations: List[str] = []
    bits_rel = Path(PACKAGE) / BITS_MODULE[0] / BITS_MODULE[1]
    for rel, lineno, target in _imports(src_root, BITS_MODULE[0]):
        if rel != bits_rel:
            continue
        subpackage = _subpackage_of(target)
        if subpackage is None:
            continue  # stdlib / third-party
        if subpackage in BITS_MAY_IMPORT:
            continue
        if subpackage == "lint":
            if target in BITS_LINT_MAY_IMPORT or any(
                    target.startswith(ok + ".")
                    for ok in BITS_LINT_MAY_IMPORT):
                continue
            violations.append(
                f"{rel}:{lineno}: lint/bits imports {target} — within "
                f"repro.lint the bit domain may only import "
                f"{', '.join(BITS_LINT_MAY_IMPORT)}"
            )
            continue
        violations.append(
            f"{rel}:{lineno}: lint/bits imports {target} — the bit "
            f"domain may depend only on "
            f"{', '.join(BITS_MAY_IMPORT)} and "
            f"{', '.join(BITS_LINT_MAY_IMPORT)}"
        )
    for subpackage in BITS_FREE:
        for rel, lineno, target in _imports(src_root, subpackage):
            if target == f"{PACKAGE}.lint.bits" \
                    or target.startswith(f"{PACKAGE}.lint.bits."):
                violations.append(
                    f"{rel}:{lineno}: repro.{subpackage} imports {target} — "
                    "engines see bit narrowing only as a validated pass in "
                    "a pipeline, never by importing repro.lint.bits"
                )
    return violations


def check_spans_layer(src_root: Path) -> List[str]:
    """Violations of the distributed-obs-core contract (8), as messages."""
    violations: List[str] = []
    core = {Path(PACKAGE) / "obs" / name for name in SPANS_MODULES}
    for rel, lineno, target in _imports(src_root, "obs"):
        if rel not in core:
            continue
        subpackage = _subpackage_of(target)
        if subpackage is None or subpackage in SPANS_MAY_IMPORT:
            continue
        violations.append(
            f"{rel}:{lineno}: imports {target} — the distributed-obs "
            f"core ({', '.join(SPANS_MODULES)}) may depend only on "
            f"repro.core and sibling repro.obs modules"
        )
    return violations


def main(argv: Tuple[str, ...] = ()) -> int:
    root = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent
    src_root = root / "src"
    violations = (check_tree(src_root) + check_lint_layer(src_root)
                  + check_obs_layer(src_root) + check_lane_layer(src_root)
                  + check_runner_layer(src_root)
                  + check_equiv_layer(src_root)
                  + check_bits_layer(src_root)
                  + check_spans_layer(src_root))
    if violations:
        print("layering violations:")
        for message in violations:
            print(f"  {message}")
        return 1
    print(f"layering clean: {', '.join(LAYERS)} share no private names; "
          "repro.lint depends only on core/ir/fixpt and no back-end "
          "imports it; repro.obs depends only on core/ir/fixpt and no "
          "model layer imports it; core/ir/fixpt/lint are lane-agnostic; "
          "nothing imports repro.runner; the only ir->lint edges are "
          "ir/equiv->lint.interval and ir/passes->lint.bits, no engine "
          "imports ir.equiv; lint/bits depends only on core/ir/fixpt "
          "plus lint.interval and no engine imports it; obs "
          "spans/aggregate/tail depend only on core and sibling obs "
          "modules")
    return 0


if __name__ == "__main__":
    sys.exit(main(tuple(sys.argv[1:])))
