#!/usr/bin/env python
"""Prove an IR pass pipeline over a whole design.

``python tools/prove_passes.py --design hcor --validate exhaustive``
lowers every SFG of every timed process in the design, runs the chosen
pass pipeline with translation validation on, and exits non-zero with a
concrete counterexample (divergent input valuation, first divergent op,
source location) if any pass application fails to preserve equivalence.

With ``--netlist <datapath>`` it additionally synthesizes one DECT
datapath twice — IR passes off and on — and proves the two netlists
equal with the word-parallel miter check
(:func:`repro.synth.equiv.check_netlists`), closing the gap between IR
semantics and the bit-level interpretation synthesis gives to fraction
labels.

CI runs this as the equivalence smoke job: ``--design hcor --validate
exhaustive`` and ``--design transceiver --validate sampled``.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.ir import (  # noqa: E402
    PIPELINES,
    PassEquivalenceError,
    PassManager,
    lower_sfg,
)

DESIGNS = ("hcor", "transceiver")


def _design_system(name: str):
    if name == "hcor":
        from repro.designs.hcor import build_hcor

        return build_hcor().system
    if name == "transceiver":
        from repro.designs.dect.transceiver import build_transceiver

        return build_transceiver().system
    raise SystemExit(f"unknown design {name!r} (choose from {DESIGNS})")


def _stats_lines(manager: PassManager):
    yield (f"  {'pass':<24} {'runs':>6} {'changed':>8} {'ops-':>6} "
           f"{'validated':>10} {'proved':>7}")
    for name, row in manager.stats.items():
        yield (f"  {name:<24} {row['runs']:>6} {row['changed']:>8} "
               f"{row['ops_removed']:>6} {row['validated']:>10} "
               f"{row['proved']:>7}")


def prove_design(name: str, passes: str, validate: str) -> int:
    system = _design_system(name)
    manager = PassManager(passes, validate=validate)
    blocks = 0
    for process in system.timed_processes():
        for sfg in process.all_sfgs():
            block = lower_sfg(sfg)
            try:
                manager.run(block)
            except PassEquivalenceError as err:
                print(f"FAIL {name}: pass {err.pass_name!r} broke "
                      f"equivalence on {process.name}/{sfg.name}")
                print(f"  {err.counterexample.describe()}")
                return 1
            blocks += 1
    validated = sum(row["validated"] for row in manager.stats.values())
    proved = sum(row["proved"] for row in manager.stats.values())
    print(f"{name}: {blocks} blocks, pipeline {passes!r} "
          f"validate={validate}: {validated} pass applications validated, "
          f"{proved} proved exhaustively")
    for line in _stats_lines(manager):
        print(line)
    return 0


def prove_netlist(datapath: str, passes: str, validate: str) -> int:
    from repro.core import Clock
    from repro.designs.dect import datapaths
    from repro.synth import check_netlists, synthesize_process

    builder = getattr(datapaths, f"build_{datapath}", None)
    if builder is None:
        raise SystemExit(f"no DECT datapath builder build_{datapath}")
    raw = synthesize_process(builder(Clock(f"{datapath}_raw")),
                             ir_passes=False, optimize=False)
    opt = synthesize_process(builder(Clock(f"{datapath}_opt")),
                             passes=passes)
    mode = "exhaustive" if validate == "exhaustive" else "sampled"
    report = check_netlists(raw.netlist, opt.netlist, mode=mode)
    if not report.equivalent:
        print(f"FAIL {datapath}: optimized netlist diverges from raw")
        print(f"  {report.counterexample.describe()}")
        return 1
    kind = "exhaustive" if report.exhaustive else (
        "sequential" if report.sequential else "sampled")
    print(f"{datapath}: raw netlist ({raw.netlist.gate_count()} gates) == "
          f"optimized ({opt.netlist.gate_count()} gates) over "
          f"{report.vectors} {kind} vectors")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="translation-validate an IR pass pipeline on a design")
    parser.add_argument("--design", choices=DESIGNS, default="hcor")
    parser.add_argument("--passes", choices=sorted(PIPELINES),
                        default="aggressive")
    parser.add_argument("--validate", choices=("sampled", "exhaustive"),
                        default="sampled")
    parser.add_argument("--netlist", metavar="DATAPATH", default=None,
                        help="also miter-check one DECT datapath's raw vs "
                             "optimized netlist (e.g. disc, sum, lms)")
    args = parser.parse_args(argv)
    status = prove_design(args.design, args.passes, args.validate)
    if status == 0 and args.netlist:
        status = prove_netlist(args.netlist, args.passes, args.validate)
    return status


if __name__ == "__main__":
    sys.exit(main())
