#!/usr/bin/env python
"""The architecture change of section 3.3: data-flow to central control.

The paper's war story: the transceiver was first planned as a data-driven
architecture; the 29-symbol latency requirement forced a change to
central control *during the 18-week design cycle* — and the machine model
allowed the datapath descriptions to be reused, reworking only control.

This example demonstrates exactly that with the equalizer FIR slices:

1. the algorithm runs as an *untimed data-flow graph* (the original
   architecture), scheduled by firing rules;
2. the same bit-true FIR-slice datapaths run under a *locally-driven*
   schedule (each component fed its own instruction stream);
3. the identical datapath objects run inside the *centrally-controlled*
   VLIW transceiver — no datapath description changed, only control.

Run:  python examples/architecture_change.py
"""

import numpy as np

from repro.core import Clock, System, actor
from repro.designs.dect import formats as F
from repro.designs.dect.datapaths import build_fir_slice, build_sum
from repro.designs.dect.formats import FIR_OPS, SUM_OPS
from repro.sim import CycleScheduler, DataflowScheduler


def taps():
    rng = np.random.default_rng(3)
    return (rng.normal(size=15) * 0.25).round(3)


def reference(samples, weights):
    out = []
    history = [0.0] * 15
    for sample in samples:
        history = [sample] + history[:-1]
        out.append(sum(w * x for w, x in zip(weights, history)))
    return out


def dataflow_architecture(samples, weights):
    """The original plan: untimed actors with data-driven firing."""
    state = {"history": [0.0] * 15}

    def fir_actor(x):
        state["history"] = [x] + state["history"][:-1]
        return {"y": sum(w * v for w, v in zip(weights, state["history"]))}

    outputs = []
    fir = actor("fir", fir_actor, inputs={"x": 1}, outputs={"y": 1})
    sink = actor("sink", lambda y: outputs.append(y) or {},
                 inputs={"y": 1}, outputs={})
    system = System("dataflow")
    system.add(fir)
    system.add(sink)
    feed = system.connect(None, fir.port("x"), name="x")
    system.connect(fir.port("y"), sink.port("y"))
    for sample in samples:
        feed.put(sample)
    DataflowScheduler(system).run()
    return outputs


def central_control_architecture(samples, weights):
    """The shipped plan: the same FIR-slice datapaths, VLIW-style."""
    clk = Clock("local")
    slices = [build_fir_slice(i, n, clk)
              for i, n in enumerate(F.TAPS_PER_SLICE)]
    summed = build_sum(clk)
    system = System("central")
    for process in slices + [summed]:
        system.add(process)
    instr = {p.name: system.connect(None, p.port("instr"), name=f"i_{p.name}")
             for p in slices}
    instr_sum = system.connect(None, summed.port("instr"), name="i_sum")
    in_re = system.connect(None, slices[0].port("in_re"), name="in_re")
    in_im = system.connect(None, slices[0].port("in_im"), name="in_im")
    coef_re = system.connect(None, *(s.port("coef_re") for s in slices),
                             name="cre")
    coef_im = system.connect(None, *(s.port("coef_im") for s in slices),
                             name="cim")
    for i in range(3):
        system.connect(slices[i].port("cas_re"), slices[i + 1].port("in_re"))
        system.connect(slices[i].port("cas_im"), slices[i + 1].port("in_im"))
    for i in range(4):
        system.connect(slices[i].port("p_re"), summed.port(f"p_re{i}"))
        system.connect(slices[i].port("p_im"), summed.port(f"p_im{i}"))
    system.connect(summed.port("y_re"), name="y_re")
    system.connect(summed.port("y_im"), name="y_im")
    scheduler = CycleScheduler(system)

    # "Microcode" issued centrally: load coefficients, then stream.
    shift = FIR_OPS.index("SHIFT")
    do_sum = SUM_OPS.index("SUM")
    for tap in range(15):
        slice_index, k = divmod(tap, 4)
        inputs = {instr[p.name]: 0 for p in slices}
        inputs[instr[f"fir{slice_index}"]] = FIR_OPS.index(f"LC{k}")
        inputs[instr_sum] = 0
        inputs[coef_re] = float(weights[tap])
        inputs[coef_im] = 0.0
        inputs[in_re] = 0.0
        inputs[in_im] = 0.0
        scheduler.step(inputs)

    outputs = []
    for sample in list(samples) + [0.0]:
        inputs = {instr[p.name]: shift for p in slices}
        inputs[instr_sum] = do_sum
        inputs[coef_re] = 0.0
        inputs[coef_im] = 0.0
        inputs[in_re] = float(sample)
        inputs[in_im] = 0.0
        scheduler.step(inputs)
        outputs.append(float(summed.port("y_re").sig.current))
    # The SUM register adds one cycle: output n reflects sample n-1.
    return outputs[1:]


def lint_targets():
    """Design objects for ``tools/lint.py``: the central-control system."""
    clk = Clock("local")
    slices = [build_fir_slice(i, n, clk)
              for i, n in enumerate(F.TAPS_PER_SLICE)]
    summed = build_sum(clk)
    system = System("central")
    for process in slices + [summed]:
        system.add(process)
    for p in slices:
        system.connect(None, p.port("instr"), name=f"i_{p.name}")
    system.connect(None, summed.port("instr"), name="i_sum")
    system.connect(None, slices[0].port("in_re"), name="in_re")
    system.connect(None, slices[0].port("in_im"), name="in_im")
    system.connect(None, *(s.port("coef_re") for s in slices), name="cre")
    system.connect(None, *(s.port("coef_im") for s in slices), name="cim")
    for i in range(3):
        system.connect(slices[i].port("cas_re"), slices[i + 1].port("in_re"))
        system.connect(slices[i].port("cas_im"), slices[i + 1].port("in_im"))
    for i in range(4):
        system.connect(slices[i].port("p_re"), summed.port(f"p_re{i}"))
        system.connect(slices[i].port("p_im"), summed.port(f"p_im{i}"))
    system.connect(summed.port("y_re"), name="y_re")
    system.connect(summed.port("y_im"), name="y_im")
    return [system]


def main():
    weights = taps()
    rng = np.random.default_rng(8)
    samples = (rng.normal(size=24) * 0.5).round(3).tolist()
    golden = reference(samples, weights)

    print("== architecture 1: data-driven (untimed actors) ==")
    dataflow_out = dataflow_architecture(samples, weights)
    err = max(abs(a - b) for a, b in zip(dataflow_out, golden))
    print(f"  {len(dataflow_out)} outputs, max error vs algorithm: {err:.2e}")

    print("\n== architecture 2: central control (same datapaths, "
          "reworked control) ==")
    central_out = central_control_architecture(samples, weights)
    err = max(abs(a - b) for a, b in zip(central_out, golden[:len(central_out)]))
    print(f"  {len(central_out)} outputs, max error vs algorithm: {err:.2e}"
          f"  (fixed-point quantization)")

    print("\nThe FIR datapath descriptions are byte-for-byte the ones inside")
    print("repro.designs.dect — only the control differs, which is the")
    print("paper's section 3.3 claim.")


if __name__ == "__main__":
    main()
