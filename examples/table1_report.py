#!/usr/bin/env python
"""Regenerate the paper's Table 1 on this machine.

Measures source-code size, simulation speed (cycles/sec) and process
size for the HCOR and DECT designs across the four simulation back-ends
(interpreted objects, compiled code, event-driven RT, gate netlist) and
prints the table side by side with the paper's 1998 numbers.

Run:  python examples/table1_report.py           (full, ~1 minute)
      python examples/table1_report.py --quick   (HCOR only)
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "benchmarks"))

from common import format_table1, table1_rows  # noqa: E402


def lint_targets():
    """Design objects for ``tools/lint.py``: the benchmarked HCOR system."""
    from repro.designs.hcor import build_hcor

    return [build_hcor().system]


def main():
    quick = "--quick" in sys.argv
    rows = table1_rows(include_dect=not quick, include_netlist=True)
    print("Table 1 (regenerated) — this machine vs the paper (DAC'98):")
    print(format_table1(rows))
    print()
    print("Expected shape (and what the paper showed):")
    print("  * compiled code is the fastest simulation of a design;")
    print("  * interpreted objects beat event-driven RT (HDL) semantics;")
    print("  * gate-netlist simulation is orders of magnitude slower;")
    print("  * the captured Python is several times more compact than")
    print("    its generated RT HDL.")


if __name__ == "__main__":
    main()
