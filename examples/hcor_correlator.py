#!/usr/bin/env python
"""The HCOR header correlator processor (Table 1's 6 Kgate design).

A bursty soft-symbol stream with three DECT bursts is pushed through the
bit-true HCOR design; detections are compared against the algorithmic
reference model, the design is synthesized to gates (the paper's Fig. 8
flow) and the netlist is verified against the captured stimuli.

Run:  python examples/hcor_correlator.py
"""

import numpy as np

from repro.designs.hcor import build_hcor, run_hcor
from repro.dsp import build_burst, detect_all, modulate, demodulate, nrz, random_payloads
from repro.sim import CycleScheduler, PortLog
from repro.synth import component_report, synthesize_process, verify_component


def lint_targets():
    """Design objects for ``tools/lint.py``."""
    return [build_hcor().system]


def main():
    rng = np.random.default_rng(7)

    print("== building a three-burst stream ==")
    stream = []
    true_positions = []
    for index in range(3):
        stream.extend(rng.normal(scale=0.15, size=60).tolist())
        a, b = random_payloads(rng)
        burst = build_burst(a, b)
        true_positions.append(len(stream) + 32)
        samples = modulate(burst.bits, 8)
        soft, _ = demodulate(samples, len(burst.bits), 8)
        stream.extend(soft.tolist())
    print(f"  {len(stream)} symbols, payload starts at {true_positions}")

    print("\n== reference model detections ==")
    hits = detect_all(stream)
    print(f"  {[h.position for h in hits]}")

    print("\n== HCOR hardware detections ==")
    design = build_hcor()
    hardware_hits = run_hcor(design, stream + [0.0] * 4)
    print(f"  {hardware_hits}")
    print(f"  matches reference: "
          f"{hardware_hits == [h.position for h in hits]}")
    print(f"  matches truth    : {hardware_hits == true_positions}")

    print("\n== synthesis (paper: 6 Kgates) ==")
    design2 = build_hcor()
    log = PortLog(design2.process)
    scheduler = CycleScheduler(design2.system)
    scheduler.monitors.append(log)
    for value in stream[:300]:
        scheduler.step({design2.soft_in: value})
    synthesis = synthesize_process(design2.process)
    print("  " + component_report(synthesis).replace("\n", "\n  "))
    mismatches = verify_component(log, synthesis)
    print(f"  netlist vs 300 captured cycles: "
          f"{'VERIFIED' if not mismatches else mismatches[:3]}")


if __name__ == "__main__":
    main()
