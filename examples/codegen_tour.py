#!/usr/bin/env python
"""A tour of every code generator fed by one captured design (Fig. 7/8).

One design capture — a quadrature mixer/accumulator — is pushed through
every back-end of the environment:

* the compiled-code Python simulator (and its generated source),
* the VHDL generator (controller + datapath, two-process style),
* the Verilog generator,
* the generated self-checking VHDL testbench from captured stimuli,
* synthesis to a gate netlist, with the area report.

Run:  python examples/codegen_tour.py
"""

from repro.core import SFG, Clock, Register, Sig, System, TimedProcess, mux, gt
from repro.fixpt import FxFormat
from repro.hdl import generate_verilog, generate_vhdl, vhdl_testbench, vector_file
from repro.sim import CompiledSimulator, CycleScheduler, PortLog
from repro.synth import component_report, synthesize_process, verify_component

S = FxFormat(10, 2)
A = FxFormat(14, 4)


def build():
    clk = Clock()
    i_in = Sig("i_in", S)
    q_in = Sig("q_in", S)
    power = Sig("power", A)
    peak = Register("peak", clk, A)
    acc = Register("acc", clk, A)
    sfg = SFG("mixer")
    with sfg:
        power <<= i_in * i_in + q_in * q_in
        acc <<= acc + (power >> 2)
        peak <<= mux(gt(power, peak), power, peak)
    sfg.inp(i_in, q_in).out(power)
    process = TimedProcess("mixer", clk, sfgs=[sfg])
    process.add_input("i", i_in)
    process.add_input("q", q_in)
    process.add_output("power", power)
    process.add_output("peak", peak)
    system = System("tour")
    system.add(process)
    i_pin = system.connect(None, process.port("i"), name="i")
    q_pin = system.connect(None, process.port("q"), name="q")
    system.connect(process.port("power"), name="power")
    system.connect(process.port("peak"), name="peak")
    return system, i_pin, q_pin


def lint_targets():
    """Design objects for ``tools/lint.py``."""
    return [build()[0]]


def show(title, text, lines=14):
    print(f"\n== {title} ==")
    for line in text.splitlines()[:lines]:
        print("  |", line)
    total = len(text.splitlines())
    if total > lines:
        print(f"  | ... ({total - lines} more lines)")


def main():
    system, i_pin, q_pin = build()
    stimulus = [(0.5 * k % 3 - 1, 0.25 * k % 2 - 0.5) for k in range(12)]

    log = PortLog(system["mixer"])
    scheduler = CycleScheduler(system)
    scheduler.monitors.append(log)
    for i_val, q_val in stimulus:
        scheduler.step({i_pin: i_val, q_pin: q_val})

    compiled = CompiledSimulator(system)
    show("generated compiled-code simulator (Python)", compiled.source)

    vhdl = generate_vhdl(system)
    show("generated VHDL (mixer.vhd)", vhdl["mixer.vhd"], 18)

    verilog = generate_verilog(system)
    show("generated Verilog (mixer.v)", verilog["mixer.v"], 14)

    testbench = vhdl_testbench(log)
    show("generated self-checking testbench", testbench, 16)

    show("captured vector file", vector_file(log), 8)

    print("\n== synthesis ==")
    synthesis = synthesize_process(system["mixer"])
    print("  " + component_report(synthesis).replace("\n", "\n  "))
    mismatches = verify_component(log, synthesis)
    print(f"  netlist vs captured stimuli: "
          f"{'VERIFIED' if not mismatches else mismatches[:2]}")


if __name__ == "__main__":
    main()
