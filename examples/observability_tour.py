#!/usr/bin/env python
"""Profile a design with the unified instrumentation layer.

One :class:`repro.obs.Capture` rides along with a full DECT burst decode
and collects, from a single run:

* per-register toggle counts (the switching-activity / power proxy),
* FSM state occupancy, transition fires and coverage,
* engine self-profiling (wall time per scheduled SFG),
* a structured JSONL event trace (FSM transitions, cycle markers),
* a VCD waveform via the regular tracer,

then saves everything to a capture directory and renders the same
report ``python -m repro.obs <dir>`` would print.

Part two runs a *sharded* fault campaign with a capture directory: the
runner traces compile/simulate/merge spans, worker shards continue the
parent's trace across process boundaries, per-shard telemetry
fragments merge deterministically, and the journal doubles as a live
progress stream (``python -m repro.obs tail <dir>`` while it runs).

Run:  python examples/observability_tour.py [capture_dir]
"""

import sys
import tempfile

import numpy as np

from repro.designs.dect import DectTransceiver
from repro.dsp import (
    ComplexLmsEqualizer,
    build_burst,
    modulate,
    random_payloads,
)
from repro.obs import Capture, load_capture, render_text
from repro.sim import Tracer


def main():
    rng = np.random.default_rng(7)

    # -- a clean burst and trained coefficients --------------------------------
    a_payload, b_payload = random_payloads(rng)
    burst = build_burst(a_payload, b_payload)
    samples = modulate(burst.bits, 8)
    equalizer = ComplexLmsEqualizer()
    equalizer.train(samples, burst.bits[:32])

    # -- one instrumented run ---------------------------------------------------
    capture = Capture(profile=True, cycle_markers=500)
    transceiver = DectTransceiver(obs=capture)
    chip = transceiver.chip

    # A waveform tracer rides on the same capture: trace the PC
    # controller's registers into the saved VCD.
    from repro.obs import register_watchlist

    tracer = Tracer()
    for hier, reg in register_watchlist(chip.system):
        if hier.startswith("pcctrl/"):
            tracer.watch(reg)
    transceiver.scheduler.monitors.append(tracer)
    capture.attach_vcd(tracer)

    holds = list(range(400, 430))  # exercise the Fig. 2 hold behaviour
    result = transceiver.run_burst(
        list(samples[::4]),
        transceiver.chip_coefficients(equalizer.weights),
        max_cycles=4200, hold_cycles=holds,
    )
    print(f"decoded {result['cycles']} cycles: sync={result['sync_found']} "
          f"crc_ok={result['crc_ok']}")

    # -- save and report --------------------------------------------------------
    directory = sys.argv[1] if len(sys.argv) > 1 \
        else tempfile.mkdtemp(prefix="dect_capture_")
    capture.save(directory)
    print(f"capture saved to {directory} "
          "(metrics.json, events.jsonl, trace.vcd)")
    print(f"render it any time with:  python -m repro.obs {directory}\n")

    print(render_text(load_capture(directory), top=8))

    # -- part two: a traced sharded campaign -------------------------------------
    run_traced_campaign()


def run_traced_campaign():
    """A sharded fault campaign with cross-process tracing and telemetry."""
    from repro.runner import ArtifactCache, CampaignJob, ShardedRunner

    cache_dir = tempfile.mkdtemp(prefix="and2_cache_")
    capture_dir = tempfile.mkdtemp(prefix="and2_campaign_")
    job = CampaignJob(design="and2", cycles=6, seed=7, lanes=4)
    print("\nsharded fault campaign (and2, 2 workers), traced and captured")
    print(f"follow it live with:  python -m repro.obs tail {capture_dir}")
    outcome = ShardedRunner(job, workers=2, shard_size=1,
                            cache=ArtifactCache(cache_dir),
                            capture_dir=capture_dir).run()
    print(outcome.report.report())

    # The capture directory now holds the merged campaign telemetry
    # (byte-identical whatever the worker count), the lifecycle events,
    # the span tree and the journal — one report renders them all.
    print(f"campaign capture saved to {capture_dir} "
          "(metrics.json, events.jsonl, spans.jsonl, journal.jsonl)")
    print(render_text(load_capture(capture_dir), top=4))


if __name__ == "__main__":
    main()
