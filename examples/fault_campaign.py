#!/usr/bin/env python
"""Fault-injection campaign and divergence localization on HCOR.

The HCOR correlator is synthesized to gates (the paper's Fig. 8 flow),
then stressed three ways:

* a stuck-at fault campaign with structural collapsing reports how much
  of the fault universe a short random stimulus detects;
* a watchdog budget shows a campaign returning *partial* coverage
  instead of wedging;
* a deliberately sabotaged netlist runs in lockstep against the golden
  interpreted model and the first divergent cycle and signal are
  localized by binary search.

Run:  PYTHONPATH=src python examples/fault_campaign.py
"""

import random

from repro.designs.hcor import SOFT_FMT, build_hcor
from repro.fixpt import Fx
from repro.synth import synthesize_process
from repro.verify import (
    CycleAdapter,
    FaultCampaign,
    GateAdapter,
    Lockstep,
    Watchdog,
    collapse_faults,
    enumerate_faults,
    random_stimulus,
)


def lint_targets():
    """Design objects for ``tools/lint.py``."""
    return [build_hcor().system]


def main():
    print("== synthesizing HCOR ==")
    synthesis = synthesize_process(build_hcor().process)
    netlist = synthesis.netlist
    print(f"  {netlist.gate_count()} gates, "
          f"inputs {list(netlist.inputs)}, outputs {list(netlist.outputs)}")

    print("\n== structural fault collapsing ==")
    collapsed = collapse_faults(netlist)
    print(f"  {collapsed.total} stuck-at faults -> "
          f"{collapsed.collapsed} equivalence classes "
          f"(ratio {collapsed.ratio:.2f})")

    print("\n== fault campaign (sampled universe) ==")
    rng = random.Random(0)
    sample = rng.sample(enumerate_faults(netlist), 300)
    stimuli = random_stimulus(netlist, 12, seed=7)
    report = FaultCampaign(netlist, stimuli, faults=sample,
                           watchdog=Watchdog(max_seconds=60)).run()
    print(report.report(netlist))

    print("\n== watchdog: a 40-fault budget returns partial coverage ==")
    partial = FaultCampaign(netlist, stimuli, faults=sample,
                            watchdog=Watchdog(max_cycles=40)).run()
    print(f"  complete={partial.complete}, simulated "
          f"{len(partial.results)}, skipped {partial.skipped}")

    print("\n== lockstep: golden model vs sabotaged netlist ==")
    target = next(r for r in report.results if r.detected)
    fault = target.fault
    print(f"  injecting {fault.describe(netlist)}")

    def golden():
        return CycleAdapter(build_hcor().system)

    def sabotaged():
        adapter = GateAdapter.from_synthesis(synthesis, name="faulty-netlist")
        adapter.sim.force(fault.net, fault.value)
        return adapter

    soft_rng = random.Random(3)
    soft = [{"soft": Fx(soft_rng.uniform(-1.5, 1.5), SOFT_FMT)}
            for _ in range(len(stimuli))]
    divergence = Lockstep(golden, sabotaged, soft).run(compare_every=4)
    if divergence is None:
        print("  engines agree under this stimulus "
              "(the fault needs different traffic to be excited)")
    else:
        print(f"  {divergence}")

    print("\n== lockstep: golden model vs clean netlist ==")
    def clean():
        return GateAdapter.from_synthesis(synthesis)

    assert Lockstep(golden, clean, soft).run() is None
    print("  engines agree on every cycle")


if __name__ == "__main__":
    main()
