#!/usr/bin/env python
"""Quickstart: capture, simulate, generate and synthesize a small design.

This walks the full flow of the paper on a toy component — a loadable
accumulator with an execute/hold controller (the Fig. 2 pattern in
miniature):

1. describe hardware by *executing Python* (signals, SFGs, a Mealy FSM);
2. simulate with the interpreted cycle scheduler;
3. regenerate the design as compiled code and as an event-driven (HDL
   semantics) model and show the speed difference;
4. generate synthesizable VHDL;
5. synthesize to gates and verify the netlist against the simulation.

Run:  python examples/quickstart.py
"""

import time

from repro.core import (
    FSM,
    SFG,
    Clock,
    Register,
    Sig,
    System,
    TimedProcess,
    check_system,
    cnd,
)
from repro.fixpt import FxFormat
from repro.hdl import generate_vhdl, line_count
from repro.sim import CompiledSimulator, CycleScheduler, EventSimulator, PortLog
from repro.synth import component_report, synthesize_process, verify_component

WORD = FxFormat(16, 16)
BIT = FxFormat(1, 1, signed=False)


def build_design():
    """An accumulator that adds its input each cycle unless held."""
    clk = Clock()
    x = Sig("x", WORD)
    hold_pin = Sig("hold_pin", BIT)
    hold_req = Register("hold_req", clk, BIT)
    acc = Register("acc", clk, WORD)

    sample = SFG("sample")
    with sample:
        hold_req <<= hold_pin
    sample.inp(hold_pin)

    accumulate = SFG("accumulate")
    with accumulate:
        acc <<= acc + x
    accumulate.inp(x)

    freeze = SFG("freeze")
    with freeze:
        acc <<= acc

    fsm = FSM("ctl")
    execute = fsm.initial("execute")
    hold = fsm.state("hold")
    execute << ~cnd(hold_req) << accumulate << execute
    execute << cnd(hold_req) << freeze << hold
    hold << cnd(hold_req) << freeze << hold
    hold << ~cnd(hold_req) << accumulate << execute

    process = TimedProcess("acc_unit", clk, fsm=fsm, sfgs=[sample])
    process.add_input("x", x)
    process.add_input("hold", hold_pin)
    process.add_output("acc", acc)

    system = System("quickstart")
    system.add(process)
    x_pin = system.connect(None, process.port("x"), name="x")
    h_pin = system.connect(None, process.port("hold"), name="hold")
    system.connect(process.port("acc"), name="acc")
    return system, x_pin, h_pin, acc


def lint_targets():
    """Design objects for ``tools/lint.py`` (see README: lint your design)."""
    return [build_design()[0]]


def main():
    system, x_pin, h_pin, acc = build_design()

    print("== semantic checks ==")
    for issue in check_system(system):
        print(" ", issue)
    print("  (clean)" if not check_system(system) else "")

    print("\n== interpreted simulation (cycle scheduler) ==")
    scheduler = CycleScheduler(system)
    log = PortLog(system["acc_unit"])
    scheduler.monitors.append(log)
    stimulus = [(i, 1 if 4 <= i < 7 else 0) for i in range(12)]
    for value, hold in stimulus:
        scheduler.step({x_pin: value, h_pin: hold})
        print(f"  cycle {scheduler.cycle - 1}: x={value} hold={hold} "
              f"acc={int(acc.current)}")

    print("\n== compiled-code simulation (paper Fig. 7) ==")
    system2, *_ = build_design()
    compiled = CompiledSimulator(system2)
    for value, hold in stimulus:
        compiled.step({"x": value, "hold": hold})
    print(f"  compiled acc = {int(compiled.snapshot()['acc'])} "
          f"(matches interpreted: "
          f"{int(compiled.snapshot()['acc']) == int(acc.current)})")

    cycles = 20000
    pins = {"x": 1, "hold": 0}
    system3, *_ = build_design()
    sim = CompiledSimulator(system3)
    start = time.perf_counter()
    for _ in range(cycles):
        sim.step(pins)
    compiled_rate = cycles / (time.perf_counter() - start)
    system4, x4, h4, _acc4 = build_design()
    scheduler4 = CycleScheduler(system4)
    inputs = {x4: 1, h4: 0}
    start = time.perf_counter()
    for _ in range(2000):
        scheduler4.step(inputs)
    interp_rate = 2000 / (time.perf_counter() - start)
    system5, *_ = build_design()
    event = EventSimulator(system5)
    start = time.perf_counter()
    for _ in range(2000):
        event.step(pins)
    event_rate = 2000 / (time.perf_counter() - start)
    print(f"  interpreted objects: {interp_rate:9.0f} cycles/s")
    print(f"  compiled code      : {compiled_rate:9.0f} cycles/s")
    print(f"  event-driven (HDL) : {event_rate:9.0f} cycles/s")

    print("\n== VHDL generation ==")
    files = generate_vhdl(system)
    print(f"  generated files: {sorted(files)}")
    print(f"  total VHDL lines: {line_count(files)}")
    print("  excerpt of acc_unit.vhd:")
    for line in files["acc_unit.vhd"].splitlines()[14:26]:
        print("   |", line)

    print("\n== synthesis (paper Fig. 8) ==")
    synthesis = synthesize_process(system["acc_unit"])
    print(component_report(synthesis).replace("\n", "\n  "))
    mismatches = verify_component(log, synthesis)
    print(f"  netlist vs simulation: "
          f"{'VERIFIED' if not mismatches else mismatches[:3]}")


if __name__ == "__main__":
    main()
