#!/usr/bin/env python
"""The paper's driver design end to end (Figures 1, 2, 5).

A DECT burst is modulated, distorted by a severe multipath radio link,
and fed to the captured transceiver ASIC: the 22-datapath VLIW machine
finds the S-field sync word, equalizes with its 15-tap complex FIR,
discriminates, slices, CRC-checks the A-field and hands the payload to
the wire-link driver — while a hold_request pulse in mid-burst exercises
the Fig. 2 freeze/resume behaviour.

Run:  python examples/dect_transceiver.py
"""

import time

import numpy as np

from repro.designs.dect import DATAPATH_TABLES, DectTransceiver
from repro.dsp import (
    ComplexLmsEqualizer,
    bit_error_rate,
    build_burst,
    demodulate,
    modulate,
    random_payloads,
    severe_channel,
)
from repro.obs import Capture


def lint_targets():
    """Design objects for ``tools/lint.py``: the full transceiver system."""
    from repro.designs.dect.transceiver import build_transceiver

    return [build_transceiver().system]


def main():
    rng = np.random.default_rng(2026)

    print("== the architecture (paper Fig. 5) ==")
    print(f"  22 datapaths, decoding between "
          f"{min(len(t) for _n, t in DATAPATH_TABLES)} and "
          f"{max(len(t) for _n, t in DATAPATH_TABLES)} instructions:")
    row = "  "
    for name, table in DATAPATH_TABLES:
        row += f"{name}({len(table)}) "
        if len(row) > 66:
            print(row)
            row = "  "
    if row.strip():
        print(row)

    print("\n== the radio link (paper Fig. 1) ==")
    a_payload, b_payload = random_payloads(rng)
    burst = build_burst(a_payload, b_payload)
    samples = modulate(burst.bits, 8)
    channel = severe_channel(8)
    rx = channel.apply(samples, rng, snr_db=18)
    _soft, raw_bits = demodulate(rx, len(burst.bits), 8)
    raw_ber = bit_error_rate(burst.bits, raw_bits, skip=32)
    print(f"  burst: {len(burst.bits)} bits; severe multipath at 18 dB SNR")
    print(f"  raw (unequalized) BER: {raw_ber:.3f} — the burst is lost")

    print("\n== host-side training (the 'Matlab level') ==")
    equalizer = ComplexLmsEqualizer()
    error = equalizer.train(rx, burst.bits[:32])
    print(f"  LMS converged on the 32-symbol S-field "
          f"(final |e|^2 = {error:.4f}); "
          f"{equalizer.multiplies_per_symbol()} multiplies/symbol "
          f"(the paper's 152)")

    print("\n== the chip decodes the burst ==")
    capture = Capture()  # instrumentation rides along with the run
    transceiver = DectTransceiver(obs=capture)
    coefficients = transceiver.chip_coefficients(equalizer.weights)
    holds = list(range(400, 430))  # a CTL hold_request pulse mid-burst
    start = time.perf_counter()
    result = transceiver.run_burst(list(rx[::4]), coefficients,
                                   max_cycles=4200, hold_cycles=holds)
    elapsed = time.perf_counter() - start
    a_errors = sum(1 for x, y in zip(result["a_bits"], burst.a_field)
                   if x != y)
    b_errors = sum(1 for x, y in zip(result["b_bits"][:320], burst.b_field)
                   if x != y)
    print(f"  cycles: {result['cycles']} "
          f"({result['cycles'] / elapsed:.0f} cycles/s interpreted)")
    print(f"  sync found : {result['sync_found']}")
    print(f"  A-field    : {a_errors} bit errors / 64   "
          f"(CRC {'OK' if result['crc_ok'] else 'FAIL'})")
    print(f"  B-field    : {b_errors} bit errors / 320")
    print(f"  hold pulse : {len(holds)} frozen cycles absorbed "
          f"(Fig. 2 behaviour)")

    print("\n== what the instrumentation saw (see observability_tour.py) ==")
    for stats in capture.activity.top(3):
        print(f"  busiest    : {stats.name:<18} {stats.toggles} bit toggles "
              f"({stats.toggle_rate:.2f}/cycle)")
    pc_fsm = capture.fsm.records()["pcctrl/pc_fsm"]
    occupancy = ", ".join(f"{s} {c}" for s, c in pc_fsm.occupancy.items())
    print(f"  pc_fsm     : {100 * pc_fsm.state_coverage():.0f}% states, "
          f"{100 * pc_fsm.transition_coverage():.0f}% transitions "
          f"({occupancy})")

    print("\n== the same burst on the compiled-code simulator (Fig. 7) ==")
    transceiver2 = DectTransceiver()
    start = time.perf_counter()
    result2 = transceiver2.run_burst_compiled(list(rx[::4]), coefficients,
                                              max_cycles=4200)
    elapsed2 = time.perf_counter() - start
    print(f"  cycles: {result2['cycles']} "
          f"({result2['cycles'] / elapsed2:.0f} cycles/s compiled)")
    print(f"  bit-exact vs interpreted: "
          f"{result2['a_bits'] == result['a_bits'] and result2['b_bits'] == result['b_bits']}")


if __name__ == "__main__":
    main()
