#!/usr/bin/env python
"""Lint tour: a deliberately broken design and what the linter says.

Every construct below violates one rule of :mod:`repro.lint`, and each
offending line carries a ``# LINT: <code>`` marker — the test suite
checks that the reported ``file:line`` lands exactly on the marked
construction.  Because the design is *meant* to be broken, this module's
``lint_targets()`` returns nothing (so CI linting skips it); running it
prints the diagnostics (with their source locations) and then shows how
the static overflow proof is confirmed dynamically by
:func:`repro.verify.find_overflow_witness`.

Run:  python examples/lint_tour.py
"""

from repro.core import (
    FSM,
    SFG,
    Clock,
    Register,
    Sig,
    System,
    TimedProcess,
    actor,
    always,
    cast,
    cnd,
)
from repro.fixpt import FxFormat, Overflow

U4 = FxFormat(4, 4, signed=False)
S8E = FxFormat(8, 8, overflow=Overflow.ERROR)
S6 = FxFormat(6, 2)
BIT = FxFormat(1, 1, signed=False)


def build_bad_design():
    """One system, many sins.  Keep the LINT markers on their lines."""
    clk = Clock("clk")
    other_clk = Clock("other")

    x = Sig("x", U4)
    unused = Sig("unused", U4)                 # LINT: L101
    ghost = Sig("ghost", U4)
    y = Sig("y", S8E)
    narrow = Sig("narrow", S6)
    dead = Sig("dead", S6)
    go = Register("go", clk, BIT)
    mode = Register("mode", clk, BIT)
    acc = Register("acc", clk, U4)
    foreign = Register("foreign", other_clk, U4)   # LINT: L304

    datapath = SFG("datapath")
    with datapath:
        y <<= cast(x * x + 300, S8E)           # LINT: L401
        narrow <<= cast(ghost + 64, S6)        # LINT: L103
        dead <<= narrow + 1                    # LINT: L105
        acc <<= acc + x
        foreign <<= foreign + 1
    datapath.inp(x, unused)
    datapath.out(y)

    idle = SFG("idle")
    with idle:
        acc <<= acc

    orphan = SFG("orphan")                     # LINT: L305
    with orphan:
        acc <<= acc + 1

    ctl = FSM("ctl")
    run = ctl.initial("run")
    wait = ctl.state("wait")                   # LINT: L207
    island = ctl.state("island")               # LINT: L202
    run << cnd(go) << datapath << wait
    run << ~cnd(go) << idle << run
    run << cnd(mode) << idle << run            # LINT: L206
    wait << cnd(go) << datapath << run
    island << always << idle << run
    island << cnd(go) << idle << run           # LINT: L204

    process = TimedProcess("engine", clk, fsm=ctl)
    process.add_input("x", x)
    process.add_output("y", y)

    sink = actor("sink", lambda value: {},     # LINT: L306
                 inputs={"sample": 1}, outputs={})

    system = System("lint_tour")
    system.add(process)
    system.add(sink)
    system.connect(None, process.port("x"), name="x")
    system.connect(process.port("y"), sink.port("sample"))
    # The orphan SFG is returned so it stays alive: the unreferenced-SFG
    # rule inspects live SFGs (module-level ones, in real designs).
    return system, datapath, orphan


def lint_targets():
    """Opt out of CI linting: this design is broken on purpose."""
    return []


def main():
    from repro.lint import Linter
    from repro.verify import find_overflow_witness

    system, datapath, _orphan = build_bad_design()

    print("== what the linter sees ==")
    diagnostics = Linter().lint_system(system)
    for diagnostic in diagnostics:
        print(" ", diagnostic.format())
    errors = sum(1 for d in diagnostics if d.severity == "error")
    print(f"  -> {len(diagnostics)} diagnostics, {errors} errors")

    print("\n== the overflow proof, confirmed dynamically ==")
    witness = find_overflow_witness(datapath)
    print("  interval analysis proved the quantize at the L401 marker "
          "overflows for every input;")
    print(f"  random search concurs: {witness.describe()}")


if __name__ == "__main__":
    main()
