#!/usr/bin/env python
"""Wordlength tour: shrink over-allocated datapaths with bit analysis.

The paper's designers pick fixed-point formats by hand and iterate; the
bit-level analyzer (:mod:`repro.lint.bits`) closes that loop statically.
This tour builds a small channel-metric datapath with deliberately lazy
16-bit formats everywhere and walks the analysis stack over it:

1. ``wordlength_report`` — per-signal minimal ``(wl, iwl)`` advice from
   the known-bits x interval reduced product plus bit-liveness;
2. the ``L5xx`` lint rules that surface the same facts as diagnostics
   (``python tools/lint.py --select L5 examples/wordlength_tour.py``);
3. the ``narrow`` pass pipeline, every rewrite translation-validated
   exhaustively against the original block;
4. the gate-level payoff: synthesis with ``aggressive`` vs ``narrow``;
5. publishing the report to an observability metrics registry, rendered
   by the standard report.

Run:  python examples/wordlength_tour.py
"""

from repro.core import SFG, Clock, Register, Sig, TimedProcess, mux, gt
from repro.fixpt import FxFormat
from repro.ir import PIPELINES, PassManager, lower_sfg
from repro.lint.bits import wordlength_report
from repro.obs import MetricsRegistry
from repro.obs.report import render_text
from repro.synth.flow import synthesize_process

#: The lazy format: everything is 16 bits, like a first-draft design.
LAZY = FxFormat(16, 16)
SAMPLE = FxFormat(4, 4, signed=False)


def build_design():
    """A received-signal-strength tracker with over-allocated widths.

    A 4-bit unsigned sample is doubled, offset, and accumulated into a
    peak-hold register — every intermediate declared as a full 16-bit
    word even though the analysis can bound all of them to a few bits.
    """
    clk = Clock("wl_tour")
    sample = Sig("sample", SAMPLE)
    scaled = Sig("scaled", LAZY)
    offset = Sig("offset", LAZY)
    peak = Register("peak", clk, LAZY)

    track = SFG("track")
    with track:
        scaled <<= sample * 2          # [0, 30]: bit 0 provably zero
        offset <<= scaled + 3          # [3, 33]: 6 bits suffice, not 16
        peak <<= mux(gt(offset, peak), offset, peak)
    track.inp(sample).out(offset)

    process = TimedProcess("rssi", clk, sfgs=[track])
    process.add_input("sample", sample)
    process.add_output("peak", peak)
    return process


def lint_targets():
    """Design objects for ``tools/lint.py`` (see README: lint your design)."""
    return [build_design()]


def main():
    process = build_design()

    print("== wordlength report (known-bits x intervals + liveness) ==")
    report = wordlength_report(process)
    print("  " + wordlength_report(process).format_text()
          .replace("\n", "\n  "))

    print("\n== the narrow pipeline, translation-validated ==")
    manager = PassManager("narrow", validate="exhaustive")
    for sfg in process.all_sfgs():
        before = lower_sfg(sfg)
        after = manager.run(before)
        widths = (sum(op.width for op in before.ops),
                  sum(op.width for op in after.ops))
        print(f"  SFG '{sfg.name}': {len(before.ops)} ops / {widths[0]} "
              f"width bits  ->  {len(after.ops)} ops / {widths[1]} bits")
    stats = manager.stats["narrow_bitwidth"]
    print(f"  narrow_bitwidth: {stats['runs']} runs, "
          f"{stats['changed']} changed, {stats['validated']} rewrites "
          f"validated")
    print("  pipelines available:", ", ".join(sorted(PIPELINES)))

    print("\n== gate-level payoff ==")
    aggressive = synthesize_process(
        build_design(), passes="aggressive").gate_count
    narrow = synthesize_process(
        build_design(), passes="narrow", validate="exhaustive").gate_count
    saved = 100.0 * (aggressive - narrow) / aggressive if aggressive else 0.0
    print(f"  aggressive pipeline: {aggressive} gates")
    print(f"  narrow pipeline    : {narrow} gates  ({saved:+.1f}%)")

    print("\n== published to the observability report ==")
    registry = MetricsRegistry()
    report.publish(registry)
    text = render_text({"metrics": registry.as_dict()})
    print("  " + text.replace("\n", "\n  "))


if __name__ == "__main__":
    main()
