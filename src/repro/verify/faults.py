"""Fault models and structural fault collapsing on gate-level netlists.

Two saboteur models operate on :class:`~repro.synth.netlist.Netlist`
nets, matching the hooks in :class:`~repro.synth.gatesim.GateSimulator`:

* :class:`StuckAtFault` — a net permanently held at 0 or 1 (the classic
  manufacturing-test model);
* :class:`TransientFault` — a net's settled value inverted during exactly
  one clock cycle (a single-event upset / soft error).

Structural fault collapsing shrinks the stuck-at list using the standard
gate-local equivalences (an AND input stuck at 0 is indistinguishable
from its output stuck at 0, an inverter maps SA0 to SA1, ...), applied
only where the input net is fanout-free — the condition under which a
net fault equals a line fault.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..synth.gates import GateKind
from ..synth.netlist import Net, Netlist


@dataclass(frozen=True, order=True)
class StuckAtFault:
    """Net *net* permanently stuck at *value* (0 or 1)."""

    net: Net
    value: int

    def describe(self, netlist: Optional[Netlist] = None) -> str:
        label = netlist.net_label(self.net) if netlist else f"n{self.net}"
        return f"{label} stuck-at-{self.value}"


@dataclass(frozen=True, order=True)
class TransientFault:
    """Net *net*'s value inverted during clock cycle *cycle* only."""

    net: Net
    cycle: int

    def describe(self, netlist: Optional[Netlist] = None) -> str:
        label = netlist.net_label(self.net) if netlist else f"n{self.net}"
        return f"{label} bit-flip @ cycle {self.cycle}"


def enumerate_faults(netlist: Netlist) -> List[StuckAtFault]:
    """The uncollapsed stuck-at fault universe of *netlist*.

    One SA0 and one SA1 fault per observable net (a net read by some gate
    or exported as a primary output), minus the trivially-redundant
    faults on constant nets (const-0 stuck at 0 changes nothing).
    """
    observable = set(netlist.fanout())
    for nets in netlist.outputs.values():
        observable.update(nets)
    faults: List[StuckAtFault] = []
    for net in sorted(observable):
        driver = netlist.driver(net)
        for value in (0, 1):
            if driver is not None:
                if driver.kind is GateKind.CONST0 and value == 0:
                    continue
                if driver.kind is GateKind.CONST1 and value == 1:
                    continue
            faults.append(StuckAtFault(net, value))
    return faults


#: Per-gate-kind equivalence rules: (input SA value -> output SA value).
#: An input fault collapses into the output fault when the input net's
#: entire fanout is this one gate (net fault == line fault).
_EQUIVALENCE: Dict[GateKind, Dict[int, int]] = {
    GateKind.BUF: {0: 0, 1: 1},
    GateKind.INV: {0: 1, 1: 0},
    GateKind.AND2: {0: 0},
    GateKind.NAND2: {0: 1},
    GateKind.OR2: {1: 1},
    GateKind.NOR2: {1: 0},
}


@dataclass
class CollapseResult:
    """Outcome of structural fault collapsing.

    ``classes`` maps each representative fault to all members of its
    equivalence class (the representative included).  Detecting the
    representative detects every member.
    """

    netlist: Netlist
    total: int
    classes: Dict[StuckAtFault, List[StuckAtFault]]

    @property
    def representatives(self) -> List[StuckAtFault]:
        return list(self.classes)

    @property
    def collapsed(self) -> int:
        return len(self.classes)

    @property
    def ratio(self) -> float:
        """Collapsed / total — below 1.0 when collapsing helped."""
        return self.collapsed / self.total if self.total else 1.0

    def __repr__(self) -> str:
        return (f"CollapseResult({self.netlist.name!r}, "
                f"{self.total} -> {self.collapsed} faults)")


def collapse_faults(netlist: Netlist,
                    faults: Optional[Sequence[StuckAtFault]] = None
                    ) -> CollapseResult:
    """Structurally collapse *faults* (default: the full universe).

    Union-find over ``(net, value)`` pairs using the gate-local
    equivalence rules; each class's representative is the fault nearest
    the outputs (the union is always directed input -> output, so the
    root of every chain sits furthest downstream).
    """
    if faults is None:
        faults = enumerate_faults(netlist)
    universe = set(faults)
    fanout = netlist.fanout()
    primary_outputs = set()
    for nets in netlist.outputs.values():
        primary_outputs.update(nets)

    parent: Dict[StuckAtFault, StuckAtFault] = {f: f for f in universe}

    def find(fault: StuckAtFault) -> StuckAtFault:
        root = fault
        while parent[root] is not root:
            root = parent[root]
        while parent[fault] is not root:
            parent[fault], fault = root, parent[fault]
        return root

    for gate in netlist.gates:
        rules = _EQUIVALENCE.get(gate.kind)
        if rules is None:
            continue
        for net in gate.inputs:
            # The equivalence needs the input fault's entire effect to
            # flow through this gate: single-gate fanout, not observed
            # directly as a primary output.
            if net in primary_outputs or len(fanout.get(net, ())) != 1:
                continue
            for in_value, out_value in rules.items():
                source = StuckAtFault(net, in_value)
                target = StuckAtFault(gate.output, out_value)
                if source in universe and target in universe:
                    parent[find(source)] = find(target)

    classes: Dict[StuckAtFault, List[StuckAtFault]] = {}
    for fault in sorted(universe):
        classes.setdefault(find(fault), []).append(fault)
    return CollapseResult(netlist=netlist, total=len(universe),
                          classes=classes)


def arm(simulator, fault) -> None:
    """Arm a permanent fault on a gate simulator (no-op for transients;
    the campaign runner arms those on the right cycle)."""
    if isinstance(fault, StuckAtFault):
        simulator.force(fault.net, fault.value)


def disarm(simulator, faults: Iterable = ()) -> None:
    """Remove every injected fault from *simulator*."""
    simulator.release()
