"""Dynamic confirmation of overflow findings: concrete witness search.

The lint interval analysis (:mod:`repro.lint.interval`) *proves* range
facts; this module closes the loop dynamically — it hunts for a concrete
input valuation under which an SFG's quantize step actually overflows,
by running the lowered IR through the reference interpreter on random
leaf values drawn from each signal's format range.  A returned
:class:`OverflowWitness` is an executable counterexample: feeding those
leaf values into any simulation back-end reproduces the overflow (an
``FxOverflowError`` for ``Overflow.ERROR`` formats, silent clipping or
wraparound otherwise).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.errors import FxOverflowError
from ..core.sfg import SFG
from ..fixpt import Fx, FxFormat, Rounding
from ..ir.lower import lower_sfg
from ..ir.ops import execute


@dataclass(frozen=True)
class OverflowWitness:
    """A concrete leaf valuation that overflows one quantize step."""

    #: Leaf signal -> raw integer value driven in this trial.
    inputs: Dict[object, int]
    #: Value id of the overflowing quantize op in the lowered block.
    vid: int
    fmt: FxFormat
    #: The pre-policy value at the target binary point (outside the
    #: format's raw range), None when the interpreter raised before the
    #: value could be formed.
    value: Optional[int]

    def describe(self) -> str:
        assigns = ", ".join(
            f"{sig.name}={float(Fx(fmt=sig.fmt, raw=raw)):g}"
            for sig, raw in sorted(self.inputs.items(),
                                   key=lambda kv: kv[0].name))
        where = ("execution raised FxOverflowError" if self.value is None
                 else f"value {self.value} escapes "
                      f"[{self.fmt.raw_min}, {self.fmt.raw_max}]")
        return f"with {assigns or 'no inputs'}: {where} at {self.fmt}"


def _shifted(raw: int, frac: int, fmt: FxFormat) -> int:
    """The pre-policy shift of :func:`repro.ir.ops.quantize_raw_at`."""
    shift = frac - fmt.frac_bits
    if shift < 0:
        return raw << -shift
    if shift == 0:
        return raw
    if fmt.rounding is Rounding.ROUND:
        return (raw + (1 << (shift - 1))) >> shift
    return raw >> shift


def find_overflow_witness(sfg: SFG, trials: int = 256,
                          seed: int = 0) -> Optional[OverflowWitness]:
    """Search for leaf values that overflow some quantize step of *sfg*.

    Every formatted leaf (inputs *and* registers) is driven with raw
    values drawn uniformly from its format range — the same reachable
    set the interval analysis assumes — so a static L401/L402 finding
    should be reproducible here (probabilistically, for L402).  Returns
    None when *trials* random valuations all stay in range.
    """
    block = lower_sfg(sfg)
    leaves = []
    seen = set()
    for op in block.ops:
        if op.opcode == "read" and id(op.attrs[0]) not in seen:
            seen.add(id(op.attrs[0]))
            leaves.append(op.attrs[0])
    if any(getattr(sig, "fmt", None) is None for sig in leaves):
        return None  # float-domain leaves: no bounded range to draw from
    rng = random.Random(seed)
    for _ in range(trials):
        raws = {sig: rng.randint(sig.fmt.raw_min, sig.fmt.raw_max)
                for sig in leaves}
        try:
            values = execute(block, lambda sig: raws[sig])
        except FxOverflowError:
            vid, fmt = _raising_quantize(block, raws)
            return OverflowWitness(raws, vid, fmt, None)
        for vid, op in enumerate(block.ops):
            if op.opcode != "quantize":
                continue
            src = block.ops[op.args[0]]
            if src.frac is None:
                continue
            fmt = op.attrs[0]
            value = _shifted(values[op.args[0]], src.frac, fmt)
            if not fmt.raw_min <= value <= fmt.raw_max:
                return OverflowWitness(raws, vid, fmt, value)
    return None


def _raising_quantize(block, raws):
    """Locate the quantize op that raises under *raws*.

    Re-executes growing prefixes of the block (value ids are list
    indices, so a prefix is self-contained); the first quantize whose
    prefix raises is the culprit.  Quadratic, but blocks are small and
    this only runs once per witness.
    """
    from ..ir.ops import IRBlock

    for vid, op in enumerate(block.ops):
        if op.opcode != "quantize":
            continue
        prefix = IRBlock(ops=list(block.ops[:vid + 1]))
        try:
            execute(prefix, lambda sig: raws[sig])
        except FxOverflowError:
            return vid, op.attrs[0]
    raise AssertionError("no quantize raised on re-run")
