"""Verification and robustness tooling for the design environment.

The paper's claim (sections 2, 5 and Table 1) is that one environment
carries a design from untimed model to gate netlist while keeping every
refinement step *checkable*.  This package supplies the machinery that
stresses those checks:

* :mod:`repro.verify.faults` — stuck-at and transient fault models on
  :class:`~repro.synth.netlist.Netlist` nets, with structural fault
  collapsing.
* :mod:`repro.verify.campaign` — a fault-injection campaign runner that
  replays a stimulus program against the golden
  :class:`~repro.synth.gatesim.GateSimulator` and reports fault coverage.
* :mod:`repro.verify.lockstep` — run two simulation engines in lockstep
  over the same stimuli and, on mismatch, localize the first divergent
  cycle and signal.
* :mod:`repro.verify.guard` — guard rails: a :class:`Watchdog` with cycle
  and wall-clock budgets that returns partial results instead of raising,
  plus deterministic checkpoint/restore of simulator state.
* :mod:`repro.verify.overflow` — dynamic confirmation of the lint
  interval analysis: random search for a concrete input valuation that
  overflows an SFG's quantize step.
"""

from .campaign import (
    CampaignReport,
    FaultCampaign,
    FaultResult,
    derive_seed,
    random_stimulus,
)
from .faults import (
    CollapseResult,
    StuckAtFault,
    TransientFault,
    collapse_faults,
    enumerate_faults,
)
from .guard import (
    Watchdog,
    WatchdogResult,
    checkpoint,
    restore,
    supports_checkpoint,
)
from .overflow import OverflowWitness, find_overflow_witness
from .lockstep import (
    BatchedCompiledAdapter,
    CompiledAdapter,
    CycleAdapter,
    Divergence,
    EngineAdapter,
    EventAdapter,
    GateAdapter,
    Lockstep,
    ReplicatedAdapter,
)

__all__ = [
    "BatchedCompiledAdapter",
    "CampaignReport",
    "CollapseResult",
    "CompiledAdapter",
    "ReplicatedAdapter",
    "CycleAdapter",
    "Divergence",
    "EngineAdapter",
    "EventAdapter",
    "FaultCampaign",
    "FaultResult",
    "GateAdapter",
    "Lockstep",
    "OverflowWitness",
    "StuckAtFault",
    "TransientFault",
    "Watchdog",
    "WatchdogResult",
    "checkpoint",
    "collapse_faults",
    "derive_seed",
    "enumerate_faults",
    "find_overflow_witness",
    "random_stimulus",
    "restore",
    "supports_checkpoint",
]
