"""Simulation guard rails: budgets and deterministic checkpoints.

Long verification runs (fault campaigns, overnight regressions) must not
wedge: the :class:`Watchdog` enforces cycle and wall-clock budgets and
*returns* what was computed instead of raising, and
:func:`checkpoint`/:func:`restore` expose the deterministic state
snapshot hooks every engine implements (``save_state``/``restore_state``
on :class:`~repro.synth.gatesim.GateSimulator`,
:class:`~repro.sim.cycle.CycleScheduler` and
:class:`~repro.sim.compiled.CompiledSimulator`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..core.errors import SimulationError


@dataclass
class WatchdogResult:
    """What a budgeted run actually achieved."""

    cycles: int
    seconds: float
    #: None when the run completed; ``"cycles"`` or ``"wall_clock"`` when
    #: the corresponding budget expired first.
    exhausted: Optional[str] = None

    @property
    def complete(self) -> bool:
        return self.exhausted is None


class Watchdog:
    """Cycle and wall-clock budgets with graceful partial results.

    Two usage styles:

    * :meth:`run` drives a per-cycle callable under budget and returns a
      :class:`WatchdogResult` — never an exception;
    * :meth:`start` / :meth:`expired` let a longer-lived loop (e.g. a
      fault campaign) poll the budget between work items.
    """

    def __init__(self, max_cycles: Optional[int] = None,
                 max_seconds: Optional[float] = None,
                 check_every: int = 1,
                 clock: Callable[[], float] = time.monotonic,
                 obs=None):
        if max_cycles is not None and max_cycles < 0:
            raise SimulationError("watchdog max_cycles must be >= 0")
        if max_seconds is not None and max_seconds < 0:
            raise SimulationError("watchdog max_seconds must be >= 0")
        self.max_cycles = max_cycles
        self.max_seconds = max_seconds
        self.check_every = max(1, check_every)
        self._clock = clock
        self._started: Optional[float] = None
        self._count = 0
        #: Optional :class:`repro.obs.Capture`: budget expiries become
        #: ``watchdog`` events on its stream (duck-typed, no obs import).
        self.obs = obs
        self._reported = False

    # -- polling interface --------------------------------------------------------

    def start(self) -> "Watchdog":
        """(Re)start the budgets; returns self for chaining."""
        self._started = self._clock()
        self._count = 0
        self._reported = False
        return self

    def elapsed(self) -> float:
        if self._started is None:
            return 0.0
        return self._clock() - self._started

    def remaining_cycles(self) -> Optional[int]:
        """Cycle budget left (None when unbounded, never negative)."""
        if self.max_cycles is None:
            return None
        return max(0, self.max_cycles - self._count)

    def remaining_seconds(self) -> Optional[float]:
        """Wall-clock budget left (None when unbounded, never negative).

        Before :meth:`start` the full budget remains — a watchdog that
        has not begun has spent nothing.
        """
        if self.max_seconds is None:
            return None
        if self._started is None:
            return self.max_seconds
        return max(0.0, self.max_seconds - self.elapsed())

    def child(self, max_cycles: Optional[int] = None,
              max_seconds: Optional[float] = None,
              check_every: Optional[int] = None,
              obs=None) -> "Watchdog":
        """A nested watchdog clamped to this one's *remaining* budget.

        A shard running under a campaign-level deadline gets its own
        watchdog without being able to overrun the parent: each of the
        child's budgets is the minimum of the requested budget and what
        the parent has left.  An unbounded parent passes requests
        through; an unbounded request inherits the parent's remainder.
        """
        def clamp(requested, remaining):
            if requested is None:
                return remaining
            if remaining is None:
                return requested
            return min(requested, remaining)

        return Watchdog(
            max_cycles=clamp(max_cycles, self.remaining_cycles()),
            max_seconds=clamp(max_seconds, self.remaining_seconds()),
            check_every=(self.check_every if check_every is None
                         else check_every),
            clock=self._clock,
            obs=self.obs if obs is None else obs,
        )

    def tick(self) -> None:
        """Account one unit of work against the cycle budget."""
        self._count += 1

    def expired(self) -> Optional[str]:
        """The budget that ran out (``"cycles"``/``"wall_clock"``) or None."""
        if self.max_cycles is not None and self._count >= self.max_cycles:
            self._emit_expiry("cycles")
            return "cycles"
        if self.max_seconds is not None and self.elapsed() >= self.max_seconds:
            self._emit_expiry("wall_clock")
            return "wall_clock"
        return None

    def _emit_expiry(self, budget: str) -> None:
        """Put one ``watchdog`` event on the capture's stream, once."""
        if self.obs is None or self._reported:
            return
        self._reported = True
        events = getattr(self.obs, "events", None)
        if events is not None:
            events.emit("watchdog", budget=budget, cycles=self._count,
                        seconds=self.elapsed())

    # -- driving interface --------------------------------------------------------

    def run(self, step: Callable[[int], None], cycles: int) -> WatchdogResult:
        """Call ``step(cycle)`` up to *cycles* times within budget.

        The wall clock is polled every ``check_every`` cycles.  Whatever
        the outcome, the partial work stands — the caller inspects
        :class:`WatchdogResult` to see how far the run got.
        """
        self.start()
        budget = cycles
        if self.max_cycles is not None:
            budget = min(budget, self.max_cycles)
        done = 0
        exhausted: Optional[str] = "cycles" if budget < cycles else None
        while done < budget:
            if (self.max_seconds is not None
                    and done % self.check_every == 0
                    and self.elapsed() >= self.max_seconds):
                exhausted = "wall_clock"
                break
            step(done)
            done += 1
            self.tick()
        if exhausted is not None:
            self._emit_expiry(exhausted)
        return WatchdogResult(cycles=done, seconds=self.elapsed(),
                              exhausted=exhausted)


# -- checkpoint / restore -------------------------------------------------------


def supports_checkpoint(engine) -> bool:
    """Whether *engine* implements the checkpoint guard-rail hooks.

    True when both ``save_state`` and ``restore_state`` are callable —
    the contract :func:`checkpoint`/:func:`restore` rely on.  Callers
    that can degrade (e.g. a shard runner that falls back to replaying
    from cycle 0) should test this instead of catching
    :class:`~repro.core.errors.SimulationError`.
    """
    return (callable(getattr(engine, "save_state", None))
            and callable(getattr(engine, "restore_state", None)))


def checkpoint(engine) -> Dict[str, object]:
    """A deterministic snapshot of *engine*'s simulation state.

    Works with any engine exposing the ``save_state`` guard-rail hook.
    """
    save = getattr(engine, "save_state", None)
    if save is None:
        raise SimulationError(
            f"{type(engine).__name__} does not support checkpointing "
            "(no save_state hook)"
        )
    return save()


def restore(engine, state: Dict[str, object]) -> None:
    """Restore *engine* to a snapshot taken with :func:`checkpoint`."""
    load = getattr(engine, "restore_state", None)
    if load is None:
        raise SimulationError(
            f"{type(engine).__name__} does not support checkpointing "
            "(no restore_state hook)"
        )
    load(state)
