"""Fault-injection campaigns against the golden gate-level simulation.

A campaign replays one stimulus program — a list of per-cycle pin
drives — first on the fault-free netlist (the golden run), then once per
fault with the saboteur armed, comparing primary outputs cycle by cycle.
A fault is *detected* when any output differs on any cycle; the result is
a coverage report in the style of :mod:`repro.synth.report`.

The campaign reuses one :class:`~repro.synth.gatesim.GateSimulator`
through the checkpoint/restore guard rail instead of re-levelizing the
netlist per fault, and accepts a :class:`~repro.verify.guard.Watchdog`
so long campaigns return partial coverage instead of wedging.

Lane-mapped campaigns
---------------------
With ``lanes=N`` the campaign maps the fault universe onto the gate
simulator's bit-lanes: each chunk of up to N faults runs in *one*
word-parallel replay — lane L carries fault L's saboteur — so the
whole chunk costs one golden-replay's worth of gate evaluations
instead of N.  Detection diffs each output bus's lane-packed words
against the golden bit pattern, claiming each lane's first divergent
(cycle, output) in the same order the scalar path checks them, so the
resulting :class:`CampaignReport` is equal field for field to the
scalar campaign's.  :attr:`FaultCampaign.gate_evals` (scalar-or-lane
word evaluations, from :attr:`GateSimulator.gate_evals`) is the
denominator of the speedup claim.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.errors import SimulationError
from ..synth.gatesim import GateSimulator
from ..synth.netlist import Netlist
from .faults import (
    StuckAtFault,
    TransientFault,
    collapse_faults,
    enumerate_faults,
)
from .guard import Watchdog

Fault = Union[StuckAtFault, TransientFault]
Stimulus = Sequence[Mapping[str, int]]


def derive_seed(base: int, *components: int) -> int:
    """A stable per-item seed from a base seed and item coordinates.

    Splitting work across shards/workers must never change what any
    item simulates, so per-item seeds are *derived* — hashed from the
    base seed and the item's position — rather than drawn sequentially
    from one shared RNG (whose stream would depend on execution order).
    SHA-256 based: stable across processes, platforms and Python's
    per-run string-hash salt.
    """
    digest = hashlib.sha256(
        ("repro-seed:" + ":".join(str(c) for c in (base,) + components))
        .encode("ascii")
    ).digest()
    return int.from_bytes(digest[:8], "big")


def random_stimulus(netlist: Netlist, cycles: int,
                    seed: int = 0,
                    stream: Optional[int] = None) -> List[Dict[str, int]]:
    """A reproducible random stimulus program for *netlist*'s inputs.

    Each cycle drives every primary input with a uniform random raw value
    of the right width (two's-complement domain, like
    :meth:`GateSimulator.set_input`).

    ``stream`` selects one of many independent programs sharing the same
    base *seed*: the effective seed is ``derive_seed(seed, stream)``, so
    sweep item N's stimulus is identical no matter which shard or worker
    generates it.
    """
    if stream is not None:
        seed = derive_seed(seed, stream)
    rng = random.Random(seed)
    program: List[Dict[str, int]] = []
    for _ in range(cycles):
        program.append({
            name: rng.getrandbits(len(bus))
            for name, bus in netlist.inputs.items()
        })
    return program


@dataclass
class FaultResult:
    """Outcome of simulating one (representative) fault."""

    fault: Fault
    detected: bool
    #: First cycle on which an output differed (None when undetected).
    detect_cycle: Optional[int] = None
    #: Name of the first differing primary output.
    detect_output: Optional[str] = None
    #: Size of the structural equivalence class this fault represents.
    class_size: int = 1


@dataclass
class CampaignReport:
    """Coverage report of a fault campaign (``report()`` renders text)."""

    netlist_name: str
    cycles: int
    total_faults: int
    collapsed_faults: int
    results: List[FaultResult] = field(default_factory=list)
    #: False when a watchdog budget expired before every fault ran.
    complete: bool = True
    #: Representatives never simulated because the budget expired.
    skipped: int = 0

    def detected(self) -> List[FaultResult]:
        return [r for r in self.results if r.detected]

    def undetected(self) -> List[FaultResult]:
        return [r for r in self.results if not r.detected]

    @property
    def detected_weight(self) -> int:
        """Detected faults counting every member of collapsed classes."""
        return sum(r.class_size for r in self.detected())

    def coverage(self) -> float:
        """Detected fraction of the full (uncollapsed) fault universe."""
        if not self.total_faults:
            return 1.0
        return self.detected_weight / self.total_faults

    def report(self, netlist: Optional[Netlist] = None,
               max_undetected: int = 8) -> str:
        """Text summary in the synthesis-report style."""
        lines = [
            f"fault campaign {self.netlist_name}",
            f"  stimulus   : {self.cycles} cycles",
            f"  fault list : {self.total_faults} faults, "
            f"{self.collapsed_faults} after collapsing",
            f"  simulated  : {len(self.results)} representatives"
            + ("" if self.complete
               else f" (partial: {self.skipped} skipped on budget)"),
            f"  detected   : {len(self.detected())} representatives "
            f"({self.detected_weight} faults)",
            f"  coverage   : {100.0 * self.coverage():.1f}%",
        ]
        undetected = self.undetected()
        if undetected:
            shown = ", ".join(
                r.fault.describe(netlist) for r in undetected[:max_undetected]
            )
            suffix = ", ..." if len(undetected) > max_undetected else ""
            lines.append(f"  undetected : {shown}{suffix}")
        return "\n".join(lines)


class FaultCampaign:
    """Run a fault-injection campaign on a netlist.

    Parameters
    ----------
    netlist:
        The gate-level design under test.
    stimuli:
        The stimulus program: one ``{input_name: raw}`` mapping per cycle.
    faults:
        Faults to inject.  Default: the structurally-collapsed stuck-at
        universe.  Explicit lists may mix stuck-at and transient faults.
    collapse:
        When *faults* is None, whether to collapse the stuck-at universe
        (True) or simulate it uncollapsed (False).
    watchdog:
        Optional wall-clock/cycle budget.  When it expires mid-campaign,
        the report comes back with ``complete=False`` and the remaining
        faults counted as ``skipped`` — partial results, no exception.
        (The batched path checks the budget per chunk, so a tight budget
        may cut at a different fault boundary than the scalar path.)
    lanes:
        Faults simulated per word-parallel replay.  1 (default) is the
        historical one-replay-per-fault path; 64 fills a machine word.
        The report is the same either way.
    shard:
        Optional ``(start, stop)`` slice of the deterministic work list
        (the collapsed representatives, in their canonical order): only
        those items are simulated.  ``total_faults`` still counts the
        *full* universe — a shard's own coverage number is meaningless;
        shards exist to be merged by a runner that re-assembles the
        complete report.  Lane packing restarts at each shard boundary,
        which is report-invariant (the batched path is byte-identical
        to the scalar path at any chunking).
    """

    def __init__(self, netlist: Netlist, stimuli: Stimulus,
                 faults: Optional[Sequence[Fault]] = None,
                 collapse: bool = True,
                 watchdog: Optional[Watchdog] = None,
                 obs=None, lanes: int = 1,
                 shard: Optional[Tuple[int, int]] = None):
        self.netlist = netlist
        self.stimuli = [dict(pins) for pins in stimuli]
        self.watchdog = watchdog
        self.lanes = lanes
        #: Word-level gate evaluations spent by the last :meth:`run`
        #: (golden + fault simulation) — compare a ``lanes=64`` campaign
        #: against a ``lanes=1`` campaign to see the batching win.
        self.gate_evals = 0
        #: Optional :class:`repro.obs.Capture`: campaign progress and
        #: per-fault outcomes become events on its stream.
        self.obs = obs
        #: Optional ``fn(done, total)`` called as work items complete —
        #: per fault on the scalar path, per chunk on the batched path.
        #: The sharded runner's workers hook this to stream live shard
        #: progress to the parent; it never affects results.
        self.progress = None
        if faults is None:
            if collapse:
                result = collapse_faults(netlist)
                self.total_faults = result.total
                self._work = [
                    (rep, len(members))
                    for rep, members in result.classes.items()
                ]
            else:
                universe = enumerate_faults(netlist)
                self.total_faults = len(universe)
                self._work = [(fault, 1) for fault in universe]
        else:
            self.total_faults = len(faults)
            self._work = [(fault, 1) for fault in faults]
        #: Length of the full work list before any shard slicing — the
        #: ``collapsed_faults`` a merged report must carry.
        self.work_size = len(self._work)
        self.shard = shard
        if shard is not None:
            start, stop = shard
            if not (0 <= start <= stop <= len(self._work)):
                raise SimulationError(
                    f"shard ({start}, {stop}) outside work list of "
                    f"{len(self._work)} representatives"
                )
            self._work = self._work[start:stop]

    # -- execution ---------------------------------------------------------------

    def _golden_run(self, sim: GateSimulator) -> List[Dict[str, int]]:
        outputs: List[Dict[str, int]] = []
        sim.monitors = [lambda s: outputs.append(s.settled_outputs())]
        for pins in self.stimuli:
            sim.step(pins)
        sim.monitors = []
        return outputs

    def _simulate_fault(self, sim: GateSimulator, fault: Fault,
                        golden: List[Dict[str, int]], initial) -> FaultResult:
        sim.release()
        sim.restore_state(initial)
        if isinstance(fault, StuckAtFault):
            sim.force(fault.net, fault.value)
        captured: Dict[str, int] = {}
        sim.monitors = [lambda s: captured.update(s.settled_outputs())]
        try:
            for cycle, pins in enumerate(self.stimuli):
                transient_now = (isinstance(fault, TransientFault)
                                 and cycle == fault.cycle)
                if transient_now:
                    sim.flip(fault.net)
                sim.step(pins)
                if transient_now:
                    sim.release(fault.net)
                expected = golden[cycle]
                for name, value in expected.items():
                    if captured[name] != value:
                        return FaultResult(fault, True, cycle, name)
            return FaultResult(fault, False)
        finally:
            sim.monitors = []
            sim.release()

    def _event(self, kind: str, **fields) -> None:
        """Emit one event on the capture's stream, if any (duck-typed)."""
        if self.obs is None:
            return
        events = getattr(self.obs, "events", None)
        if events is not None:
            events.emit(kind, **fields)

    def _simulate_chunk(self, sim: GateSimulator,
                        chunk: Sequence[tuple],
                        golden: List[Dict[str, int]],
                        initial) -> List[FaultResult]:
        """Simulate up to ``sim.lanes`` faults in one word-parallel replay.

        Lane L carries fault L.  Detection claims, per lane, the first
        (cycle, output) whose lane-packed bus word differs from the
        golden bit pattern — outputs checked in the same order as the
        scalar path, so the recorded fields match it exactly.
        """
        sim.release()
        sim.restore_state(initial)
        count = len(chunk)
        active_mask = (1 << count) - 1
        transients: Dict[int, List[tuple]] = {}
        for lane, (fault, _size) in enumerate(chunk):
            if isinstance(fault, StuckAtFault):
                sim.force(fault.net, fault.value, lanes=[lane])
            else:
                transients.setdefault(fault.cycle, []).append(
                    (lane, fault.net))
        detections: List[Optional[tuple]] = [None] * count
        values = sim.values
        buses = self.netlist.outputs
        state = {"cycle": 0, "undetected": active_mask}

        def check(_sim) -> None:
            cycle = state["cycle"]
            undetected = state["undetected"]
            for name, value in golden[cycle].items():
                bus = buses[name]
                diff = 0
                for i, net in enumerate(bus):
                    golden_bits = -((value >> i) & 1) & active_mask
                    diff |= values[net] ^ golden_bits
                newly = diff & undetected
                if newly:
                    for lane in range(count):
                        if (newly >> lane) & 1:
                            detections[lane] = (cycle, name)
                    undetected &= ~newly
                    if not undetected:
                        break
            state["undetected"] = undetected

        sim.monitors = [check]
        try:
            for cycle, pins in enumerate(self.stimuli):
                armed = transients.get(cycle, ())
                for lane, net in armed:
                    sim.flip(net, lanes=[lane])
                state["cycle"] = cycle
                sim.step(pins)
                for lane, net in armed:
                    sim.release(net, lanes=[lane])
                if not state["undetected"]:
                    break
        finally:
            sim.monitors = []
            sim.release()
        results = []
        for lane, (fault, _size) in enumerate(chunk):
            hit = detections[lane]
            if hit is None:
                results.append(FaultResult(fault, False))
            else:
                results.append(FaultResult(fault, True, hit[0], hit[1]))
        return results

    def run_shard(self, start: int, stop: int) -> CampaignReport:
        """Run only work items ``[start, stop)`` of the current work list.

        The returned report's results cover just that span (the
        denominators still describe the whole campaign, as with the
        ``shard`` parameter).  The campaign object stays reusable — the
        work list is restored afterwards — so a shard worker pays for
        fault collapsing once and then executes any number of spans.
        """
        if not (0 <= start <= stop <= len(self._work)):
            raise SimulationError(
                f"shard span ({start}, {stop}) outside work list of "
                f"{len(self._work)} representatives"
            )
        saved = self._work
        self._work = saved[start:stop]
        try:
            return self.run()
        finally:
            self._work = saved

    def run(self) -> CampaignReport:
        """Execute the campaign; always returns a report (never wedges)."""
        golden_sim = GateSimulator(self.netlist)
        initial = golden_sim.save_state()
        golden = self._golden_run(golden_sim)

        report = CampaignReport(
            netlist_name=self.netlist.name,
            cycles=len(self.stimuli),
            total_faults=self.total_faults,
            collapsed_faults=self.work_size,
        )
        self._event("campaign_start", netlist=self.netlist.name,
                    cycles=len(self.stimuli), faults=self.total_faults,
                    representatives=len(self._work))
        if self.lanes > 1:
            fault_sim = self._run_batched(report, golden)
        else:
            fault_sim = self._run_scalar(report, golden, initial)
        self.gate_evals = golden_sim.gate_evals + fault_sim.gate_evals
        self._event("campaign_end", netlist=self.netlist.name,
                    coverage=report.coverage(), complete=report.complete,
                    skipped=report.skipped,
                    detected=len(report.detected()))
        return report

    def _run_scalar(self, report: CampaignReport,
                    golden: List[Dict[str, int]], initial) -> GateSimulator:
        # One simulator for every fault: restore beats re-levelizing.
        fault_sim = GateSimulator(self.netlist)
        watchdog = self.watchdog
        if watchdog is not None:
            watchdog.start()
        for index, (fault, class_size) in enumerate(self._work):
            if watchdog is not None and watchdog.expired():
                report.complete = False
                report.skipped = len(self._work) - index
                break
            result = self._simulate_fault(fault_sim, fault, golden, initial)
            result.class_size = class_size
            report.results.append(result)
            self._event("fault", fault=str(fault), detected=result.detected,
                        detect_cycle=result.detect_cycle,
                        detect_output=result.detect_output,
                        class_size=class_size)
            if watchdog is not None:
                # One tick per fault: max_cycles doubles as a fault budget.
                watchdog.tick()
            if self.progress is not None:
                self.progress(index + 1, len(self._work))
        return fault_sim

    def _run_batched(self, report: CampaignReport,
                     golden: List[Dict[str, int]]) -> GateSimulator:
        # One lane-wide simulator for the whole campaign; its fresh
        # post-levelize state doubles as the per-chunk restore point
        # (every lane starts from the same DFF init the golden run did),
        # and the scalar golden outputs are the reference bit patterns
        # every lane's packed words are diffed against.
        fault_sim = GateSimulator(self.netlist, lanes=self.lanes)
        initial = fault_sim.save_state()
        watchdog = self.watchdog
        if watchdog is not None:
            watchdog.start()
        index = 0
        work = self._work
        while index < len(work):
            if watchdog is not None and watchdog.expired():
                report.complete = False
                report.skipped = len(work) - index
                break
            chunk = work[index:index + self.lanes]
            results = self._simulate_chunk(fault_sim, chunk, golden, initial)
            for (fault, class_size), result in zip(chunk, results):
                result.class_size = class_size
                report.results.append(result)
                self._event("fault", fault=str(fault),
                            detected=result.detected,
                            detect_cycle=result.detect_cycle,
                            detect_output=result.detect_output,
                            class_size=class_size)
                if watchdog is not None:
                    watchdog.tick()
            index += len(chunk)
            if self.progress is not None:
                self.progress(index, len(work))
        return fault_sim
