"""Lockstep execution of two simulation engines with divergence localization.

The environment's refinement story only works if the engines agree; when
they silently don't, debugging used to mean staring at two waveform
dumps.  :class:`Lockstep` runs two engines over the same stimulus
program, compares a canonical observation (raw fixed-point values of the
design's outputs) and, on mismatch, binary-searches replays to the
*first* divergent cycle, naming the divergent signals — an actionable
diagnostic instead of a silent disagreement.

Engines plug in through small adapters that normalize three things:
pin driving, the pre-clock-edge observation instant, and the value
domain (``Fx`` tokens become raw integers, matching the netlist world).
Factories (not instances) are supplied, because localization replays
fresh engine pairs and because two engines must never share one mutable
``System``.

Batched engines observe per-lane *tuples* instead of scalars; when two
lane-tupled observations disagree, the :class:`Divergence` additionally
names the offending lanes, localizing a mismatch to (cycle, signal,
lane).  :class:`ReplicatedAdapter` presents N scalar engines as one
lane-tupled observation — the reference plane a batched engine is
differenced against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import SimulationError
from ..fixpt import Fx, FxFormat, quantize_raw
from ..sim.batched import BatchedCompiledSimulator
from ..sim.compiled import CompiledSimulator
from ..sim.cycle import CycleScheduler
from ..sim.event import EventSimulator
from ..synth.gatesim import GateSimulator
from ..synth.netlist import Netlist

Observation = Dict[str, object]
Stimulus = Sequence[Mapping[str, object]]


def _canonical(token):
    """Normalize a token into the comparable domain (Fx -> raw int).

    Per-lane observations arrive as sequences and canonicalize to
    tuples of canonical scalars; numpy integers become Python ints so
    cross-engine comparison is type-blind.
    """
    if isinstance(token, Fx):
        return token.raw
    if isinstance(token, bool):
        return int(token)
    if isinstance(token, (list, tuple)):
        return tuple(_canonical(t) for t in token)
    if hasattr(token, "item") and hasattr(token, "dtype"):
        got = token.item() if getattr(token, "ndim", 0) == 0 \
            else [t.item() for t in token]
        return _canonical(got)
    return token


class EngineAdapter:
    """Uniform lockstep interface over one simulation engine."""

    name = "engine"

    def step(self, pins: Mapping[str, object]) -> None:
        """Drive one clock cycle with *pins* (design-domain values)."""
        raise NotImplementedError

    def observe(self) -> Observation:
        """This cycle's canonical observation (pre-clock-edge outputs)."""
        raise NotImplementedError


class CycleAdapter(EngineAdapter):
    """The interpreted three-phase cycle scheduler."""

    def __init__(self, system, name: str = "interpreted"):
        self.scheduler = CycleScheduler(system)
        self.name = name
        self._pins = {
            chan.name: chan for chan in system.channels
            if chan.producer is None
        }
        self._outs = [
            chan for chan in system.channels if chan.producer is not None
        ]

    def step(self, pins: Mapping[str, object]) -> None:
        self.scheduler.step({
            self._pins[name]: value for name, value in (pins or {}).items()
        })

    def observe(self) -> Observation:
        # Channels keep this cycle's tokens until the next step clears them.
        return {
            chan.name: _canonical(chan.value) if chan.valid else None
            for chan in self._outs
        }


class CompiledAdapter(EngineAdapter):
    """The generated compiled-code simulator."""

    def __init__(self, system, name: str = "compiled",
                 optimize: bool = True, passes=None, validate: str = "off"):
        self._outs = [
            chan for chan in system.channels if chan.producer is not None
        ]
        self.sim = CompiledSimulator(system, watch=self._outs,
                                     optimize=optimize, passes=passes,
                                     validate=validate)
        self.name = name

    def step(self, pins: Mapping[str, object]) -> None:
        self.sim.step(dict(pins or {}))

    def observe(self) -> Observation:
        return {
            chan.name: _canonical(self.sim.outputs.get(chan.name))
            for chan in self._outs
        }


class BatchedCompiledAdapter(EngineAdapter):
    """The numpy-vectorized batched compiled simulator (per-lane tuples)."""

    def __init__(self, system, lanes: int, name: str = "batched",
                 optimize: bool = True, passes=None, validate: str = "off"):
        self._outs = [
            chan for chan in system.channels if chan.producer is not None
        ]
        self.sim = BatchedCompiledSimulator(system, lanes=lanes,
                                            watch=self._outs,
                                            optimize=optimize,
                                            passes=passes,
                                            validate=validate)
        self.name = name

    def step(self, pins: Mapping[str, object]) -> None:
        self.sim.step(dict(pins or {}))

    def observe(self) -> Observation:
        return {
            chan.name: _canonical(list(self.sim.outputs[chan.name]))
            for chan in self._outs
        }


class ReplicatedAdapter(EngineAdapter):
    """N scalar engines presented as one lane-tupled observation.

    The reference plane for differencing a batched engine: lane L's
    pins drive engine L, and every observed signal becomes an N-tuple.
    Pin values that are lists/tuples split per lane; scalars broadcast.
    """

    def __init__(self, factories: Sequence[Callable[[], EngineAdapter]],
                 name: str = "replicated"):
        self.engines = [factory() for factory in factories]
        if not self.engines:
            raise SimulationError("ReplicatedAdapter needs >= 1 lane")
        self.name = name

    def step(self, pins: Mapping[str, object]) -> None:
        for lane, engine in enumerate(self.engines):
            engine.step({
                name: (value[lane] if isinstance(value, (list, tuple))
                       else value)
                for name, value in (pins or {}).items()
            })

    def observe(self) -> Observation:
        per_lane = [engine.observe() for engine in self.engines]
        keys = set(per_lane[0])
        for obs in per_lane[1:]:
            keys &= set(obs)
        return {
            key: tuple(obs[key] for obs in per_lane) for key in keys
        }


class EventAdapter(EngineAdapter):
    """The event-driven (delta-cycle, HDL-semantics) simulator."""

    def __init__(self, system, name: str = "event_rt"):
        self.sim = EventSimulator(system)
        self.name = name
        self._outs = [
            (chan.name, chan.producer.sig) for chan in system.channels
            if chan.producer is not None and chan.producer.sig is not None
        ]
        self._last: Observation = {}
        self.sim.monitors.append(self._capture)

    def _capture(self, sim) -> None:
        self._last = {
            name: _canonical(sim.value(sig)) for name, sig in self._outs
        }

    def step(self, pins: Mapping[str, object]) -> None:
        self.sim.step(dict(pins or {}))

    def observe(self) -> Observation:
        return dict(self._last)


class GateAdapter(EngineAdapter):
    """The levelized gate-level simulator over a synthesized netlist."""

    def __init__(self, netlist: Netlist,
                 in_formats: Optional[Mapping[str, FxFormat]] = None,
                 signed: object = True,
                 name: str = "netlist", lanes: int = 1):
        self.sim = GateSimulator(netlist, lanes=lanes)
        self.lanes = lanes
        self.in_formats = dict(in_formats or {})
        self.signed = signed
        self.name = name
        self._last: Observation = {}
        self.sim.monitors.append(self._capture)

    @classmethod
    def from_synthesis(cls, synthesis, name: str = "netlist") -> "GateAdapter":
        """Build an adapter from a :class:`ComponentSynthesis`, pulling pin
        formats and output signedness from the source process's ports."""
        process = synthesis.process
        in_formats = {
            port.name: port.sig.fmt for port in process.in_ports()
            if port.sig is not None and port.sig.fmt is not None
        }
        signed = {
            port.name: port.sig.fmt.signed for port in process.out_ports()
            if port.sig is not None and port.sig.fmt is not None
        }
        return cls(synthesis.netlist, in_formats, signed=signed, name=name)

    def _is_signed(self, output: str) -> bool:
        if isinstance(self.signed, Mapping):
            return bool(self.signed.get(output, True))
        return bool(self.signed)

    def _capture(self, sim) -> None:
        if self.lanes > 1:
            self._last = {
                name: tuple(sim.output_lanes(name, self._is_signed(name)))
                for name in sim.netlist.outputs
            }
            return
        self._last = {
            name: sim.output(name, self._is_signed(name))
            for name in sim.netlist.outputs
        }

    def _to_raw(self, name: str, value) -> int:
        fmt = self.in_formats.get(name)
        if fmt is None:
            return int(value)
        if isinstance(value, Fx):
            return value.raw
        return quantize_raw(value, fmt)

    def step(self, pins: Mapping[str, object]) -> None:
        raws: Dict[str, object] = {}
        for name, value in (pins or {}).items():
            if isinstance(value, (list, tuple)):
                raws[name] = [self._to_raw(name, v) for v in value]
            else:
                raws[name] = self._to_raw(name, value)
        self.sim.step(raws)

    def observe(self) -> Observation:
        return dict(self._last)


@dataclass
class Divergence:
    """The first point at which two lockstep engines disagree.

    When the divergent observations are per-lane tuples, :attr:`lanes`
    maps each divergent signal to the lane indices that differ —
    localizing the mismatch to (cycle, signal, lane).
    """

    cycle: int
    signals: List[str]
    values_a: Dict[str, object]
    values_b: Dict[str, object]
    engine_a: str = "A"
    engine_b: str = "B"
    lanes: Optional[Dict[str, List[int]]] = None

    def __str__(self) -> str:
        pairs = ", ".join(
            f"{name}: {self.engine_a}={self.values_a.get(name)!r} "
            f"{self.engine_b}={self.values_b.get(name)!r}"
            + (f" lanes={self.lanes[name]}"
               if self.lanes and name in self.lanes else "")
            for name in self.signals
        )
        return (f"engines {self.engine_a!r} and {self.engine_b!r} first "
                f"diverge at cycle {self.cycle} on {self.signals} ({pairs})")


def _divergent_lanes(va, vb) -> Optional[List[int]]:
    """Lane indices where two per-lane tuples differ (None for scalars)."""
    if not (isinstance(va, tuple) and isinstance(vb, tuple)):
        return None
    if len(va) != len(vb):
        return list(range(max(len(va), len(vb))))
    return [lane for lane, (a, b) in enumerate(zip(va, vb)) if a != b]


class Lockstep:
    """Run two engines in lockstep and localize any divergence.

    Parameters
    ----------
    make_a / make_b:
        Factories returning fresh :class:`EngineAdapter` instances over
        *independent* design instances (engines share mutable signal
        state, so each factory must rebuild its own system).
    stimuli:
        The stimulus program, one pin mapping per cycle, in the design's
        value domain (adapters convert per engine).
    strict:
        When True, a signal observed by only one engine — or a cycle
        where one engine produced no token — counts as a divergence.
        Default False: only signals both engines observe are compared and
        ``None`` (no token) acts as a wildcard.
    """

    def __init__(self, make_a: Callable[[], EngineAdapter],
                 make_b: Callable[[], EngineAdapter],
                 stimuli: Stimulus, strict: bool = False):
        self.make_a = make_a
        self.make_b = make_b
        self.stimuli = [dict(pins) for pins in stimuli]
        self.strict = strict

    # -- comparison --------------------------------------------------------------

    def _diff(self, oa: Observation, ob: Observation) -> List[str]:
        if self.strict:
            keys = set(oa) | set(ob)
        else:
            keys = set(oa) & set(ob)
        missing = object()
        diffs = []
        for key in sorted(keys):
            va = oa.get(key, missing)
            vb = ob.get(key, missing)
            if not self.strict and (va is None or vb is None):
                continue
            if va is missing or vb is missing or va != vb:
                diffs.append(key)
        return diffs

    # -- execution ---------------------------------------------------------------

    def run(self, compare_every: int = 1) -> Optional[Divergence]:
        """Lockstep the engines; None when they agree everywhere.

        ``compare_every`` trades comparison cost against localization
        cost: with a stride, mismatches are only *noticed* at stride
        boundaries and the exact first bad cycle is then recovered by
        binary-searching O(log stride) fresh replays.  Localization
        assumes a divergence persists once state has split (true for
        register-observable divergences); the returned cycle is verified
        divergent and the cycle before it verified clean.
        """
        if compare_every < 1:
            raise SimulationError("compare_every must be >= 1")
        a, b = self.make_a(), self.make_b()
        last_ok = -1
        total = len(self.stimuli)
        for cycle in range(total):
            pins = self.stimuli[cycle]
            a.step(pins)
            b.step(pins)
            if (cycle + 1) % compare_every == 0 or cycle == total - 1:
                oa, ob = a.observe(), b.observe()
                if not self.strict and not (set(oa) & set(ob)):
                    raise SimulationError(
                        f"lockstep engines {a.name!r} and {b.name!r} share no "
                        "observation signals; check adapter naming"
                    )
                if self._diff(oa, ob):
                    return self._localize(last_ok + 1, cycle, (oa, ob),
                                          a.name, b.name)
                last_ok = cycle
        return None

    def _observe_at(self, cycle: int) -> Tuple[Observation, Observation]:
        """Replay fresh engines through *cycle* and observe there."""
        a, b = self.make_a(), self.make_b()
        for pins in self.stimuli[:cycle + 1]:
            a.step(pins)
            b.step(pins)
        return a.observe(), b.observe()

    def _localize(self, lo: int, hi: int,
                  known_at_hi: Tuple[Observation, Observation],
                  name_a: str, name_b: str) -> Divergence:
        cache: Dict[int, Tuple[Observation, Observation]] = {hi: known_at_hi}
        while lo < hi:
            mid = (lo + hi) // 2
            pair = cache.get(mid)
            if pair is None:
                pair = self._observe_at(mid)
                cache[mid] = pair
            if self._diff(*pair):
                hi = mid
            else:
                lo = mid + 1
        pair = cache.get(lo)
        if pair is None:
            pair = self._observe_at(lo)
        oa, ob = pair
        signals = self._diff(oa, ob)
        lanes: Dict[str, List[int]] = {}
        for name in signals:
            got = _divergent_lanes(oa.get(name), ob.get(name))
            if got is not None:
                lanes[name] = got
        return Divergence(
            cycle=lo,
            signals=signals,
            values_a={name: oa.get(name) for name in signals},
            values_b={name: ob.get(name) for name in signals},
            engine_a=name_a,
            engine_b=name_b,
            lanes=lanes or None,
        )
