"""The driver designs of the paper, captured with the repro environment.

* :mod:`repro.designs.hcor` — the DECT header correlator processor
  (Table 1's 6 Kgate design).
* :mod:`repro.designs.dect` — the DECT base-station radiolink transceiver
  ASIC (the 75 Kgate driver design): central VLIW controller, program
  counter controller, instruction ROM, 22 datapaths and 7 RAM cells.
"""

from .hcor import HcorDesign, SOFT_FMT, build_hcor

__all__ = ["HcorDesign", "SOFT_FMT", "build_hcor"]
