"""HCOR — the DECT header correlator processor (Table 1, 6 Kgate design).

One soft symbol enters per clock cycle.  A 16-stage soft-symbol delay
line correlates against the DECT RFP sync word; when the correlation
crosses the detection threshold the controller locks and counts out the
burst, reporting the symbol index so downstream components can deframe.

Structure:

* a static SFG (``shift``): delay line, +/- correlation adder tree,
  threshold compare into a condition register;
* a Mealy FSM (``SEARCH``/``LOCKED``): in SEARCH every cycle hunts; on
  the hit condition the machine locks, zeroes the symbol counter and
  counts the burst out, then rearms.

The correlation is the bit-true counterpart of
:func:`repro.dsp.correlator.detect`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core import (
    FSM,
    SFG,
    Clock,
    Register,
    Sig,
    System,
    TimedProcess,
    cnd,
    ge,
    mux,
)
from ..core.expr import Expr
from ..dsp.dect import SYNC_RFP
from ..fixpt import Fx, FxFormat, quantize

#: Soft symbols enter as s<6,3>: range (-4, 4) in steps of 1/8.
SOFT_FMT = FxFormat(6, 3)
#: Correlation accumulates 16 soft symbols: s<10,7>.
CORR_FMT = FxFormat(10, 7)
#: Burst symbol counter: counts up to the 420-bit burst.
COUNT_FMT = FxFormat(10, 10, signed=False)
BIT = FxFormat(1, 1, signed=False)

#: Detection threshold: 0.65 * 16 (matching the reference model default).
DEFAULT_THRESHOLD = 10.4

#: Burst length counted out after lock (D-field + X-field).
DEFAULT_BURST_SYMBOLS = 388


@dataclass
class HcorDesign:
    """The assembled HCOR system and its interface handles."""

    system: System
    clk: Clock
    process: TimedProcess
    soft_in: "Channel"          # drive: one soft value per cycle
    sync_found: "Channel"       # 1 on the locking cycle
    corr_out: "Channel"         # current correlation value
    locked: "Channel"           # 1 while counting a burst out
    symbol_index: "Channel"     # symbols since lock
    taps: List[Register]
    fsm: FSM


def build_hcor(pattern_bits: Sequence[int] = SYNC_RFP,
               threshold: float = DEFAULT_THRESHOLD,
               burst_symbols: int = DEFAULT_BURST_SYMBOLS) -> HcorDesign:
    """Capture the HCOR processor with the programming environment."""
    clk = Clock("hcor_clk")
    pattern = [int(b) for b in pattern_bits]
    n_taps = len(pattern)

    soft = Sig("soft", SOFT_FMT)
    taps = [Register(f"tap{i}", clk, SOFT_FMT) for i in range(n_taps)]
    corr = Register("corr", clk, CORR_FMT)
    hit = Register("hit", clk, BIT)
    count = Register("count", clk, COUNT_FMT)
    burst_done = Register("burst_done", clk, BIT)
    sync_pulse = Sig("sync_pulse", BIT)
    locked_out = Sig("locked_out", BIT)

    # -- static SFG: delay line + correlation + threshold ---------------------
    shift = SFG("shift")
    with shift:
        taps[0] <<= soft
        for i in range(1, n_taps):
            taps[i] <<= taps[i - 1]
        # +/- correlation tree over the window *including* the incoming
        # symbol: window[0] is the newest sample and correlates with the
        # last pattern bit.
        window = [soft] + taps[:-1]
        total: Expr = None
        for i in range(n_taps):
            term = window[i] if pattern[n_taps - 1 - i] else -window[i]
            total = term if total is None else total + term
        corr <<= total
        hit <<= ge(total, quantize(threshold, CORR_FMT))
    shift.inp(soft)

    # -- FSM action SFGs ---------------------------------------------------------
    hunt = SFG("hunt")
    with hunt:
        sync_pulse <<= 0
        locked_out <<= 0
        count <<= 0
        burst_done <<= 0
    hunt.out(sync_pulse, locked_out)

    lock = SFG("lock")
    with lock:
        sync_pulse <<= 1
        locked_out <<= 1
        count <<= 0
        burst_done <<= 0
    lock.out(sync_pulse, locked_out)

    track = SFG("track")
    with track:
        sync_pulse <<= 0
        locked_out <<= 1
        count <<= count + 1
        burst_done <<= ge(count + 1, burst_symbols - 1)
    track.out(sync_pulse, locked_out)

    fsm = FSM("hcor_ctl")
    search = fsm.initial("search")
    locked = fsm.state("locked")
    search << cnd(hit) << lock << locked
    search << ~cnd(hit) << hunt << search
    locked << cnd(burst_done) << hunt << search
    locked << ~cnd(burst_done) << track << locked

    process = TimedProcess("hcor", clk, fsm=fsm, sfgs=[shift])
    process.add_input("soft", soft)
    process.add_output("sync", sync_pulse)
    process.add_output("locked", locked_out)
    process.add_output("corr", corr)
    process.add_output("count", count)

    system = System("hcor_sys")
    system.add(process)
    soft_in = system.connect(None, process.port("soft"), name="soft")
    sync_found = system.connect(process.port("sync"), name="sync")
    locked_chan = system.connect(process.port("locked"), name="locked")
    corr_out = system.connect(process.port("corr"), name="corr")
    symbol_index = system.connect(process.port("count"), name="count")

    return HcorDesign(
        system=system,
        clk=clk,
        process=process,
        soft_in=soft_in,
        sync_found=sync_found,
        corr_out=corr_out,
        locked=locked_chan,
        symbol_index=symbol_index,
        taps=taps,
        fsm=fsm,
    )


def run_hcor(design: HcorDesign, soft_symbols: Sequence[float]):
    """Feed a soft-symbol stream; returns lock positions (symbol indices).

    A lock at position p means the sync word's last symbol entered at
    cycle p-1, i.e. payload starts at stream index p — the same
    convention as :func:`repro.dsp.correlator.detect`.
    """
    from ..sim import CycleScheduler, Recorder

    scheduler = CycleScheduler(design.system)
    recorder = Recorder(design.sync_found)
    scheduler.monitors.append(recorder)
    for value in soft_symbols:
        scheduler.step({design.soft_in: value})
    hits = []
    for cycle, token in enumerate(recorder["sync"]):
        if token is not None and int(token) == 1:
            # The pulse fires one cycle after the last sync symbol loaded
            # (delay line + hit register), i.e. at stream index p + 1.
            hits.append(cycle)
    return hits


def lint_targets():
    """Design objects for ``tools/lint.py``."""
    return [build_hcor().system]
