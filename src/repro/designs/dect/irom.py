"""Instruction ROM and microcode assembler for the VLIW controller.

The instruction word carries one opcode field per datapath (in
:data:`~repro.designs.dect.datapaths.DATAPATH_TABLES` order, LSB first)
followed by the sequencer fields: a PC operation, a condition selector
and a branch target.  The :class:`Program` assembler provides labels,
branches and named opcode fields; :class:`InstructionRom` is the
high-level (untimed) lookup-table component of the paper's Fig. 2/5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ...core import UntimedProcess
from ...core.errors import ModelError
from .datapaths import DATAPATH_TABLES
from .formats import field_width, opcode

#: Sequencer PC operations.
PC_OPS = ["NEXT", "JMP", "JCC", "JNC"]
PC_OP_BITS = 2

#: Condition codes selectable by JCC/JNC.
CONDITIONS = ["hit", "a_done", "d_done", "b_done", "crc_ok", "alu_flag"]
COND_BITS = 3

#: Branch target width (4096 microwords max).
TARGET_BITS = 12


def _field_layout() -> List[Tuple[str, int, int]]:
    """(name, lsb, width) for each datapath field, then sequencer fields."""
    layout = []
    position = 0
    for name, table in DATAPATH_TABLES:
        width = field_width(table)
        layout.append((name, position, width))
        position += width
    layout.append(("pc_op", position, PC_OP_BITS))
    position += PC_OP_BITS
    layout.append(("cond", position, COND_BITS))
    position += COND_BITS
    layout.append(("target", position, TARGET_BITS))
    position += TARGET_BITS
    return layout


FIELD_LAYOUT = _field_layout()
WORD_BITS = FIELD_LAYOUT[-1][1] + FIELD_LAYOUT[-1][2]
_FIELD_BY_NAME = {name: (lsb, width) for name, lsb, width in FIELD_LAYOUT}
_TABLE_BY_NAME = dict(DATAPATH_TABLES)


def field_slice(name: str) -> Tuple[int, int]:
    """(lsb, width) of a named instruction field."""
    return _FIELD_BY_NAME[name]


@dataclass
class _Step:
    fields: Dict[str, int]
    pc_op: int
    cond: int
    target: Union[int, str]


class Program:
    """Microcode assembler with labels and symbolic opcodes."""

    def __init__(self) -> None:
        self._steps: List[_Step] = []
        self._labels: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._steps)

    @property
    def here(self) -> int:
        """The address of the next emitted step."""
        return len(self._steps)

    def label(self, name: str) -> int:
        """Define a label at the current address."""
        if name in self._labels:
            raise ModelError(f"duplicate label {name!r}")
        self._labels[name] = self.here
        return self.here

    def step(self, pc_op: str = "NEXT", cond: Optional[str] = None,
             target: Union[int, str, None] = None, **fields: str) -> int:
        """Emit one microword.

        Keyword arguments name datapaths and give the mnemonic to issue,
        e.g. ``program.step(io_i="LOAD", disc="SOFTRAW")``; unnamed
        datapaths get NOP.  ``pc_op``/``cond``/``target`` control the
        sequencer.
        """
        encoded: Dict[str, int] = {}
        for name, mnemonic in fields.items():
            table = _TABLE_BY_NAME.get(name)
            if table is None:
                raise ModelError(f"unknown datapath field {name!r}")
            try:
                encoded[name] = opcode(table, mnemonic)
            except ValueError:
                raise ModelError(
                    f"datapath {name!r} has no instruction {mnemonic!r}"
                ) from None
        op_index = PC_OPS.index(pc_op)
        cond_index = CONDITIONS.index(cond) if cond is not None else 0
        if pc_op in ("JMP", "JCC", "JNC") and target is None:
            raise ModelError(f"{pc_op} needs a target")
        self._steps.append(_Step(encoded, op_index, cond_index, target or 0))
        return len(self._steps) - 1

    def resolve(self, target: Union[int, str]) -> int:
        if isinstance(target, str):
            try:
                return self._labels[target]
            except KeyError:
                raise ModelError(f"undefined label {target!r}") from None
        return int(target)

    def assemble(self) -> List[int]:
        """Encode the program into instruction words."""
        words: List[int] = []
        for step in self._steps:
            word = 0
            for name, value in step.fields.items():
                lsb, width = _FIELD_BY_NAME[name]
                if value >= (1 << width):
                    raise ModelError(
                        f"opcode {value} does not fit field {name!r}"
                    )
                word |= value << lsb
            lsb, _w = _FIELD_BY_NAME["pc_op"]
            word |= step.pc_op << lsb
            lsb, _w = _FIELD_BY_NAME["cond"]
            word |= step.cond << lsb
            lsb, width = _FIELD_BY_NAME["target"]
            resolved = self.resolve(step.target)
            if resolved >= (1 << width):
                raise ModelError(f"branch target {resolved} out of range")
            word |= resolved << lsb
            words.append(word)
        return words


class InstructionRom(UntimedProcess):
    """The microcode lookup table, modeled at high level (untimed)."""

    def __init__(self, words: List[int], name: str = "irom"):
        super().__init__(name)
        self.words = list(words)
        self.add_input("pc")
        self.add_output("word")

    def behavior(self, pc):
        address = int(pc)
        if 0 <= address < len(self.words):
            return {"word": self.words[address]}
        return {"word": 0}  # all-NOP / sequential fetch beyond the program
