"""The DECT base-station radiolink transceiver ASIC (the paper's driver).

The architecture of Fig. 5: a central VLIW controller and program-counter
controller (with the Fig. 2 execute/hold behaviour), an instruction ROM,
22 datapaths decoding between 2 and 57 instructions each, and 7 RAM cells
modeled as high-level untimed blocks.
"""

from .controller import build_vliw
from .datapaths import DATAPATH_TABLES, build_all
from .irom import CONDITIONS, PC_OPS, WORD_BITS, InstructionRom, Program
from .pcctrl import build_pcctrl
from .program import DEFAULT_WARMUP_SYMBOLS, burst_program
from .ram import Ram, build_rams
from .transceiver import DectChip, DectTransceiver, build_transceiver

__all__ = [
    "CONDITIONS",
    "DATAPATH_TABLES",
    "DEFAULT_WARMUP_SYMBOLS",
    "DectChip",
    "DectTransceiver",
    "InstructionRom",
    "PC_OPS",
    "Program",
    "Ram",
    "WORD_BITS",
    "build_all",
    "build_pcctrl",
    "build_rams",
    "build_transceiver",
    "build_vliw",
    "burst_program",
]
