"""Fixed-point formats and instruction opcodes of the DECT transceiver.

Every datapath decodes a small instruction set (between 2 and 57
instructions, as the paper reports); opcode 0 is NOP everywhere so the
central controller can freeze the whole machine by distributing zeros
(the Fig. 2 hold behaviour).
"""

from __future__ import annotations

from ...fixpt import FxFormat

# -- data formats ---------------------------------------------------------------

#: Complex baseband samples after the AGC: range (-4, 4), step 1/64.
#: (Wordlengths chosen with the range-tracing flow of repro.fixpt.trace;
#: one bit of margin over the observed burst dynamics.)
SAMPLE = FxFormat(9, 3)
#: Equalizer coefficients: range (-4, 4), step 1/256.
COEF = FxFormat(11, 3)
#: FIR partial sums and filter outputs.
ACC = FxFormat(14, 5)
#: Discriminator soft symbols.
SOFT = FxFormat(11, 4)
#: Correlation values (16 softs accumulated).
CORR = FxFormat(16, 8)
#: Symbol / cycle counters.
COUNT = FxFormat(12, 12, signed=False)
#: CRC shift register (16 bits).
CRC16 = FxFormat(16, 16, signed=False)
#: Single control/status bits.
BIT = FxFormat(1, 1, signed=False)
#: General-purpose ALU words.
WORD16 = FxFormat(16, 16)
#: Output data bytes to the wire-link driver.
BYTE = FxFormat(8, 8, signed=False)
#: RAM addresses.
ADDR = FxFormat(10, 10, signed=False)

# -- equalizer geometry ----------------------------------------------------------

#: T/2-spaced FIR taps (matches the reference ComplexLmsEqualizer).
N_TAPS = 15
#: Taps per FIR slice datapath (fir0..fir3 hold 4+4+4+3).
TAPS_PER_SLICE = (4, 4, 4, 3)
#: Decision delay in T/2 pushes introduced by the causal re-indexing
#: of the reference filter (chip tap j holds reference weight 14-j).
FIR_DELAY_PUSHES = N_TAPS // 2

# -- per-datapath opcode tables ----------------------------------------------------
# Opcode 0 is NOP in every table.

IO_OPS = ["NOP", "LOAD"]                                        # 2
AGC_OPS = ["NOP", "PASS", "SHL", "SHR"]                         # 4
FIR_OPS = ["NOP", "SHIFT", "LC0", "LC1", "LC2", "LC3",
           "CLRD", "CLRC"]                                      # 8
SUM_OPS = ["NOP", "SUM", "SAVEC", "SAVEM", "CLR", "HOLD"]       # 6
DISC_OPS = ["NOP", "SOFT", "SAVE", "SOFTRAW", "SAVERAW",
            "CLR", "HOLD"]                                      # 7
SLICER_OPS = ["NOP", "SLICE", "HOLD"]                           # 3
HCOR_OPS = ["NOP", "SHIFT", "CLR", "ARM", "HOLD"]               # 5
THRESH_OPS = ["NOP", "CMP", "CLR", "HOLD"]                      # 4
SYMCNT_OPS = ["NOP", "CLR", "INC", "CMPA", "CMPD", "CMPB",
              "DEC", "HOLD"]                                    # 8
CRC_OPS = ["NOP", "CLR", "SHIFT", "SHIFT0", "CHECK"]            # 5
DEFRAME_OPS = ["NOP", "CLR", "AMODE", "BMODE", "XMODE",
               "HOLD"]                                          # 6
OUTADR_OPS = ["NOP", "CLR", "INC", "RST", "HOLD"]               # 5
DROUT_OPS = ["NOP", "PUSH", "WORD", "HOLD"]                     # 4
CTLREG_OPS = ["NOP", "SETSYNC", "SETCRC", "CLR"]                # 4
COEFADR_OPS = ["NOP", "CLR", "INC", "RST", "HOLD"]              # 5
LMS_OPS = ["NOP", "LOADE", "UPDRE", "UPDIM", "WR", "NEGE",
           "SCALE", "PASS", "CLR", "HOLD"]                      # 10

#: The 57-instruction general-purpose ALU: NOP plus 14 operations on
#: each of 4 destination registers (source is the next register around).
ALU_OPERATIONS = ["ADD", "SUB", "AND", "OR", "XOR", "SHL", "SHR", "INC",
                  "DEC", "NEG", "NOT", "CMPLT", "CMPEQ", "PASS"]
ALU_OPS = ["NOP"] + [
    f"{op}{reg}" for op in ALU_OPERATIONS for reg in range(4)
]                                                               # 57


def opcode(table, name: str) -> int:
    """The numeric opcode of *name* in an opcode table."""
    return table.index(name)


def field_width(table) -> int:
    """Instruction-field width in bits for an opcode table."""
    return max(1, (len(table) - 1).bit_length())
