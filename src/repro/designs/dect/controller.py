"""The central VLIW controller: instruction distribution (paper Fig. 5).

Receives the fetched microword from the instruction ROM, slices it into
one opcode field per datapath, and distributes the fields on the
instruction busses.  While the PC controller signals ``hold_active``,
every field is forced to 0 — opcode 0 is NOP in every datapath, so *"a
nop instruction is distributed to the datapaths to freeze the datapath
state"* (Fig. 2).

The sequencer fields (pc_op / cond / target) are forwarded to the PC
controller unconditionally.
"""

from __future__ import annotations

from typing import Dict

from ...core import SFG, Clock, Sig, TimedProcess, bits, mux
from ...fixpt import FxFormat
from .datapaths import DATAPATH_TABLES
from .formats import BIT, field_width
from .irom import WORD_BITS, field_slice

WORD_FMT = FxFormat(WORD_BITS, WORD_BITS, signed=False)


def build_vliw(clk: Clock) -> TimedProcess:
    """Build the instruction-distribution component."""
    word = Sig("iword", WORD_FMT)
    hold_active = Sig("vliw_hold", BIT)

    sfg = SFG("vliw")
    outputs: Dict[str, Sig] = {}
    with sfg:
        for name, table in DATAPATH_TABLES:
            lsb, width = field_slice(name)
            out = Sig(f"ibus_{name}",
                      FxFormat(width, width, signed=False))
            out <<= mux(hold_active, 0, bits(word, lsb + width - 1, lsb))
            outputs[name] = out
        for seq_field in ("pc_op", "cond", "target"):
            lsb, width = field_slice(seq_field)
            out = Sig(f"seq_{seq_field}",
                      FxFormat(width, width, signed=False))
            out <<= bits(word, lsb + width - 1, lsb)
            outputs[seq_field] = out
    sfg.inp(word, hold_active).out(*outputs.values())

    process = TimedProcess("vliw", clk, sfgs=[sfg])
    process.add_input("word", word)
    process.add_input("hold_active", hold_active)
    for name, sig in outputs.items():
        process.add_output(name, sig)
    return process
