"""The burst-processing microcode of the DECT transceiver.

The program implements the central-control architecture the paper's
section 3.3 motivates: burst processing is a straight-line microcode flow
with *global exceptions as jumps in the instruction ROM* — here the
sync-found branch, the field boundaries and the end-of-burst jump.

Phases:

1. **INIT / LOADC** — clear the machine and load the 15 complex
   equalizer coefficients through the CTL bus (one per microword).
2. **HUNT** — a two-word loop (one DECT symbol, two T/2 samples): raw
   discriminator + header correlation; loops until the threshold
   condition fires (the first "global exception").
3. **WARMUP** — pipeline/FIR group-delay alignment symbols.
4. **ALOOP** — four words per symbol: equalized FIR, discriminate,
   slice, CRC-shift and capture the 64 A-field bits.
5. **CRCCHK** — 16 zero-augmentation shifts + check, status capture.
6. **BLOOP** — same per-symbol loop for the 324 B+X bits.
7. **DONE** — idle loop (the burst hand-off point).
"""

from __future__ import annotations

from typing import List

from .formats import N_TAPS
from .irom import Program

#: Pipeline + FIR group-delay warm-up, in symbols, between the sync
#: branch and the first captured A-field bit, and the half-symbol pad
#: that puts the FIR evaluation on symbol-center windows (the windows
#: the coefficients were trained on).  Calibrated against the reference
#: model (see tests/designs/test_transceiver.py): the 15-tap causal FIR
#: re-indexing costs 7 T/2 pushes of decision delay, and the datapath
#: pipeline (io -> agc -> fir -> sum -> disc registers) the rest.
DEFAULT_WARMUP_SYMBOLS = 1
DEFAULT_EQ_PHASE_PAD = 1

ALL_FIR_SHIFT = {f"fir{i}": "SHIFT" for i in range(4)}


def _symbol_steps(program: Program, extra_a1=None):
    """Emit the two sample-push words of one symbol (pipeline front)."""
    program.step(io_i="LOAD", io_q="LOAD", agc="PASS",
                 sum="SUM", **ALL_FIR_SHIFT)
    fields = dict(io_i="LOAD", io_q="LOAD", agc="PASS",
                  sum="SUM", disc="SOFT", **ALL_FIR_SHIFT)
    if extra_a1:
        fields.update(extra_a1)
    program.step(**fields)


def burst_program(a_len: int = 64, payload_len: int = 388,
                  warmup_symbols: int = DEFAULT_WARMUP_SYMBOLS,
                  phase_pad: int = 0,
                  eq_phase_pad: int = DEFAULT_EQ_PHASE_PAD) -> Program:
    """Assemble the burst-processing program."""
    program = Program()

    # -- INIT ----------------------------------------------------------------
    program.step(symcnt="CLR", crc="CLR", hcor_dp="CLR", thresh="CLR",
                 deframe="CLR", outadr="CLR", coefadr="CLR", ctlreg="CLR",
                 sum="CLR", disc="CLR", lms="CLR",
                 **{f"fir{i}": "CLRD" for i in range(4)})
    program.step(**{f"fir{i}": "CLRC" for i in range(4)})

    # -- LOADC: one complex coefficient per word -------------------------------
    for tap in range(N_TAPS):
        slice_index, k = divmod(tap, 4)
        program.step(coefadr="INC", **{f"fir{slice_index}": f"LC{k}"})

    # -- optional sample-phase padding (half-symbol alignment) ------------------
    for _ in range(phase_pad):
        program.step(io_i="LOAD", io_q="LOAD", agc="PASS", **ALL_FIR_SHIFT)

    # -- HUNT -------------------------------------------------------------------
    program.label("hunt")
    program.step(io_i="LOAD", io_q="LOAD", agc="PASS", **ALL_FIR_SHIFT)
    program.step(io_i="LOAD", io_q="LOAD", agc="PASS", disc="SOFTRAW",
                 hcor_dp="SHIFT", thresh="CMP", symcnt="INC",
                 pc_op="JNC", cond="hit", target="hunt",
                 **ALL_FIR_SHIFT)

    # -- SYNCED: bookkeeping; sample stream pauses (chip-paced IO) --------------
    program.step(symcnt="CLR", crc="CLR", ctlreg="SETSYNC", outadr="CLR",
                 deframe="CLR", disc="CLR", sum="CLR")

    # -- equalizer T/2-phase alignment: an odd number of extra pushes
    #    moves the FIR evaluation from mid-symbol to symbol-center
    #    windows (the windows the coefficients were trained on).
    for _ in range(eq_phase_pad):
        program.step(io_i="LOAD", io_q="LOAD", agc="PASS", sum="SUM",
                     **ALL_FIR_SHIFT)

    # -- WARMUP: flush the raw-path discriminator state through the
    #    equalized path; no capture.
    for _ in range(warmup_symbols):
        _symbol_steps(program)

    program.step(deframe="AMODE", symcnt="CLR", outadr="CLR")

    # -- ALOOP: 4 words per A-field symbol ----------------------------------------
    program.label("aloop")
    _symbol_steps(program, extra_a1={"symcnt": "INC"})
    program.step(slicer="SLICE", symcnt="CMPA")
    program.step(crc="SHIFT", drout="PUSH", outadr="INC",
                 pc_op="JNC", cond="a_done", target="aloop")

    # -- CRC check: 16 zero shifts then compare --------------------------------
    for _ in range(16):
        program.step(crc="SHIFT0")
    program.step(crc="CHECK")
    program.step(ctlreg="SETCRC")
    program.step(deframe="BMODE", outadr="CLR")

    # -- BLOOP: remaining payload (B-field + X-field) ----------------------------
    program.label("bloop")
    _symbol_steps(program, extra_a1={"symcnt": "INC"})
    program.step(slicer="SLICE", symcnt="CMPD")
    program.step(drout="PUSH", outadr="INC",
                 pc_op="JNC", cond="d_done", target="bloop")

    # -- DONE ----------------------------------------------------------------------
    program.label("done")
    program.step(deframe="CLR", pc_op="JMP", target="done")
    return program
