"""Program counter controller with the paper's Figure-2 hold behaviour.

A Mealy FSM with two states, ``execute`` and ``hold``:

* in **execute**, the program counter advances (sequential or branch,
  decided by the microword's sequencer fields and the selected datapath
  condition flag);
* when the external ``hold_request`` pin (sampled into a register, as
  the paper requires for FSM conditions) asserts, the machine moves to
  **hold**: the PC freezes — the interrupted instruction's address is
  retained (the paper's ``hold_pc``) — and the ``hold_active`` line
  makes the VLIW controller distribute ``nop`` to every datapath,
  freezing the datapath state;
* when the request is released, execution resumes at the held PC: the
  interrupted instruction is issued after all.
"""

from __future__ import annotations

from ...core import (
    FSM,
    SFG,
    Clock,
    Register,
    Sig,
    TimedProcess,
    cnd,
    eq,
    mux,
)
from ...fixpt import FxFormat
from .formats import BIT
from .irom import CONDITIONS, PC_OPS, TARGET_BITS

PC_FMT = FxFormat(TARGET_BITS, TARGET_BITS, signed=False)
OP_FMT = FxFormat(2, 2, signed=False)
COND_FMT = FxFormat(3, 3, signed=False)


def build_pcctrl(clk: Clock) -> TimedProcess:
    """Build the PC controller component."""
    hold_pin = Sig("hold_request", BIT)
    hold_req = Register("hold_req", clk, BIT)
    pc = Register("pc", clk, PC_FMT)
    hold_pc = Register("hold_pc", clk, PC_FMT)
    hold_active = Sig("hold_active", BIT)

    pc_op = Sig("pc_op", OP_FMT)
    cond_sel = Sig("cond_sel", COND_FMT)
    target = Sig("pc_target", PC_FMT)
    flags = {name: Sig(f"flag_{name}", BIT) for name in CONDITIONS}

    # Hold-request pin sampling: runs every cycle (static SFG) — the
    # condition is "stored in a register inside the signal flow graphs".
    sample = SFG("pc_sample")
    with sample:
        hold_req <<= hold_pin
    sample.inp(hold_pin)

    # Execute: advance or branch.
    run_sfg = SFG("pc_execute")
    with run_sfg:
        selected = flags[CONDITIONS[-1]]
        for index in range(len(CONDITIONS) - 2, -1, -1):
            selected = mux(eq(cond_sel, index), flags[CONDITIONS[index]],
                           selected)
        take = mux(
            eq(pc_op, PC_OPS.index("JMP")), 1,
            mux(eq(pc_op, PC_OPS.index("JCC")), selected,
                mux(eq(pc_op, PC_OPS.index("JNC")),
                    eq(selected, 0), 0)),
        )
        pc <<= mux(take, target, pc + 1)
        hold_pc <<= pc
        hold_active <<= 0
    run_sfg.inp(pc_op, cond_sel, target, *flags.values())
    run_sfg.out(hold_active)

    # Hold: freeze the PC at the interrupted instruction's address (the
    # paper stores it in hold_pc and re-issues from there on release) and
    # raise hold_active so the VLIW controller distributes nop.
    hold_sfg = SFG("pc_hold")
    with hold_sfg:
        pc <<= pc
        hold_pc <<= pc
        hold_active <<= 1
    hold_sfg.out(hold_active)

    fsm = FSM("pc_fsm")
    execute = fsm.initial("execute")
    hold = fsm.state("hold")
    execute << ~cnd(hold_req) << run_sfg << execute
    execute << cnd(hold_req) << hold_sfg << hold
    hold << cnd(hold_req) << hold_sfg << hold
    hold << ~cnd(hold_req) << run_sfg << execute

    process = TimedProcess("pcctrl", clk, fsm=fsm, sfgs=[sample])
    process.add_input("hold", hold_pin)
    process.add_input("pc_op", pc_op)
    process.add_input("cond_sel", cond_sel)
    process.add_input("target", target)
    for name in CONDITIONS:
        process.add_input(name, flags[name])
    process.add_output("pc", pc)
    process.add_output("hold_active", hold_active)
    return process
