"""The transceiver's RAM cells, modeled as high-level untimed blocks.

Paper, section 4: *"the RAM cells are described at high level while the
datapaths are described at clock cycle true level"* — exactly the mixed
timed/untimed situation the cycle scheduler's three phases exist for.

Seven RAM cells (as in the paper's 75 Kgate complexity figure):
``samp_i``, ``samp_q`` (burst sample capture), ``coef_re``, ``coef_im``
(equalizer coefficients), ``out_a``, ``out_b`` (decoded field buffers)
and ``scratch`` (general storage for the ALU/CTL).
"""

from __future__ import annotations

from typing import Dict, List

from ...core import UntimedProcess
from ...fixpt import Fx


class Ram(UntimedProcess):
    """A single-write dual-read synchronous-write RAM cell.

    Reads are combinational (the data token is produced within the same
    cycle, as in the paper's datapath/RAM loop of Fig. 6); the write
    commits before the read of the *next* cycle.
    """

    def __init__(self, name: str, depth: int, second_read_port: bool = False,
                 write_gate: bool = False):
        super().__init__(name)
        self.depth = depth
        self.data: List = [0] * depth
        self.second_read_port = second_read_port
        self.write_gate = write_gate
        self.add_input("addr")
        self.add_output("q")
        if second_read_port:
            self.add_input("addr_b")
            self.add_output("q_b")
        self.add_input("we")
        if write_gate:
            self.add_input("wgate")
        self.add_input("waddr")
        self.add_input("wdata")
        self.writes = 0

    def _index(self, addr) -> int:
        return int(addr) % self.depth

    def behavior(self, addr, we, waddr, wdata, addr_b=None, wgate=1):
        q = self.data[self._index(addr)]
        result = {"q": q}
        if self.second_read_port:
            result["q_b"] = self.data[self._index(addr_b)]
        if int(we) and int(wgate):
            self.data[self._index(waddr)] = wdata
            self.writes += 1
        return result

    def dump(self) -> List:
        """The current memory contents (testbench access)."""
        return list(self.data)

    def load(self, values) -> None:
        """Preload memory contents (testbench access)."""
        for index, value in enumerate(values):
            self.data[index % self.depth] = value


def build_rams() -> Dict[str, Ram]:
    """The transceiver's seven RAM cells."""
    return {
        "samp_i": Ram("samp_i", depth=1024),
        "samp_q": Ram("samp_q", depth=1024),
        "coef_re": Ram("coef_re", depth=16),
        "coef_im": Ram("coef_im", depth=16),
        "out_a": Ram("out_a", depth=64, write_gate=True),
        "out_b": Ram("out_b", depth=512, write_gate=True),
        "scratch": Ram("scratch", depth=64),
    }
