"""The 22 datapaths of the DECT transceiver (paper Fig. 5).

Each datapath is a timed component whose single static SFG decodes an
instruction input — the hardware equivalent of the paper's "each decoding
between 2 and 57 instructions".  Opcode 0 is NOP (hold) in every
datapath, so distributing all-zero instruction fields freezes the
datapath state exactly as Fig. 2's hold behaviour requires.

All datapaths share one clock and are steered by the central VLIW
controller; the builders here return :class:`~repro.core.TimedProcess`
objects with their port sets, and :func:`build_all` instantiates the full
set.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ...core import (
    SFG,
    Clock,
    Expr,
    Register,
    Sig,
    TimedProcess,
    bit,
    eq,
    ge,
    gt,
    mux,
)
from ...dsp.dect import RCRC_POLY, SYNC_RFP
from ...fixpt import FxFormat, Overflow, quantize
from . import formats as F
from .formats import field_width, opcode

#: LMS step: mu = 2**-MU_SHIFT.
MU_SHIFT = 5


def _instr_fmt(table) -> FxFormat:
    return FxFormat(field_width(table), field_width(table), signed=False)


def _decode(instr: Sig, table, cases: Dict[str, Expr], default: Expr) -> Expr:
    """Priority mux chain: instruction decode for one target."""
    expr = default
    for name in reversed(list(cases)):
        expr = mux(eq(instr, opcode(table, name)), cases[name], expr)
    return expr


def build_io(name: str, clk: Clock) -> TimedProcess:
    """Input interface (2 instructions): latch one sample channel.

    Outputs the latched sample and an ``ack`` pulse on LOAD so the
    testbench can pace the sample stream to the microcode.
    """
    table = F.IO_OPS
    instr = Sig(f"{name}_instr", _instr_fmt(table))
    sample_in = Sig(f"{name}_in", F.SAMPLE)
    held = Register(f"{name}_held", clk, F.SAMPLE)
    ack = Sig(f"{name}_ack", F.BIT)
    sfg = SFG(name)
    with sfg:
        held <<= _decode(instr, table, {"LOAD": sample_in}, held)
        ack <<= eq(instr, opcode(table, "LOAD"))
    sfg.inp(instr, sample_in).out(ack)
    process = TimedProcess(name, clk, sfgs=[sfg])
    process.add_input("instr", instr)
    process.add_input("sample", sample_in)
    process.add_output("q", held)
    process.add_output("ack", ack)
    return process


def build_agc(clk: Clock) -> TimedProcess:
    """Gain scaling (4 instructions): pass / double / halve both rails."""
    table = F.AGC_OPS
    instr = Sig("agc_instr", _instr_fmt(table))
    in_i = Sig("agc_in_i", F.SAMPLE)
    in_q = Sig("agc_in_q", F.SAMPLE)
    out_i = Register("agc_i", clk, F.SAMPLE)
    out_q = Register("agc_q", clk, F.SAMPLE)
    sfg = SFG("agc")
    with sfg:
        for src, dst in ((in_i, out_i), (in_q, out_q)):
            dst <<= _decode(instr, table, {
                "PASS": src,
                "SHL": src << 1,
                "SHR": src >> 1,
            }, dst)
    sfg.inp(instr, in_i, in_q)
    process = TimedProcess("agc", clk, sfgs=[sfg])
    process.add_input("instr", instr)
    process.add_input("i", in_i)
    process.add_input("q", in_q)
    process.add_output("yi", out_i)
    process.add_output("yq", out_q)
    return process


def build_fir_slice(index: int, n_taps: int, clk: Clock) -> TimedProcess:
    """One FIR slice (8 instructions): *n_taps* complex taps of the
    15-tap T/2-spaced equalizer.

    SHIFT pushes the incoming complex sample through the local delay
    slots (cascading the oldest slot to the next slice); LC0..LC3 load a
    complex coefficient from the CTL coefficient bus into tap k.  The
    complex partial sum is produced every cycle.
    """
    table = F.FIR_OPS
    name = f"fir{index}"
    instr = Sig(f"{name}_instr", _instr_fmt(table))
    in_re = Sig(f"{name}_in_re", F.SAMPLE)
    in_im = Sig(f"{name}_in_im", F.SAMPLE)
    coef_re = Sig(f"{name}_cre", F.COEF)
    coef_im = Sig(f"{name}_cim", F.COEF)
    slots_re = [Register(f"{name}_xre{k}", clk, F.SAMPLE) for k in range(n_taps)]
    slots_im = [Register(f"{name}_xim{k}", clk, F.SAMPLE) for k in range(n_taps)]
    taps_re = [Register(f"{name}_wre{k}", clk, F.COEF) for k in range(n_taps)]
    taps_im = [Register(f"{name}_wim{k}", clk, F.COEF) for k in range(n_taps)]
    p_re = Sig(f"{name}_pre", F.ACC)
    p_im = Sig(f"{name}_pim", F.ACC)

    sfg = SFG(name)
    with sfg:
        shifting = eq(instr, opcode(table, "SHIFT"))
        clearing = eq(instr, opcode(table, "CLRD"))
        for k in range(n_taps):
            source = in_re if k == 0 else slots_re[k - 1]
            slots_re[k] <<= mux(clearing, 0,
                                mux(shifting, source, slots_re[k]))
            source_im = in_im if k == 0 else slots_im[k - 1]
            slots_im[k] <<= mux(clearing, 0,
                                mux(shifting, source_im, slots_im[k]))
        coef_clear = eq(instr, opcode(table, "CLRC"))
        for k in range(n_taps):
            load = eq(instr, opcode(table, f"LC{k}")) if k < 4 else None
            if load is not None:
                taps_re[k] <<= mux(coef_clear, 0,
                                   mux(load, coef_re, taps_re[k]))
                taps_im[k] <<= mux(coef_clear, 0,
                                   mux(load, coef_im, taps_im[k]))
            else:
                taps_re[k] <<= mux(coef_clear, 0, taps_re[k])
                taps_im[k] <<= mux(coef_clear, 0, taps_im[k])
        # Complex partial sums over the current (pre-shift) slots.
        sum_re: Expr = None
        sum_im: Expr = None
        for k in range(n_taps):
            term_re = taps_re[k] * slots_re[k] - taps_im[k] * slots_im[k]
            term_im = taps_re[k] * slots_im[k] + taps_im[k] * slots_re[k]
            sum_re = term_re if sum_re is None else sum_re + term_re
            sum_im = term_im if sum_im is None else sum_im + term_im
        p_re <<= sum_re
        p_im <<= sum_im
    sfg.inp(instr, in_re, in_im, coef_re, coef_im).out(p_re, p_im)

    process = TimedProcess(name, clk, sfgs=[sfg])
    process.add_input("instr", instr)
    process.add_input("in_re", in_re)
    process.add_input("in_im", in_im)
    process.add_input("coef_re", coef_re)
    process.add_input("coef_im", coef_im)
    process.add_output("p_re", p_re)
    process.add_output("p_im", p_im)
    # Cascade: the oldest slot's *current* value feeds the next slice.
    process.add_output("cas_re", slots_re[-1])
    process.add_output("cas_im", slots_im[-1])
    return process


def build_sum(clk: Clock) -> TimedProcess:
    """Partial-sum combiner (6 instructions): the FIR output y."""
    table = F.SUM_OPS
    instr = Sig("sum_instr", _instr_fmt(table))
    parts_re = [Sig(f"sum_re{i}", F.ACC) for i in range(4)]
    parts_im = [Sig(f"sum_im{i}", F.ACC) for i in range(4)]
    y_re = Register("sum_yre", clk, F.ACC)
    y_im = Register("sum_yim", clk, F.ACC)
    center_re = Register("sum_cre", clk, F.ACC)
    center_im = Register("sum_cim", clk, F.ACC)
    sfg = SFG("sum")
    with sfg:
        total_re = parts_re[0] + parts_re[1] + parts_re[2] + parts_re[3]
        total_im = parts_im[0] + parts_im[1] + parts_im[2] + parts_im[3]
        y_re <<= _decode(instr, table, {"SUM": total_re, "CLR": 0}, y_re)
        y_im <<= _decode(instr, table, {"SUM": total_im, "CLR": 0}, y_im)
        center_re <<= _decode(instr, table,
                              {"SAVEC": y_re, "CLR": 0}, center_re)
        center_im <<= _decode(instr, table,
                              {"SAVEC": y_im, "CLR": 0}, center_im)
    sfg.inp(instr, *parts_re, *parts_im)
    process = TimedProcess("sum", clk, sfgs=[sfg])
    process.add_input("instr", instr)
    for i in range(4):
        process.add_input(f"p_re{i}", parts_re[i])
        process.add_input(f"p_im{i}", parts_im[i])
    process.add_output("y_re", y_re)
    process.add_output("y_im", y_im)
    process.add_output("c_re", center_re)
    process.add_output("c_im", center_im)
    return process


def build_disc(clk: Clock) -> TimedProcess:
    """Discriminator (7 instructions).

    SOFT computes the small-angle phase difference between the current
    equalized center sample and the previous one (soft = Im(c * conj(p)))
    and saves the new previous; SOFTRAW/SAVERAW do the same on the raw
    AGC output rails (the sync-hunt path, before coefficients exist).
    """
    table = F.DISC_OPS
    instr = Sig("disc_instr", _instr_fmt(table))
    c_re = Sig("disc_cre", F.ACC)
    c_im = Sig("disc_cim", F.ACC)
    raw_re = Sig("disc_rre", F.SAMPLE)
    raw_im = Sig("disc_rim", F.SAMPLE)
    prev_re = Register("disc_pre", clk, F.ACC)
    prev_im = Register("disc_pim", clk, F.ACC)
    soft = Register("disc_soft", clk, F.SOFT)
    sfg = SFG("disc")
    with sfg:
        eq_soft = c_im * prev_re - c_re * prev_im
        raw_soft = raw_im * prev_re - raw_re * prev_im
        soft <<= _decode(instr, table, {
            "SOFT": eq_soft,
            "SOFTRAW": raw_soft,
            "CLR": 0,
        }, soft)
        save = eq(instr, opcode(table, "SOFT")) \
            | eq(instr, opcode(table, "SAVE"))
        save_raw = eq(instr, opcode(table, "SOFTRAW")) \
            | eq(instr, opcode(table, "SAVERAW"))
        clear = eq(instr, opcode(table, "CLR"))
        prev_re <<= mux(clear, 0,
                        mux(save, c_re, mux(save_raw, raw_re, prev_re)))
        prev_im <<= mux(clear, 0,
                        mux(save, c_im, mux(save_raw, raw_im, prev_im)))
    sfg.inp(instr, c_re, c_im, raw_re, raw_im)
    process = TimedProcess("disc", clk, sfgs=[sfg])
    process.add_input("instr", instr)
    process.add_input("c_re", c_re)
    process.add_input("c_im", c_im)
    process.add_input("raw_re", raw_re)
    process.add_input("raw_im", raw_im)
    process.add_output("soft", soft)
    return process


def build_slicer(clk: Clock) -> TimedProcess:
    """Hard decision (3 instructions)."""
    table = F.SLICER_OPS
    instr = Sig("slicer_instr", _instr_fmt(table))
    soft = Sig("slicer_soft", F.SOFT)
    bit_reg = Register("slicer_bit", clk, F.BIT)
    sfg = SFG("slicer")
    with sfg:
        bit_reg <<= _decode(instr, table, {"SLICE": gt(soft, 0)}, bit_reg)
    sfg.inp(instr, soft)
    process = TimedProcess("slicer", clk, sfgs=[sfg])
    process.add_input("instr", instr)
    process.add_input("soft", soft)
    process.add_output("bit", bit_reg)
    return process


def build_hcor_dp(clk: Clock) -> TimedProcess:
    """Embedded header correlator (5 instructions).

    SHIFT pushes a soft symbol through the 16-stage window and updates
    the correlation register; the threshold datapath consumes it.
    """
    table = F.HCOR_OPS
    instr = Sig("hcor_instr", _instr_fmt(table))
    soft = Sig("hcor_soft", F.SOFT)
    window = [Register(f"hcor_w{k}", clk, F.SOFT) for k in range(16)]
    corr = Register("hcor_corr", clk, F.CORR)
    pattern = list(SYNC_RFP)
    sfg = SFG("hcor_dp")
    with sfg:
        shifting = eq(instr, opcode(table, "SHIFT"))
        clearing = eq(instr, opcode(table, "CLR"))
        for k in range(16):
            source = soft if k == 0 else window[k - 1]
            window[k] <<= mux(clearing, 0,
                              mux(shifting, source, window[k]))
        incoming = [soft] + window[:-1]
        total: Expr = None
        for k in range(16):
            term = incoming[k] if pattern[15 - k] else -incoming[k]
            total = term if total is None else total + term
        corr <<= mux(clearing, 0, mux(shifting, total, corr))
    sfg.inp(instr, soft)
    process = TimedProcess("hcor_dp", clk, sfgs=[sfg])
    process.add_input("instr", instr)
    process.add_input("soft", soft)
    process.add_output("corr", corr)
    return process


#: Sync detection threshold.  Partial pattern overlaps reach ~10.5 on
#: hard multipath channels while true peaks exceed 14; 12.75 rejects the
#: partials with margin on both sides.
SYNC_THRESHOLD = 12.75


def build_thresh(clk: Clock, threshold: float = SYNC_THRESHOLD) -> TimedProcess:
    """Sync threshold detector (4 instructions); `hit` is a PC condition."""
    table = F.THRESH_OPS
    instr = Sig("thresh_instr", _instr_fmt(table))
    corr = Sig("thresh_corr", F.CORR)
    hit = Register("thresh_hit", clk, F.BIT)
    sfg = SFG("thresh")
    with sfg:
        hit <<= _decode(instr, table, {
            "CMP": ge(corr, quantize(threshold, F.CORR)),
            "CLR": 0,
        }, hit)
    sfg.inp(instr, corr)
    process = TimedProcess("thresh", clk, sfgs=[sfg])
    process.add_input("instr", instr)
    process.add_input("corr", corr)
    process.add_output("hit", hit)
    return process


def build_symcnt(clk: Clock, a_len: int = 64, d_len: int = 388,
                 burst_len: int = 420) -> TimedProcess:
    """Symbol counter and burst phase flags (8 instructions)."""
    table = F.SYMCNT_OPS
    instr = Sig("symcnt_instr", _instr_fmt(table))
    count = Register("symcnt", clk, F.COUNT)
    a_done = Register("symcnt_a", clk, F.BIT)
    d_done = Register("symcnt_d", clk, F.BIT)
    b_done = Register("symcnt_b", clk, F.BIT)
    sfg = SFG("symcnt")
    with sfg:
        count <<= _decode(instr, table, {
            "CLR": 0,
            "INC": count + 1,
            "DEC": count - 1,
        }, count)
        a_done <<= _decode(instr, table,
                           {"CMPA": ge(count, a_len), "CLR": 0}, a_done)
        d_done <<= _decode(instr, table,
                           {"CMPD": ge(count, d_len), "CLR": 0}, d_done)
        b_done <<= _decode(instr, table,
                           {"CMPB": ge(count, burst_len), "CLR": 0}, b_done)
    sfg.inp(instr)
    process = TimedProcess("symcnt", clk, sfgs=[sfg])
    process.add_input("instr", instr)
    process.add_output("count", count)
    process.add_output("a_done", a_done)
    process.add_output("d_done", d_done)
    process.add_output("b_done", b_done)
    return process


def build_crc(clk: Clock) -> TimedProcess:
    """A-field R-CRC LFSR (5 instructions); `ok` is a PC condition."""
    table = F.CRC_OPS
    crc_fmt = FxFormat(16, 16, signed=False, overflow=Overflow.WRAP)
    instr = Sig("crc_instr", _instr_fmt(table))
    data = Sig("crc_bit", F.BIT)
    lfsr = Register("crc_lfsr", clk, crc_fmt)
    ok = Register("crc_ok", clk, F.BIT)
    poly_low = RCRC_POLY & 0xFFFF
    sfg = SFG("crc")
    with sfg:
        carry = bit(lfsr, 15)
        shifted = (lfsr << 1) | data
        reduced = mux(carry, shifted ^ poly_low, shifted)
        shifted0 = lfsr << 1
        reduced0 = mux(carry, shifted0 ^ poly_low, shifted0)
        lfsr <<= _decode(instr, table,
                         {"CLR": 0, "SHIFT": reduced, "SHIFT0": reduced0},
                         lfsr)
        ok <<= _decode(instr, table, {"CHECK": eq(lfsr, 0), "CLR": 0}, ok)
    sfg.inp(instr, data)
    process = TimedProcess("crc", clk, sfgs=[sfg])
    process.add_input("instr", instr)
    process.add_input("bit", data)
    process.add_output("ok", ok)
    process.add_output("lfsr", lfsr)
    return process


def build_deframe(clk: Clock) -> TimedProcess:
    """Field steering (6 instructions): which field the current bit is in."""
    table = F.DEFRAME_OPS
    instr = Sig("deframe_instr", _instr_fmt(table))
    field = Register("deframe_field", clk, FxFormat(2, 2, signed=False))
    a_en = Sig("deframe_a_en", F.BIT)
    b_en = Sig("deframe_b_en", F.BIT)
    sfg = SFG("deframe")
    with sfg:
        field <<= _decode(instr, table, {
            "CLR": 0, "AMODE": 1, "BMODE": 2, "XMODE": 3,
        }, field)
        a_en <<= eq(field, 1)
        b_en <<= eq(field, 2)
    sfg.inp(instr).out(a_en, b_en)
    process = TimedProcess("deframe", clk, sfgs=[sfg])
    process.add_input("instr", instr)
    process.add_output("field", field)
    process.add_output("a_en", a_en)
    process.add_output("b_en", b_en)
    return process


def _build_counter(name: str, table, clk: Clock) -> TimedProcess:
    """Generic address counter (5 instructions): CLR / INC / RST."""
    instr = Sig(f"{name}_instr", _instr_fmt(table))
    addr = Register(f"{name}_addr", clk, F.ADDR)
    sfg = SFG(name)
    with sfg:
        addr <<= _decode(instr, table, {
            "CLR": 0, "INC": addr + 1, "RST": 0,
        }, addr)
    sfg.inp(instr)
    process = TimedProcess(name, clk, sfgs=[sfg])
    process.add_input("instr", instr)
    process.add_output("addr", addr)
    return process


def build_outadr(clk: Clock) -> TimedProcess:
    """Output RAM address generator (5 instructions)."""
    return _build_counter("outadr", F.OUTADR_OPS, clk)


def build_coefadr(clk: Clock) -> TimedProcess:
    """Coefficient-load sequencer (5 instructions)."""
    return _build_counter("coefadr", F.COEFADR_OPS, clk)


def build_drout(clk: Clock) -> TimedProcess:
    """Wire-link driver output (4 instructions): bit-to-byte serializer."""
    table = F.DROUT_OPS
    instr = Sig("drout_instr", _instr_fmt(table))
    data = Sig("drout_bit", F.BIT)
    shift = Register("drout_shift", clk,
                     FxFormat(8, 8, signed=False, overflow=Overflow.WRAP))
    word = Register("drout_word", clk, F.BYTE)
    valid = Sig("drout_valid", F.BIT)
    push = Sig("drout_push", F.BIT)
    sfg = SFG("drout")
    with sfg:
        shift <<= _decode(instr, table,
                          {"PUSH": (shift << 1) | data, "WORD": 0}, shift)
        word <<= _decode(instr, table, {"WORD": shift}, word)
        valid <<= eq(instr, opcode(table, "WORD"))
        push <<= eq(instr, opcode(table, "PUSH"))
    sfg.inp(instr, data).out(valid, push)
    process = TimedProcess("drout", clk, sfgs=[sfg])
    process.add_input("instr", instr)
    process.add_input("bit", data)
    process.add_output("word", word)
    process.add_output("valid", valid)
    process.add_output("push", push)
    return process


def build_ctlreg(clk: Clock) -> TimedProcess:
    """Control/status register for the CTL component (4 instructions)."""
    table = F.CTLREG_OPS
    instr = Sig("ctlreg_instr", _instr_fmt(table))
    crc_ok = Sig("ctlreg_crcin", F.BIT)
    status = Register("ctl_status", clk, FxFormat(4, 4, signed=False))
    sfg = SFG("ctlreg")
    with sfg:
        status <<= _decode(instr, table, {
            "SETSYNC": status | 1,
            "SETCRC": status | mux(crc_ok, 2, 4),
            "CLR": 0,
        }, status)
    sfg.inp(instr, crc_ok)
    process = TimedProcess("ctlreg", clk, sfgs=[sfg])
    process.add_input("instr", instr)
    process.add_input("crc_ok", crc_ok)
    process.add_output("status", status)
    return process


def build_lms(clk: Clock) -> TimedProcess:
    """LMS coefficient-update lane (10 instructions).

    Computes w' = w - mu * e * conj(x) with mu = 2**-MU_SHIFT, one
    complex tap per UPDRE/UPDIM pair; WR pulses the coefficient-RAM
    write enable.
    """
    table = F.LMS_OPS
    instr = Sig("lms_instr", _instr_fmt(table))
    e_in_re = Sig("lms_ein_re", F.SOFT)
    e_in_im = Sig("lms_ein_im", F.SOFT)
    x_re = Sig("lms_xre", F.SAMPLE)
    x_im = Sig("lms_xim", F.SAMPLE)
    w_re = Sig("lms_wre", F.COEF)
    w_im = Sig("lms_wim", F.COEF)
    e_re = Register("lms_ere", clk, F.SOFT)
    e_im = Register("lms_eim", clk, F.SOFT)
    out_re = Register("lms_ore", clk, F.COEF)
    out_im = Register("lms_oim", clk, F.COEF)
    we = Sig("lms_we", F.BIT)
    sfg = SFG("lms")
    with sfg:
        e_re <<= _decode(instr, table, {
            "LOADE": e_in_re,
            "NEGE": -e_re,
            "SCALE": e_re >> 1,
            "CLR": 0,
        }, e_re)
        e_im <<= _decode(instr, table, {
            "LOADE": e_in_im,
            "NEGE": -e_im,
            "SCALE": e_im >> 1,
            "CLR": 0,
        }, e_im)
        grad_re = (e_re * x_re + e_im * x_im) >> MU_SHIFT
        grad_im = (e_im * x_re - e_re * x_im) >> MU_SHIFT
        out_re <<= _decode(instr, table, {
            "UPDRE": w_re - grad_re,
            "PASS": w_re,
            "CLR": 0,
        }, out_re)
        out_im <<= _decode(instr, table, {
            "UPDIM": w_im - grad_im,
            "PASS": w_im,
            "CLR": 0,
        }, out_im)
        we <<= eq(instr, opcode(table, "WR"))
    sfg.inp(instr, e_in_re, e_in_im, x_re, x_im, w_re, w_im).out(we)
    process = TimedProcess("lms", clk, sfgs=[sfg])
    process.add_input("instr", instr)
    process.add_input("e_re", e_in_re)
    process.add_input("e_im", e_in_im)
    process.add_input("x_re", x_re)
    process.add_input("x_im", x_im)
    process.add_input("w_re", w_re)
    process.add_input("w_im", w_im)
    process.add_output("out_re", out_re)
    process.add_output("out_im", out_im)
    process.add_output("we", we)
    return process


def build_alu(clk: Clock) -> TimedProcess:
    """General-purpose ALU — the 57-instruction datapath of the paper.

    Four 16-bit registers; every operation targets one register with the
    next register around as the implicit source, giving NOP + 14 ops x 4
    destinations = 57 decoded instructions.
    """
    table = F.ALU_OPS
    instr = Sig("alu_instr", _instr_fmt(table))
    ext = Sig("alu_ext", F.WORD16)
    regs = [Register(f"alu_r{k}", clk, F.WORD16) for k in range(4)]
    flag = Register("alu_flag", clk, F.BIT)
    sfg = SFG("alu")
    with sfg:
        flag_cases: Dict[str, Expr] = {}
        for k in range(4):
            dst = regs[k]
            src = regs[(k + 1) % 4]
            cases: Dict[str, Expr] = {
                f"ADD{k}": dst + src,
                f"SUB{k}": dst - src,
                f"AND{k}": dst & src,
                f"OR{k}": dst | src,
                f"XOR{k}": dst ^ src,
                f"SHL{k}": dst << 1,
                f"SHR{k}": dst >> 1,
                f"INC{k}": dst + 1,
                f"DEC{k}": dst - 1,
                f"NEG{k}": -dst,
                f"NOT{k}": ~dst,
                f"PASS{k}": ext,
            }
            dst <<= _decode(instr, table, cases, dst)
            flag_cases[f"CMPLT{k}"] = gt(src, dst)
            flag_cases[f"CMPEQ{k}"] = eq(dst, src)
        flag <<= _decode(instr, table, flag_cases, flag)
    sfg.inp(instr, ext)
    process = TimedProcess("alu", clk, sfgs=[sfg])
    process.add_input("instr", instr)
    process.add_input("ext", ext)
    for k in range(4):
        process.add_output(f"r{k}", regs[k])
    process.add_output("flag", flag)
    return process


#: Declaration order of the 22 datapaths with their opcode tables —
#: this is also the field order of the VLIW instruction word.
DATAPATH_TABLES = [
    ("io_i", F.IO_OPS),
    ("io_q", F.IO_OPS),
    ("agc", F.AGC_OPS),
    ("fir0", F.FIR_OPS),
    ("fir1", F.FIR_OPS),
    ("fir2", F.FIR_OPS),
    ("fir3", F.FIR_OPS),
    ("sum", F.SUM_OPS),
    ("disc", F.DISC_OPS),
    ("slicer", F.SLICER_OPS),
    ("hcor_dp", F.HCOR_OPS),
    ("thresh", F.THRESH_OPS),
    ("symcnt", F.SYMCNT_OPS),
    ("crc", F.CRC_OPS),
    ("deframe", F.DEFRAME_OPS),
    ("outadr", F.OUTADR_OPS),
    ("coefadr", F.COEFADR_OPS),
    ("drout", F.DROUT_OPS),
    ("ctlreg", F.CTLREG_OPS),
    ("lms", F.LMS_OPS),
    ("alu", F.ALU_OPS),
    ("dbg", F.IO_OPS),
]


def build_dbg(clk: Clock) -> TimedProcess:
    """Observation register (2 instructions): snapshots the soft symbol."""
    table = F.IO_OPS
    instr = Sig("dbg_instr", _instr_fmt(table))
    probe = Sig("dbg_in", F.SOFT)
    held = Register("dbg_held", clk, F.SOFT)
    sfg = SFG("dbg")
    with sfg:
        held <<= _decode(instr, table, {"LOAD": probe}, held)
    sfg.inp(instr, probe)
    process = TimedProcess("dbg", clk, sfgs=[sfg])
    process.add_input("instr", instr)
    process.add_input("probe", probe)
    process.add_output("q", held)
    return process


def build_all(clk: Clock) -> Dict[str, TimedProcess]:
    """Instantiate all 22 datapaths on one clock."""
    datapaths: Dict[str, TimedProcess] = {
        "io_i": build_io("io_i", clk),
        "io_q": build_io("io_q", clk),
        "agc": build_agc(clk),
        "sum": build_sum(clk),
        "disc": build_disc(clk),
        "slicer": build_slicer(clk),
        "hcor_dp": build_hcor_dp(clk),
        "thresh": build_thresh(clk),
        "symcnt": build_symcnt(clk),
        "crc": build_crc(clk),
        "deframe": build_deframe(clk),
        "outadr": build_outadr(clk),
        "coefadr": build_coefadr(clk),
        "drout": build_drout(clk),
        "ctlreg": build_ctlreg(clk),
        "lms": build_lms(clk),
        "alu": build_alu(clk),
        "dbg": build_dbg(clk),
    }
    for index, taps in enumerate(F.TAPS_PER_SLICE):
        datapaths[f"fir{index}"] = build_fir_slice(index, taps, clk)
    return datapaths
