"""The assembled DECT transceiver ASIC (paper Fig. 5).

Central VLIW controller + program-counter controller + instruction ROM +
22 datapaths + 7 RAM cells, wired into one :class:`~repro.core.System`.
:class:`DectTransceiver` adds the testbench-side conveniences: sample
pacing (the chip's LOAD acks clock the stream), coefficient loading over
the CTL bus, and result extraction from the output RAMs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ...core import Channel, System
from ...fixpt import Fx, quantize
from ...sim import CycleScheduler
from . import formats as F
from .controller import build_vliw
from .datapaths import build_all
from .irom import CONDITIONS, InstructionRom, Program
from .pcctrl import build_pcctrl
from .program import burst_program
from .ram import Ram, build_rams


@dataclass
class DectChip:
    """The wired system plus its external channels."""

    system: System
    clk: "Clock"
    datapaths: Dict[str, "TimedProcess"]
    rams: Dict[str, Ram]
    irom: InstructionRom
    # external input channels
    sample_i: Channel
    sample_q: Channel
    hold: Channel
    coef_re: Channel
    coef_im: Channel
    # observability channels
    pc: Channel
    status: Channel
    soft: Channel
    ack: Channel
    sym_count: Channel
    dr_word: Channel
    dr_valid: Channel


def build_transceiver(program: Optional[Program] = None,
                      a_len: int = 64, payload_len: int = 388) -> DectChip:
    """Wire the full transceiver system."""
    from ...core import Clock

    clk = Clock("dect_clk")
    dps = build_all(clk)
    rams = build_rams()
    vliw = build_vliw(clk)
    pcctrl = build_pcctrl(clk)
    if program is None:
        program = burst_program(a_len=a_len, payload_len=payload_len)
    irom = InstructionRom(program.assemble())

    # symcnt compare constants must match the program's field lengths.
    from .datapaths import build_symcnt

    dps["symcnt"] = build_symcnt(clk, a_len=a_len, d_len=payload_len)

    system = System("dect_transceiver")
    for process in dps.values():
        system.add(process)
    for ram in rams.values():
        system.add(ram)
    system.add(vliw)
    system.add(pcctrl)
    system.add(irom)

    def port(name: str, port_name: str):
        return (dps[name] if name in dps else
                {"vliw": vliw, "pcctrl": pcctrl}[name]).port(port_name)

    connect = system.connect

    # -- sequencer spine -----------------------------------------------------------
    pc_chan = connect(pcctrl.port("pc"), irom.port("pc"), name="pc")
    connect(irom.port("word"), vliw.port("word"), name="iword")
    connect(pcctrl.port("hold_active"), vliw.port("hold_active"),
            name="hold_active")
    connect(vliw.port("pc_op"), pcctrl.port("pc_op"))
    connect(vliw.port("cond"), pcctrl.port("cond_sel"))
    connect(vliw.port("target"), pcctrl.port("target"))

    # instruction busses
    for name in dps:
        connect(vliw.port(name), dps[name].port("instr"),
                name=f"ibus_{name}")

    # condition flags
    connect(dps["thresh"].port("hit"), pcctrl.port("hit"), name="c_hit")
    connect(dps["symcnt"].port("a_done"), pcctrl.port("a_done"),
            name="c_a_done")
    connect(dps["symcnt"].port("d_done"), pcctrl.port("d_done"),
            name="c_d_done")
    connect(dps["symcnt"].port("b_done"), pcctrl.port("b_done"),
            name="c_b_done")
    crc_ok = connect(dps["crc"].port("ok"), pcctrl.port("crc_ok"),
                     dps["ctlreg"].port("crc_ok"), name="c_crc_ok")
    connect(dps["alu"].port("flag"), pcctrl.port("alu_flag"),
            rams["scratch"].port("we"), name="c_alu_flag")

    # -- external pins ----------------------------------------------------------------
    sample_i = connect(None, dps["io_i"].port("sample"), name="sample_i")
    sample_q = connect(None, dps["io_q"].port("sample"), name="sample_q")
    hold = connect(None, pcctrl.port("hold"), name="hold_request")
    coef_re = connect(None, *(dps[f"fir{i}"].port("coef_re")
                              for i in range(4)), name="ctl_coef_re")
    coef_im = connect(None, *(dps[f"fir{i}"].port("coef_im")
                              for i in range(4)), name="ctl_coef_im")

    # -- receive datapath ----------------------------------------------------------------
    ack = connect(dps["io_i"].port("ack"), name="ack_i")
    connect(dps["io_q"].port("ack"), rams["samp_q"].port("we"), name="ack_q")
    system.attach(ack, rams["samp_i"].port("we"))
    connect(dps["io_i"].port("q"), dps["agc"].port("i"))
    connect(dps["io_q"].port("q"), dps["agc"].port("q"))
    agc_i = connect(dps["agc"].port("yi"), dps["fir0"].port("in_re"),
                    dps["disc"].port("raw_re"), rams["samp_i"].port("wdata"))
    agc_q = connect(dps["agc"].port("yq"), dps["fir0"].port("in_im"),
                    dps["disc"].port("raw_im"), rams["samp_q"].port("wdata"))
    for i in range(3):
        connect(dps[f"fir{i}"].port("cas_re"),
                dps[f"fir{i + 1}"].port("in_re"))
        connect(dps[f"fir{i}"].port("cas_im"),
                dps[f"fir{i + 1}"].port("in_im"))
    lms_x_re = connect(dps["fir3"].port("cas_re"), dps["lms"].port("x_re"))
    lms_x_im = connect(dps["fir3"].port("cas_im"), dps["lms"].port("x_im"))
    for i in range(4):
        connect(dps[f"fir{i}"].port("p_re"), dps["sum"].port(f"p_re{i}"))
        connect(dps[f"fir{i}"].port("p_im"), dps["sum"].port(f"p_im{i}"))
    connect(dps["sum"].port("y_re"), dps["disc"].port("c_re"))
    connect(dps["sum"].port("y_im"), dps["disc"].port("c_im"))
    connect(dps["sum"].port("c_re"), name="sum_center_re")
    connect(dps["sum"].port("c_im"), name="sum_center_im")
    soft = connect(dps["disc"].port("soft"), dps["slicer"].port("soft"),
                   dps["hcor_dp"].port("soft"), dps["dbg"].port("probe"),
                   dps["lms"].port("e_re"), dps["lms"].port("e_im"),
                   name="soft")
    connect(dps["hcor_dp"].port("corr"), dps["thresh"].port("corr"))
    bit_chan = connect(dps["slicer"].port("bit"), dps["crc"].port("bit"),
                       dps["drout"].port("bit"),
                       rams["out_a"].port("wdata"),
                       rams["out_b"].port("wdata"), name="bit")

    # -- output / bookkeeping ---------------------------------------------------------
    sym_count = connect(dps["symcnt"].port("count"),
                        rams["samp_i"].port("waddr"),
                        rams["samp_q"].port("waddr"), name="sym_count")
    out_addr = connect(dps["outadr"].port("addr"),
                       rams["out_a"].port("waddr"),
                       rams["out_b"].port("waddr"),
                       rams["out_a"].port("addr"),
                       rams["out_b"].port("addr"),
                       rams["samp_i"].port("addr"),
                       rams["samp_q"].port("addr"), name="out_addr")
    push = connect(dps["drout"].port("push"), rams["out_a"].port("we"),
                   rams["out_b"].port("we"), name="push")
    connect(dps["deframe"].port("a_en"), rams["out_a"].port("wgate"))
    connect(dps["deframe"].port("b_en"), rams["out_b"].port("wgate"))
    connect(dps["deframe"].port("field"), name="field")
    dr_word = connect(dps["drout"].port("word"), name="dr_word")
    dr_valid = connect(dps["drout"].port("valid"), name="dr_valid")
    status = connect(dps["ctlreg"].port("status"), name="ctl_status")
    connect(dps["crc"].port("lfsr"), name="crc_lfsr")
    connect(dps["dbg"].port("q"), name="dbg_q")

    # -- coefficient RAM / LMS lane -----------------------------------------------------
    coef_addr = connect(dps["coefadr"].port("addr"),
                        rams["coef_re"].port("addr"),
                        rams["coef_im"].port("addr"),
                        rams["coef_re"].port("waddr"),
                        rams["coef_im"].port("waddr"), name="coef_addr")
    connect(rams["coef_re"].port("q"), dps["lms"].port("w_re"))
    connect(rams["coef_im"].port("q"), dps["lms"].port("w_im"))
    connect(dps["lms"].port("we"), rams["coef_re"].port("we"),
            rams["coef_im"].port("we"), name="lms_we")
    connect(dps["lms"].port("out_re"), rams["coef_re"].port("wdata"))
    connect(dps["lms"].port("out_im"), rams["coef_im"].port("wdata"))

    # -- ALU / scratch RAM ----------------------------------------------------------------
    connect(dps["alu"].port("r3"), rams["scratch"].port("addr"),
            rams["scratch"].port("waddr"), name="alu_r3")
    connect(dps["alu"].port("r0"), rams["scratch"].port("wdata"),
            name="alu_r0")
    connect(rams["scratch"].port("q"), dps["alu"].port("ext"),
            name="scratch_q")
    connect(dps["alu"].port("r1"), name="alu_r1")
    connect(dps["alu"].port("r2"), name="alu_r2")

    return DectChip(
        system=system, clk=clk, datapaths=dps, rams=rams, irom=irom,
        sample_i=sample_i, sample_q=sample_q, hold=hold,
        coef_re=coef_re, coef_im=coef_im,
        pc=pc_chan, status=status, soft=soft, ack=ack,
        sym_count=sym_count, dr_word=dr_word, dr_valid=dr_valid,
    )


class DectTransceiver:
    """Testbench-level wrapper: build, drive, and read back the chip."""

    def __init__(self, a_len: int = 64, payload_len: int = 388,
                 program: Optional[Program] = None, obs=None):
        self.chip = build_transceiver(program=program, a_len=a_len,
                                      payload_len=payload_len)
        #: Optional :class:`repro.obs.Capture` shared by both engines.
        self.obs = obs
        self.scheduler = CycleScheduler(self.chip.system, obs=obs)
        self.cycles = 0

    @staticmethod
    def chip_coefficients(weights: Sequence[complex]) -> List[complex]:
        """Reorder reference equalizer weights for the causal chip FIR.

        Chip tap j holds reference weight ``N-1-j`` (the chip delay line
        runs newest-first), introducing the fixed decision delay.
        """
        weights = list(weights)
        return [weights[len(weights) - 1 - j] for j in range(len(weights))]

    def run_burst(self, samples: Sequence[complex],
                  coefficients: Sequence[complex],
                  max_cycles: int = 40000,
                  hold_cycles: Sequence[int] = ()) -> Dict[str, object]:
        """Feed a T/2-spaced complex sample stream through the chip.

        ``coefficients`` are in *chip order* (use
        :meth:`chip_coefficients` to convert reference weights).  The
        chip paces the stream via its LOAD acks.  ``hold_cycles`` lists
        testbench cycles during which the external hold_request pin is
        asserted (the Fig. 2 behaviour).
        """
        chip = self.chip
        scheduler = self.scheduler
        coefficients = list(coefficients)
        pointer = 0
        done_pc = len(chip.irom.words) - 1
        coef_index = 0
        hold_set = set(hold_cycles)
        pc_trace: List[int] = []
        soft_trace: List[float] = []

        for _cycle in range(max_cycles):
            sample = samples[pointer] if pointer < len(samples) else 0j
            coef = coefficients[min(coef_index, len(coefficients) - 1)]
            inputs = {
                chip.sample_i: float(np.real(sample)),
                chip.sample_q: float(np.imag(sample)),
                chip.hold: 1 if self.cycles in hold_set else 0,
                chip.coef_re: float(np.real(coef)),
                chip.coef_im: float(np.imag(coef)),
            }
            scheduler.step(inputs)
            self.cycles += 1
            # Chip-paced stream advance.
            if chip.ack.valid and int(chip.ack.value):
                pointer += 1
            # The CTL host tracks the coefficient-load sequencer.
            coef_index = int(chip.datapaths["coefadr"]
                             .port("addr").sig.current)
            pc_value = int(chip.pc.value) if chip.pc.valid else -1
            pc_trace.append(pc_value)
            if chip.soft.valid:
                soft_trace.append(float(chip.soft.value))
            if pc_value == done_pc and pointer > 16:
                break

        status = int(chip.status.value) if chip.status.valid else 0
        return {
            "cycles": self.cycles,
            "samples_consumed": pointer,
            "status": status,
            "sync_found": bool(status & 1),
            "crc_ok": bool(status & 2),
            "a_bits": [int(b) for b in chip.rams["out_a"].dump()],
            "b_bits": [int(b) for b in chip.rams["out_b"].dump()],
            "pc_trace": pc_trace,
            "soft_trace": soft_trace,
        }

    def run_burst_compiled(self, samples: Sequence[complex],
                           coefficients: Sequence[complex],
                           max_cycles: int = 40000,
                           obs=None) -> Dict[str, object]:
        """The same burst flow on the compiled-code simulator (Fig. 7).

        The generated step function replaces the interpreted cycle
        scheduler; the untimed RAM blocks are shared, so results are
        read back from the same RAM objects.  ``obs`` instruments this
        compiled run (defaults to the transceiver's own capture — pass
        a fresh :class:`~repro.obs.Capture` to keep the engines' counts
        separate for lockstep comparison).
        """
        from ...sim import CompiledSimulator

        chip = self.chip
        simulator = CompiledSimulator(chip.system,
                                      watch=[chip.ack, chip.pc, chip.status],
                                      obs=obs if obs is not None else self.obs)
        coefficients = list(coefficients)
        pointer = 0
        coef_index = 0
        done_pc = len(chip.irom.words) - 1
        for _cycle in range(max_cycles):
            sample = samples[pointer] if pointer < len(samples) else 0j
            coef = coefficients[min(coef_index, len(coefficients) - 1)]
            simulator.step({
                "sample_i": float(np.real(sample)),
                "sample_q": float(np.imag(sample)),
                "hold_request": 0,
                "ctl_coef_re": float(np.real(coef)),
                "ctl_coef_im": float(np.imag(coef)),
            })
            if int(simulator.output(chip.ack)):
                pointer += 1
            if coef_index < len(coefficients) - 1:
                coef_index = int(simulator.snapshot()["coefadr_addr"])
            if int(simulator.output(chip.pc)) == done_pc and pointer > 16:
                break
        status = int(simulator.output(chip.status))
        return {
            "cycles": simulator.cycle,
            "samples_consumed": pointer,
            "status": status,
            "sync_found": bool(status & 1),
            "crc_ok": bool(status & 2),
            "a_bits": [int(b) for b in chip.rams["out_a"].dump()],
            "b_bits": [int(b) for b in chip.rams["out_b"].dump()],
            "simulator": simulator,
        }


def lint_targets():
    """Design objects for ``tools/lint.py``."""
    return [build_transceiver().system]
