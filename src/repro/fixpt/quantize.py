"""Quantization of real values into fixed-point formats."""

from __future__ import annotations

from fractions import Fraction
from typing import Union

from .fixed import Fx, FxFormat, Rounding, _apply_overflow


def quantize_raw(value: Union[int, float, Fraction, Fx], fmt: FxFormat) -> int:
    """Quantize *value* and return the raw integer in *fmt*.

    Rounding is applied first (per ``fmt.rounding``) to resolve bits below
    the LSB, then overflow handling (per ``fmt.overflow``) folds the result
    into the representable range.
    """
    if isinstance(value, Fx):
        exact = value.as_fraction()
    elif isinstance(value, float):
        exact = Fraction(value)
    elif isinstance(value, (int, Fraction)):
        exact = Fraction(value)
    else:
        raise TypeError(f"cannot quantize {type(value).__name__}")

    fb = fmt.frac_bits
    scaled = exact * (1 << fb) if fb >= 0 else exact / (1 << -fb)

    if scaled.denominator == 1:
        raw = scaled.numerator
    elif fmt.rounding is Rounding.ROUND:
        # Round half up: floor(x + 1/2).
        shifted = scaled + Fraction(1, 2)
        raw = shifted.numerator // shifted.denominator
    else:
        # Truncate toward minus infinity (hardware bit-drop).
        raw = scaled.numerator // scaled.denominator

    return _apply_overflow(raw, fmt)


def quantize(value: Union[int, float, Fraction, Fx], fmt: FxFormat) -> Fx:
    """Quantize *value* into *fmt*, returning an :class:`Fx`."""
    return Fx(raw=quantize_raw(value, fmt), fmt=fmt)
