"""Fixed-point value and format types.

A fixed-point number is stored as an arbitrary-precision raw integer
``raw`` with an implied binary point: ``value = raw * 2**-frac_bits``.
Because Python integers are unbounded, intermediate arithmetic is exact;
wordlength effects (rounding, saturation, wraparound) are applied only when
a value is forced into a :class:`FxFormat`, which is precisely how a
hardware datapath behaves at register and bus boundaries.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Union

Real = Union[int, float, Fraction, "Fx"]


class Rounding(enum.Enum):
    """Quantization behaviour for bits dropped below the LSB."""

    TRUNCATE = "truncate"  # round toward minus infinity (drop bits)
    ROUND = "round"        # round half up (add half LSB, then truncate)


class Overflow(enum.Enum):
    """Behaviour when a value exceeds the representable range."""

    SATURATE = "saturate"  # clip to min/max representable
    WRAP = "wrap"          # two's-complement wraparound
    ERROR = "error"        # raise FxOverflowError


# Defined in core.errors so it sits in the ReproError hierarchy (with
# ArithmeticError as a secondary base); re-imported here so existing
# ``from repro.fixpt.fixed import FxOverflowError`` call sites keep working.
from ..core.errors import FxOverflowError  # noqa: E402  (re-export)


@dataclass(frozen=True)
class FxFormat:
    """A fixed-point wordlength specification.

    Parameters
    ----------
    wl:
        Total word length in bits, including the sign bit when signed.
    iwl:
        Integer word length: the number of bits left of the binary point,
        including the sign bit when signed.  May be negative (all-fraction
        formats) or exceed ``wl`` (formats with trailing implied zeros).
    signed:
        Two's-complement when True, unsigned otherwise.
    rounding / overflow:
        Quantization behaviour applied when values enter this format.
    """

    wl: int
    iwl: int
    signed: bool = True
    rounding: Rounding = Rounding.TRUNCATE
    overflow: Overflow = Overflow.SATURATE

    def __post_init__(self) -> None:
        if self.wl < 1:
            raise ValueError(f"word length must be >= 1, got {self.wl}")
        if self.signed and self.wl < 1:
            raise ValueError("signed formats need at least 1 bit")

    @property
    def frac_bits(self) -> int:
        """Number of bits right of the binary point (may be negative)."""
        return self.wl - self.iwl

    @property
    def raw_min(self) -> int:
        """Smallest representable raw integer."""
        return -(1 << (self.wl - 1)) if self.signed else 0

    @property
    def raw_max(self) -> int:
        """Largest representable raw integer."""
        return (1 << (self.wl - 1)) - 1 if self.signed else (1 << self.wl) - 1

    @property
    def min_value(self) -> Fraction:
        """Smallest representable real value."""
        return Fraction(self.raw_min, 1) / (1 << max(self.frac_bits, 0)) * self._scale_up()

    @property
    def max_value(self) -> Fraction:
        """Largest representable real value."""
        return Fraction(self.raw_max, 1) / (1 << max(self.frac_bits, 0)) * self._scale_up()

    def _scale_up(self) -> int:
        # When frac_bits is negative the LSB weighs 2**-frac_bits.
        return (1 << -self.frac_bits) if self.frac_bits < 0 else 1

    @property
    def lsb(self) -> Fraction:
        """Weight of one raw-integer step."""
        return Fraction(1, 1 << self.frac_bits) if self.frac_bits >= 0 else Fraction(1 << -self.frac_bits)

    def is_integer(self) -> bool:
        """True when this format has no fractional bits."""
        return self.frac_bits <= 0

    def can_hold(self, other: "FxFormat") -> bool:
        """True when every value of *other* is exactly representable here."""
        if other.signed and not self.signed:
            return False
        extra_int = self.iwl - other.iwl
        extra_frac = self.frac_bits - other.frac_bits
        if extra_frac < 0:
            return False
        if not other.signed and self.signed:
            # Unsigned values need one more integer bit in a signed format.
            return extra_int >= 1
        return extra_int >= 0

    def union(self, other: "FxFormat") -> "FxFormat":
        """The smallest format holding every value of *self* and *other*."""
        signed = self.signed or other.signed

        def eff_iwl(fmt: FxFormat) -> int:
            # Integer bits excluding the sign bit, normalised to signedness.
            return fmt.iwl - (1 if fmt.signed else 0)

        iwl_mag = max(eff_iwl(self), eff_iwl(other))
        frac = max(self.frac_bits, other.frac_bits)
        iwl = iwl_mag + (1 if signed else 0)
        return FxFormat(
            wl=iwl + frac,
            iwl=iwl,
            signed=signed,
            rounding=self.rounding,
            overflow=self.overflow,
        )

    def __str__(self) -> str:
        sign = "s" if self.signed else "u"
        return f"<{sign}{self.wl},{self.iwl}>"


#: Convenient default used when coercing bare Python ints into Fx.
INT32 = FxFormat(wl=32, iwl=32, signed=True)


def _format_for_int(value: int) -> FxFormat:
    """Smallest signed integer format holding *value*."""
    bits = max(value.bit_length(), 1) + 1  # +1 sign bit
    return FxFormat(wl=bits, iwl=bits, signed=True)


def _format_for_float(value: float, frac_bits: int = 31) -> FxFormat:
    """A generous signed format holding *value* with *frac_bits* fraction."""
    mag = abs(value)
    int_bits = max(1, int(math.floor(math.log2(mag))) + 2) if mag >= 1.0 else 1
    return FxFormat(wl=int_bits + 1 + frac_bits, iwl=int_bits + 1, signed=True)


class Fx:
    """A fixed-point number.

    ``Fx(value, fmt)`` quantizes *value* into *fmt*.  Arithmetic between
    ``Fx`` values is exact (formats grow), matching hardware full-precision
    datapath operators; use :meth:`cast` (or construct a new ``Fx``) to model
    a register or bus boundary where quantization occurs.
    """

    __slots__ = ("_raw", "_fmt")

    def __init__(self, value: Real = 0, fmt: FxFormat = None, *, raw: int = None):
        if fmt is None:
            if isinstance(value, Fx):
                fmt = value._fmt
            elif isinstance(value, int):
                fmt = _format_for_int(value)
            elif isinstance(value, float):
                fmt = _format_for_float(value)
            else:
                raise TypeError(f"cannot infer format for {type(value).__name__}")
        self._fmt = fmt
        if raw is not None:
            self._raw = _apply_overflow(raw, fmt)
        else:
            from .quantize import quantize_raw

            self._raw = quantize_raw(value, fmt)

    # -- accessors ---------------------------------------------------------

    @property
    def fmt(self) -> FxFormat:
        """The format this value is quantized to."""
        return self._fmt

    @property
    def raw(self) -> int:
        """The underlying raw integer (two's-complement semantics)."""
        return self._raw

    def as_fraction(self) -> Fraction:
        """The exact real value as a :class:`fractions.Fraction`."""
        fb = self._fmt.frac_bits
        if fb >= 0:
            return Fraction(self._raw, 1 << fb)
        return Fraction(self._raw * (1 << -fb), 1)

    def __float__(self) -> float:
        fb = self._fmt.frac_bits
        return self._raw * (2.0 ** -fb)

    def __int__(self) -> int:
        frac = self.as_fraction()
        return int(frac) if frac >= 0 else -int(-frac)

    def __index__(self) -> int:
        if not self._fmt.is_integer():
            raise TypeError(f"{self} has fractional bits; cannot index")
        return int(self)

    def __bool__(self) -> bool:
        return self._raw != 0

    def __hash__(self) -> int:
        return hash(self.as_fraction())

    # -- format movement ----------------------------------------------------

    def cast(self, fmt: FxFormat) -> "Fx":
        """Quantize into *fmt* — models a register/bus wordlength boundary."""
        return Fx(self, fmt)

    # -- arithmetic (exact; formats grow) ------------------------------------

    @staticmethod
    def _coerce(value: Real) -> "Fx":
        if isinstance(value, Fx):
            return value
        return Fx(value)

    def _binary_raws(self, other: "Fx"):
        """Align both raw integers to a common fraction length."""
        fa, fb = self._fmt.frac_bits, other._fmt.frac_bits
        frac = max(fa, fb)
        ra = self._raw << (frac - fa)
        rb = other._raw << (frac - fb)
        return ra, rb, frac

    def __add__(self, other: Real) -> "Fx":
        other = self._coerce(other)
        ra, rb, frac = self._binary_raws(other)
        result = ra + rb
        fmt = self._fmt.union(other._fmt)
        fmt = _grow_int(fmt, 1)
        return Fx(raw=result << max(0, fmt.frac_bits - frac), fmt=fmt)

    def __radd__(self, other: Real) -> "Fx":
        return self._coerce(other).__add__(self)

    def __sub__(self, other: Real) -> "Fx":
        other = self._coerce(other)
        ra, rb, frac = self._binary_raws(other)
        result = ra - rb
        fmt = self._fmt.union(other._fmt)
        fmt = _grow_int(_make_signed(fmt), 1)
        return Fx(raw=result << max(0, fmt.frac_bits - frac), fmt=fmt)

    def __rsub__(self, other: Real) -> "Fx":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: Real) -> "Fx":
        other = self._coerce(other)
        raw = self._raw * other._raw
        frac = self._fmt.frac_bits + other._fmt.frac_bits
        signed = self._fmt.signed or other._fmt.signed
        iwl = self._fmt.iwl + other._fmt.iwl
        fmt = FxFormat(
            wl=max(1, iwl + frac),
            iwl=iwl,
            signed=signed,
            rounding=self._fmt.rounding,
            overflow=self._fmt.overflow,
        )
        shift = fmt.frac_bits - frac
        if shift >= 0:
            raw <<= shift
        else:
            raw >>= -shift
        return Fx(raw=raw, fmt=fmt)

    def __rmul__(self, other: Real) -> "Fx":
        return self._coerce(other).__mul__(self)

    def __neg__(self) -> "Fx":
        fmt = _grow_int(_make_signed(self._fmt), 1)
        shift = fmt.frac_bits - self._fmt.frac_bits
        return Fx(raw=(-self._raw) << shift, fmt=fmt)

    def __abs__(self) -> "Fx":
        return -self if self._raw < 0 else Fx(raw=self._raw, fmt=self._fmt)

    def __lshift__(self, bits: int) -> "Fx":
        """Shift left: multiply by 2**bits, growing the integer field."""
        if bits < 0:
            return self >> -bits
        fmt = _grow_int(self._fmt, bits)
        return Fx(raw=self._raw << (fmt.frac_bits - self._fmt.frac_bits + bits), fmt=fmt)

    def __rshift__(self, bits: int) -> "Fx":
        """Shift right: divide by 2**bits, growing the fraction field."""
        if bits < 0:
            return self << -bits
        fmt = FxFormat(
            wl=self._fmt.wl + bits,
            iwl=self._fmt.iwl,
            signed=self._fmt.signed,
            rounding=self._fmt.rounding,
            overflow=self._fmt.overflow,
        )
        # Raw value unchanged; the binary point moves by adding frac bits.
        return Fx(raw=self._raw << (fmt.frac_bits - self._fmt.frac_bits - bits), fmt=fmt)

    # -- bitwise (integer formats only) ---------------------------------------

    def _bitwise(self, other: Real, op) -> "Fx":
        other = self._coerce(other)
        if not (self._fmt.is_integer() and other._fmt.is_integer()):
            raise TypeError("bitwise operations require integer fixed-point formats")
        fmt = self._fmt.union(other._fmt)
        wl = fmt.wl
        mask = (1 << wl) - 1
        ra = self._raw & mask
        rb = other._raw & mask
        result = op(ra, rb) & mask
        if fmt.signed and result >= (1 << (wl - 1)):
            result -= 1 << wl
        return Fx(raw=result, fmt=fmt)

    def __and__(self, other: Real) -> "Fx":
        return self._bitwise(other, lambda a, b: a & b)

    def __or__(self, other: Real) -> "Fx":
        return self._bitwise(other, lambda a, b: a | b)

    def __xor__(self, other: Real) -> "Fx":
        return self._bitwise(other, lambda a, b: a ^ b)

    def __invert__(self) -> "Fx":
        if not self._fmt.is_integer():
            raise TypeError("bitwise operations require integer fixed-point formats")
        mask = (1 << self._fmt.wl) - 1
        result = (~self._raw) & mask
        if self._fmt.signed and result >= (1 << (self._fmt.wl - 1)):
            result -= 1 << self._fmt.wl
        return Fx(raw=result, fmt=self._fmt)

    # -- comparisons -----------------------------------------------------------

    def _cmp_value(self, other: Real) -> Fraction:
        if isinstance(other, Fx):
            return other.as_fraction()
        if isinstance(other, float):
            return Fraction(other)
        return Fraction(other)

    def __eq__(self, other) -> bool:
        if not isinstance(other, (Fx, int, float, Fraction)):
            return NotImplemented
        return self.as_fraction() == self._cmp_value(other)

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        return NotImplemented if result is NotImplemented else not result

    def __lt__(self, other: Real) -> bool:
        return self.as_fraction() < self._cmp_value(other)

    def __le__(self, other: Real) -> bool:
        return self.as_fraction() <= self._cmp_value(other)

    def __gt__(self, other: Real) -> bool:
        return self.as_fraction() > self._cmp_value(other)

    def __ge__(self, other: Real) -> bool:
        return self.as_fraction() >= self._cmp_value(other)

    def __repr__(self) -> str:
        return f"Fx({float(self)!r}, {self._fmt})"


def _make_signed(fmt: FxFormat) -> FxFormat:
    if fmt.signed:
        return fmt
    return FxFormat(
        wl=fmt.wl + 1,
        iwl=fmt.iwl + 1,
        signed=True,
        rounding=fmt.rounding,
        overflow=fmt.overflow,
    )


def _grow_int(fmt: FxFormat, bits: int) -> FxFormat:
    return FxFormat(
        wl=fmt.wl + bits,
        iwl=fmt.iwl + bits,
        signed=fmt.signed,
        rounding=fmt.rounding,
        overflow=fmt.overflow,
    )


def _apply_overflow(raw: int, fmt: FxFormat) -> int:
    """Fold *raw* into the representable range of *fmt*."""
    if fmt.raw_min <= raw <= fmt.raw_max:
        return raw
    if fmt.overflow is Overflow.SATURATE:
        return fmt.raw_max if raw > fmt.raw_max else fmt.raw_min
    if fmt.overflow is Overflow.WRAP:
        span = 1 << fmt.wl
        raw &= span - 1
        if fmt.signed and raw >= (1 << (fmt.wl - 1)):
            raw -= span
        return raw
    raise FxOverflowError(f"raw value {raw} overflows format {fmt}")
