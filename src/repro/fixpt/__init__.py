"""Fixed-point arithmetic library.

The paper (section 3) simulates finite-wordlength effects with a C++
fixed-point library, simulating the *quantization* of values rather than
their bit-vector representation.  This package is the Python equivalent:

* :class:`FxFormat` — a wordlength specification (total bits, integer bits,
  signedness, rounding and overflow behaviour).
* :class:`Fx` — a fixed-point value; arithmetic grows precision exactly and
  quantization only happens at explicit format boundaries, mirroring
  hardware datapath behaviour.
* :func:`quantize` — quantize any real number into a format.
* :class:`RangeTracer` — record observed value ranges and overflow events to
  drive wordlength optimization.
"""

from .fixed import Fx, FxFormat, FxOverflowError, Overflow, Rounding
from .quantize import quantize, quantize_raw
from .trace import RangeRecord, RangeTracer

__all__ = [
    "Fx",
    "FxFormat",
    "FxOverflowError",
    "Overflow",
    "Rounding",
    "quantize",
    "quantize_raw",
    "RangeRecord",
    "RangeTracer",
]
