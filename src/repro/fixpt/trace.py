"""Range tracing for wordlength optimization.

The paper's flow starts from a floating-point (Matlab-level) algorithm and
refines it to a bit-true description.  Choosing wordlengths needs observed
dynamic ranges; :class:`RangeTracer` records, per named signal, the min/max
values seen, quantization error statistics and overflow counts, and can then
recommend the smallest :class:`FxFormat` covering the observations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Union

from .fixed import Fx, FxFormat


@dataclass
class RangeRecord:
    """Observed statistics for one signal."""

    name: str
    count: int = 0
    min_value: float = math.inf
    max_value: float = -math.inf
    overflow_count: int = 0
    abs_error_sum: float = 0.0
    sq_error_sum: float = 0.0

    def observe(self, value: float) -> None:
        """Record one observed value."""
        self.count += 1
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value

    def observe_quantized(self, exact: float, quantized: float) -> None:
        """Record one value together with its quantized counterpart."""
        self.observe(exact)
        err = exact - quantized
        self.abs_error_sum += abs(err)
        self.sq_error_sum += err * err

    @property
    def mean_abs_error(self) -> float:
        """Mean absolute quantization error over all observations."""
        return self.abs_error_sum / self.count if self.count else 0.0

    @property
    def rms_error(self) -> float:
        """RMS quantization error over all observations."""
        return math.sqrt(self.sq_error_sum / self.count) if self.count else 0.0

    def required_integer_bits(self) -> int:
        """Integer bits (excluding sign) needed to cover the observed range."""
        if self.count == 0:
            return 1
        mag = max(abs(self.min_value), abs(self.max_value))
        if mag < 1.0:
            return 0
        return int(math.floor(math.log2(mag))) + 1

    def is_signed(self) -> bool:
        """True when negative values were observed."""
        return self.min_value < 0


class RangeTracer:
    """Accumulates :class:`RangeRecord` entries across a simulation run."""

    def __init__(self) -> None:
        self._records: Dict[str, RangeRecord] = {}

    def record(self, name: str, value: Union[int, float, Fx]) -> None:
        """Observe *value* for signal *name*."""
        rec = self._records.get(name)
        if rec is None:
            rec = RangeRecord(name)
            self._records[name] = rec
        rec.observe(float(value))

    def record_quantization(self, name: str, exact: float, fx: Fx) -> None:
        """Observe *exact* together with its quantized value *fx*."""
        rec = self._records.get(name)
        if rec is None:
            rec = RangeRecord(name)
            self._records[name] = rec
        quantized = float(fx)
        rec.observe_quantized(exact, quantized)
        if quantized != exact and not (fx.fmt.min_value <= exact <= fx.fmt.max_value):
            rec.overflow_count += 1

    def __getitem__(self, name: str) -> RangeRecord:
        return self._records[name]

    def __contains__(self, name: str) -> bool:
        return name in self._records

    def records(self) -> Dict[str, RangeRecord]:
        """All records, keyed by signal name."""
        return dict(self._records)

    def probe(self, name: str):
        """A ``fn(cycle, value)`` probe feeding this tracer.

        Attach it with :meth:`repro.obs.Capture.probe` to range-trace a
        signal through the observability layer::

            capture.probe(acc, tracer.probe("acc"))

        The returned callable depends only on this tracer, so fixpt
        stays free of obs imports.
        """
        def _probe(cycle: int, value) -> None:
            if value is not None:
                self.record(name, value)

        return _probe

    def recommend_format(self, name: str, frac_bits: int = 8) -> FxFormat:
        """Smallest format covering the observed range of *name*.

        Parameters
        ----------
        frac_bits:
            Fraction bits to allocate; integer bits come from the trace.
        """
        rec = self._records[name]
        signed = rec.is_signed()
        int_bits = rec.required_integer_bits() + (1 if signed else 0)
        int_bits = max(int_bits, 1)
        return FxFormat(wl=int_bits + frac_bits, iwl=int_bits, signed=signed)

    def report(self) -> str:
        """Human-readable table of all traced signals."""
        lines = [f"{'signal':<24} {'count':>8} {'min':>12} {'max':>12} {'ovf':>6} {'rms err':>10}"]
        for name in sorted(self._records):
            rec = self._records[name]
            lines.append(
                f"{name:<24} {rec.count:>8} {rec.min_value:>12.4g} "
                f"{rec.max_value:>12.4g} {rec.overflow_count:>6} {rec.rms_error:>10.3g}"
            )
        return "\n".join(lines)
