"""repro — a Python reproduction of the IMEC programming environment for
the design of complex high-speed ASICs (Schaumont et al., DAC 1998).

Subpackages
-----------
``repro.core``
    The design-capture DSL: signals, signal flow graphs, FSMs, processes,
    systems, and semantic checks.
``repro.fixpt``
    The fixed-point (finite wordlength) modeling library.
``repro.sim``
    Simulation: data-flow scheduler, the three-phase cycle scheduler,
    compiled-code simulation, and an event-driven HDL-semantics baseline.
``repro.hdl``
    VHDL/Verilog code generation and testbench generation.
``repro.synth``
    The divide-and-conquer synthesis flow: datapath synthesis with
    word-level operator sharing, controller (FSM + logic) synthesis,
    netlist optimization, gate-level simulation, and area reporting.
``repro.dsp``
    Algorithm-level (Matlab-equivalent) reference models for the DECT
    driver design: bursts, multipath channels, equalization, correlation.
``repro.designs``
    The driver designs: the HCOR header-correlator processor and the
    75 Kgate-class DECT base-station transceiver ASIC.
``repro.verify``
    Robustness tooling: fault-injection campaigns with structural fault
    collapsing, lockstep divergence localization between engines, and
    guard rails (watchdog budgets, checkpoint/restore, structured
    deadlock diagnostics).
"""

__version__ = "1.0.0"

from . import core, fixpt

__all__ = ["core", "fixpt", "__version__"]
