"""Signal flow graphs: one clock cycle of data processing.

The paper (section 3.1): *"A set of sig expressions can be assembled in a
signal flow graph (SFG).  In addition, the desired inputs and outputs of the
signal flow graph have to be indicated.  This allows to do semantical checks
such as dangling input and dead code detection ... An SFG has well defined
simulation semantics and represents one clock cycle of data processing."*

An :class:`SFG` is a list of assignments ``target <- expression`` plus
declared input and output signals.  Assignments to plain signals are
combinational; assignments to registers schedule the next value.  The SFG
computes, once per clock cycle, all assignments in dependency order.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .errors import CheckError, ModelError
from .expr import Expr
from .signal import Register, Sig
from .srcloc import here

_SFG_STACK: List["SFG"] = []

#: Every SFG ever constructed (weakly held).  The lint framework uses it
#: to find SFGs that share signals with a system but are referenced by no
#: FSM transition or process — the "forgot to wire it" mistake.
_ALL_SFGS: "weakref.WeakSet[SFG]" = weakref.WeakSet()


def constructed_sfgs() -> List["SFG"]:
    """All live SFG objects, in name order (for deterministic linting)."""
    return sorted(_ALL_SFGS, key=lambda s: s.name)


def _active_sfg() -> Optional["SFG"]:
    """The innermost SFG currently open via ``with sfg:`` (or None)."""
    return _SFG_STACK[-1] if _SFG_STACK else None


class Assignment:
    """One ``target <- expr`` arc of a signal flow graph."""

    __slots__ = ("target", "expr", "loc")

    def __init__(self, target: Sig, expr: Expr):
        if not isinstance(target, Sig):
            raise ModelError(f"assignment target must be a signal, got {target!r}")
        self.target = target
        self.expr = expr
        self.loc = here()

    def execute(self) -> None:
        """Evaluate the expression and drive the target."""
        value = self.expr.evaluate()
        if isinstance(self.target, Register):
            self.target.set_next(value)
        else:
            self.target.value = value

    def reads(self) -> Set[Sig]:
        """The signals this assignment reads."""
        return self.expr.signals()

    def __repr__(self) -> str:
        return f"{self.target.name} <- {self.expr!r}"


class SFG:
    """A signal flow graph: assignments + declared I/O + one-cycle semantics."""

    def __init__(self, name: str):
        self.name = name
        self.assignments: List[Assignment] = []
        self._inputs: List[Sig] = []
        self._outputs: List[Sig] = []
        self._ordered: Optional[List[Assignment]] = None
        self.loc = here()
        _ALL_SFGS.add(self)

    # -- construction -----------------------------------------------------------

    def __enter__(self) -> "SFG":
        _SFG_STACK.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        popped = _SFG_STACK.pop()
        assert popped is self

    def assign(self, target: Sig, expr: Expr) -> Assignment:
        """Add the assignment ``target <- expr``."""
        if any(a.target is target for a in self.assignments):
            raise CheckError(
                f"signal {target.name!r} already driven in SFG {self.name!r} "
                "(multiple drivers)"
            )
        assignment = Assignment(target, expr)
        self.assignments.append(assignment)
        self._ordered = None
        return assignment

    def inp(self, *signals: Sig) -> "SFG":
        """Declare input signals (token consumers at the system level)."""
        for signal in signals:
            if signal.is_register():
                raise ModelError(f"register {signal.name!r} cannot be an SFG input")
            if signal not in self._inputs:
                self._inputs.append(signal)
        return self

    def out(self, *signals: Sig) -> "SFG":
        """Declare output signals (token producers at the system level)."""
        for signal in signals:
            if signal not in self._outputs:
                self._outputs.append(signal)
        return self

    @property
    def inputs(self) -> Tuple[Sig, ...]:
        return tuple(self._inputs)

    @property
    def outputs(self) -> Tuple[Sig, ...]:
        return tuple(self._outputs)

    # -- structure queries --------------------------------------------------------

    def targets(self) -> Set[Sig]:
        """All driven signals (combinational wires and registers)."""
        return {a.target for a in self.assignments}

    def registers(self) -> List[Register]:
        """Registers driven or read by this SFG, in first-seen order."""
        seen: List[Register] = []

        def note(sig: Sig) -> None:
            if isinstance(sig, Register) and sig not in seen:
                seen.append(sig)

        for assignment in self.assignments:
            note(assignment.target)
            for sig in sorted(assignment.reads(), key=lambda s: s.name):
                note(sig)
        return seen

    def ordered_assignments(self) -> List[Assignment]:
        """Assignments in combinational dependency order.

        Raises :class:`CheckError` on a combinational loop inside the SFG.
        Reads of *registers* do not create ordering edges (register reads
        return the pre-edge value), nor do reads of declared inputs.
        """
        if self._ordered is not None:
            return self._ordered
        by_target: Dict[Sig, Assignment] = {a.target: a for a in self.assignments}
        order: List[Assignment] = []
        state: Dict[Assignment, int] = {}  # 1 = visiting, 2 = done

        def visit(assignment: Assignment, chain: List[str]) -> None:
            mark = state.get(assignment)
            if mark == 2:
                return
            if mark == 1:
                cycle = " -> ".join(chain + [assignment.target.name])
                raise CheckError(
                    f"combinational loop inside SFG {self.name!r}: {cycle}"
                )
            state[assignment] = 1
            for sig in sorted(assignment.reads(), key=lambda s: s.name):
                if sig.is_register():
                    continue
                dep = by_target.get(sig)
                if dep is not None and not dep.target.is_register():
                    visit(dep, chain + [assignment.target.name])
            state[assignment] = 2
            order.append(assignment)

        for assignment in self.assignments:
            visit(assignment, [])
        self._ordered = order
        return order

    def input_cone(self, target: Sig,
                   extra_inputs: Optional[Set[Sig]] = None) -> Set[Sig]:
        """Declared inputs that *target*'s value (this cycle) depends on.

        Follows combinational assignments transitively; stops at registers
        (their reads see last cycle's value) and at declared inputs.
        *extra_inputs* widens the input set (e.g. port-bound signals that
        were not declared with :meth:`inp`).
        """
        by_target: Dict[Sig, Assignment] = {
            a.target: a for a in self.assignments if not a.target.is_register()
        }
        inputs = set(self._inputs)
        if extra_inputs:
            inputs |= extra_inputs
        cone: Set[Sig] = set()
        visited: Set[Sig] = set()

        def walk(sig: Sig) -> None:
            if sig in visited:
                return
            visited.add(sig)
            if sig in inputs:
                cone.add(sig)
                return
            if sig.is_register():
                return
            assignment = by_target.get(sig)
            if assignment is None:
                return
            for read in assignment.reads():
                walk(read)

        walk(target)
        return cone

    def assignment_input_deps(
        self, extra_inputs: Optional[Set[Sig]] = None
    ) -> Dict[Assignment, Set[Sig]]:
        """For each assignment, the (declared + extra) inputs it depends on."""
        inputs = set(self._inputs)
        if extra_inputs:
            inputs |= extra_inputs
        deps: Dict[Assignment, Set[Sig]] = {}
        for assignment in self.assignments:
            cone: Set[Sig] = set()
            for read in assignment.reads():
                cone |= self.input_cone(read, extra_inputs)
                if read in inputs:
                    cone.add(read)
            deps[assignment] = cone
        return deps

    # -- simulation ----------------------------------------------------------------

    def run(self) -> None:
        """Execute one cycle of this SFG in isolation.

        Input signal values must have been set beforehand; register updates
        are *scheduled* (call ``clk.tick()`` afterwards to commit them).
        """
        for assignment in self.ordered_assignments():
            assignment.execute()

    def __repr__(self) -> str:
        return (f"SFG({self.name!r}, {len(self.assignments)} assignments, "
                f"in={[s.name for s in self._inputs]}, "
                f"out={[s.name for s in self._outputs]})")
