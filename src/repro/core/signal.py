"""Signals: the information carriers of timed descriptions.

The paper (section 3.1) distinguishes *plain* signals from *registered*
signals.  Registered signals have a current value and a next value, accessed
at signal reference and assignment respectively, and are bound to a
:class:`~repro.core.clock.Clock` that controls their update.  Both kinds can
carry floating-point values (algorithm-level modeling) or fixed-point values
(bit-true modeling) — the value kind is selected by giving the signal an
:class:`~repro.fixpt.FxFormat`.

Assignment inside an open SFG uses the ``<<=`` operator::

    with sfg:
        out <<= a + b        # combinational assignment
        acc <<= acc + inp    # register next-value assignment
"""

from __future__ import annotations

import itertools
from typing import Optional, Union

from ..fixpt import Fx, FxFormat, quantize
from .clock import Clock
from .errors import ModelError
from .expr import Expr, Value, _as_expr
from .srcloc import here

_GENSYM = itertools.count()


def _int_fmt(value: int) -> FxFormat:
    """Smallest signed integer format holding the Python int *value*."""
    bits = max(value.bit_length(), 1) + 1
    return FxFormat(wl=bits, iwl=bits, signed=True)


def _coerce_value(value: Value, fmt: Optional[FxFormat]) -> Value:
    """Quantize *value* into *fmt* when a format is set, else keep it raw."""
    if fmt is None:
        return float(value) if isinstance(value, Fx) else value
    return quantize(value, fmt)


class Sig(Expr):
    """A plain (combinational) signal.

    Reading a ``Sig`` in an expression builds a DAG leaf; its simulated
    value lives in :attr:`value`.  When a format is given, every value
    written is quantized into it — the wordlength boundary of a wire.
    """

    __slots__ = ("name", "fmt", "_value")

    def __init__(self, name: str = None, fmt: FxFormat = None, init: Value = 0):
        self.name = name if name is not None else f"sig{next(_GENSYM)}"
        self.fmt = fmt
        self._value = _coerce_value(init, fmt)
        self.loc = here()

    @property
    def value(self) -> Value:
        """The signal's current simulated value."""
        return self._value

    @value.setter
    def value(self, new: Value) -> None:
        self._value = _coerce_value(new, self.fmt)

    def evaluate(self) -> Value:
        return self._value

    def result_fmt(self) -> Optional[FxFormat]:
        return self.fmt

    def is_register(self) -> bool:
        """True for registered signals (overridden by :class:`Register`)."""
        return False

    def __ilshift__(self, other) -> "Sig":
        """``sig <<= expr`` — record an assignment in the open SFG."""
        from .sfg import _active_sfg

        sfg = _active_sfg()
        if sfg is None:
            raise ModelError(
                f"assignment to {self.name!r} outside an SFG; "
                "use 'with sfg:' or sfg.assign(target, expr)"
            )
        sfg.assign(self, _as_expr(other))
        return self

    def __repr__(self) -> str:
        fmt = f", {self.fmt}" if self.fmt is not None else ""
        return f"{type(self).__name__}({self.name!r}{fmt})"


class Register(Sig):
    """A registered signal: current value read, next value assigned.

    Bound to a :class:`Clock`; :meth:`Clock.tick` copies next into current.
    A register whose next value was not assigned in a cycle holds its value.
    """

    __slots__ = ("clk", "init", "_next", "_next_set")

    def __init__(self, name: str = None, clk: Clock = None, fmt: FxFormat = None,
                 init: Value = 0):
        if clk is None:
            raise ModelError(f"register {name!r} needs a clock")
        super().__init__(name=name, fmt=fmt, init=init)
        self.clk = clk
        self.init = self._value
        self._next: Value = None
        self._next_set = False
        clk._attach(self)

    @property
    def current(self) -> Value:
        """The register's current (pre-edge) value."""
        return self._value

    @property
    def next(self) -> Value:
        """The pending next value, or the current value if none pending."""
        return self._next if self._next_set else self._value

    def set_next(self, value: Value) -> None:
        """Schedule *value* to become current at the next clock tick."""
        self._next = _coerce_value(value, self.fmt)
        self._next_set = True

    def _update(self) -> None:
        if self._next_set:
            self._value = self._next
            self._next_set = False

    def _reset(self) -> None:
        self._value = self.init
        self._next = None
        self._next_set = False

    def is_register(self) -> bool:
        return True


def sig_like(template: Sig, name: str = None) -> Sig:
    """A fresh plain signal with the same format as *template*."""
    return Sig(name=name, fmt=template.fmt)
