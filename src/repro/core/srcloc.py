"""Source-location capture for design objects.

Hardware eDSLs earn "robust design" diagnostics by remembering *where in
the user's modeling code* each object was constructed (Hardcaml carries a
``caller_id`` on every node for exactly this reason).  This module is the
one cheap, toggleable primitive behind that: :func:`here` walks up the
Python stack past the framework's own frames and returns the first user
frame as a :class:`SrcLoc`.

Capture is on by default and costs a handful of frame hops per DSL
construction; set the environment variable ``REPRO_SRCLOC=0`` or call
:func:`enable` / use :func:`capturing` to switch it off for bulk
construction (e.g. randomized differential tests).

"User frame" means the first frame outside :mod:`repro.core` and
:mod:`repro.lint` — frames in :mod:`repro.designs` count as user code, so
linting the DECT transceiver points at the datapath modeling lines, not
at the framework.
"""

from __future__ import annotations

import os
import sys
from contextlib import contextmanager
from typing import Iterator, NamedTuple, Optional


class SrcLoc(NamedTuple):
    """One construction site in user modeling code."""

    file: str
    line: int

    def __str__(self) -> str:
        return f"{self.file}:{self.line}"


#: Directories whose frames are skipped when looking for the user frame.
_FRAMEWORK_DIRS = (
    os.path.dirname(os.path.abspath(__file__)),                      # repro/core
    os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "lint"),                        # repro/lint
)

_enabled = os.environ.get("REPRO_SRCLOC", "1").lower() not in ("0", "false", "off")


def enabled() -> bool:
    """True when construction sites are being captured."""
    return _enabled


def enable(on: bool = True) -> None:
    """Globally switch capture on or off."""
    global _enabled
    _enabled = on


@contextmanager
def capturing(on: bool) -> Iterator[None]:
    """Temporarily force capture on or off (e.g. around bulk construction)."""
    global _enabled
    previous = _enabled
    _enabled = on
    try:
        yield
    finally:
        _enabled = previous


def _is_framework(filename: str) -> bool:
    return any(filename.startswith(d) for d in _FRAMEWORK_DIRS)


def here(depth: int = 1) -> Optional[SrcLoc]:
    """The closest non-framework frame, or None when capture is off.

    *depth* skips the caller's own frames (1 = the function calling
    ``here``); the walk then continues past any :mod:`repro.core` /
    :mod:`repro.lint` frames so ``y <<= a + b`` in user code is reported
    at the user's line, not inside ``Sig.__ilshift__``.
    """
    if not _enabled:
        return None
    try:
        frame = sys._getframe(depth + 1)
    except ValueError:  # pragma: no cover - shallow stacks
        return None
    while frame is not None:
        filename = frame.f_code.co_filename
        if not _is_framework(filename):
            return SrcLoc(filename, frame.f_lineno)
        frame = frame.f_back
    return None
