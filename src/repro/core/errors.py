"""Exception hierarchy for the design environment."""

from typing import List, Mapping, Optional, Sequence


class ReproError(Exception):
    """Base class for all design-environment errors."""


class ModelError(ReproError):
    """A design description is malformed (bad SFG, FSM, or system wiring)."""


class CheckError(ModelError):
    """A semantic check failed (dangling input, dead code, multiple drivers)."""


class SimulationError(ReproError):
    """A simulation could not proceed."""


class DeadlockError(SimulationError):
    """The scheduler detected a deadlock / combinational loop (paper section 4).

    Beyond the prose message, the error carries machine-readable
    diagnostics so that tooling (and tests) can act on the failure:

    ``cycle``
        The clock cycle being simulated when the deadlock hit (None for
        the purely-untimed data-flow scheduler).
    ``pending``
        Mapping from process name to the sorted port/requirement names it
        is blocked on.
    ``channels``
        Mapping from channel name to its token occupancy at failure time.
    ``iterations``
        How many evaluation iterations ran before the scheduler gave up.
    ``trace``
        Per-iteration progress counts (assignments + firings executed),
        useful to see whether the system wedged immediately or starved
        gradually.
    """

    def __init__(self, message: str, *,
                 cycle: Optional[int] = None,
                 iterations: Optional[int] = None,
                 pending: Optional[Mapping[str, Sequence[str]]] = None,
                 channels: Optional[Mapping[str, int]] = None,
                 trace: Optional[Sequence[int]] = None):
        super().__init__(message)
        self.cycle = cycle
        self.iterations = iterations
        self.pending = {k: list(v) for k, v in (pending or {}).items()}
        self.channels = dict(channels or {})
        self.trace: List[int] = list(trace or [])


class SynthesisError(ReproError):
    """A description could not be synthesized (e.g. missing wordlengths)."""


class CodegenError(ReproError):
    """Code generation (HDL or compiled-simulator) failed."""


class FxOverflowError(ReproError, ArithmeticError):
    """Raised when quantization overflows and the format demands an error.

    Lives in the :class:`ReproError` hierarchy so generic environment
    error handling catches it; ``ArithmeticError`` is kept as a secondary
    base for compatibility with numeric exception handlers.
    """
