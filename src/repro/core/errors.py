"""Exception hierarchy for the design environment."""


class ReproError(Exception):
    """Base class for all design-environment errors."""


class ModelError(ReproError):
    """A design description is malformed (bad SFG, FSM, or system wiring)."""


class CheckError(ModelError):
    """A semantic check failed (dangling input, dead code, multiple drivers)."""


class SimulationError(ReproError):
    """A simulation could not proceed."""


class DeadlockError(SimulationError):
    """The scheduler detected a deadlock / combinational loop (paper section 4)."""


class SynthesisError(ReproError):
    """A description could not be synthesized (e.g. missing wordlengths)."""


class CodegenError(ReproError):
    """Code generation (HDL or compiled-simulator) failed."""
