"""Exception hierarchy for the design environment.

Beyond the usual subsystem split (model / simulation / synthesis /
codegen), the hierarchy carries a *retry taxonomy* for long-running
infrastructure such as the sharded campaign runner: errors deriving
from :class:`TransientError` describe failures of the run, not of the
design — a budget expiring, a worker process dying — and are worth
retrying; everything else is a property of the design or the workload
and will fail identically on every attempt.  Retry decisions must go
through :func:`is_transient`, never through string matching on
messages.
"""

from typing import List, Mapping, Optional, Sequence


class ReproError(Exception):
    """Base class for all design-environment errors."""


class TransientError(ReproError):
    """A failure of the *run*, not of the design — retrying may succeed.

    Examples: a watchdog deadline expired because a machine was loaded,
    a worker process was killed.  Deterministic failures (a deadlocked
    schedule, a guaranteed overflow) must **not** derive from this
    class: re-running them burns budget to reproduce the same answer.
    """


class ModelError(ReproError):
    """A design description is malformed (bad SFG, FSM, or system wiring)."""


class CheckError(ModelError):
    """A semantic check failed (dangling input, dead code, multiple drivers)."""


class SimulationError(ReproError):
    """A simulation could not proceed."""


class DeadlockError(SimulationError):
    """The scheduler detected a deadlock / combinational loop (paper section 4).

    Beyond the prose message, the error carries machine-readable
    diagnostics so that tooling (and tests) can act on the failure:

    ``cycle``
        The clock cycle being simulated when the deadlock hit (None for
        the purely-untimed data-flow scheduler).
    ``pending``
        Mapping from process name to the sorted port/requirement names it
        is blocked on.
    ``channels``
        Mapping from channel name to its token occupancy at failure time.
    ``iterations``
        How many evaluation iterations ran before the scheduler gave up.
    ``trace``
        Per-iteration progress counts (assignments + firings executed),
        useful to see whether the system wedged immediately or starved
        gradually.
    """

    def __init__(self, message: str, *,
                 cycle: Optional[int] = None,
                 iterations: Optional[int] = None,
                 pending: Optional[Mapping[str, Sequence[str]]] = None,
                 channels: Optional[Mapping[str, int]] = None,
                 trace: Optional[Sequence[int]] = None):
        super().__init__(message)
        self.cycle = cycle
        self.iterations = iterations
        self.pending = {k: list(v) for k, v in (pending or {}).items()}
        self.channels = dict(channels or {})
        self.trace: List[int] = list(trace or [])


class SynthesisError(ReproError):
    """A description could not be synthesized (e.g. missing wordlengths)."""


class CodegenError(ReproError):
    """Code generation (HDL or compiled-simulator) failed."""


class FxOverflowError(ReproError, ArithmeticError):
    """Raised when quantization overflows and the format demands an error.

    Lives in the :class:`ReproError` hierarchy so generic environment
    error handling catches it; ``ArithmeticError`` is kept as a secondary
    base for compatibility with numeric exception handlers.
    """


class WatchdogTimeout(TransientError, SimulationError):
    """A watchdog budget expired in a context that demanded completion.

    The polling :class:`~repro.verify.guard.Watchdog` never raises — it
    reports partial results.  Work that *must* complete wholesale (a
    campaign shard whose partial results would corrupt a deterministic
    merge) converts the expiry into this exception instead.  Transient:
    the same shard typically completes on a retry or a fresh worker.
    """

    def __init__(self, message: str, *, budget: Optional[str] = None,
                 cycles: Optional[int] = None,
                 seconds: Optional[float] = None):
        super().__init__(message)
        #: Which budget expired: ``"cycles"`` or ``"wall_clock"``.
        self.budget = budget
        #: Work units accounted when the budget expired.
        self.cycles = cycles
        #: Wall-clock seconds elapsed when the budget expired.
        self.seconds = seconds


#: Exception types outside the ReproError hierarchy that still indicate
#: an environmental (retryable) failure: broken worker pipes, dropped
#: connections, interrupted system calls.
_TRANSIENT_FOREIGN = (ConnectionError, EOFError, BrokenPipeError,
                      InterruptedError, TimeoutError)


def is_transient(exc: BaseException) -> bool:
    """Whether retrying the work that raised *exc* could succeed.

    The single classification point for retry policy:

    * :class:`TransientError` subclasses (watchdog timeouts, worker
      crashes) — yes;
    * OS-level plumbing failures (broken pipes, EOF on a dead worker's
      connection, timeouts) — yes;
    * every other :class:`ReproError` — no: deadlocks, overflows and
      model errors are deterministic properties of the design;
    * anything else (``MemoryError``, ``KeyboardInterrupt``, arbitrary
      bugs) — no: retrying unknown failures hides them.
    """
    if isinstance(exc, TransientError):
        return True
    if isinstance(exc, ReproError):
        return False
    return isinstance(exc, _TRANSIENT_FOREIGN)
