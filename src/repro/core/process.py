"""Processes: the concurrent components of a system (paper section 2).

Two flavours exist, exactly as in the paper:

* :class:`UntimedProcess` — a high-level description: an iterative behaviour
  with a *firing rule*; inputs are read at the start of an iteration and
  outputs produced at the end (data-flow simulation semantics, after
  Lee/Messerschmitt SDF).
* :class:`TimedProcess` — a register-transfer-level description operating
  synchronously to the system clock; one iteration corresponds to one clock
  cycle.  Its behaviour is a Mealy FSM coupled to a datapath: the FSM picks
  a transition each cycle and the transition's SFGs execute.

Each process translates to one component in the final implementation.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .clock import Clock
from .errors import ModelError, SimulationError
from .fsm import FSM
from .sfg import SFG
from .signal import Register, Sig
from .srcloc import here


class Port:
    """A connection point of a process.

    For timed processes a port is bound to an SFG signal; for untimed
    processes it carries a token *rate* (tokens consumed/produced per
    firing, the SDF rate).
    """

    __slots__ = ("process", "name", "direction", "sig", "rate", "channel", "loc")

    def __init__(self, process: "Process", name: str, direction: str,
                 sig: Optional[Sig] = None, rate: int = 1):
        if direction not in ("in", "out"):
            raise ModelError(f"port direction must be 'in' or 'out', got {direction!r}")
        self.process = process
        self.name = name
        self.direction = direction
        self.sig = sig
        self.rate = rate
        self.channel = None  # bound by System.connect
        self.loc = here()

    def __repr__(self) -> str:
        return f"Port({self.process.name}.{self.name}, {self.direction})"


class Process:
    """Base class for system components."""

    def __init__(self, name: str):
        self.name = name
        self.ports: Dict[str, Port] = {}
        self.loc = here()

    def _add_port(self, port: Port) -> Port:
        if port.name in self.ports:
            raise ModelError(f"duplicate port {port.name!r} on process {self.name!r}")
        self.ports[port.name] = port
        return port

    def port(self, name: str) -> Port:
        """Look up a port by name."""
        try:
            return self.ports[name]
        except KeyError:
            raise ModelError(f"process {self.name!r} has no port {name!r}") from None

    def in_ports(self) -> List[Port]:
        """The process's input ports, in declaration order."""
        return [p for p in self.ports.values() if p.direction == "in"]

    def out_ports(self) -> List[Port]:
        """The process's output ports, in declaration order."""
        return [p for p in self.ports.values() if p.direction == "out"]

    def is_timed(self) -> bool:
        """True for clock-cycle-true components, False for untimed ones."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class UntimedProcess(Process):
    """A high-level (untimed) component with data-flow semantics.

    Subclass and override :meth:`behavior` (and optionally
    :meth:`firing_rule`), or use :func:`actor` to build one from a plain
    function.  ``behavior`` receives one keyword argument per input port —
    a single token for rate-1 ports, a list of tokens otherwise — and
    returns a mapping from output port names to a token (or list of tokens
    for rates > 1).
    """

    def __init__(self, name: str):
        super().__init__(name)
        self.firings = 0

    def add_input(self, name: str, rate: int = 1) -> Port:
        """Declare an input port consuming *rate* tokens per firing."""
        if rate < 1:
            raise ModelError(f"port rate must be >= 1, got {rate}")
        return self._add_port(Port(self, name, "in", rate=rate))

    def add_output(self, name: str, rate: int = 1) -> Port:
        """Declare an output port producing *rate* tokens per firing."""
        if rate < 1:
            raise ModelError(f"port rate must be >= 1, got {rate}")
        return self._add_port(Port(self, name, "out", rate=rate))

    def firing_rule(self) -> bool:
        """True when this process may fire.

        Default SDF rule: every input channel holds at least ``rate``
        tokens.  Override for data-dependent firing.
        """
        for port in self.in_ports():
            if port.channel is None or port.channel.tokens() < port.rate:
                return False
        return True

    def behavior(self, **inputs):
        """Compute one iteration; must be overridden."""
        raise NotImplementedError(
            f"untimed process {self.name!r} does not implement behavior()"
        )

    def fire(self) -> None:
        """Consume input tokens, run the behaviour, produce output tokens."""
        kwargs = {}
        for port in self.in_ports():
            tokens = [port.channel.get() for _ in range(port.rate)]
            kwargs[port.name] = tokens[0] if port.rate == 1 else tokens
        results = self.behavior(**kwargs) or {}
        for port in self.out_ports():
            if port.name not in results:
                raise SimulationError(
                    f"process {self.name!r} produced no token for output "
                    f"{port.name!r}"
                )
            value = results[port.name]
            tokens = [value] if port.rate == 1 else list(value)
            if len(tokens) != port.rate:
                raise SimulationError(
                    f"process {self.name!r} produced {len(tokens)} tokens on "
                    f"{port.name!r}, expected {port.rate}"
                )
            for token in tokens:
                port.channel.put(token)
        self.firings += 1

    def is_timed(self) -> bool:
        """Untimed processes carry data-flow (firing-rule) semantics."""
        return False


class _FunctionActor(UntimedProcess):
    """An untimed process wrapping a plain Python function."""

    def __init__(self, name: str, func: Callable, inputs: Mapping[str, int],
                 outputs: Mapping[str, int],
                 firing_rule: Optional[Callable[[], bool]] = None):
        super().__init__(name)
        self._func = func
        self._firing_rule = firing_rule
        for port_name, rate in inputs.items():
            self.add_input(port_name, rate)
        for port_name, rate in outputs.items():
            self.add_output(port_name, rate)

    def behavior(self, **inputs):
        return self._func(**inputs)

    def firing_rule(self) -> bool:
        base = super().firing_rule()
        if self._firing_rule is None:
            return base
        return base and self._firing_rule()


def actor(name: str, func: Callable, inputs: Mapping[str, int],
          outputs: Mapping[str, int],
          firing_rule: Optional[Callable[[], bool]] = None) -> UntimedProcess:
    """Build an untimed process from a plain function.

    ``func`` takes one keyword argument per input port and returns a dict
    of output tokens, e.g. ``actor("add", lambda a, b: {"y": a + b},
    inputs={"a": 1, "b": 1}, outputs={"y": 1})``.
    """
    return _FunctionActor(name, func, inputs, outputs, firing_rule)


class TimedProcess(Process):
    """A clock-cycle-true component: a Mealy FSM coupled to a datapath.

    A process may be *controlled* (``fsm`` given: the FSM selects which
    SFGs execute each cycle) or a *pure datapath* (``sfgs`` given: the same
    SFGs execute every cycle).
    """

    def __init__(self, name: str, clk: Clock, fsm: Optional[FSM] = None,
                 sfgs: Sequence[SFG] = ()):
        super().__init__(name)
        self.clk = clk
        self.fsm = fsm
        self.static_sfgs: Tuple[SFG, ...] = tuple(sfgs)
        if fsm is None and not self.static_sfgs:
            raise ModelError(
                f"timed process {name!r} needs an FSM or at least one SFG"
            )

    def add_input(self, name: str, sig: Sig) -> Port:
        """Bind an input port to an SFG input signal."""
        if sig.is_register():
            raise ModelError(
                f"input port {name!r} of {self.name!r} cannot bind a register"
            )
        return self._add_port(Port(self, name, "in", sig=sig))

    def add_output(self, name: str, sig: Sig) -> Port:
        """Bind an output port to an SFG output signal (or a register)."""
        return self._add_port(Port(self, name, "out", sig=sig))

    def all_sfgs(self) -> List[SFG]:
        """Every SFG this component may execute."""
        if self.fsm is not None:
            result = self.fsm.sfgs()
            for sfg in self.static_sfgs:
                if sfg not in result:
                    result.append(sfg)
            return result
        return list(self.static_sfgs)

    def select_sfgs(self) -> List[SFG]:
        """Phase 0: the SFGs marked for execution this cycle."""
        marked: List[SFG] = []
        if self.fsm is not None:
            transition = self.fsm.select()
            marked.extend(transition.sfgs)
        for sfg in self.static_sfgs:
            if sfg not in marked:
                marked.append(sfg)
        return marked

    def commit(self) -> None:
        """Phase 3 helper: commit the FSM state change."""
        if self.fsm is not None:
            self.fsm.commit()

    def reset(self) -> None:
        """Reset the FSM to its initial state (registers reset via clock)."""
        if self.fsm is not None:
            self.fsm.reset()

    def is_timed(self) -> bool:
        """Timed processes operate synchronously to the system clock."""
        return True
