"""Mealy-type finite state machines with the paper's ``<<`` chaining DSL.

The paper's Figure 4 describes an FSM textually as::

    fsm f;  initial s0;  state s1;
    s0 << always   << sfg1 << s1;
    s1 << cnd(eof) << sfg2 << s1;
    s1 << !cnd(eof) << sfg3 << s0;

This module reproduces that surface syntax in Python::

    f = FSM("f")
    s0 = f.initial("s0")
    s1 = f.state("s1")
    s0 << always << sfg1 << s1
    s1 << cnd(eof) << sfg2 << s1
    s1 << ~cnd(eof) << sfg3 << s0

Each transition carries a condition, the SFGs executed when it is taken
(the Mealy actions — one clock cycle of data processing each), and the next
state.  Conditions are evaluated at the start of a clock cycle and must
depend only on registered or constant signals, as in the paper (*"the
conditions are stored in registers inside the signal flow graphs"*).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .errors import ModelError, SimulationError
from .expr import Expr, _as_expr
from .sfg import SFG
from .srcloc import here


class Condition:
    """A transition guard: a boolean expression over registered signals."""

    __slots__ = ("expr", "negated")

    def __init__(self, expr: Optional[Expr], negated: bool = False):
        self.expr = expr
        self.negated = negated

    def evaluate(self) -> bool:
        """Evaluate the guard against current register values."""
        if self.expr is None:
            return not self.negated
        value = self.expr.evaluate()
        truth = bool(int(value)) if not isinstance(value, float) else bool(value)
        return truth != self.negated

    def is_always(self) -> bool:
        """True for the unconditional guard."""
        return self.expr is None and not self.negated

    def __invert__(self) -> "Condition":
        return Condition(self.expr, not self.negated)

    def __repr__(self) -> str:
        if self.expr is None:
            return "never" if self.negated else "always"
        return f"{'!' if self.negated else ''}cnd({self.expr!r})"


#: The unconditional transition guard.
always = Condition(None)


def cnd(expr) -> Condition:
    """Wrap a signal expression as a transition condition."""
    return Condition(_as_expr(expr))


class Transition:
    """One FSM transition: guard, Mealy-action SFGs, and next state."""

    __slots__ = ("source", "condition", "sfgs", "target", "loc")

    def __init__(self, source: "State", condition: Condition,
                 sfgs: Sequence[SFG], target: "State"):
        self.source = source
        self.condition = condition
        self.sfgs = tuple(sfgs)
        self.target = target
        self.loc = here()

    def __repr__(self) -> str:
        names = "+".join(s.name for s in self.sfgs) or "(no action)"
        return (f"{self.source.name} --[{self.condition!r}]/{names}--> "
                f"{self.target.name}")


class _TransitionBuilder:
    """Accumulates ``cond << sfg... << state`` after ``state << cond``."""

    __slots__ = ("source", "condition", "sfgs")

    def __init__(self, source: "State", condition: Condition):
        self.source = source
        self.condition = condition
        self.sfgs: List[SFG] = []

    def __lshift__(self, item):
        if isinstance(item, SFG):
            self.sfgs.append(item)
            return self
        if isinstance(item, State):
            transition = Transition(self.source, self.condition, self.sfgs, item)
            self.source.fsm._add_transition(transition)
            return transition
        raise ModelError(
            f"expected an SFG or target state after the condition, got {item!r}"
        )


class State:
    """One FSM state; ``state << condition`` starts a transition."""

    __slots__ = ("fsm", "name", "transitions", "loc")

    def __init__(self, fsm: "FSM", name: str):
        self.fsm = fsm
        self.name = name
        self.transitions: List[Transition] = []
        self.loc = here()

    def __lshift__(self, item):
        if isinstance(item, Condition):
            return _TransitionBuilder(self, item)
        if isinstance(item, SFG):
            builder = _TransitionBuilder(self, always)
            builder.sfgs.append(item)
            return builder
        if isinstance(item, State):
            # Unconditional transition with no action.
            transition = Transition(self, always, (), item)
            self.fsm._add_transition(transition)
            return transition
        raise ModelError(
            f"expected a condition, SFG, or state after {self.name!r}, got {item!r}"
        )

    def __repr__(self) -> str:
        return f"State({self.name!r})"


class FSM:
    """A Mealy finite state machine built from :class:`State` objects.

    Transition guards are evaluated in declaration order at the start of
    each cycle; the first true guard wins (priority encoding).  State
    commits at the register-update phase, like any registered signal.
    """

    def __init__(self, name: str):
        self.name = name
        self.states: List[State] = []
        self.transitions: List[Transition] = []
        self._initial: Optional[State] = None
        self._initial_explicit = False
        self.current: Optional[State] = None
        self._pending: Optional[State] = None
        #: The transition picked by the most recent :meth:`select` — the
        #: hook observability monitors read to count transition fires.
        self.last_taken: Optional[Transition] = None
        self.loc = here()

    # -- construction --------------------------------------------------------

    def state(self, name: str, initial: bool = False) -> State:
        """Declare a state; the first state declared defaults to initial."""
        if any(s.name == name for s in self.states):
            raise ModelError(f"duplicate state name {name!r} in FSM {self.name!r}")
        st = State(self, name)
        self.states.append(st)
        if initial:
            if self._initial_explicit:
                raise ModelError(f"FSM {self.name!r} already has an initial state")
            self._initial_explicit = True
            self._initial = st
            self.current = st
        elif self._initial is None:
            self._initial = st
            self.current = st
        return st

    def initial(self, name: str) -> State:
        """Declare the initial state (the paper's ``initial s0``)."""
        return self.state(name, initial=True)

    def _add_transition(self, transition: Transition) -> None:
        transition.source.transitions.append(transition)
        self.transitions.append(transition)

    @property
    def initial_state(self) -> Optional[State]:
        return self._initial

    # -- simulation -------------------------------------------------------------

    def select(self) -> Transition:
        """Phase 0: pick this cycle's transition from the current state."""
        if self.current is None:
            raise SimulationError(f"FSM {self.name!r} has no states")
        for transition in self.current.transitions:
            if transition.condition.evaluate():
                self._pending = transition.target
                self.last_taken = transition
                return transition
        raise SimulationError(
            f"FSM {self.name!r}: no transition enabled from state "
            f"{self.current.name!r} (add a default 'always' transition)"
        )

    def commit(self) -> None:
        """Register-update phase: make the pending state current."""
        if self._pending is not None:
            self.current = self._pending
            self._pending = None

    def reset(self) -> None:
        """Return to the initial state."""
        self.current = self._initial
        self._pending = None
        self.last_taken = None

    def sfgs(self) -> List[SFG]:
        """Every SFG referenced by this FSM, in first-use order."""
        seen: List[SFG] = []
        for transition in self.transitions:
            for sfg in transition.sfgs:
                if sfg not in seen:
                    seen.append(sfg)
        return seen

    def __repr__(self) -> str:
        return (f"FSM({self.name!r}, states={[s.name for s in self.states]}, "
                f"current={self.current.name if self.current else None})")
