"""Expression nodes for signal-flow-graph construction.

This is the Python equivalent of the paper's Figure 3: the C++ ``sig``
class overloads ``operator+`` to return a ``sigadd`` node, reusing the
compiler's parser to build the signal-flow-graph data structure.  Here the
:class:`Expr` base class overloads the Python arithmetic operators; writing
``a + b * c`` therefore *constructs a DAG* rather than computing a number.
Every node supports

* :meth:`Expr.evaluate` — the paper's ``simulate()``: compute the node's
  value from current signal values, and
* a structural interface (``children``, :meth:`Expr.leaves`) that the HDL
  code generators and the synthesis tools traverse — the paper's
  ``gen_code()``.

Comparison operators are deliberately *not* overloaded (``__eq__`` must
keep Python identity semantics so expressions stay hashable); use the
:func:`eq`, :func:`ne`, :func:`lt`, :func:`le`, :func:`gt`, :func:`ge`
helpers instead.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Set, Tuple, Union

from ..fixpt import Fx, FxFormat, quantize
from .errors import ModelError, SynthesisError
from .srcloc import here

Value = Union[int, float, Fx]

#: Binary operators with their evaluation semantics.
_ARITH_OPS = {"+", "-", "*"}
_BIT_OPS = {"&", "|", "^"}
_SHIFT_OPS = {"<<", ">>"}
_CMP_OPS = {"==", "!=", "<", "<=", ">", ">="}
BINARY_OPS = _ARITH_OPS | _BIT_OPS | _SHIFT_OPS | _CMP_OPS
UNARY_OPS = {"-", "~", "abs"}

#: Format used for boolean results (comparisons, bit selects).
BOOL = FxFormat(wl=1, iwl=1, signed=False)


def _as_expr(value) -> "Expr":
    """Coerce a Python number into a :class:`Constant` expression."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float, Fx)):
        return Constant(value)
    raise TypeError(f"cannot use {type(value).__name__} in a signal expression")


class Expr:
    """Base class for all signal-flow-graph expression nodes."""

    #: Construction site in user code (None when capture is disabled).
    __slots__ = ("loc",)

    #: Overridden by subclasses: child expressions, left to right.
    children: Tuple["Expr", ...] = ()

    # -- the paper's simulate() ------------------------------------------------

    def evaluate(self) -> Value:
        """Compute this node's current value (recursive interpretation)."""
        raise NotImplementedError

    # -- structure ---------------------------------------------------------------

    def leaves(self) -> Iterator["Expr"]:
        """Yield every leaf (signal or constant) in this expression tree."""
        if not self.children:
            yield self
            return
        for child in self.children:
            yield from child.leaves()

    def signals(self) -> Set["Expr"]:
        """The set of signal leaves (excluding constants) under this node."""
        from .signal import Sig

        return {leaf for leaf in self.leaves() if isinstance(leaf, Sig)}

    def result_fmt(self) -> Optional[FxFormat]:
        """Static result format, or None for floating-point modeling."""
        raise NotImplementedError

    def require_fmt(self) -> FxFormat:
        """Result format, raising :class:`SynthesisError` if unavailable."""
        fmt = self.result_fmt()
        if fmt is None:
            raise SynthesisError(
                f"expression {self!r} has no fixed-point format; "
                "bit-true wordlengths are required for code generation/synthesis"
            )
        return fmt

    # -- operator overloads (DAG construction, as in Fig. 3) ---------------------

    def __add__(self, other):
        return BinOp("+", self, _as_expr(other))

    def __radd__(self, other):
        return BinOp("+", _as_expr(other), self)

    def __sub__(self, other):
        return BinOp("-", self, _as_expr(other))

    def __rsub__(self, other):
        return BinOp("-", _as_expr(other), self)

    def __mul__(self, other):
        return BinOp("*", self, _as_expr(other))

    def __rmul__(self, other):
        return BinOp("*", _as_expr(other), self)

    def __and__(self, other):
        return BinOp("&", self, _as_expr(other))

    def __rand__(self, other):
        return BinOp("&", _as_expr(other), self)

    def __or__(self, other):
        return BinOp("|", self, _as_expr(other))

    def __ror__(self, other):
        return BinOp("|", _as_expr(other), self)

    def __xor__(self, other):
        return BinOp("^", self, _as_expr(other))

    def __rxor__(self, other):
        return BinOp("^", _as_expr(other), self)

    def __lshift__(self, bits):
        if not isinstance(bits, int):
            raise ModelError("shift amounts must be constant integers")
        return BinOp("<<", self, Constant(bits))

    def __rshift__(self, bits):
        if not isinstance(bits, int):
            raise ModelError("shift amounts must be constant integers")
        return BinOp(">>", self, Constant(bits))

    def __neg__(self):
        return UnOp("-", self)

    def __invert__(self):
        return UnOp("~", self)

    def __abs__(self):
        return UnOp("abs", self)

    def __bool__(self):
        raise ModelError(
            "signal expressions have no Python truth value; "
            "use mux()/eq()/cnd() to model hardware decisions"
        )


class Constant(Expr):
    """A literal value appearing in an expression."""

    __slots__ = ("value", "_fmt")

    def __init__(self, value: Value, fmt: FxFormat = None):
        if isinstance(value, Fx):
            fmt = fmt or value.fmt
            value = value if fmt is value.fmt else quantize(value, fmt)
        elif fmt is not None:
            value = quantize(value, fmt)
        self.value = value
        self._fmt = fmt
        self.loc = here()

    def evaluate(self) -> Value:
        return self.value

    def result_fmt(self) -> Optional[FxFormat]:
        if self._fmt is not None:
            return self._fmt
        if isinstance(self.value, int):
            from .signal import _int_fmt

            return _int_fmt(self.value)
        return None

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"


class BinOp(Expr):
    """A binary operator node (the paper's ``sigadd`` generalized)."""

    __slots__ = ("op", "left", "right", "children")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in BINARY_OPS:
            raise ModelError(f"unknown binary operator {op!r}")
        self.op = op
        self.left = left
        self.right = right
        self.children = (left, right)
        self.loc = here()

    def evaluate(self) -> Value:
        a = self.left.evaluate()
        op = self.op
        if op in _SHIFT_OPS:
            bits = int(self.right.evaluate())
            if isinstance(a, Fx):
                return a << bits if op == "<<" else a >> bits
            if isinstance(a, int):
                return a << bits if op == "<<" else a >> bits
            return a * (2.0 ** bits) if op == "<<" else a * (2.0 ** -bits)
        b = self.right.evaluate()
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op in _BIT_OPS:
            if not isinstance(a, Fx):
                a = int(a)
            if not isinstance(b, Fx):
                b = int(b)
            if op == "&":
                return a & b
            if op == "|":
                return a | b
            return a ^ b
        # Comparison: result is a 1-bit unsigned value.
        if op == "==":
            res = a == b
        elif op == "!=":
            res = a != b
        elif op == "<":
            res = a < b
        elif op == "<=":
            res = a <= b
        elif op == ">":
            res = a > b
        else:
            res = a >= b
        return 1 if res else 0

    def result_fmt(self) -> Optional[FxFormat]:
        if self.op in _CMP_OPS:
            return BOOL
        lf = self.left.result_fmt()
        if self.op in _SHIFT_OPS:
            if lf is None:
                return None
            bits = int(self.right.evaluate())
            return _shift_fmt(lf, bits if self.op == "<<" else -bits)
        rf = self.right.result_fmt()
        if lf is None or rf is None:
            return None
        if self.op in {"+", "-"}:
            fmt = lf.union(rf)
            grown = FxFormat(fmt.wl + 1, fmt.iwl + 1, fmt.signed or self.op == "-",
                             fmt.rounding, fmt.overflow)
            if self.op == "-" and not (lf.signed or rf.signed):
                grown = FxFormat(grown.wl + 1, grown.iwl + 1, True,
                                 grown.rounding, grown.overflow)
            return grown
        if self.op == "*":
            return FxFormat(
                wl=max(1, lf.iwl + rf.iwl + lf.frac_bits + rf.frac_bits),
                iwl=lf.iwl + rf.iwl,
                signed=lf.signed or rf.signed,
                rounding=lf.rounding,
                overflow=lf.overflow,
            )
        # Bitwise: both must be integer formats of compatible width.
        return lf.union(rf)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


def _shift_fmt(fmt: FxFormat, bits: int) -> FxFormat:
    """Result format of a constant shift by *bits* (positive = left)."""
    if bits >= 0:
        return FxFormat(fmt.wl + bits, fmt.iwl + bits, fmt.signed,
                        fmt.rounding, fmt.overflow)
    return FxFormat(fmt.wl - bits, fmt.iwl, fmt.signed, fmt.rounding, fmt.overflow)


class UnOp(Expr):
    """A unary operator node: negate, bitwise-invert, or absolute value."""

    __slots__ = ("op", "operand", "children")

    def __init__(self, op: str, operand: Expr):
        if op not in UNARY_OPS:
            raise ModelError(f"unknown unary operator {op!r}")
        self.op = op
        self.operand = operand
        self.children = (operand,)
        self.loc = here()

    def evaluate(self) -> Value:
        a = self.operand.evaluate()
        if self.op == "-":
            return -a
        if self.op == "abs":
            return abs(a)
        if isinstance(a, Fx):
            return ~a
        return ~int(a)

    def result_fmt(self) -> Optional[FxFormat]:
        fmt = self.operand.result_fmt()
        if fmt is None:
            return None
        if self.op == "~":
            return fmt
        # Negation/abs of the most negative value needs one extra bit.
        signed_fmt = fmt if fmt.signed else FxFormat(
            fmt.wl + 1, fmt.iwl + 1, True, fmt.rounding, fmt.overflow)
        return FxFormat(signed_fmt.wl + 1, signed_fmt.iwl + 1, True,
                        signed_fmt.rounding, signed_fmt.overflow)

    def __repr__(self) -> str:
        return f"({self.op}{self.operand!r})"


class Mux(Expr):
    """A 2-way multiplexer: ``sel ? if_true : if_false``."""

    __slots__ = ("sel", "if_true", "if_false", "children")

    def __init__(self, sel: Expr, if_true: Expr, if_false: Expr):
        self.sel = sel
        self.if_true = if_true
        self.if_false = if_false
        self.children = (sel, if_true, if_false)
        self.loc = here()

    def evaluate(self) -> Value:
        sel = self.sel.evaluate()
        taken = bool(int(sel)) if isinstance(sel, (int, Fx)) else bool(sel)
        return self.if_true.evaluate() if taken else self.if_false.evaluate()

    def result_fmt(self) -> Optional[FxFormat]:
        tf = self.if_true.result_fmt()
        ff = self.if_false.result_fmt()
        if tf is None or ff is None:
            return None
        return tf.union(ff)

    def __repr__(self) -> str:
        return f"mux({self.sel!r}, {self.if_true!r}, {self.if_false!r})"


class Cast(Expr):
    """Quantize a value into a target format (a wordlength boundary)."""

    __slots__ = ("operand", "fmt", "children")

    def __init__(self, operand: Expr, fmt: FxFormat):
        self.operand = operand
        self.fmt = fmt
        self.children = (operand,)
        self.loc = here()

    def evaluate(self) -> Value:
        return quantize(self.operand.evaluate(), self.fmt)

    def result_fmt(self) -> Optional[FxFormat]:
        return self.fmt

    def __repr__(self) -> str:
        return f"cast({self.operand!r}, {self.fmt})"


class BitSelect(Expr):
    """Select a single bit of an integer-format value (LSB = bit 0)."""

    __slots__ = ("operand", "index", "children")

    def __init__(self, operand: Expr, index: int):
        if index < 0:
            raise ModelError("bit index must be non-negative")
        self.operand = operand
        self.index = index
        self.children = (operand,)
        self.loc = here()

    def evaluate(self) -> Value:
        value = self.operand.evaluate()
        raw = value.raw if isinstance(value, Fx) else int(value)
        return (raw >> self.index) & 1

    def result_fmt(self) -> Optional[FxFormat]:
        return BOOL

    def __repr__(self) -> str:
        return f"{self.operand!r}[{self.index}]"


class SliceSelect(Expr):
    """Select a contiguous bit field ``[hi:lo]`` as an unsigned integer."""

    __slots__ = ("operand", "hi", "lo", "children")

    def __init__(self, operand: Expr, hi: int, lo: int):
        if lo < 0 or hi < lo:
            raise ModelError(f"bad slice [{hi}:{lo}]")
        self.operand = operand
        self.hi = hi
        self.lo = lo
        self.children = (operand,)
        self.loc = here()

    @property
    def width(self) -> int:
        return self.hi - self.lo + 1

    def evaluate(self) -> Value:
        value = self.operand.evaluate()
        raw = value.raw if isinstance(value, Fx) else int(value)
        return (raw >> self.lo) & ((1 << self.width) - 1)

    def result_fmt(self) -> Optional[FxFormat]:
        return FxFormat(wl=self.width, iwl=self.width, signed=False)

    def __repr__(self) -> str:
        return f"{self.operand!r}[{self.hi}:{self.lo}]"


class Concat(Expr):
    """Concatenate integer-format values, first operand = most significant."""

    __slots__ = ("children",)

    def __init__(self, *operands: Expr):
        if len(operands) < 2:
            raise ModelError("concat needs at least two operands")
        self.children = tuple(_as_expr(op) for op in operands)
        self.loc = here()

    def evaluate(self) -> Value:
        result = 0
        for child in self.children:
            fmt = child.require_fmt()
            value = child.evaluate()
            raw = value.raw if isinstance(value, Fx) else int(value)
            result = (result << fmt.wl) | (raw & ((1 << fmt.wl) - 1))
        return result

    def result_fmt(self) -> Optional[FxFormat]:
        width = 0
        for child in self.children:
            fmt = child.result_fmt()
            if fmt is None:
                return None
            width += fmt.wl
        return FxFormat(wl=width, iwl=width, signed=False)

    def __repr__(self) -> str:
        inner = ", ".join(repr(c) for c in self.children)
        return f"concat({inner})"


# -- functional DSL helpers ---------------------------------------------------


def mux(sel, if_true, if_false) -> Mux:
    """Build a 2-way multiplexer expression."""
    return Mux(_as_expr(sel), _as_expr(if_true), _as_expr(if_false))


def cast(value, fmt: FxFormat) -> Cast:
    """Quantize *value* into *fmt* (a register/bus wordlength boundary)."""
    return Cast(_as_expr(value), fmt)


def bit(value, index: int) -> BitSelect:
    """Select bit *index* (LSB = 0) of *value*."""
    return BitSelect(_as_expr(value), index)


def bits(value, hi: int, lo: int) -> SliceSelect:
    """Select the bit field ``[hi:lo]`` of *value* as unsigned."""
    return SliceSelect(_as_expr(value), hi, lo)


def concat(*operands) -> Concat:
    """Concatenate operands, first = most significant."""
    return Concat(*operands)


def eq(a, b) -> BinOp:
    """1-bit equality comparison."""
    return BinOp("==", _as_expr(a), _as_expr(b))


def ne(a, b) -> BinOp:
    """1-bit inequality comparison."""
    return BinOp("!=", _as_expr(a), _as_expr(b))


def lt(a, b) -> BinOp:
    """1-bit less-than comparison."""
    return BinOp("<", _as_expr(a), _as_expr(b))


def le(a, b) -> BinOp:
    """1-bit less-or-equal comparison."""
    return BinOp("<=", _as_expr(a), _as_expr(b))


def gt(a, b) -> BinOp:
    """1-bit greater-than comparison."""
    return BinOp(">", _as_expr(a), _as_expr(b))


def ge(a, b) -> BinOp:
    """1-bit greater-or-equal comparison."""
    return BinOp(">=", _as_expr(a), _as_expr(b))
