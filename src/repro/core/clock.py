"""Clock objects controlling registered-signal update.

The paper (section 3.1): *"Registered signals are related to a clock object
clk that controls signal update."*  A :class:`Clock` keeps the list of
registers bound to it; :meth:`Clock.tick` performs the register-update phase
(next-value copied to current-value) and advances the cycle counter.
"""

from __future__ import annotations

from typing import List


class Clock:
    """A clock domain: owns registers and drives their update."""

    def __init__(self, name: str = "clk"):
        self.name = name
        self.cycle = 0
        self._registers: List["Register"] = []  # noqa: F821 (bound lazily)

    def _attach(self, register) -> None:
        self._registers.append(register)

    @property
    def registers(self):
        """The registers bound to this clock, in attachment order."""
        return tuple(self._registers)

    def tick(self) -> None:
        """Register update phase: copy every register's next to current."""
        for register in self._registers:
            register._update()
        self.cycle += 1

    def reset(self) -> None:
        """Return every register to its initial value and zero the cycle count."""
        for register in self._registers:
            register._reset()
        self.cycle = 0

    def __repr__(self) -> str:
        return f"Clock({self.name!r}, cycle={self.cycle}, registers={len(self._registers)})"
