"""Core modeling objects: signals, SFGs, FSMs, processes, systems.

This package is the paper's primary contribution — a programming (rather
than HDL) approach to ASIC modeling.  Hardware is described by *executing
Python*: operator overloading on :class:`Sig` builds signal-flow-graph data
structures (Fig. 3), a ``<<``-chained DSL builds Mealy FSMs (Fig. 4), and
processes assembled into a :class:`System` are simulated by the schedulers
in :mod:`repro.sim` and translated to HDL by :mod:`repro.hdl`.
"""

from .checks import Issue, assert_clean, check_fsm, check_sfg, check_system
from .clock import Clock
from .errors import (
    CheckError,
    CodegenError,
    DeadlockError,
    FxOverflowError,
    ModelError,
    ReproError,
    SimulationError,
    SynthesisError,
    TransientError,
    WatchdogTimeout,
    is_transient,
)
from .expr import (
    BOOL,
    BinOp,
    BitSelect,
    Cast,
    Concat,
    Constant,
    Expr,
    Mux,
    SliceSelect,
    UnOp,
    bit,
    bits,
    cast,
    concat,
    eq,
    ge,
    gt,
    le,
    lt,
    mux,
    ne,
)
from .fsm import FSM, Condition, State, Transition, always, cnd
from .process import Port, Process, TimedProcess, UntimedProcess, actor
from .sfg import SFG, Assignment
from .signal import Register, Sig, sig_like
from .system import Channel, System

__all__ = [
    "BOOL",
    "Assignment",
    "BinOp",
    "BitSelect",
    "Cast",
    "Channel",
    "CheckError",
    "Clock",
    "CodegenError",
    "Concat",
    "Condition",
    "Constant",
    "DeadlockError",
    "Expr",
    "FSM",
    "FxOverflowError",
    "Issue",
    "ModelError",
    "is_transient",
    "Mux",
    "Port",
    "Process",
    "Register",
    "ReproError",
    "SFG",
    "Sig",
    "SimulationError",
    "SliceSelect",
    "State",
    "TransientError",
    "WatchdogTimeout",
    "SynthesisError",
    "System",
    "TimedProcess",
    "Transition",
    "UnOp",
    "UntimedProcess",
    "actor",
    "always",
    "assert_clean",
    "bit",
    "bits",
    "cast",
    "check_fsm",
    "check_sfg",
    "check_system",
    "cnd",
    "concat",
    "eq",
    "ge",
    "gt",
    "le",
    "lt",
    "mux",
    "ne",
    "sig_like",
]
