"""Semantic checks on SFGs, FSMs and systems.

The paper (section 3.1): declaring SFG inputs and outputs *"allows to do
semantical checks such as dangling input and dead code detection, which
warn the user of code inconsistency."*  Each check returns a list of
:class:`Issue` records; :func:`assert_clean` raises on errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from .errors import CheckError
from .fsm import FSM
from .sfg import SFG
from .signal import Register, Sig
from .system import System

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Issue:
    """One finding of a semantic check."""

    severity: str
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.code}: {self.message}"


def check_sfg(sfg: SFG) -> List[Issue]:
    """Check one SFG for dangling inputs, undriven reads, and dead code."""
    issues: List[Issue] = []
    targets = sfg.targets()
    reads: Set[Sig] = set()
    for assignment in sfg.assignments:
        reads |= assignment.reads()

    # Dangling input: declared but never read.
    for inp in sfg.inputs:
        if inp not in reads:
            issues.append(Issue(
                WARNING, "dangling-input",
                f"SFG {sfg.name!r}: input {inp.name!r} is never read",
            ))

    # Inputs must not be driven inside the SFG.
    for inp in sfg.inputs:
        if inp in targets:
            issues.append(Issue(
                ERROR, "driven-input",
                f"SFG {sfg.name!r}: input {inp.name!r} is also assigned",
            ))

    # Undriven: a plain signal read but neither assigned nor declared input.
    for sig in reads:
        if sig.is_register():
            continue
        if sig not in targets and sig not in sfg.inputs:
            issues.append(Issue(
                ERROR, "undriven-signal",
                f"SFG {sfg.name!r}: signal {sig.name!r} is read but is neither "
                "driven, an input, nor a register",
            ))

    # Outputs must be driven or be registers (whose current value is emitted).
    for out in sfg.outputs:
        if out not in targets and not out.is_register():
            issues.append(Issue(
                ERROR, "undriven-output",
                f"SFG {sfg.name!r}: output {out.name!r} is never driven",
            ))

    # Dead code: an assigned plain signal that feeds neither an output,
    # a register, nor any other assignment.
    useful = set(sfg.outputs)
    for assignment in sfg.assignments:
        if assignment.target.is_register():
            useful |= assignment.reads()
    changed = True
    while changed:
        changed = False
        for assignment in sfg.assignments:
            if assignment.target in useful:
                new = assignment.reads() - useful
                if new:
                    useful |= new
                    changed = True
    for assignment in sfg.assignments:
        target = assignment.target
        if not target.is_register() and target not in useful:
            issues.append(Issue(
                WARNING, "dead-code",
                f"SFG {sfg.name!r}: assignment to {target.name!r} is dead "
                "(reaches no output or register)",
            ))

    # Combinational loops are detected by ordering; surface them as issues.
    try:
        sfg.ordered_assignments()
    except CheckError as exc:
        issues.append(Issue(ERROR, "combinational-loop", str(exc)))

    return issues


def check_fsm(fsm: FSM) -> List[Issue]:
    """Check an FSM for reachability, determinism, and condition legality."""
    issues: List[Issue] = []

    if fsm.initial_state is None:
        issues.append(Issue(ERROR, "no-initial-state",
                            f"FSM {fsm.name!r} has no states"))
        return issues

    # Reachability from the initial state.
    reachable = {fsm.initial_state}
    frontier = [fsm.initial_state]
    while frontier:
        state = frontier.pop()
        for transition in state.transitions:
            if transition.target not in reachable:
                reachable.add(transition.target)
                frontier.append(transition.target)
    for state in fsm.states:
        if state not in reachable:
            issues.append(Issue(
                WARNING, "unreachable-state",
                f"FSM {fsm.name!r}: state {state.name!r} is unreachable",
            ))

    for state in fsm.states:
        if state in reachable and not state.transitions:
            issues.append(Issue(
                ERROR, "stuck-state",
                f"FSM {fsm.name!r}: state {state.name!r} has no outgoing "
                "transitions",
            ))
        # An 'always' guard before other transitions makes them dead.
        for index, transition in enumerate(state.transitions):
            if transition.condition.is_always() and index < len(state.transitions) - 1:
                issues.append(Issue(
                    WARNING, "shadowed-transition",
                    f"FSM {fsm.name!r}: transitions after the unconditional one "
                    f"from state {state.name!r} can never fire",
                ))
                break

    # Conditions must depend only on registered or constant signals
    # (paper: "the conditions are stored in registers inside the SFGs").
    for transition in fsm.transitions:
        expr = transition.condition.expr
        if expr is None:
            continue
        for sig in expr.signals():
            if not sig.is_register():
                issues.append(Issue(
                    ERROR, "unregistered-condition",
                    f"FSM {fsm.name!r}: condition of {transition!r} reads "
                    f"non-registered signal {sig.name!r}; conditions must be "
                    "stored in registers",
                ))
    return issues


def check_system(system: System) -> List[Issue]:
    """Check the whole system: wiring plus every SFG and FSM."""
    issues: List[Issue] = []
    for port in system.unconnected_ports():
        issues.append(Issue(
            WARNING, "unconnected-port",
            f"port {port.process.name}.{port.name} is not connected",
        ))
    for process in system.timed_processes():
        if process.fsm is not None:
            issues.extend(check_fsm(process.fsm))
        for sfg in process.all_sfgs():
            issues.extend(check_sfg(sfg))
    return issues


def assert_clean(issues: List[Issue]) -> None:
    """Raise :class:`CheckError` if any issue has error severity."""
    errors = [issue for issue in issues if issue.severity == ERROR]
    if errors:
        raise CheckError("; ".join(str(issue) for issue in errors))
