"""Semantic checks on SFGs, FSMs and systems (compatibility shim).

The paper (section 3.1): declaring SFG inputs and outputs *"allows to do
semantical checks such as dangling input and dead code detection, which
warn the user of code inconsistency."*

The analyses themselves now live in :mod:`repro.lint` — a pluggable rule
framework with stable diagnostic codes, severities, and source
locations.  This module keeps the historical functional API:
``check_sfg``/``check_fsm``/``check_system`` run the corresponding lint
rules and translate each :class:`repro.lint.Diagnostic` back into a flat
:class:`Issue`, whose ``code`` is the diagnostic's symbolic name (the
strings existing callers match on).  Info-severity diagnostics are
dropped — the legacy API only ever knew errors and warnings.  New code
should use :class:`repro.lint.Linter` directly, which adds per-rule
configuration, suppression, ``file:line`` locations, and the interval
analysis rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .errors import CheckError
from .fsm import FSM
from .sfg import SFG
from .system import System

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Issue:
    """One finding of a semantic check."""

    severity: str
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.code}: {self.message}"


def _issues(diagnostics) -> List[Issue]:
    """Flatten lint diagnostics into the legacy Issue records."""
    return [Issue(d.severity, d.name, d.message) for d in diagnostics
            if d.severity in (ERROR, WARNING)]


def check_sfg(sfg: SFG) -> List[Issue]:
    """Check one SFG for dangling inputs, undriven reads, and dead code."""
    from ..lint import Linter

    return _issues(Linter().lint_sfg(sfg))


def check_fsm(fsm: FSM) -> List[Issue]:
    """Check an FSM for reachability, determinism, and condition legality.

    Determinism is analyzed exactly: guard conditions read registered
    signals of known format, so satisfiability of guard combinations is
    decided by enumeration (``overlapping-guards``,
    ``incomplete-transitions``) when the state space is small enough.
    """
    from ..lint import Linter

    return _issues(Linter().lint_fsm(fsm))


def check_system(system: System) -> List[Issue]:
    """Check the whole system: wiring plus every process's SFGs and FSM.

    Unlike the historical version, this covers *untimed* processes too
    (their SFGs, if any, and their firing rules).
    """
    from ..lint import Linter

    return _issues(Linter().lint_system(system))


def assert_clean(issues: List[Issue]) -> None:
    """Raise :class:`CheckError` if any issue has error severity."""
    errors = [issue for issue in issues if issue.severity == ERROR]
    if errors:
        raise CheckError("; ".join(str(issue) for issue in errors))
