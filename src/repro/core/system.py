"""The system machine model: processes connected by an interconnect.

Paper, section 2: *"the DECT transceiver is best described with a set of
concurrent processes ... At the system level, processes execute using
data-flow simulation semantics."*  A :class:`System` holds processes and
:class:`Channel` objects connecting their ports.  A channel behaves as a
token FIFO under the data-flow scheduler and as a once-per-cycle valued
wire under the cycle scheduler (tokens are produced onto the interconnect
during phases 1–2 and cleared at the start of the next cycle).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Set

from .clock import Clock
from .errors import ModelError, SimulationError
from .process import Port, Process, TimedProcess, UntimedProcess


class Channel:
    """A point of interconnect between one producer port and consumer ports."""

    def __init__(self, name: str, capacity: Optional[int] = None):
        self.name = name
        self.capacity = capacity
        self.producer: Optional[Port] = None
        self.consumers: List[Port] = []
        self._queue: Deque = deque()
        #: Total tokens ever produced (for throughput statistics).
        self.total_produced = 0

    # -- FIFO interface (data-flow semantics) --------------------------------------

    def put(self, token) -> None:
        """Produce one token."""
        if self.capacity is not None and len(self._queue) >= self.capacity:
            raise SimulationError(
                f"channel {self.name!r} overflow (capacity {self.capacity})"
            )
        self._queue.append(token)
        self.total_produced += 1

    def get(self):
        """Consume the oldest token."""
        if not self._queue:
            raise SimulationError(f"channel {self.name!r} underflow")
        return self._queue.popleft()

    def peek(self, index: int = 0):
        """Read a token without consuming it."""
        return self._queue[index]

    def tokens(self) -> int:
        """Number of tokens currently queued."""
        return len(self._queue)

    # -- wire interface (cycle semantics) --------------------------------------------

    @property
    def valid(self) -> bool:
        """True when a token was produced this cycle (cycle semantics)."""
        return bool(self._queue)

    @property
    def value(self):
        """The current cycle's token (cycle semantics)."""
        if not self._queue:
            raise SimulationError(f"channel {self.name!r} has no token this cycle")
        return self._queue[-1]

    def clear(self) -> None:
        """Drop all tokens (start of a new cycle under the cycle scheduler)."""
        self._queue.clear()

    def preload(self, tokens: Iterable) -> None:
        """Place initial tokens (data-flow delay / initial tokens)."""
        for token in tokens:
            self.put(token)
        self.total_produced -= len(self._queue)

    def __repr__(self) -> str:
        return f"Channel({self.name!r}, tokens={len(self._queue)})"


class System:
    """A set of concurrent processes plus their interconnect."""

    def __init__(self, name: str):
        self.name = name
        self.processes: List[Process] = []
        self.channels: List[Channel] = []
        self._by_name: Dict[str, Process] = {}

    # -- construction ------------------------------------------------------------

    def add(self, process: Process) -> Process:
        """Add a process to the system."""
        if process.name in self._by_name:
            raise ModelError(f"duplicate process name {process.name!r}")
        self.processes.append(process)
        self._by_name[process.name] = process
        return process

    def __getitem__(self, name: str) -> Process:
        return self._by_name[name]

    def channel(self, name: str, capacity: Optional[int] = None) -> Channel:
        """Create an unconnected channel (e.g. a primary input)."""
        if any(c.name == name for c in self.channels):
            raise ModelError(f"duplicate channel name {name!r}")
        chan = Channel(name, capacity)
        self.channels.append(chan)
        return chan

    def connect(self, producer: Optional[Port], *consumers: Port,
                name: Optional[str] = None,
                capacity: Optional[int] = None) -> Channel:
        """Wire a producer port to consumer ports through a new channel.

        ``producer`` may be None for a primary input driven by a stimulus
        (tokens are then placed with :meth:`Channel.put` directly).
        """
        if name is None:
            if producer is not None:
                name = f"{producer.process.name}_{producer.name}"
            else:
                name = f"chan{len(self.channels)}"
        chan = self.channel(name, capacity)
        if producer is not None:
            self._bind(chan, producer, as_producer=True)
        for consumer in consumers:
            self._bind(chan, consumer, as_producer=False)
        return chan

    def _bind(self, chan: Channel, port: Port, as_producer: bool) -> None:
        if port.channel is not None:
            raise ModelError(
                f"port {port.process.name}.{port.name} is already connected"
            )
        if as_producer:
            if port.direction != "out":
                raise ModelError(f"{port!r} is not an output port")
            if chan.producer is not None:
                raise ModelError(f"channel {chan.name!r} already has a producer")
            chan.producer = port
        else:
            if port.direction != "in":
                raise ModelError(f"{port!r} is not an input port")
            chan.consumers.append(port)
        port.channel = chan

    def attach(self, chan: Channel, *consumers: Port) -> Channel:
        """Attach additional consumer ports to an existing channel."""
        for consumer in consumers:
            self._bind(chan, consumer, as_producer=False)
        return chan

    # -- queries -------------------------------------------------------------------

    def timed_processes(self) -> List[TimedProcess]:
        """The clock-cycle-true components, in addition order."""
        return [p for p in self.processes if isinstance(p, TimedProcess)]

    def untimed_processes(self) -> List[UntimedProcess]:
        """The high-level (data-flow) components, in addition order."""
        return [p for p in self.processes if isinstance(p, UntimedProcess)]

    def clocks(self) -> List[Clock]:
        """Every clock referenced by the system's timed processes."""
        seen: List[Clock] = []
        for process in self.timed_processes():
            if process.clk not in seen:
                seen.append(process.clk)
        return seen

    def is_pure_dataflow(self) -> bool:
        """True when the system contains only untimed blocks (section 2)."""
        return not self.timed_processes()

    def unconnected_ports(self) -> List[Port]:
        """Ports not wired to any channel (a wiring lint)."""
        return [
            port
            for process in self.processes
            for port in process.ports.values()
            if port.channel is None
        ]

    def validate(self) -> None:
        """Raise :class:`ModelError` on dangling wiring."""
        dangling = self.unconnected_ports()
        if dangling:
            names = ", ".join(f"{p.process.name}.{p.name}" for p in dangling)
            raise ModelError(f"unconnected ports in system {self.name!r}: {names}")

    def __repr__(self) -> str:
        return (f"System({self.name!r}, {len(self.processes)} processes, "
                f"{len(self.channels)} channels)")
