"""VHDL code generation (paper sections 5 and 6, Figures 7 and 8).

*"The writing of HDL is avoided through code generation from C++."*

Each timed component is translated to a synthesizable VHDL entity in the
classical two-process FSMD style: one combinational process holding the
FSM case statement and the datapath expressions, one clocked process for
the register update.  A structural top level instantiates the components
and wires the channels (the paper's "system linkage", Fig. 8).  Untimed
blocks (the high-level descriptions, e.g. RAM cells) become behavioural
stub entities unless they supply their own architecture via a
``vhdl_architecture`` attribute.

All values are represented as ``signed`` vectors; unsigned model formats
get one extra headroom bit so the signed representation is exact.  A small
support package supplies quantization (rounding/saturation/wrap), bit
slicing and multiplexing helpers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..fixpt import Fx, FxFormat, Overflow, Rounding, quantize_raw
from ..core.errors import CodegenError
from ..core.expr import (
    BinOp,
    BitSelect,
    Cast,
    Concat,
    Constant,
    Expr,
    Mux,
    SliceSelect,
    UnOp,
)
from ..core.process import TimedProcess, UntimedProcess
from ..core.signal import Register, Sig
from ..core.system import System
from .naming import NameScope, sanitize

PACKAGE_NAME = "repro_pkg"


def vector_width(fmt: FxFormat) -> int:
    """Bits of the signed internal representation of *fmt*."""
    return fmt.wl if fmt.signed else fmt.wl + 1


def _sig_fmt(sig: Sig) -> FxFormat:
    if sig.fmt is None:
        raise CodegenError(
            f"signal {sig.name!r} has no fixed-point format; HDL generation "
            "needs bit-true wordlengths on every signal"
        )
    return sig.fmt


def support_package() -> str:
    """The static VHDL support package used by all generated entities."""
    return f"""\
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

package {PACKAGE_NAME} is
  function b2s(b : boolean) return signed;
  function pick(c : boolean; t : signed; f : signed) return signed;
  function bit_at(x : signed; i : natural; w : natural) return signed;
  function slice_u(x : signed; hi : natural; lo : natural; w : natural)
    return signed;
  function quantize(x : signed; shift : integer; w : natural;
                    rnd : boolean; sat : boolean) return signed;
end package {PACKAGE_NAME};

package body {PACKAGE_NAME} is

  function b2s(b : boolean) return signed is
  begin
    if b then
      return to_signed(1, 2);
    else
      return to_signed(0, 2);
    end if;
  end function;

  function pick(c : boolean; t : signed; f : signed) return signed is
  begin
    if c then
      return t;
    else
      return f;
    end if;
  end function;

  function bit_at(x : signed; i : natural; w : natural) return signed is
    variable r : signed(w - 1 downto 0) := (others => '0');
  begin
    if x(i) = '1' then
      r(0) := '1';
    end if;
    return r;
  end function;

  function slice_u(x : signed; hi : natural; lo : natural; w : natural)
    return signed is
    variable r : signed(w - 1 downto 0) := (others => '0');
  begin
    r(hi - lo downto 0) := signed(x(hi downto lo));
    r(w - 1) := '0';
    return r;
  end function;

  function quantize(x : signed; shift : integer; w : natural;
                    rnd : boolean; sat : boolean) return signed is
    variable wide : signed(x'length downto 0);
    variable shifted : signed(x'length downto 0);
    variable lo : signed(w - 1 downto 0);
    variable hi : signed(w - 1 downto 0);
  begin
    wide := resize(x, x'length + 1);
    if shift > 0 then
      if rnd then
        wide := wide + shift_left(to_signed(1, x'length + 1), shift - 1);
      end if;
      shifted := shift_right(wide, shift);
    elsif shift < 0 then
      shifted := shift_left(wide, -shift);
    else
      shifted := wide;
    end if;
    if sat then
      hi := (others => '1');
      hi(w - 1) := '0';
      lo := (others => '0');
      lo(w - 1) := '1';
      if shifted > resize(hi, x'length + 1) then
        return hi;
      elsif shifted < resize(lo, x'length + 1) then
        return lo;
      end if;
    end if;
    return resize(shifted, w);
  end function;

end package body {PACKAGE_NAME};
"""


class _VhdlExpr:
    """Translates expression DAGs into VHDL ``signed`` expressions."""

    def __init__(self, sig_name):
        self.sig_name = sig_name  # Sig -> VHDL identifier

    def gen(self, expr: Expr) -> Tuple[str, int, int]:
        """Return ``(code, frac_bits, width)`` for *expr*."""
        if isinstance(expr, Sig):
            fmt = _sig_fmt(expr)
            return self.sig_name(expr), fmt.frac_bits, vector_width(fmt)
        if isinstance(expr, Constant):
            fmt = expr.result_fmt()
            if fmt is None:
                raise CodegenError(f"constant {expr.value!r} has no format")
            raw = expr.value.raw if isinstance(expr.value, Fx) \
                else quantize_raw(expr.value, fmt)
            width = vector_width(fmt)
            return f"to_signed({raw}, {width})", fmt.frac_bits, width
        if isinstance(expr, BinOp):
            return self._binop(expr)
        if isinstance(expr, UnOp):
            return self._unop(expr)
        if isinstance(expr, Mux):
            return self._mux(expr)
        if isinstance(expr, Cast):
            code, frac, _w = self.gen(expr.operand)
            return self._quantize(code, frac, expr.fmt)
        if isinstance(expr, BitSelect):
            code, _frac, _w = self.gen(expr.operand)
            return f"bit_at({code}, {expr.index}, 2)", 0, 2
        if isinstance(expr, SliceSelect):
            code, _frac, _w = self.gen(expr.operand)
            width = expr.width + 1
            return (f"slice_u({code}, {expr.hi}, {expr.lo}, {width})",
                    0, width)
        if isinstance(expr, Concat):
            return self._concat(expr)
        raise CodegenError(f"cannot translate {expr!r} to VHDL")

    def _resize_align(self, code: str, frac: int, width: int,
                      to_frac: int, to_width: int) -> str:
        out = code
        if to_width != width:
            out = f"resize({out}, {to_width})"
        if to_frac > frac:
            out = f"shift_left({out}, {to_frac - frac})"
        elif to_frac < frac:
            out = f"shift_right({out}, {frac - to_frac})"
        return out

    def _binop(self, expr: BinOp):
        op = expr.op
        lcode, lfrac, lwidth = self.gen(expr.left)
        if op in ("<<", ">>"):
            bits = int(expr.right.evaluate())
            if op == "<<":
                width = lwidth + bits
                code = f"shift_left(resize({lcode}, {width}), {bits})"
                return code, lfrac, width
            # '>>' grows the fraction: the raw bits are unchanged.
            return lcode, lfrac + bits, lwidth
        rcode, rfrac, rwidth = self.gen(expr.right)
        if op in ("+", "-"):
            frac = max(lfrac, rfrac)
            width = max(lwidth + (frac - lfrac), rwidth + (frac - rfrac)) + 1
            la = self._resize_align(lcode, lfrac, lwidth, frac, width)
            ra = self._resize_align(rcode, rfrac, rwidth, frac, width)
            return f"({la} {'+' if op == '+' else '-'} {ra})", frac, width
        if op == "*":
            width = lwidth + rwidth
            return f"({lcode} * {rcode})", lfrac + rfrac, width
        if op in ("==", "!=", "<", "<=", ">", ">="):
            frac = max(lfrac, rfrac)
            width = max(lwidth + (frac - lfrac), rwidth + (frac - rfrac)) + 1
            la = self._resize_align(lcode, lfrac, lwidth, frac, width)
            ra = self._resize_align(rcode, rfrac, rwidth, frac, width)
            vhdl_op = {"==": "=", "!=": "/=", "<": "<", "<=": "<=",
                       ">": ">", ">=": ">="}[op]
            return f"b2s({la} {vhdl_op} {ra})", 0, 2
        # Bitwise.
        if lfrac != 0 or rfrac != 0:
            raise CodegenError("bitwise operators need integer formats")
        width = max(lwidth, rwidth)
        la = self._resize_align(lcode, 0, lwidth, 0, width)
        ra = self._resize_align(rcode, 0, rwidth, 0, width)
        vhdl_op = {"&": "and", "|": "or", "^": "xor"}[op]
        return f"({la} {vhdl_op} {ra})", 0, width

    def _unop(self, expr: UnOp):
        code, frac, width = self.gen(expr.operand)
        if expr.op == "-":
            return f"(- resize({code}, {width + 1}))", frac, width + 1
        if expr.op == "abs":
            return f"(abs resize({code}, {width + 1}))", frac, width + 1
        if frac != 0:
            raise CodegenError("bitwise invert needs an integer format")
        return f"(not {code})", 0, width

    def _mux(self, expr: Mux):
        scode, _sfrac, _sw = self.gen(expr.sel)
        tcode, tfrac, twidth = self.gen(expr.if_true)
        fcode, ffrac, fwidth = self.gen(expr.if_false)
        frac = max(tfrac, ffrac)
        width = max(twidth + (frac - tfrac), fwidth + (frac - ffrac))
        ta = self._resize_align(tcode, tfrac, twidth, frac, width)
        fa = self._resize_align(fcode, ffrac, fwidth, frac, width)
        return f"pick({scode} /= 0, {ta}, {fa})", frac, width

    def _concat(self, expr: Concat):
        parts = []
        total = 0
        for child in expr.children:
            fmt = child.require_fmt()
            code, frac, width = self.gen(child)
            if frac != 0:
                code = self._resize_align(code, frac, width, 0, width)
            parts.append(
                f"std_logic_vector(resize({code}, {fmt.wl}))"
            )
            total += fmt.wl
        joined = " & ".join(parts)
        width = total + 1
        return f"resize(signed('0' & ({joined})), {width})", 0, width

    def _quantize(self, code: str, frac: int, fmt: FxFormat):
        width = vector_width(fmt)
        shift = frac - fmt.frac_bits
        rnd = "true" if fmt.rounding is Rounding.ROUND else "false"
        sat = "true" if fmt.overflow is Overflow.SATURATE else "false"
        out = f"quantize({code}, {shift}, {width}, {rnd}, {sat})"
        return out, fmt.frac_bits, width


class VhdlGenerator:
    """Generates VHDL for a whole system: package, entities, top level."""

    def __init__(self, system: System):
        self.system = system

    def generate(self) -> Dict[str, str]:
        """Return a mapping of file name to VHDL source."""
        files: Dict[str, str] = {f"{PACKAGE_NAME}.vhd": support_package()}
        for process in self.system.timed_processes():
            name = sanitize(process.name)
            files[f"{name}.vhd"] = self.component(process)
        for process in self.system.untimed_processes():
            name = sanitize(process.name)
            files[f"{name}.vhd"] = self.untimed_stub(process)
        files[f"{sanitize(self.system.name)}_top.vhd"] = self.top_level()
        return files

    # -- per-component entity -----------------------------------------------------

    def component(self, process: TimedProcess) -> str:
        """Generate one entity: two-process (comb + seq) FSMD VHDL."""
        scope = NameScope()
        name = sanitize(process.name)
        lines: List[str] = []
        emit = lines.append

        # Collect structure.
        all_sfgs = process.all_sfgs()
        registers: List[Register] = []
        seen: Set[int] = set()
        for sfg in all_sfgs:
            for reg in sfg.registers():
                if id(reg) not in seen:
                    seen.add(id(reg))
                    registers.append(reg)
        port_sigs = {port.sig for port in process.ports.values()}
        # Every non-register target gets a process variable; output-port
        # targets additionally drive their port from that variable, so that
        # other assignments can read the value.
        internal: List[Sig] = []
        for sfg in all_sfgs:
            for assignment in sfg.assignments:
                target = assignment.target
                if not target.is_register() and target not in internal:
                    internal.append(target)

        sig_names: Dict[int, str] = {}
        # Reserve entity port names first, and map input-port signals to
        # their port so reads inside SFGs reference the entity port.
        scope.name(object(), "clk")
        scope.name(object(), "rst")
        for port in process.ports.values():
            port_id = scope.name(port, port.name)
            if port.direction == "in":
                sig_names[id(port.sig)] = port_id

        def sig_name(sig: Sig) -> str:
            got = sig_names.get(id(sig))
            if got is None:
                got = scope.name(sig, sig.name)
                sig_names[id(sig)] = got
            return got

        translator = _VhdlExpr(sig_name)

        emit("library ieee;")
        emit("use ieee.std_logic_1164.all;")
        emit("use ieee.numeric_std.all;")
        emit(f"use work.{PACKAGE_NAME}.all;")
        emit("")
        emit(f"entity {name} is")
        emit("  port (")
        port_lines = ["    clk : in std_logic;", "    rst : in std_logic;"]
        for port in process.ports.values():
            fmt = _sig_fmt(port.sig)
            width = vector_width(fmt)
            direction = "in" if port.direction == "in" else "out"
            port_lines.append(
                f"    {scope.name(port, port.name)} : {direction} "
                f"signed({width - 1} downto 0);"
            )
        port_lines[-1] = port_lines[-1].rstrip(";")
        lines.extend(port_lines)
        emit("  );")
        emit(f"end entity {name};")
        emit("")
        emit(f"architecture rtl of {name} is")

        fsm = process.fsm
        if fsm is not None:
            states = ", ".join(f"st_{sanitize(s.name)}" for s in fsm.states)
            emit(f"  type state_t is ({states});")
            emit(f"  signal state, state_next : state_t := "
                 f"st_{sanitize(fsm.initial_state.name)};")
        for reg in registers:
            fmt = _sig_fmt(reg)
            width = vector_width(fmt)
            reg_id = sig_name(reg)
            init = reg.init.raw if isinstance(reg.init, Fx) else int(reg.init)
            emit(f"  signal {reg_id}, {reg_id}_next : "
                 f"signed({width - 1} downto 0) := to_signed({init}, {width});")
        emit("begin")
        emit("")
        emit("  -- combinational process: FSM transitions + datapath SFGs")
        emit("  comb : process (all)")
        for sig in internal:
            fmt = _sig_fmt(sig)
            width = vector_width(fmt)
            emit(f"    variable {sig_name(sig)} : signed({width - 1} downto 0);")
        emit("  begin")
        if fsm is not None:
            emit("    state_next <= state;")
        for reg in registers:
            reg_id = sig_name(reg)
            emit(f"    {reg_id}_next <= {reg_id};")
        for port in process.out_ports():
            if not port.sig.is_register():
                fmt = _sig_fmt(port.sig)
                width = vector_width(fmt)
                emit(f"    {scope.name(port, port.name)} <= to_signed(0, {width});")
        emit("")

        def emit_sfg(sfg, indent: str) -> None:
            for assignment in sfg.ordered_assignments():
                target = assignment.target
                code, frac, _width = translator.gen(assignment.expr)
                fmt = _sig_fmt(target)
                qcode, _f, _w = translator._quantize(code, frac, fmt)
                if target.is_register():
                    emit(f"{indent}{sig_name(target)}_next <= {qcode};")
                else:
                    emit(f"{indent}{sig_name(target)} := {qcode};")
                    if target in port_sigs:
                        out_port = next(p for p in process.out_ports()
                                        if p.sig is target)
                        emit(f"{indent}{scope.name(out_port, out_port.name)} <= "
                             f"{sig_name(target)};")

        for sfg in process.static_sfgs:
            emit(f"    -- static SFG {sfg.name}")
            emit_sfg(sfg, "    ")
        if fsm is not None:
            emit("    case state is")
            for state in fsm.states:
                emit(f"      when st_{sanitize(state.name)} =>")
                transitions = [
                    t for t in state.transitions
                    if not (t.condition.expr is None and t.condition.negated)
                ]

                def emit_body(transition, indent):
                    emit(f"{indent}state_next <= "
                         f"st_{sanitize(transition.target.name)};")
                    for sfg in transition.sfgs:
                        emit(f"{indent}-- SFG {sfg.name}")
                        emit_sfg(sfg, indent)

                opened = False
                for index, transition in enumerate(transitions):
                    condition = transition.condition
                    if condition.is_always():
                        if index == 0:
                            emit_body(transition, "        ")
                        else:
                            emit("        else")
                            emit_body(transition, "          ")
                        break
                    code, _frac, _w = translator.gen(condition.expr)
                    test = f"{code} /= 0"
                    if condition.negated:
                        test = f"not ({test})"
                    emit(f"        {'if' if index == 0 else 'elsif'} "
                         f"{test} then")
                    opened = True
                    emit_body(transition, "          ")
                if opened:
                    emit("        end if;")
            emit("    end case;")
        emit("  end process comb;")
        emit("")
        emit("  -- register update process")
        emit("  seq : process (clk, rst)")
        emit("  begin")
        emit("    if rst = '1' then")
        if fsm is not None:
            emit(f"      state <= st_{sanitize(fsm.initial_state.name)};")
        for reg in registers:
            fmt = _sig_fmt(reg)
            width = vector_width(fmt)
            init = reg.init.raw if isinstance(reg.init, Fx) else int(reg.init)
            emit(f"      {sig_name(reg)} <= to_signed({init}, {width});")
        emit("    elsif rising_edge(clk) then")
        if fsm is not None:
            emit("      state <= state_next;")
        for reg in registers:
            reg_id = sig_name(reg)
            emit(f"      {reg_id} <= {reg_id}_next;")
        emit("    end if;")
        emit("  end process seq;")
        emit("")
        # Register-bound output ports are driven continuously.
        for port in process.out_ports():
            if port.sig.is_register():
                emit(f"  {scope.name(port, port.name)} <= {sig_name(port.sig)};")
        emit("")
        emit(f"end architecture rtl;")
        return "\n".join(lines) + "\n"

    # -- untimed stubs ---------------------------------------------------------------

    def untimed_stub(self, process: UntimedProcess) -> str:
        """Entity shell for a high-level (untimed) block, e.g. a RAM."""
        name = sanitize(process.name)
        custom = getattr(process, "vhdl_architecture", None)
        lines = [
            "library ieee;",
            "use ieee.std_logic_1164.all;",
            "use ieee.numeric_std.all;",
            f"use work.{PACKAGE_NAME}.all;",
            "",
            f"-- High-level (untimed) component {process.name!r}.",
            "-- The programming environment simulates this block behaviourally;",
            "-- supply an implementation before synthesis.",
            f"entity {name} is",
            "  port (",
            "    clk : in std_logic;",
            "    rst : in std_logic;",
        ]
        ports = []
        for port in process.ports.values():
            chan = port.channel
            width = 32
            if chan is not None:
                peer = chan.producer if port.direction == "in" else None
                if peer is not None and peer.sig is not None and peer.sig.fmt:
                    width = vector_width(peer.sig.fmt)
                elif port.direction == "out":
                    for consumer in chan.consumers:
                        if consumer.sig is not None and consumer.sig.fmt:
                            width = vector_width(consumer.sig.fmt)
                            break
            direction = "in" if port.direction == "in" else "out"
            ports.append(
                f"    {sanitize(port.name)} : {direction} "
                f"signed({width - 1} downto 0);"
            )
        if ports:
            ports[-1] = ports[-1].rstrip(";")
        lines.extend(ports)
        lines.append("  );")
        lines.append(f"end entity {name};")
        lines.append("")
        if custom is not None:
            lines.append(custom() if callable(custom) else str(custom))
        else:
            lines.extend([
                f"architecture behavioural of {name} is",
                "begin",
                "  -- behaviour intentionally left to the implementer",
                f"end architecture behavioural;",
            ])
        return "\n".join(lines) + "\n"

    # -- structural top ---------------------------------------------------------------

    def top_level(self) -> str:
        """The structural system linkage: instances + channel nets."""
        system = self.system
        name = f"{sanitize(system.name)}_top"
        lines: List[str] = [
            "library ieee;",
            "use ieee.std_logic_1164.all;",
            "use ieee.numeric_std.all;",
            f"use work.{PACKAGE_NAME}.all;",
            "",
            f"entity {name} is",
            "  port (",
            "    clk : in std_logic;",
            "    rst : in std_logic;",
        ]
        # Primary inputs (producer-less channels) and unread outputs.
        externals: List[str] = []
        chan_width: Dict[str, int] = {}
        for chan in system.channels:
            width = 32
            if chan.producer is not None and chan.producer.sig is not None \
                    and chan.producer.sig.fmt is not None:
                width = vector_width(chan.producer.sig.fmt)
            else:
                for consumer in chan.consumers:
                    if consumer.sig is not None and consumer.sig.fmt is not None:
                        width = vector_width(consumer.sig.fmt)
                        break
            chan_width[chan.name] = width
            if chan.producer is None:
                externals.append(
                    f"    {sanitize(chan.name)} : in "
                    f"signed({width - 1} downto 0);"
                )
            elif not chan.consumers:
                externals.append(
                    f"    {sanitize(chan.name)} : out "
                    f"signed({width - 1} downto 0);"
                )
        if externals:
            externals[-1] = externals[-1].rstrip(";")
        else:
            lines[-1] = lines[-1].rstrip(";")
        lines.extend(externals)
        lines.append("  );")
        lines.append(f"end entity {name};")
        lines.append("")
        lines.append(f"architecture structural of {name} is")
        for chan in system.channels:
            if chan.producer is not None and chan.consumers:
                width = chan_width[chan.name]
                lines.append(
                    f"  signal net_{sanitize(chan.name)} : "
                    f"signed({width - 1} downto 0);"
                )
        lines.append("begin")
        for process in system.processes:
            inst = sanitize(process.name)
            lines.append(f"  u_{inst} : entity work.{inst}")
            lines.append("    port map (")
            maps = ["      clk => clk,", "      rst => rst,"]
            for port in process.ports.values():
                chan = port.channel
                if chan is None:
                    maps.append(f"      {sanitize(port.name)} => open,")
                    continue
                if chan.producer is None:
                    maps.append(
                        f"      {sanitize(port.name)} => {sanitize(chan.name)},"
                    )
                elif not chan.consumers:
                    maps.append(
                        f"      {sanitize(port.name)} => {sanitize(chan.name)},"
                    )
                else:
                    maps.append(
                        f"      {sanitize(port.name)} => net_{sanitize(chan.name)},"
                    )
            maps[-1] = maps[-1].rstrip(",")
            lines.extend(maps)
            lines.append("    );")
        lines.append(f"end architecture structural;")
        return "\n".join(lines) + "\n"


def generate_vhdl(system: System) -> Dict[str, str]:
    """Convenience wrapper: generate all VHDL files for *system*."""
    return VhdlGenerator(system).generate()


def line_count(files: Dict[str, str]) -> int:
    """Total non-blank source lines across generated files (Table 1)."""
    return sum(
        1
        for content in files.values()
        for line in content.splitlines()
        if line.strip()
    )
