"""VHDL code generation (paper sections 5 and 6, Figures 7 and 8).

*"The writing of HDL is avoided through code generation from C++."*

Each timed component is translated to a synthesizable VHDL entity in the
classical two-process FSMD style: one combinational process holding the
FSM case statement and the datapath expressions, one clocked process for
the register update.  A structural top level instantiates the components
and wires the channels (the paper's "system linkage", Fig. 8).  Untimed
blocks (the high-level descriptions, e.g. RAM cells) become behavioural
stub entities unless they supply their own architecture via a
``vhdl_architecture`` attribute.

All values are represented as ``signed`` vectors; unsigned model formats
get one extra headroom bit so the signed representation is exact.  A small
support package supplies quantization (rounding/saturation/wrap), bit
slicing and multiplexing helpers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..fixpt import Fx, FxFormat, Overflow, Rounding
from ..core.errors import CodegenError
from ..core.process import TimedProcess, UntimedProcess
from ..core.signal import Register, Sig
from ..core.system import System
from ..ir import IRBlock, PassManager, lower_expr, lower_sfg
from .formats import sig_fmt, vector_width
from .naming import NameScope, sanitize

PACKAGE_NAME = "repro_pkg"


# Back-compat aliases: the canonical definitions moved to
# repro.ir.formats (re-exported by repro.hdl.formats).
_sig_fmt = sig_fmt


def support_package() -> str:
    """The static VHDL support package used by all generated entities."""
    return f"""\
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

package {PACKAGE_NAME} is
  function b2s(b : boolean) return signed;
  function pick(c : boolean; t : signed; f : signed) return signed;
  function bit_at(x : signed; i : natural; w : natural) return signed;
  function slice_u(x : signed; hi : natural; lo : natural; w : natural)
    return signed;
  function quantize(x : signed; shift : integer; w : natural;
                    rnd : boolean; sat : boolean) return signed;
end package {PACKAGE_NAME};

package body {PACKAGE_NAME} is

  function b2s(b : boolean) return signed is
  begin
    if b then
      return to_signed(1, 2);
    else
      return to_signed(0, 2);
    end if;
  end function;

  function pick(c : boolean; t : signed; f : signed) return signed is
  begin
    if c then
      return t;
    else
      return f;
    end if;
  end function;

  function bit_at(x : signed; i : natural; w : natural) return signed is
    variable r : signed(w - 1 downto 0) := (others => '0');
  begin
    if x(i) = '1' then
      r(0) := '1';
    end if;
    return r;
  end function;

  function slice_u(x : signed; hi : natural; lo : natural; w : natural)
    return signed is
    variable r : signed(w - 1 downto 0) := (others => '0');
  begin
    r(hi - lo downto 0) := signed(x(hi downto lo));
    r(w - 1) := '0';
    return r;
  end function;

  function quantize(x : signed; shift : integer; w : natural;
                    rnd : boolean; sat : boolean) return signed is
    variable wide : signed(x'length downto 0);
    variable shifted : signed(x'length downto 0);
    variable lo : signed(w - 1 downto 0);
    variable hi : signed(w - 1 downto 0);
  begin
    wide := resize(x, x'length + 1);
    if shift > 0 then
      if rnd then
        wide := wide + shift_left(to_signed(1, x'length + 1), shift - 1);
      end if;
      shifted := shift_right(wide, shift);
    elsif shift < 0 then
      shifted := shift_left(wide, -shift);
    else
      shifted := wide;
    end if;
    if sat then
      hi := (others => '1');
      hi(w - 1) := '0';
      lo := (others => '0');
      lo(w - 1) := '1';
      if shifted > resize(hi, x'length + 1) then
        return hi;
      elsif shifted < resize(lo, x'length + 1) then
        return lo;
      end if;
    end if;
    return resize(shifted, w);
  end function;

end package body {PACKAGE_NAME};
"""


class _BlockRefs:
    """Memoized rendering of one IR block at one emission site.

    Stores are rendered in block order, so binding a store's value id to
    the assigned variable makes every later reference read the variable
    instead of duplicating its expression text.
    """

    def __init__(self, block: IRBlock, render_op):
        self.block = block
        self.render_op = render_op
        self.memo: Dict[int, str] = {}

    def ref(self, vid: int) -> str:
        got = self.memo.get(vid)
        if got is None:
            got = self.render_op(self.block, self.block.ops[vid], self.ref)
            self.memo[vid] = got
        return got

    def bind(self, vid: int, text: str) -> None:
        self.memo[vid] = text


_VHDL_CMP = {"==": "=", "!=": "/=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}
_VHDL_BIT = {"band": "and", "bor": "or", "bxor": "xor"}


class _VhdlEmitter:
    """Renders lowered IR ops as VHDL ``signed`` expressions.

    The IR widths are safe upper bounds on each value, so resizing a
    rendered expression to an op's recorded width never loses bits.
    """

    def __init__(self, sig_name):
        self.sig_name = sig_name  # Sig -> VHDL identifier

    def refs(self, block: IRBlock) -> _BlockRefs:
        return _BlockRefs(block, self.render_op)

    def render_op(self, block: IRBlock, op, ref) -> str:
        code = op.opcode
        a = op.args
        width = op.width
        if code == "const":
            return f"to_signed({op.attrs[0]}, {width})"
        if code == "read":
            return self.sig_name(op.attrs[0])
        if code in ("add", "sub"):
            la = f"resize({ref(a[0])}, {width})"
            ra = f"resize({ref(a[1])}, {width})"
            return f"({la} {'+' if code == 'add' else '-'} {ra})"
        if code == "mul":
            return f"({ref(a[0])} * {ref(a[1])})"
        if code == "neg":
            return f"(- resize({ref(a[0])}, {width}))"
        if code == "abs":
            return f"(abs resize({ref(a[0])}, {width}))"
        if code == "shl":
            bits = op.attrs[0]
            return f"shift_left(resize({ref(a[0])}, {width}), {bits})"
        if code == "ashr":
            return f"shift_right({ref(a[0])}, {op.attrs[0]})"
        if code == "retag":
            return ref(a[0])
        if code == "cmp":
            return f"b2s({ref(a[0])} {_VHDL_CMP[op.attrs[0]]} {ref(a[1])})"
        if code in _VHDL_BIT:
            la = f"resize({ref(a[0])}, {width})"
            ra = f"resize({ref(a[1])}, {width})"
            return f"({la} {_VHDL_BIT[code]} {ra})"
        if code == "bnot":
            return f"(not {ref(a[0])})"
        if code == "mux":
            ta = f"resize({ref(a[1])}, {width})"
            fa = f"resize({ref(a[2])}, {width})"
            return f"pick({ref(a[0])} /= 0, {ta}, {fa})"
        if code == "bitsel":
            index = op.attrs[0]
            need = max(block.ops[a[0]].width, index + 1)
            return f"bit_at(resize({ref(a[0])}, {need}), {index}, 2)"
        if code == "slice":
            hi, lo = op.attrs
            need = max(block.ops[a[0]].width, hi + 1)
            return (f"slice_u(resize({ref(a[0])}, {need}), {hi}, {lo}, "
                    f"{width})")
        if code == "concat":
            parts = [
                f"std_logic_vector(resize({ref(vid)}, {part_width}))"
                for vid, part_width in zip(a, op.attrs)
            ]
            joined = " & ".join(parts)
            return f"resize(signed('0' & ({joined})), {width})"
        if code == "quantize":
            fmt = op.attrs[0]
            shift = block.ops[a[0]].frac - fmt.frac_bits
            rnd = "true" if fmt.rounding is Rounding.ROUND else "false"
            sat = "true" if fmt.overflow is Overflow.SATURATE else "false"
            return f"quantize({ref(a[0])}, {shift}, {width}, {rnd}, {sat})"
        raise CodegenError(f"cannot translate IR opcode {code!r} to VHDL")


class VhdlGenerator:
    """Generates VHDL for a whole system: package, entities, top level."""

    def __init__(self, system: System, optimize: bool = True,
                 passes=None, validate: str = "off"):
        self.system = system
        #: Run the IR pass pipeline over every lowered block before
        #: emission; ``passes`` names the pipeline and ``validate``
        #: turns on translation validation of each application.
        self.optimize = optimize
        self.pass_manager = PassManager(
            "default" if passes is None else passes, validate=validate)
        #: Per-pass statistics across every generated block.
        self.pass_stats = self.pass_manager.stats

    def generate(self) -> Dict[str, str]:
        """Return a mapping of file name to VHDL source."""
        files: Dict[str, str] = {f"{PACKAGE_NAME}.vhd": support_package()}
        for process in self.system.timed_processes():
            name = sanitize(process.name)
            files[f"{name}.vhd"] = self.component(process)
        for process in self.system.untimed_processes():
            name = sanitize(process.name)
            files[f"{name}.vhd"] = self.untimed_stub(process)
        files[f"{sanitize(self.system.name)}_top.vhd"] = self.top_level()
        return files

    # -- per-component entity -----------------------------------------------------

    def component(self, process: TimedProcess) -> str:
        """Generate one entity: two-process (comb + seq) FSMD VHDL."""
        scope = NameScope()
        name = sanitize(process.name)
        lines: List[str] = []
        emit = lines.append

        # Collect structure.
        all_sfgs = process.all_sfgs()
        registers: List[Register] = []
        seen: Set[int] = set()
        for sfg in all_sfgs:
            for reg in sfg.registers():
                if id(reg) not in seen:
                    seen.add(id(reg))
                    registers.append(reg)
        port_sigs = {port.sig for port in process.ports.values()}
        # Every non-register target gets a process variable; output-port
        # targets additionally drive their port from that variable, so that
        # other assignments can read the value.
        internal: List[Sig] = []
        for sfg in all_sfgs:
            for assignment in sfg.assignments:
                target = assignment.target
                if not target.is_register() and target not in internal:
                    internal.append(target)

        sig_names: Dict[int, str] = {}
        # Reserve entity port names first, and map input-port signals to
        # their port so reads inside SFGs reference the entity port.
        scope.name(object(), "clk")
        scope.name(object(), "rst")
        for port in process.ports.values():
            port_id = scope.name(port, port.name)
            if port.direction == "in":
                sig_names[id(port.sig)] = port_id

        def sig_name(sig: Sig) -> str:
            got = sig_names.get(id(sig))
            if got is None:
                got = scope.name(sig, sig.name)
                sig_names[id(sig)] = got
            return got

        emitter = _VhdlEmitter(sig_name)
        block_cache: Dict[int, IRBlock] = {}

        def lowered(sfg) -> IRBlock:
            block = block_cache.get(id(sfg))
            if block is None:
                block = lower_sfg(sfg, require_formats=True)
                if self.optimize:
                    block = self.pass_manager.run(block)
                block_cache[id(sfg)] = block
            return block

        emit("library ieee;")
        emit("use ieee.std_logic_1164.all;")
        emit("use ieee.numeric_std.all;")
        emit(f"use work.{PACKAGE_NAME}.all;")
        emit("")
        emit(f"entity {name} is")
        emit("  port (")
        port_lines = ["    clk : in std_logic;", "    rst : in std_logic;"]
        for port in process.ports.values():
            fmt = _sig_fmt(port.sig)
            width = vector_width(fmt)
            direction = "in" if port.direction == "in" else "out"
            port_lines.append(
                f"    {scope.name(port, port.name)} : {direction} "
                f"signed({width - 1} downto 0);"
            )
        port_lines[-1] = port_lines[-1].rstrip(";")
        lines.extend(port_lines)
        emit("  );")
        emit(f"end entity {name};")
        emit("")
        emit(f"architecture rtl of {name} is")

        fsm = process.fsm
        if fsm is not None:
            states = ", ".join(f"st_{sanitize(s.name)}" for s in fsm.states)
            emit(f"  type state_t is ({states});")
            emit(f"  signal state, state_next : state_t := "
                 f"st_{sanitize(fsm.initial_state.name)};")
        for reg in registers:
            fmt = _sig_fmt(reg)
            width = vector_width(fmt)
            reg_id = sig_name(reg)
            init = reg.init.raw if isinstance(reg.init, Fx) else int(reg.init)
            emit(f"  signal {reg_id}, {reg_id}_next : "
                 f"signed({width - 1} downto 0) := to_signed({init}, {width});")
        emit("begin")
        emit("")
        emit("  -- combinational process: FSM transitions + datapath SFGs")
        emit("  comb : process (all)")
        for sig in internal:
            fmt = _sig_fmt(sig)
            width = vector_width(fmt)
            emit(f"    variable {sig_name(sig)} : signed({width - 1} downto 0);")
        emit("  begin")
        if fsm is not None:
            emit("    state_next <= state;")
        for reg in registers:
            reg_id = sig_name(reg)
            emit(f"    {reg_id}_next <= {reg_id};")
        for port in process.out_ports():
            if not port.sig.is_register():
                fmt = _sig_fmt(port.sig)
                width = vector_width(fmt)
                emit(f"    {scope.name(port, port.name)} <= to_signed(0, {width});")
        emit("")

        def emit_sfg(sfg, indent: str) -> None:
            block = lowered(sfg)
            refs = emitter.refs(block)
            for store in block.stores:
                target = store.target
                qcode = refs.ref(store.value)
                if target.is_register():
                    emit(f"{indent}{sig_name(target)}_next <= {qcode};")
                else:
                    emit(f"{indent}{sig_name(target)} := {qcode};")
                    refs.bind(store.value, sig_name(target))
                    if target in port_sigs:
                        out_port = next(p for p in process.out_ports()
                                        if p.sig is target)
                        emit(f"{indent}{scope.name(out_port, out_port.name)} <= "
                             f"{sig_name(target)};")

        for sfg in process.static_sfgs:
            emit(f"    -- static SFG {sfg.name}")
            emit_sfg(sfg, "    ")
        if fsm is not None:
            emit("    case state is")
            for state in fsm.states:
                emit(f"      when st_{sanitize(state.name)} =>")
                transitions = [
                    t for t in state.transitions
                    if not (t.condition.expr is None and t.condition.negated)
                ]

                def emit_body(transition, indent):
                    emit(f"{indent}state_next <= "
                         f"st_{sanitize(transition.target.name)};")
                    for sfg in transition.sfgs:
                        emit(f"{indent}-- SFG {sfg.name}")
                        emit_sfg(sfg, indent)

                opened = False
                for index, transition in enumerate(transitions):
                    condition = transition.condition
                    if condition.is_always():
                        if index == 0:
                            emit_body(transition, "        ")
                        else:
                            emit("        else")
                            emit_body(transition, "          ")
                        break
                    cond_block = lower_expr(condition.expr,
                                            require_formats=True)
                    if self.optimize:
                        cond_block = self.pass_manager.run(cond_block)
                    code = emitter.refs(cond_block).ref(cond_block.roots[0])
                    test = f"{code} /= 0"
                    if condition.negated:
                        test = f"not ({test})"
                    emit(f"        {'if' if index == 0 else 'elsif'} "
                         f"{test} then")
                    opened = True
                    emit_body(transition, "          ")
                if opened:
                    emit("        end if;")
            emit("    end case;")
        emit("  end process comb;")
        emit("")
        emit("  -- register update process")
        emit("  seq : process (clk, rst)")
        emit("  begin")
        emit("    if rst = '1' then")
        if fsm is not None:
            emit(f"      state <= st_{sanitize(fsm.initial_state.name)};")
        for reg in registers:
            fmt = _sig_fmt(reg)
            width = vector_width(fmt)
            init = reg.init.raw if isinstance(reg.init, Fx) else int(reg.init)
            emit(f"      {sig_name(reg)} <= to_signed({init}, {width});")
        emit("    elsif rising_edge(clk) then")
        if fsm is not None:
            emit("      state <= state_next;")
        for reg in registers:
            reg_id = sig_name(reg)
            emit(f"      {reg_id} <= {reg_id}_next;")
        emit("    end if;")
        emit("  end process seq;")
        emit("")
        # Register-bound output ports are driven continuously.
        for port in process.out_ports():
            if port.sig.is_register():
                emit(f"  {scope.name(port, port.name)} <= {sig_name(port.sig)};")
        emit("")
        emit(f"end architecture rtl;")
        return "\n".join(lines) + "\n"

    # -- untimed stubs ---------------------------------------------------------------

    def untimed_stub(self, process: UntimedProcess) -> str:
        """Entity shell for a high-level (untimed) block, e.g. a RAM."""
        name = sanitize(process.name)
        custom = getattr(process, "vhdl_architecture", None)
        lines = [
            "library ieee;",
            "use ieee.std_logic_1164.all;",
            "use ieee.numeric_std.all;",
            f"use work.{PACKAGE_NAME}.all;",
            "",
            f"-- High-level (untimed) component {process.name!r}.",
            "-- The programming environment simulates this block behaviourally;",
            "-- supply an implementation before synthesis.",
            f"entity {name} is",
            "  port (",
            "    clk : in std_logic;",
            "    rst : in std_logic;",
        ]
        ports = []
        for port in process.ports.values():
            chan = port.channel
            width = 32
            if chan is not None:
                peer = chan.producer if port.direction == "in" else None
                if peer is not None and peer.sig is not None and peer.sig.fmt:
                    width = vector_width(peer.sig.fmt)
                elif port.direction == "out":
                    for consumer in chan.consumers:
                        if consumer.sig is not None and consumer.sig.fmt:
                            width = vector_width(consumer.sig.fmt)
                            break
            direction = "in" if port.direction == "in" else "out"
            ports.append(
                f"    {sanitize(port.name)} : {direction} "
                f"signed({width - 1} downto 0);"
            )
        if ports:
            ports[-1] = ports[-1].rstrip(";")
        lines.extend(ports)
        lines.append("  );")
        lines.append(f"end entity {name};")
        lines.append("")
        if custom is not None:
            lines.append(custom() if callable(custom) else str(custom))
        else:
            lines.extend([
                f"architecture behavioural of {name} is",
                "begin",
                "  -- behaviour intentionally left to the implementer",
                f"end architecture behavioural;",
            ])
        return "\n".join(lines) + "\n"

    # -- structural top ---------------------------------------------------------------

    def top_level(self) -> str:
        """The structural system linkage: instances + channel nets."""
        system = self.system
        name = f"{sanitize(system.name)}_top"
        lines: List[str] = [
            "library ieee;",
            "use ieee.std_logic_1164.all;",
            "use ieee.numeric_std.all;",
            f"use work.{PACKAGE_NAME}.all;",
            "",
            f"entity {name} is",
            "  port (",
            "    clk : in std_logic;",
            "    rst : in std_logic;",
        ]
        # Primary inputs (producer-less channels) and unread outputs.
        externals: List[str] = []
        chan_width: Dict[str, int] = {}
        for chan in system.channels:
            width = 32
            if chan.producer is not None and chan.producer.sig is not None \
                    and chan.producer.sig.fmt is not None:
                width = vector_width(chan.producer.sig.fmt)
            else:
                for consumer in chan.consumers:
                    if consumer.sig is not None and consumer.sig.fmt is not None:
                        width = vector_width(consumer.sig.fmt)
                        break
            chan_width[chan.name] = width
            if chan.producer is None:
                externals.append(
                    f"    {sanitize(chan.name)} : in "
                    f"signed({width - 1} downto 0);"
                )
            elif not chan.consumers:
                externals.append(
                    f"    {sanitize(chan.name)} : out "
                    f"signed({width - 1} downto 0);"
                )
        if externals:
            externals[-1] = externals[-1].rstrip(";")
        else:
            lines[-1] = lines[-1].rstrip(";")
        lines.extend(externals)
        lines.append("  );")
        lines.append(f"end entity {name};")
        lines.append("")
        lines.append(f"architecture structural of {name} is")
        for chan in system.channels:
            if chan.producer is not None and chan.consumers:
                width = chan_width[chan.name]
                lines.append(
                    f"  signal net_{sanitize(chan.name)} : "
                    f"signed({width - 1} downto 0);"
                )
        lines.append("begin")
        for process in system.processes:
            inst = sanitize(process.name)
            lines.append(f"  u_{inst} : entity work.{inst}")
            lines.append("    port map (")
            maps = ["      clk => clk,", "      rst => rst,"]
            for port in process.ports.values():
                chan = port.channel
                if chan is None:
                    maps.append(f"      {sanitize(port.name)} => open,")
                    continue
                if chan.producer is None:
                    maps.append(
                        f"      {sanitize(port.name)} => {sanitize(chan.name)},"
                    )
                elif not chan.consumers:
                    maps.append(
                        f"      {sanitize(port.name)} => {sanitize(chan.name)},"
                    )
                else:
                    maps.append(
                        f"      {sanitize(port.name)} => net_{sanitize(chan.name)},"
                    )
            maps[-1] = maps[-1].rstrip(",")
            lines.extend(maps)
            lines.append("    );")
        lines.append(f"end architecture structural;")
        return "\n".join(lines) + "\n"


def generate_vhdl(system: System, optimize: bool = True,
                  passes=None, validate: str = "off") -> Dict[str, str]:
    """Convenience wrapper: generate all VHDL files for *system*."""
    return VhdlGenerator(system, optimize=optimize, passes=passes,
                         validate=validate).generate()


def line_count(files: Dict[str, str]) -> int:
    """Total non-blank source lines across generated files (Table 1)."""
    return sum(
        1
        for content in files.values()
        for line in content.splitlines()
        if line.strip()
    )
