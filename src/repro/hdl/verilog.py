"""Verilog code generation.

A second HDL back-end (Table 1 also quotes Verilog netlist results).  The
Verilog generator takes a simpler route than the VHDL one: each module
computes in a uniform wide signed precision (the smallest power-of-two
width covering every signal of the component) and quantizes to each
target's width with explicit shift/clamp expressions.  Structure is the
same two-always-block FSMD style.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..fixpt import Fx, FxFormat, Overflow, Rounding, quantize_raw
from ..core.errors import CodegenError
from ..core.expr import (
    BinOp,
    BitSelect,
    Cast,
    Concat,
    Constant,
    Expr,
    Mux,
    SliceSelect,
    UnOp,
)
from ..core.process import TimedProcess, UntimedProcess
from ..core.signal import Register, Sig
from ..core.system import System
from .naming import NameScope, sanitize
from .vhdl import _sig_fmt, vector_width


class _VerilogExpr:
    """Translates expression DAGs to wide signed Verilog expressions.

    Every sub-expression is a ``WIDE``-bit signed value whose binary point
    sits ``frac`` bits up; the pair ``(code, frac)`` is tracked exactly as
    in the compiled-code generator.
    """

    def __init__(self, sig_name, wide: int):
        self.sig_name = sig_name
        self.wide = wide

    def gen(self, expr: Expr) -> Tuple[str, int]:
        if isinstance(expr, Sig):
            fmt = _sig_fmt(expr)
            return self.sig_name(expr), fmt.frac_bits
        if isinstance(expr, Constant):
            fmt = expr.result_fmt()
            if fmt is None:
                raise CodegenError(f"constant {expr.value!r} has no format")
            raw = expr.value.raw if isinstance(expr.value, Fx) \
                else quantize_raw(expr.value, fmt)
            if raw < 0:
                return f"(-{self.wide}'sd{-raw})", fmt.frac_bits
            return f"{self.wide}'sd{raw}", fmt.frac_bits
        if isinstance(expr, BinOp):
            return self._binop(expr)
        if isinstance(expr, UnOp):
            code, frac = self.gen(expr.operand)
            if expr.op == "-":
                return f"(-{code})", frac
            if expr.op == "abs":
                return f"(({code} < 0) ? -({code}) : ({code}))", frac
            fmt = expr.operand.require_fmt()
            mask = (1 << fmt.wl) - 1
            folded = self._fold(f"((~{code}) & {self.wide}'sd{mask})", fmt)
            return folded, 0
        if isinstance(expr, Mux):
            scode, _sf = self.gen(expr.sel)
            tcode, tfrac = self.gen(expr.if_true)
            fcode, ffrac = self.gen(expr.if_false)
            frac = max(tfrac, ffrac)
            ta = self._align(tcode, tfrac, frac)
            fa = self._align(fcode, ffrac, frac)
            return f"(({scode} != 0) ? {ta} : {fa})", frac
        if isinstance(expr, Cast):
            code, frac = self.gen(expr.operand)
            return self.quantize(code, frac, expr.fmt), expr.fmt.frac_bits
        if isinstance(expr, BitSelect):
            code, frac = self.gen(expr.operand)
            raw = self._align(code, frac, 0)
            return f"(({raw} >> {expr.index}) & {self.wide}'sd1)", 0
        if isinstance(expr, SliceSelect):
            code, frac = self.gen(expr.operand)
            raw = self._align(code, frac, 0)
            mask = (1 << expr.width) - 1
            return f"(({raw} >> {expr.lo}) & {self.wide}'sd{mask})", 0
        if isinstance(expr, Concat):
            pieces = []
            shift = 0
            for child in reversed(expr.children):
                fmt = child.require_fmt()
                code, frac = self.gen(child)
                raw = self._align(code, frac, 0)
                mask = (1 << fmt.wl) - 1
                piece = f"(({raw} & {self.wide}'sd{mask}) << {shift})"
                pieces.append(piece)
                shift += fmt.wl
            return "(" + " | ".join(pieces) + ")", 0
        raise CodegenError(f"cannot translate {expr!r} to Verilog")

    def _align(self, code: str, frac: int, to_frac: int) -> str:
        if to_frac > frac:
            return f"({code} <<< {to_frac - frac})"
        if to_frac < frac:
            return f"({code} >>> {frac - to_frac})"
        return code

    def _fold(self, code: str, fmt: FxFormat) -> str:
        if not fmt.signed:
            return code
        half = 1 << (fmt.wl - 1)
        span = 1 << fmt.wl
        return (f"(({code} >= {self.wide}'sd{half}) ? "
                f"({code} - {self.wide}'sd{span}) : ({code}))")

    def _binop(self, expr: BinOp):
        op = expr.op
        lcode, lfrac = self.gen(expr.left)
        if op in ("<<", ">>"):
            bits = int(expr.right.evaluate())
            if op == "<<":
                return f"({lcode} <<< {bits})", lfrac
            return lcode, lfrac + bits
        rcode, rfrac = self.gen(expr.right)
        if op in ("+", "-"):
            frac = max(lfrac, rfrac)
            la = self._align(lcode, lfrac, frac)
            ra = self._align(rcode, rfrac, frac)
            return f"({la} {op} {ra})", frac
        if op == "*":
            return f"({lcode} * {rcode})", lfrac + rfrac
        if op in ("==", "!=", "<", "<=", ">", ">="):
            frac = max(lfrac, rfrac)
            la = self._align(lcode, lfrac, frac)
            ra = self._align(rcode, rfrac, frac)
            return (f"(({la} {op} {ra}) ? {self.wide}'sd1 : {self.wide}'sd0)",
                    0)
        fmt = expr.require_fmt()
        mask = (1 << fmt.wl) - 1
        la = self._align(lcode, lfrac, 0)
        ra = self._align(rcode, rfrac, 0)
        body = (f"((({la} & {self.wide}'sd{mask}) {op} "
                f"({ra} & {self.wide}'sd{mask})))")
        return self._fold(body, fmt), 0

    def quantize(self, code: str, frac: int, fmt: FxFormat) -> str:
        shift = frac - fmt.frac_bits
        if shift > 0:
            if fmt.rounding is Rounding.ROUND:
                code = f"(({code} + {self.wide}'sd{1 << (shift - 1)}) >>> {shift})"
            else:
                code = f"({code} >>> {shift})"
        elif shift < 0:
            code = f"({code} <<< {-shift})"
        lo, hi = fmt.raw_min, fmt.raw_max
        if fmt.overflow is Overflow.SATURATE:
            lo_lit = f"-{self.wide}'sd{-lo}" if lo < 0 else f"{self.wide}'sd{lo}"
            return (f"(({code} > {self.wide}'sd{hi}) ? {self.wide}'sd{hi} : "
                    f"(({code} < {lo_lit}) ? ({lo_lit}) : ({code})))")
        mask = (1 << fmt.wl) - 1
        masked = f"({code} & {self.wide}'sd{mask})"
        return self._fold(masked, fmt)


class VerilogGenerator:
    """Generates Verilog modules for a system's timed components."""

    def __init__(self, system: System):
        self.system = system

    def generate(self) -> Dict[str, str]:
        """Return a mapping of file name to Verilog source."""
        files: Dict[str, str] = {}
        for process in self.system.timed_processes():
            name = sanitize(process.name)
            files[f"{name}.v"] = self.component(process)
        return files

    def component(self, process: TimedProcess) -> str:
        """Generate one module: two-always-block FSMD Verilog."""
        scope = NameScope()
        name = sanitize(process.name)
        all_sfgs = process.all_sfgs()

        registers: List[Register] = []
        seen: Set[int] = set()
        widths = [2]
        for sfg in all_sfgs:
            for reg in sfg.registers():
                if id(reg) not in seen:
                    seen.add(id(reg))
                    registers.append(reg)
            for assignment in sfg.assignments:
                if assignment.target.fmt is not None:
                    widths.append(vector_width(assignment.target.fmt))
                for leaf in assignment.expr.leaves():
                    fmt = leaf.result_fmt() if hasattr(leaf, "result_fmt") else None
                    if fmt is not None:
                        widths.append(vector_width(fmt))
        wide = max(widths) * 2 + 4

        names: Dict[int, str] = {}
        # Reserve module port names first and map input-port signals to
        # their port identifier so SFG reads reference the module port.
        scope.name(object(), "clk")
        scope.name(object(), "rst")
        for port in process.ports.values():
            port_id = scope.name(port, port.name)
            if port.direction == "in":
                names[id(port.sig)] = port_id

        def sig_name(sig: Sig) -> str:
            got = names.get(id(sig))
            if got is None:
                suffix = "_q" if sig.is_register() else ""
                got = scope.name(sig, sig.name + suffix)
                names[id(sig)] = got
            return got

        translator = _VerilogExpr(sig_name, wide)

        lines: List[str] = []
        emit = lines.append
        emit(f"module {name} (")
        port_decls = ["  input wire clk,", "  input wire rst,"]
        for port in process.ports.values():
            width = vector_width(_sig_fmt(port.sig))
            direction = "input" if port.direction == "in" else "output"
            kind = "wire" if port.direction == "in" else "reg"
            port_decls.append(
                f"  {direction} {kind} signed [{width - 1}:0] "
                f"{scope.name(port, port.name)},"
            )
        port_decls[-1] = port_decls[-1].rstrip(",")
        lines.extend(port_decls)
        emit(");")
        emit("")

        fsm = process.fsm
        if fsm is not None:
            for index, state in enumerate(fsm.states):
                emit(f"  localparam ST_{sanitize(state.name).upper()} = {index};")
            emit(f"  reg [15:0] state, state_next;")
        for reg in registers:
            emit(f"  reg signed [{wide - 1}:0] {sig_name(reg)}, "
                 f"{sig_name(reg)}_next;")
        internal: List[Sig] = []
        port_sigs = {port.sig for port in process.ports.values()}
        for sfg in all_sfgs:
            for assignment in sfg.assignments:
                target = assignment.target
                if not target.is_register() and target not in internal:
                    internal.append(target)
        for sig in internal:
            emit(f"  reg signed [{wide - 1}:0] {sig_name(sig)};")
        emit("")

        def emit_sfg(sfg, indent: str) -> None:
            for assignment in sfg.ordered_assignments():
                target = assignment.target
                code, frac = translator.gen(assignment.expr)
                qcode = translator.quantize(code, frac, _sig_fmt(target))
                if target.is_register():
                    emit(f"{indent}{sig_name(target)}_next = {qcode};")
                else:
                    emit(f"{indent}{sig_name(target)} = {qcode};")
                    if target in port_sigs:
                        out_port = next(p for p in process.out_ports()
                                        if p.sig is target)
                        width = vector_width(_sig_fmt(target))
                        emit(f"{indent}{scope.name(out_port, out_port.name)} = "
                             f"{sig_name(target)}[{width - 1}:0];")

        emit("  always @* begin")
        if fsm is not None:
            emit("    state_next = state;")
        for reg in registers:
            emit(f"    {sig_name(reg)}_next = {sig_name(reg)};")
        for sig in internal:
            emit(f"    {sig_name(sig)} = {wide}'sd0;")
        for port in process.out_ports():
            if not port.sig.is_register():
                width = vector_width(_sig_fmt(port.sig))
                emit(f"    {scope.name(port, port.name)} = {width}'sd0;")
        for sfg in process.static_sfgs:
            emit(f"    // static SFG {sfg.name}")
            emit_sfg(sfg, "    ")
        if fsm is not None:
            emit("    case (state)")
            for state in fsm.states:
                emit(f"      ST_{sanitize(state.name).upper()}: begin")
                transitions = [
                    t for t in state.transitions
                    if not (t.condition.expr is None and t.condition.negated)
                ]
                opened = False
                for index, transition in enumerate(transitions):
                    condition = transition.condition
                    if condition.is_always():
                        indent = "        "
                        if index > 0:
                            emit("        else begin")
                            indent = "          "
                        emit(f"{indent}state_next = "
                             f"ST_{sanitize(transition.target.name).upper()};")
                        for sfg in transition.sfgs:
                            emit_sfg(sfg, indent)
                        if index > 0:
                            emit("        end")
                        break
                    code, _frac = translator.gen(condition.expr)
                    test = f"({code}) != 0"
                    if condition.negated:
                        test = f"!({test})"
                    emit(f"        {'if' if index == 0 else 'else if'} "
                         f"({test}) begin")
                    opened = True
                    emit(f"          state_next = "
                         f"ST_{sanitize(transition.target.name).upper()};")
                    for sfg in transition.sfgs:
                        emit_sfg(sfg, "          ")
                    emit("        end")
                emit("      end")
            emit("      default: state_next = state;")
            emit("    endcase")
        emit("  end")
        emit("")
        emit("  always @(posedge clk or posedge rst) begin")
        emit("    if (rst) begin")
        if fsm is not None:
            emit(f"      state <= ST_{sanitize(fsm.initial_state.name).upper()};")
        for reg in registers:
            init = reg.init.raw if isinstance(reg.init, Fx) else int(reg.init)
            literal = f"-{wide}'sd{-init}" if init < 0 else f"{wide}'sd{init}"
            emit(f"      {sig_name(reg)} <= {literal};")
        emit("    end else begin")
        if fsm is not None:
            emit("      state <= state_next;")
        for reg in registers:
            emit(f"      {sig_name(reg)} <= {sig_name(reg)}_next;")
        emit("    end")
        emit("  end")
        emit("")
        for port in process.out_ports():
            if port.sig.is_register():
                width = vector_width(_sig_fmt(port.sig))
                emit(f"  always @* {scope.name(port, port.name)} = "
                     f"{sig_name(port.sig)}[{width - 1}:0];")
        emit("")
        emit("endmodule")
        return "\n".join(lines) + "\n"


def generate_verilog(system: System) -> Dict[str, str]:
    """Convenience wrapper: generate Verilog for every timed component."""
    return VerilogGenerator(system).generate()
