"""Verilog code generation.

A second HDL back-end (Table 1 also quotes Verilog netlist results).  The
Verilog generator takes a simpler route than the VHDL one: each module
computes in a uniform wide signed precision covering every lowered IR
value of the component and quantizes to each target's width with
explicit shift/clamp expressions.  Structure is the same
two-always-block FSMD style.

Both generators consume the same lowered IR (:mod:`repro.ir`); the
width of every intermediate comes straight from the IR ops, so ``wide``
is exact instead of the old leaf-width heuristic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..fixpt import Fx, FxFormat, Overflow, Rounding
from ..core.errors import CodegenError
from ..core.process import TimedProcess, UntimedProcess
from ..core.signal import Register, Sig
from ..core.system import System
from ..ir import IRBlock, PassManager, lower_expr, lower_sfg
from .formats import sig_fmt, vector_width
from .naming import NameScope, sanitize
from .vhdl import _BlockRefs

_V_BIT = {"band": "&", "bor": "|", "bxor": "^"}


class _VerilogEmitter:
    """Renders lowered IR ops as wide signed Verilog expressions.

    Every value is a ``wide``-bit signed expression; the IR carries the
    binary-point bookkeeping, so rendering is purely syntactic.
    """

    def __init__(self, sig_name, wide: int):
        self.sig_name = sig_name
        self.wide = wide

    def refs(self, block: IRBlock) -> _BlockRefs:
        return _BlockRefs(block, self.render_op)

    def _lit(self, raw: int) -> str:
        if raw < 0:
            return f"(-{self.wide}'sd{-raw})"
        return f"{self.wide}'sd{raw}"

    def _fold(self, code: str, wl: int, signed: bool) -> str:
        if not signed:
            return code
        half = 1 << (wl - 1)
        span = 1 << wl
        return (f"(({code} >= {self.wide}'sd{half}) ? "
                f"({code} - {self.wide}'sd{span}) : ({code}))")

    def render_op(self, block: IRBlock, op, ref) -> str:
        code = op.opcode
        a = op.args
        if code == "const":
            return self._lit(op.attrs[0])
        if code == "read":
            return self.sig_name(op.attrs[0])
        if code in ("add", "sub"):
            return f"({ref(a[0])} {'+' if code == 'add' else '-'} {ref(a[1])})"
        if code == "mul":
            return f"({ref(a[0])} * {ref(a[1])})"
        if code == "neg":
            return f"(-{ref(a[0])})"
        if code == "abs":
            arg = ref(a[0])
            return f"(({arg} < 0) ? -({arg}) : ({arg}))"
        if code == "shl":
            return f"({ref(a[0])} <<< {op.attrs[0]})"
        if code == "ashr":
            return f"({ref(a[0])} >>> {op.attrs[0]})"
        if code == "retag":
            return ref(a[0])
        if code == "cmp":
            return (f"(({ref(a[0])} {op.attrs[0]} {ref(a[1])}) ? "
                    f"{self.wide}'sd1 : {self.wide}'sd0)")
        if code in _V_BIT:
            wl, signed = op.attrs
            mask = f"{self.wide}'sd{(1 << wl) - 1}"
            body = (f"((({ref(a[0])} & {mask}) {_V_BIT[code]} "
                    f"({ref(a[1])} & {mask})))")
            return self._fold(body, wl, signed)
        if code == "bnot":
            wl, signed = op.attrs
            mask = (1 << wl) - 1
            return self._fold(
                f"((~{ref(a[0])}) & {self.wide}'sd{mask})", wl, signed)
        if code == "mux":
            return (f"(({ref(a[0])} != 0) ? {ref(a[1])} : {ref(a[2])})")
        if code == "bitsel":
            return f"(({ref(a[0])} >>> {op.attrs[0]}) & {self.wide}'sd1)"
        if code == "slice":
            hi, lo = op.attrs
            mask = (1 << (hi - lo + 1)) - 1
            return f"(({ref(a[0])} >>> {lo}) & {self.wide}'sd{mask})"
        if code == "concat":
            pieces = []
            shift = 0
            for vid, part_width in zip(reversed(a), reversed(op.attrs)):
                mask = (1 << part_width) - 1
                piece = f"(({ref(vid)} & {self.wide}'sd{mask}) << {shift})"
                pieces.append(piece)
                shift += part_width
            return "(" + " | ".join(pieces) + ")"
        if code == "quantize":
            src_frac = block.ops[a[0]].frac
            return self.quantize(ref(a[0]), src_frac, op.attrs[0])
        raise CodegenError(f"cannot translate IR opcode {code!r} to Verilog")

    def quantize(self, code: str, frac: int, fmt: FxFormat) -> str:
        shift = frac - fmt.frac_bits
        if shift > 0:
            if fmt.rounding is Rounding.ROUND:
                code = f"(({code} + {self.wide}'sd{1 << (shift - 1)}) >>> {shift})"
            else:
                code = f"({code} >>> {shift})"
        elif shift < 0:
            code = f"({code} <<< {-shift})"
        lo, hi = fmt.raw_min, fmt.raw_max
        if fmt.overflow is Overflow.SATURATE:
            lo_lit = f"-{self.wide}'sd{-lo}" if lo < 0 else f"{self.wide}'sd{lo}"
            return (f"(({code} > {self.wide}'sd{hi}) ? {self.wide}'sd{hi} : "
                    f"(({code} < {lo_lit}) ? ({lo_lit}) : ({code})))")
        mask = (1 << fmt.wl) - 1
        masked = f"({code} & {self.wide}'sd{mask})"
        return self._fold(masked, fmt.wl, fmt.signed)


class VerilogGenerator:
    """Generates Verilog modules for a system's timed components."""

    def __init__(self, system: System, optimize: bool = True,
                 passes=None, validate: str = "off"):
        self.system = system
        #: Run the IR pass pipeline over every lowered block before
        #: emission; ``passes`` names the pipeline and ``validate``
        #: turns on translation validation of each application.
        self.optimize = optimize
        self.pass_manager = PassManager(
            "default" if passes is None else passes, validate=validate)
        #: Per-pass statistics across every generated block.
        self.pass_stats = self.pass_manager.stats

    def generate(self) -> Dict[str, str]:
        """Return a mapping of file name to Verilog source."""
        files: Dict[str, str] = {}
        for process in self.system.timed_processes():
            name = sanitize(process.name)
            files[f"{name}.v"] = self.component(process)
        return files

    def _lower(self, build) -> IRBlock:
        block = build()
        if self.optimize:
            block = self.pass_manager.run(block)
        return block

    def component(self, process: TimedProcess) -> str:
        """Generate one module: two-always-block FSMD Verilog."""
        scope = NameScope()
        name = sanitize(process.name)
        all_sfgs = process.all_sfgs()
        fsm = process.fsm

        registers: List[Register] = []
        seen: Set[int] = set()
        for sfg in all_sfgs:
            for reg in sfg.registers():
                if id(reg) not in seen:
                    seen.add(id(reg))
                    registers.append(reg)

        # Lower (and optimize) every SFG and FSM guard up front; the
        # module-wide precision is the exact maximum over all IR values.
        sfg_blocks: Dict[int, IRBlock] = {}
        for sfg in all_sfgs:
            sfg_blocks[id(sfg)] = self._lower(
                lambda sfg=sfg: lower_sfg(sfg, require_formats=True))
        cond_blocks: Dict[int, IRBlock] = {}
        if fsm is not None:
            for state in fsm.states:
                for transition in state.transitions:
                    expr = transition.condition.expr
                    if expr is not None and id(expr) not in cond_blocks:
                        cond_blocks[id(expr)] = self._lower(
                            lambda expr=expr: lower_expr(
                                expr, require_formats=True))

        widths = [2]
        for block in list(sfg_blocks.values()) + list(cond_blocks.values()):
            widths.extend(op.width for op in block.ops)
        for port in process.ports.values():
            widths.append(vector_width(sig_fmt(port.sig)))
        wide = max(widths) + 2

        names: Dict[int, str] = {}
        # Reserve module port names first and map input-port signals to
        # their port identifier so SFG reads reference the module port.
        scope.name(object(), "clk")
        scope.name(object(), "rst")
        for port in process.ports.values():
            port_id = scope.name(port, port.name)
            if port.direction == "in":
                names[id(port.sig)] = port_id

        def sig_name(sig: Sig) -> str:
            got = names.get(id(sig))
            if got is None:
                suffix = "_q" if sig.is_register() else ""
                got = scope.name(sig, sig.name + suffix)
                names[id(sig)] = got
            return got

        emitter = _VerilogEmitter(sig_name, wide)

        lines: List[str] = []
        emit = lines.append
        emit(f"module {name} (")
        port_decls = ["  input wire clk,", "  input wire rst,"]
        for port in process.ports.values():
            width = vector_width(sig_fmt(port.sig))
            direction = "input" if port.direction == "in" else "output"
            kind = "wire" if port.direction == "in" else "reg"
            port_decls.append(
                f"  {direction} {kind} signed [{width - 1}:0] "
                f"{scope.name(port, port.name)},"
            )
        port_decls[-1] = port_decls[-1].rstrip(",")
        lines.extend(port_decls)
        emit(");")
        emit("")

        if fsm is not None:
            for index, state in enumerate(fsm.states):
                emit(f"  localparam ST_{sanitize(state.name).upper()} = {index};")
            emit(f"  reg [15:0] state, state_next;")
        for reg in registers:
            emit(f"  reg signed [{wide - 1}:0] {sig_name(reg)}, "
                 f"{sig_name(reg)}_next;")
        internal: List[Sig] = []
        port_sigs = {port.sig for port in process.ports.values()}
        for sfg in all_sfgs:
            for assignment in sfg.assignments:
                target = assignment.target
                if not target.is_register() and target not in internal:
                    internal.append(target)
        for sig in internal:
            emit(f"  reg signed [{wide - 1}:0] {sig_name(sig)};")
        emit("")

        def emit_sfg(sfg, indent: str) -> None:
            block = sfg_blocks[id(sfg)]
            refs = emitter.refs(block)
            for store in block.stores:
                target = store.target
                qcode = refs.ref(store.value)
                if target.is_register():
                    emit(f"{indent}{sig_name(target)}_next = {qcode};")
                else:
                    emit(f"{indent}{sig_name(target)} = {qcode};")
                    refs.bind(store.value, sig_name(target))
                    if target in port_sigs:
                        out_port = next(p for p in process.out_ports()
                                        if p.sig is target)
                        width = vector_width(sig_fmt(target))
                        emit(f"{indent}{scope.name(out_port, out_port.name)} = "
                             f"{sig_name(target)}[{width - 1}:0];")

        emit("  always @* begin")
        if fsm is not None:
            emit("    state_next = state;")
        for reg in registers:
            emit(f"    {sig_name(reg)}_next = {sig_name(reg)};")
        for sig in internal:
            emit(f"    {sig_name(sig)} = {wide}'sd0;")
        for port in process.out_ports():
            if not port.sig.is_register():
                width = vector_width(sig_fmt(port.sig))
                emit(f"    {scope.name(port, port.name)} = {width}'sd0;")
        for sfg in process.static_sfgs:
            emit(f"    // static SFG {sfg.name}")
            emit_sfg(sfg, "    ")
        if fsm is not None:
            emit("    case (state)")
            for state in fsm.states:
                emit(f"      ST_{sanitize(state.name).upper()}: begin")
                transitions = [
                    t for t in state.transitions
                    if not (t.condition.expr is None and t.condition.negated)
                ]
                opened = False
                for index, transition in enumerate(transitions):
                    condition = transition.condition
                    if condition.is_always():
                        indent = "        "
                        if index > 0:
                            emit("        else begin")
                            indent = "          "
                        emit(f"{indent}state_next = "
                             f"ST_{sanitize(transition.target.name).upper()};")
                        for sfg in transition.sfgs:
                            emit_sfg(sfg, indent)
                        if index > 0:
                            emit("        end")
                        break
                    cond_block = cond_blocks[id(condition.expr)]
                    code = emitter.refs(cond_block).ref(cond_block.roots[0])
                    test = f"({code}) != 0"
                    if condition.negated:
                        test = f"!({test})"
                    emit(f"        {'if' if index == 0 else 'else if'} "
                         f"({test}) begin")
                    opened = True
                    emit(f"          state_next = "
                         f"ST_{sanitize(transition.target.name).upper()};")
                    for sfg in transition.sfgs:
                        emit_sfg(sfg, "          ")
                    emit("        end")
                emit("      end")
            emit("      default: state_next = state;")
            emit("    endcase")
        emit("  end")
        emit("")
        emit("  always @(posedge clk or posedge rst) begin")
        emit("    if (rst) begin")
        if fsm is not None:
            emit(f"      state <= ST_{sanitize(fsm.initial_state.name).upper()};")
        for reg in registers:
            init = reg.init.raw if isinstance(reg.init, Fx) else int(reg.init)
            literal = f"-{wide}'sd{-init}" if init < 0 else f"{wide}'sd{init}"
            emit(f"      {sig_name(reg)} <= {literal};")
        emit("    end else begin")
        if fsm is not None:
            emit("      state <= state_next;")
        for reg in registers:
            emit(f"      {sig_name(reg)} <= {sig_name(reg)}_next;")
        emit("    end")
        emit("  end")
        emit("")
        for port in process.out_ports():
            if port.sig.is_register():
                width = vector_width(sig_fmt(port.sig))
                emit(f"  always @* {scope.name(port, port.name)} = "
                     f"{sig_name(port.sig)}[{width - 1}:0];")
        emit("")
        emit("endmodule")
        return "\n".join(lines) + "\n"


def generate_verilog(system: System, optimize: bool = True,
                     passes=None, validate: str = "off") -> Dict[str, str]:
    """Convenience wrapper: generate Verilog for every timed component."""
    return VerilogGenerator(system, optimize=optimize, passes=passes,
                            validate=validate).generate()
