"""Shared format helpers for the HDL generators.

The canonical definitions live in :mod:`repro.ir.formats` (the IR is
the layer every back-end consumes); this module re-exports them so HDL
code imports from its own subpackage instead of reaching into a sibling
generator.
"""

from ..ir.formats import sig_fmt, vector_width

__all__ = ["sig_fmt", "vector_width"]
