"""HDL code generation: VHDL, Verilog, and generated testbenches.

Paper, section 5: the same control/data-flow data structure that drives
simulation is *"processed by a code generator to yield ... a synthesizable
HDL description"*, and section 6: system stimuli are translated into
test-benches verifying each synthesized component.
"""

from .naming import NameScope, sanitize
from .testbench import vector_file, verilog_testbench, vhdl_testbench
from .verilog import VerilogGenerator, generate_verilog
from .vhdl import VhdlGenerator, generate_vhdl, line_count, support_package

__all__ = [
    "NameScope",
    "VerilogGenerator",
    "VhdlGenerator",
    "generate_verilog",
    "generate_vhdl",
    "line_count",
    "sanitize",
    "support_package",
    "vector_file",
    "verilog_testbench",
    "vhdl_testbench",
]
