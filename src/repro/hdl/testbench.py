"""Testbench generation from captured simulation stimuli.

Paper, section 6: *"During system simulation, the system stimuli are also
translated into test-benches that allow to verify the synthesis result of
each component."*

A :class:`~repro.sim.stimuli.PortLog` attached to the cycle scheduler
captures the cycle-true port traffic of one component; this module turns
the log into a self-checking VHDL testbench (and a plain vector file) that
re-applies the inputs and asserts the outputs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..fixpt import Fx
from ..core.process import TimedProcess
from ..sim.stimuli import PortLog
from .naming import sanitize
from .formats import sig_fmt as _sig_fmt, vector_width
from .vhdl import PACKAGE_NAME


def _raw(value) -> Optional[int]:
    if value is None:
        return None
    if isinstance(value, Fx):
        return value.raw
    if isinstance(value, float):
        return int(value)
    return int(value)


def vector_file(log: PortLog) -> str:
    """A plain text vector file: one line per cycle, raw values in order.

    Columns: every input port then every output port, in declaration
    order; 'x' marks cycles without a token.
    """
    process = log.process
    in_names = [p.name for p in process.in_ports()]
    out_names = [p.name for p in process.out_ports()]
    header = "# cycle " + " ".join(in_names + out_names)
    lines = [header]
    for cycle in range(log.cycles):
        row = [str(cycle)]
        for name in in_names:
            value = _raw(log.inputs[name][cycle])
            row.append("x" if value is None else str(value))
        for name in out_names:
            value = _raw(log.outputs[name][cycle])
            row.append("x" if value is None else str(value))
        lines.append(" ".join(row))
    return "\n".join(lines) + "\n"


def verilog_testbench(log: PortLog, clock_period_ns: int = 10) -> str:
    """A self-checking Verilog testbench replaying the captured stimuli."""
    process = log.process
    if not isinstance(process, TimedProcess):
        raise TypeError("testbenches are generated for timed components")
    name = sanitize(process.name)
    cycles = log.cycles
    lines: List[str] = []
    emit = lines.append
    emit(f"`timescale 1ns/1ps")
    emit(f"module tb_{name};")
    emit("  reg clk = 0;")
    emit("  reg rst = 1;")
    emit("  integer i;")
    emit("  integer errors = 0;")
    widths: Dict[str, int] = {}
    for port in process.ports.values():
        width = vector_width(_sig_fmt(port.sig))
        widths[port.name] = width
        kind = "reg" if port.direction == "in" else "wire"
        emit(f"  {kind} signed [{width - 1}:0] {sanitize(port.name)};")

    def emit_table(prefix: str, values, width: int) -> None:
        emit(f"  reg signed [{width - 1}:0] {prefix}_val [0:{cycles - 1}];")
        emit(f"  reg {prefix}_ok [0:{cycles - 1}];")

    for port in process.in_ports():
        emit_table(f"stim_{sanitize(port.name)}", log.inputs[port.name],
                   widths[port.name])
    for port in process.out_ports():
        emit_table(f"gold_{sanitize(port.name)}", log.outputs[port.name],
                   widths[port.name])
    emit("")
    emit(f"  {name} dut (")
    maps = ["    .clk(clk),", "    .rst(rst),"]
    for port in process.ports.values():
        maps.append(f"    .{sanitize(port.name)}({sanitize(port.name)}),")
    maps[-1] = maps[-1].rstrip(",")
    lines.extend(maps)
    emit("  );")
    emit("")
    emit(f"  always #{clock_period_ns // 2} clk = ~clk;")
    emit("")
    emit("  initial begin")
    for port in process.in_ports():
        port_id = sanitize(port.name)
        for cycle, token in enumerate(log.inputs[port.name]):
            raw = _raw(token)
            emit(f"    stim_{port_id}_val[{cycle}] = {raw or 0}; "
                 f"stim_{port_id}_ok[{cycle}] = {0 if raw is None else 1};")
    for port in process.out_ports():
        port_id = sanitize(port.name)
        for cycle, token in enumerate(log.outputs[port.name]):
            raw = _raw(token)
            emit(f"    gold_{port_id}_val[{cycle}] = {raw or 0}; "
                 f"gold_{port_id}_ok[{cycle}] = {0 if raw is None else 1};")
    emit("    @(posedge clk); rst = 0;")
    emit(f"    for (i = 0; i < {cycles}; i = i + 1) begin")
    for port in process.in_ports():
        port_id = sanitize(port.name)
        emit(f"      {port_id} = stim_{port_id}_val[i];")
    emit(f"      #{clock_period_ns - 1};")
    for port in process.out_ports():
        port_id = sanitize(port.name)
        emit(f"      if (gold_{port_id}_ok[i] && "
             f"{port_id} !== gold_{port_id}_val[i]) begin")
        emit(f"        $display(\"{name}.{port.name} mismatch at cycle %0d: "
             f"%0d != %0d\", i, {port_id}, gold_{port_id}_val[i]);")
        emit("        errors = errors + 1;")
        emit("      end")
    emit("      @(posedge clk);")
    emit("    end")
    emit("    if (errors == 0) $display(\"testbench completed: PASS\");")
    emit("    else $display(\"testbench completed: %0d errors\", errors);")
    emit("    $finish;")
    emit("  end")
    emit("endmodule")
    return "\n".join(lines) + "\n"


def vhdl_testbench(log: PortLog, clock_period_ns: int = 10) -> str:
    """A self-checking VHDL testbench replaying the captured stimuli."""
    process = log.process
    if not isinstance(process, TimedProcess):
        raise TypeError("testbenches are generated for timed components")
    name = sanitize(process.name)
    tb_name = f"tb_{name}"
    cycles = log.cycles

    lines: List[str] = []
    emit = lines.append
    emit("library ieee;")
    emit("use ieee.std_logic_1164.all;")
    emit("use ieee.numeric_std.all;")
    emit(f"use work.{PACKAGE_NAME}.all;")
    emit("")
    emit(f"entity {tb_name} is")
    emit(f"end entity {tb_name};")
    emit("")
    emit(f"architecture bench of {tb_name} is")
    emit("  signal clk : std_logic := '0';")
    emit("  signal rst : std_logic := '1';")
    widths: Dict[str, int] = {}
    for port in process.ports.values():
        width = vector_width(_sig_fmt(port.sig))
        widths[port.name] = width
        emit(f"  signal {sanitize(port.name)} : signed({width - 1} downto 0);")
    emit(f"  constant N_CYCLES : natural := {cycles};")
    emit("  type int_vec is array (0 to N_CYCLES - 1) of integer;")
    emit("  type valid_vec is array (0 to N_CYCLES - 1) of boolean;")

    def emit_table(prefix: str, values: List[Optional[int]]) -> None:
        ints = ", ".join(str(v if v is not None else 0) for v in values)
        valids = ", ".join("true" if v is not None else "false"
                           for v in values)
        emit(f"  constant {prefix}_val : int_vec := ({ints});")
        emit(f"  constant {prefix}_ok  : valid_vec := ({valids});")

    for port in process.in_ports():
        emit_table(f"stim_{sanitize(port.name)}",
                   [_raw(v) for v in log.inputs[port.name]])
    for port in process.out_ports():
        emit_table(f"gold_{sanitize(port.name)}",
                   [_raw(v) for v in log.outputs[port.name]])
    emit("begin")
    emit("")
    emit(f"  dut : entity work.{name}")
    emit("    port map (")
    maps = ["      clk => clk,", "      rst => rst,"]
    for port in process.ports.values():
        maps.append(f"      {sanitize(port.name)} => {sanitize(port.name)},")
    maps[-1] = maps[-1].rstrip(",")
    lines.extend(maps)
    emit("    );")
    emit("")
    emit(f"  clk <= not clk after {clock_period_ns // 2} ns;")
    emit("")
    emit("  stimulus : process")
    emit("  begin")
    emit("    rst <= '1';")
    emit("    wait until rising_edge(clk);")
    emit("    rst <= '0';")
    emit("    for i in 0 to N_CYCLES - 1 loop")
    for port in process.in_ports():
        port_id = sanitize(port.name)
        width = widths[port.name]
        emit(f"      {port_id} <= to_signed(stim_{port_id}_val(i), {width});")
    emit(f"      wait for {clock_period_ns - 1} ns;")
    for port in process.out_ports():
        port_id = sanitize(port.name)
        width = widths[port.name]
        emit(f"      assert (not gold_{port_id}_ok(i)) or "
             f"({port_id} = to_signed(gold_{port_id}_val(i), {width}))")
        emit(f"        report \"{name}.{port.name} mismatch at cycle \" & "
             f"integer'image(i)")
        emit("        severity error;")
    emit("      wait until rising_edge(clk);")
    emit("    end loop;")
    emit("    report \"testbench completed\" severity note;")
    emit("    wait;")
    emit("  end process stimulus;")
    emit("")
    emit(f"end architecture bench;")
    return "\n".join(lines) + "\n"
