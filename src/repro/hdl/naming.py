"""HDL identifier handling: sanitizing and uniquifying names."""

from __future__ import annotations

from typing import Dict, Set

#: Reserved words of both VHDL and Verilog (union, lowercase).
_RESERVED = {
    # VHDL
    "abs", "access", "after", "alias", "all", "and", "architecture", "array",
    "assert", "attribute", "begin", "block", "body", "buffer", "bus", "case",
    "component", "configuration", "constant", "disconnect", "downto", "else",
    "elsif", "end", "entity", "exit", "file", "for", "function", "generate",
    "generic", "group", "guarded", "if", "impure", "in", "inertial", "inout",
    "is", "label", "library", "linkage", "literal", "loop", "map", "mod",
    "nand", "new", "next", "nor", "not", "null", "of", "on", "open", "or",
    "others", "out", "package", "port", "postponed", "procedure", "process",
    "pure", "range", "record", "register", "reject", "rem", "report",
    "return", "rol", "ror", "select", "severity", "shared", "signal", "sla",
    "sll", "sra", "srl", "subtype", "then", "to", "transport", "type",
    "unaffected", "units", "until", "use", "variable", "wait", "when",
    "while", "with", "xnor", "xor",
    # Verilog additions
    "always", "assign", "automatic", "case", "casex", "casez", "default",
    "defparam", "design", "edge", "endcase", "endfunction", "endmodule",
    "endtask", "event", "force", "forever", "fork", "initial", "input",
    "integer", "join", "localparam", "module", "negedge", "output",
    "parameter", "posedge", "real", "reg", "repeat", "scalared", "table",
    "task", "time", "tri", "vectored", "wire",
}


def sanitize(name: str) -> str:
    """Turn an arbitrary model name into a legal HDL identifier."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    text = "".join(out)
    # No leading digit, no leading/trailing/double underscores (VHDL rules).
    while "__" in text:
        text = text.replace("__", "_")
    text = text.strip("_")
    if not text:
        text = "sig"
    if text[0].isdigit():
        text = "s_" + text
    if text.lower() in _RESERVED:
        text = text + "_x"
    return text


class NameScope:
    """Allocates unique sanitized names within one HDL scope."""

    def __init__(self) -> None:
        self._by_obj: Dict[int, str] = {}
        self._used: Set[str] = set()

    def name(self, obj, hint: str) -> str:
        """A stable unique identifier for *obj*, derived from *hint*."""
        existing = self._by_obj.get(id(obj))
        if existing is not None:
            return existing
        base = sanitize(hint)
        candidate = base
        counter = 0
        while candidate.lower() in self._used:
            counter += 1
            candidate = f"{base}_{counter}"
        self._used.add(candidate.lower())
        self._by_obj[id(obj)] = candidate
        return candidate

    def fresh(self, hint: str) -> str:
        """A unique identifier not tied to any object."""
        return self.name(object(), hint)
