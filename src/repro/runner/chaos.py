"""Chaos self-test knobs: injected failures that exercise recovery paths.

Production fault tolerance that is never exercised is fiction, so the
runner carries its own failure injector.  A :class:`ChaosPlan` names
concrete failures — SIGKILL a worker before it runs shard K, hang on a
shard until the parent's deadline fires, raise a transient or a fatal
error, exit the parent mid-run — and CI asserts that the recovered
run's merged report is byte-identical to the serial one.

Plans travel to workers as JSON (they are part of the worker spawn
args) and can also come from the environment: set ``REPRO_CHAOS`` to a
JSON object, e.g. ``REPRO_CHAOS='{"kill_shard": 2, "hang_shard": 5}'``.

Single-fire semantics: ``kill``/``hang``/``raise`` trigger only on a
shard's *first* attempt, so the retry that follows succeeds and the
failure is provably recovered from.  ``fatal_shard`` triggers on every
attempt — it exercises the no-retry (abandon) path.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.errors import DeadlockError, WatchdogTimeout


@dataclass
class ChaosPlan:
    """Which failures to inject, and where."""

    #: SIGKILL the worker right before it would run this shard.
    kill_shard: Optional[int] = None
    #: Sleep instead of running this shard (parent deadline must fire).
    hang_shard: Optional[int] = None
    hang_seconds: float = 3600.0
    #: Raise a transient ``WatchdogTimeout`` instead of running this shard.
    raise_shard: Optional[int] = None
    #: Raise a fatal ``DeadlockError`` on *every* attempt of this shard.
    fatal_shard: Optional[int] = None
    #: Sleep this long before every shard (slow-worker jitter).
    delay_seconds: float = 0.0
    #: Parent calls ``os._exit`` after this many shard completions
    #: (simulates a parent crash; the journal must carry the run).
    parent_exit_after: Optional[int] = None

    def enabled(self) -> bool:
        return any(v is not None for v in (
            self.kill_shard, self.hang_shard, self.raise_shard,
            self.fatal_shard, self.parent_exit_after,
        )) or self.delay_seconds > 0.0

    def to_json(self) -> Dict[str, object]:
        return {
            "kill_shard": self.kill_shard,
            "hang_shard": self.hang_shard,
            "hang_seconds": self.hang_seconds,
            "raise_shard": self.raise_shard,
            "fatal_shard": self.fatal_shard,
            "delay_seconds": self.delay_seconds,
            "parent_exit_after": self.parent_exit_after,
        }

    @classmethod
    def from_json(cls, record: Optional[Dict[str, object]]) -> "ChaosPlan":
        if not record:
            return cls()
        known = {f: record[f] for f in cls.__dataclass_fields__
                 if f in record}
        return cls(**known)

    @classmethod
    def from_env(cls, env: Optional[Dict[str, str]] = None) -> "ChaosPlan":
        """The plan named by ``$REPRO_CHAOS`` (empty plan when unset)."""
        raw = (env if env is not None else os.environ).get("REPRO_CHAOS")
        if not raw:
            return cls()
        return cls.from_json(json.loads(raw))

    # -- injection points ----------------------------------------------------------

    def before_shard(self, shard: int, attempt: int) -> None:
        """Worker-side injection, called right before executing a shard."""
        if self.delay_seconds > 0.0:
            time.sleep(self.delay_seconds)
        if self.fatal_shard == shard:
            raise DeadlockError(
                f"chaos: injected fatal failure on shard {shard}"
            )
        if attempt > 0:
            return  # single-fire: the retry must succeed
        if self.kill_shard == shard:
            os.kill(os.getpid(), signal.SIGKILL)
        if self.hang_shard == shard:
            time.sleep(self.hang_seconds)
        if self.raise_shard == shard:
            raise WatchdogTimeout(
                f"chaos: injected timeout on shard {shard}",
                budget="wall_clock",
            )

    def after_completion(self, completions: int) -> None:
        """Parent-side injection, called after journaling a shard."""
        if (self.parent_exit_after is not None
                and completions >= self.parent_exit_after):
            # A real crash: no cleanup, no atexit, no flushing beyond
            # what the journal already fsync'd.
            os._exit(3)
