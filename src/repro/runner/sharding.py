"""Deterministic shard planning over a campaign's work list.

A shard is a contiguous ``(start, stop)`` slice of the canonical work
list — the collapsed fault representatives in the order
:func:`repro.verify.collapse_faults` yields them, or sweep items in
index order.  The plan depends only on the work size and the shard
size, never on worker count or scheduling: merging shard results in
span order therefore reproduces the serial run byte for byte, whatever
the split.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from .errors import RunnerError

Span = Tuple[int, int]


def plan_shards(n_items: int, shard_size: int) -> List[Span]:
    """Slice ``n_items`` work items into contiguous spans of *shard_size*.

    The last span carries the remainder.  Zero items plan to zero
    shards (an empty campaign completes immediately).
    """
    if shard_size <= 0:
        raise RunnerError(f"shard_size must be positive, got {shard_size}")
    return [(start, min(start + shard_size, n_items))
            for start in range(0, n_items, shard_size)]


def default_shard_size(n_items: int, workers: int, lanes: int = 1) -> int:
    """A shard size balancing retry granularity against dispatch overhead.

    Aim for ~4 shards per worker so a lost shard forfeits little work,
    but never slice below one full lane word (a smaller shard would
    waste lanes every replay).
    """
    if n_items <= 0:
        return max(1, lanes)
    per_worker = math.ceil(n_items / max(1, workers) / 4)
    return max(1, lanes, per_worker)
