"""Fault-tolerant sharded campaign runner — the "heavy traffic" layer.

One design description, arbitrarily many verification workloads: this
package executes :class:`~repro.verify.campaign.FaultCampaign` and
stimulus-sweep jobs across worker processes, surviving worker crashes,
hangs and parent death, while guaranteeing the merged report is
**byte-identical** to the single-process serial run — distribution is
an implementation detail, never an answer-changing one (the paper's
single-source-of-truth discipline applied to infrastructure).

Pieces:

* :mod:`~repro.runner.jobs` — serializable job specs (campaign, sweep);
* :mod:`~repro.runner.sharding` — deterministic shard planning;
* :mod:`~repro.runner.journal` — fsync'd write-ahead journal, resume;
* :mod:`~repro.runner.cache` — compiled-artifact cache
  (hash(design + IR passes + engine) -> pickled netlist);
* :mod:`~repro.runner.worker` — the worker process loop;
* :mod:`~repro.runner.runner` — the orchestrator: retry/backoff,
  crash/hang detection, graceful degradation, obs lifecycle events;
* :mod:`~repro.runner.chaos` — injected failures for self-testing;
* ``python -m repro.runner`` — run / resume / chaos CLI.
"""

from .cache import ArtifactCache, artifact_key
from .chaos import ChaosPlan
from .errors import JournalCorrupt, RunnerError, WorkerCrash, describe_error
from .jobs import (
    CampaignJob,
    SweepJob,
    SweepReport,
    job_from_json,
    result_from_json,
    result_to_json,
)
from .journal import Journal, JournalState, load_journal
from .registry import resolve_design
from .runner import RetryPolicy, RunOutcome, RunStats, ShardedRunner
from .sharding import default_shard_size, plan_shards

__all__ = [
    "ArtifactCache",
    "CampaignJob",
    "ChaosPlan",
    "Journal",
    "JournalCorrupt",
    "JournalState",
    "RetryPolicy",
    "RunOutcome",
    "RunStats",
    "RunnerError",
    "ShardedRunner",
    "SweepJob",
    "SweepReport",
    "WorkerCrash",
    "artifact_key",
    "default_shard_size",
    "describe_error",
    "job_from_json",
    "load_journal",
    "plan_shards",
    "resolve_design",
    "result_from_json",
    "result_to_json",
]
