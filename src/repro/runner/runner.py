"""The fault-tolerant sharded campaign runner (parent orchestrator).

``ShardedRunner`` executes a :mod:`~repro.runner.jobs` job across
worker processes with real fault tolerance:

* the work list is sliced into deterministic shards
  (:mod:`~repro.runner.sharding`); merging shard results in span order
  reproduces the serial run **byte for byte**, whatever the worker
  count, crash history or retry schedule;
* each completed shard is journaled and fsync'd *before* the runner
  acts on it (:mod:`~repro.runner.journal`), so a killed parent resumes
  with ``ShardedRunner.resume`` re-executing only incomplete shards;
* worker crashes (kill -9, segfault) are detected by process liveness,
  hangs by a parent-side deadline that SIGKILLs the worker; both are
  transient — the shard is retried with exponential backoff under a
  bounded attempt budget, and a replacement worker is spawned;
* retry decisions are taxonomy-driven
  (:func:`repro.core.errors.is_transient` computed worker-side), never
  message matching: a deadlocked or overflowing design fails fast, a
  timeout retries;
* on exhausted budgets the runner degrades to a **partial** report:
  abandoned shards are counted in ``skipped`` and ``complete=False`` —
  the coverage denominator never silently shrinks;
* every lifecycle transition (worker spawned/died, shard dispatched/
  completed/retried/abandoned) is emitted on an
  :class:`~repro.obs.events.EventTrace`, so ``python -m repro.obs
  report`` renders the run timeline;
* the whole run executes under a span trace (``campaign`` →
  ``compile`` / ``simulate`` / ``merge``) that worker shards *continue*
  cross-process, each completed shard ships a deterministic telemetry
  fragment merged into one campaign-level capture
  (:func:`repro.obs.aggregate.merge_captures`), and advisory
  ``progress`` / ``heartbeat`` journal records feed the live
  ``python -m repro.obs tail`` panel.  ``capture_dir`` lands all of it
  (``metrics.json`` / ``events.jsonl`` / ``spans.jsonl`` /
  ``journal.jsonl``) in one reportable directory.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.errors import WatchdogTimeout
from ..obs.aggregate import merge_captures
from ..obs.events import EventTrace
from ..obs.spans import SpanTracer
from ..verify.campaign import CampaignReport
from .cache import ArtifactCache, artifact_key
from .chaos import ChaosPlan
from .errors import RunnerError, WorkerCrash, describe_error
from .jobs import CampaignJob, SweepReport, job_from_json, result_from_json
from .journal import JOURNAL_VERSION, Journal, JournalState, load_journal
from .sharding import Span, default_shard_size, plan_shards
from .worker import worker_main


@dataclass
class RetryPolicy:
    """Bounded retries with exponential backoff."""

    max_attempts: int = 3
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_max: float = 5.0

    def delay(self, failures: int) -> float:
        """Backoff before the retry following the *failures*-th failure."""
        return min(self.backoff_max,
                   self.backoff_base * self.backoff_factor ** (failures - 1))


@dataclass
class RunStats:
    """What it cost to produce the merged report."""

    shards: int = 0
    completed: int = 0
    reused: int = 0            # shards replayed from the journal on resume
    abandoned: int = 0
    retries: int = 0
    workers_spawned: int = 0
    worker_deaths: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    wall_seconds: float = 0.0


@dataclass
class RunOutcome:
    """Merged report plus the runner's own accounting."""

    report: object             # CampaignReport or SweepReport
    stats: RunStats
    abandoned: List[Dict[str, object]] = field(default_factory=list)
    #: Merged campaign telemetry (:func:`repro.obs.aggregate
    #: .merge_captures` over the parent's denominator fragment plus
    #: every completed shard's fragment, in shard order) — byte-
    #: identical whatever the worker count or crash history.
    telemetry: Optional[Dict[str, object]] = None


class _Shard:
    __slots__ = ("id", "span", "status", "attempts", "next_eligible",
                 "kill_at", "worker", "results", "error", "telemetry")

    def __init__(self, shard_id: int, span: Span):
        self.id = shard_id
        self.span = span
        self.status = "pending"    # pending | running | done | abandoned
        self.attempts = 0          # failures so far
        self.next_eligible = 0.0
        self.kill_at: Optional[float] = None
        self.worker: Optional[str] = None
        self.results: Optional[list] = None
        self.error: Optional[dict] = None
        #: The shard's Capture fragment (final successful attempt only).
        self.telemetry: Optional[dict] = None


class _Worker:
    __slots__ = ("id", "process", "conn", "state", "shard", "timed_out")

    def __init__(self, wid: str, process, conn):
        self.id = wid
        self.process = process
        self.conn = conn
        self.state = "init"        # init | idle | busy | dead
        self.shard: Optional[_Shard] = None
        self.timed_out = False


class ShardedRunner:
    """Run one job across worker processes; see the module docstring.

    Parameters
    ----------
    job:
        A :class:`~repro.runner.jobs.CampaignJob` or ``SweepJob``.
    workers:
        Worker process count (scheduling only — never affects results).
    shard_size:
        Work items per shard; default balances retry granularity
        against dispatch overhead (:func:`default_shard_size`).
    journal_path:
        Write-ahead journal location.  None disables journaling (and
        resumability).  An existing journal must go through
        :meth:`resume` — running over it would orphan its records.
    shard_deadline:
        Per-shard wall-clock budget in seconds.  Enforced twice: a
        worker-side :class:`~repro.verify.guard.Watchdog` raises a
        retryable timeout, and the parent SIGKILLs a worker that blows
        ``deadline * deadline_grace`` (a hung worker can't poll its own
        watchdog).
    retry:
        The :class:`RetryPolicy`; attempts are per shard.
    chaos:
        A :class:`~repro.runner.chaos.ChaosPlan` of injected failures
        (merged with ``$REPRO_CHAOS`` by the CLI, not here).
    cache:
        The :class:`~repro.runner.cache.ArtifactCache` workers load the
        synthesized netlist from.  The parent warms it before spawning.
    obs:
        Optional :class:`repro.obs.Capture`; lifecycle events also land
        on its stream (duck-typed).
    events:
        Optional :class:`~repro.obs.events.EventTrace` (e.g. one
        streaming to a file); default records in memory on
        ``self.events``.
    tracer:
        Optional :class:`~repro.obs.spans.SpanTracer`.  Default: an
        enabled tracer when *capture_dir* is set, a disabled (free) one
        otherwise.  The run executes under a root ``campaign`` span
        with ``compile`` / ``simulate`` / ``merge`` children; workers
        continue the trace (their shard spans nest under ``simulate``).
    capture_dir:
        Directory the run's merged observability lands in:
        ``metrics.json`` (merged telemetry), ``events.jsonl``
        (lifecycle events), ``spans.jsonl`` (the trace) and — unless
        *journal_path* says otherwise — ``journal.jsonl``.  Readable by
        ``python -m repro.obs report`` and followable live by
        ``python -m repro.obs tail``.
    heartbeat:
        Seconds between advisory ``heartbeat`` journal records (worker
        states for the live tail).  Never fsync'd.
    """

    #: Parent-side kill deadline = shard_deadline * this grace factor.
    DEADLINE_GRACE = 1.5

    def __init__(self, job, *, workers: int = 4,
                 shard_size: Optional[int] = None,
                 journal_path: Optional[str] = None,
                 shard_deadline: Optional[float] = None,
                 retry: Optional[RetryPolicy] = None,
                 chaos: Optional[ChaosPlan] = None,
                 cache: Optional[ArtifactCache] = None,
                 obs=None, events: Optional[EventTrace] = None,
                 tracer: Optional[SpanTracer] = None,
                 capture_dir: Optional[str] = None,
                 heartbeat: float = 1.0,
                 poll_interval: float = 0.02,
                 mp_context: Optional[str] = None,
                 max_respawns: Optional[int] = None):
        if workers < 1:
            raise RunnerError(f"need at least one worker, got {workers}")
        self.job = job
        self.workers = workers
        self.shard_size = shard_size
        self.capture_dir = capture_dir
        if capture_dir is not None and journal_path is None:
            journal_path = os.path.join(capture_dir, "journal.jsonl")
        self.journal_path = journal_path
        self.shard_deadline = shard_deadline
        self.retry = retry if retry is not None else RetryPolicy()
        self.chaos = chaos if chaos is not None else ChaosPlan()
        self.cache = cache
        self.obs = obs
        self.events = events if events is not None else EventTrace()
        self.tracer = tracer if tracer is not None \
            else SpanTracer(enabled=capture_dir is not None)
        self.heartbeat = heartbeat
        self.poll_interval = poll_interval
        if mp_context is None:
            mp_context = ("fork" if "fork"
                          in multiprocessing.get_all_start_methods()
                          else "spawn")
        self._ctx = multiprocessing.get_context(mp_context)
        self.max_respawns = (max_respawns if max_respawns is not None
                             else 2 * workers + 4)
        self.stats = RunStats()
        self._clock = time.monotonic
        self._start = 0.0
        self._resume_state: Optional[JournalState] = None
        self._journal: Optional[Journal] = None
        self._workers: List[_Worker] = []
        self._spawned = 0
        self._completions_this_run = 0
        self._span_context = None
        self._last_heartbeat = 0.0

    # -- construction of a resumed runner -----------------------------------------

    @classmethod
    def resume(cls, journal_path: str, **kwargs) -> "ShardedRunner":
        """A runner that replays *journal_path* and finishes the remainder.

        The job spec and the shard plan come from the journal's meta
        record (authoritative: recomputing the plan under different
        settings would orphan the completed-shard records); runtime
        knobs — workers, deadlines, retry budget — come fresh from
        *kwargs*, and abandoned shards get a fresh attempt budget.
        """
        state = load_journal(journal_path)
        job = job_from_json(state.meta["job"])
        kwargs.pop("journal_path", None)
        runner = cls(job, journal_path=journal_path, **kwargs)
        runner._resume_state = state
        return runner

    # -- event plumbing ------------------------------------------------------------

    def _event(self, kind: str, **fields) -> None:
        fields.setdefault("t", round(self._clock() - self._start, 6))
        self.events.emit(kind, **fields)
        if self.obs is not None:
            stream = getattr(self.obs, "events", None)
            if stream is not None and stream is not self.events:
                stream.emit(kind, **fields)

    def _journal_soft(self, record: Dict[str, object]) -> None:
        """Append an advisory (non-fsync'd) record for the live tail."""
        if self._journal is None:
            return
        record.setdefault("t", round(self._clock() - self._start, 6))
        self._journal.append(record, sync=False)

    # -- run -----------------------------------------------------------------------

    def run(self) -> RunOutcome:
        """Execute (or finish) the job; always returns a merged outcome."""
        self._start = self._clock()
        outcome = None
        tracer = self.tracer
        try:
            with tracer.span("campaign", job=self.job.kind,
                             design=getattr(self.job, "design", None)):
                with tracer.span("compile"):
                    netlist, total_faults, work_size = self._prepare()
                    plan, preloaded = self._plan_and_journal(
                        total_faults, work_size, netlist)
                shards = [_Shard(i, tuple(span))
                          for i, span in enumerate(plan)]
                for shard_id, record in preloaded.items():
                    shard = shards[shard_id]
                    shard.status = "done"
                    shard.results = record["results"]
                    shard.telemetry = record.get("telemetry")
                    self.stats.reused += 1
                self.stats.shards = len(shards)
                self._event("run_start", netlist=netlist.name,
                            job=self.job.kind, shards=len(shards),
                            reused=self.stats.reused,
                            workers=self.workers, work=work_size)
                with tracer.span("simulate", shards=len(shards)):
                    # Workers spawned below continue the trace from here:
                    # their shard spans nest under this simulate span.
                    self._span_context = tracer.current_context()
                    try:
                        self._event_loop(shards)
                    finally:
                        self._span_context = None
                        self._stop_workers()
                with tracer.span("merge"):
                    outcome = self._finish(netlist, total_faults,
                                           work_size, shards)
        finally:
            self._write_capture(outcome)
        return outcome

    def _write_capture(self, outcome: Optional[RunOutcome]) -> None:
        """Land the run's observability in ``capture_dir``, if set.

        ``metrics.json`` (merged telemetry, sorted keys — the
        byte-identical artifact), ``events.jsonl`` and ``spans.jsonl``;
        the journal already lives there.  Written even on a failed run,
        with whatever was collected.
        """
        if self.capture_dir is None:
            return
        os.makedirs(self.capture_dir, exist_ok=True)
        if outcome is not None and outcome.telemetry is not None:
            path = os.path.join(self.capture_dir, "metrics.json")
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(outcome.telemetry, handle, indent=2,
                          sort_keys=True, default=str)
                handle.write("\n")
        with open(os.path.join(self.capture_dir, "events.jsonl"), "w",
                  encoding="utf-8") as handle:
            self.events.write_jsonl(handle)
        if self.tracer.enabled and len(self.tracer):
            with open(os.path.join(self.capture_dir, "spans.jsonl"), "w",
                      encoding="utf-8") as handle:
                self.tracer.write_jsonl(handle)

    def _prepare(self):
        """Warm the cache, size the work list, count the denominators."""
        cache = self.cache
        netlist = self.job.build_netlist(cache)
        if cache is not None:
            self.stats.cache_hits = cache.hits
            self.stats.cache_misses = cache.misses
        if isinstance(self.job, CampaignJob):
            campaign = self.job.make_campaign(netlist)
            return netlist, campaign.total_faults, campaign.work_size
        return netlist, None, self.job.items

    def _plan_and_journal(self, total_faults, work_size, netlist
                          ) -> Tuple[List[Span], Dict[int, dict]]:
        if self._resume_state is not None:
            state = self._resume_state
            meta = state.meta
            if meta.get("work_size") != work_size:
                raise RunnerError(
                    f"journal work size {meta.get('work_size')} != "
                    f"{work_size} recomputed from the job — the design or "
                    "code changed since the journal was written"
                )
            plan = [tuple(span) for span in meta["plan"]]
            self._journal = Journal(self.journal_path)
            return plan, dict(state.done)
        size = self.shard_size
        if size is None:
            lanes = getattr(self.job, "lanes", 1)
            size = default_shard_size(work_size, self.workers, lanes)
        plan = plan_shards(work_size, size)
        if self.journal_path is not None:
            if (os.path.exists(self.journal_path)
                    and os.path.getsize(self.journal_path) > 0):
                raise RunnerError(
                    f"journal {self.journal_path!r} already exists — use "
                    "'resume' to finish it, or point at a fresh path"
                )
            self._journal = Journal(self.journal_path)
            self._journal.append({
                "kind": "meta", "version": JOURNAL_VERSION,
                "run_id": uuid.uuid4().hex,
                "job": self.job.to_json(),
                "plan": [list(span) for span in plan],
                "work_size": work_size,
                "total_faults": total_faults,
                "netlist": netlist.name,
                "artifact_key": artifact_key(self.job.cache_spec()),
            })
        return plan, {}

    # -- worker management ---------------------------------------------------------

    def _spawn_worker(self) -> _Worker:
        wid = f"w{self._spawned}"
        self._spawned += 1
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        # The trace context rides a *copy* of the wire form: the job
        # spec itself (and the journal meta derived from it) stays free
        # of run-specific identifiers.
        job_json = self.job.to_json()
        if self._span_context is not None:
            job_json["span_context"] = self._span_context.to_json()
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, wid, job_json,
                  self.cache.root if self.cache is not None else None,
                  self.chaos.to_json()),
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker = _Worker(wid, process, parent_conn)
        self._workers.append(worker)
        self.stats.workers_spawned += 1
        self._event("worker_spawned", worker=wid, pid=process.pid)
        return worker

    def _alive(self) -> List[_Worker]:
        return [w for w in self._workers if w.state != "dead"]

    def _stop_workers(self) -> None:
        for worker in self._workers:
            if worker.state == "dead":
                continue
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, EOFError, OSError):
                pass
        for worker in self._workers:
            if worker.state == "dead":
                continue
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.state = "dead"

    def _handle_death(self, worker: _Worker,
                      unfinished_left: bool) -> None:
        if worker.state == "dead":
            return
        self._drain(worker)
        exitcode = worker.process.exitcode
        worker.state = "dead"
        self.stats.worker_deaths += 1
        shard = worker.shard
        worker.shard = None
        self._event("worker_died", worker=worker.id, exitcode=exitcode,
                    shard=shard.id if shard is not None else None,
                    timed_out=worker.timed_out)
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.process.join(timeout=0.5)
        if shard is not None and shard.status == "running":
            # The worker died holding the shard and can never report
            # its own span — synthesize the failed one it would have.
            self.tracer.emit(
                f"shard {shard.id}", status="failed", shard=shard.id,
                worker=worker.id, attempt=shard.attempts,
                error="WatchdogTimeout" if worker.timed_out
                else "WorkerCrash")
            if worker.timed_out:
                error = describe_error(WatchdogTimeout(
                    f"shard {shard.id} exceeded the parent-side deadline "
                    f"({self.shard_deadline}s x {self.DEADLINE_GRACE}); "
                    f"worker {worker.id} was killed",
                    budget="wall_clock",
                ))
            else:
                error = describe_error(WorkerCrash(
                    f"worker {worker.id} died (exitcode {exitcode}) "
                    f"holding shard {shard.id}",
                    worker=worker.id, shard=shard.id, exitcode=exitcode,
                ))
            self._shard_failed(shard, error, worker.id)
        if unfinished_left and len(self._alive()) < self.workers:
            if self._spawned < self.max_respawns + self.workers:
                self._spawn_worker()

    def _drain(self, worker: _Worker) -> None:
        """Process replies a dying worker managed to buffer (work is work)."""
        try:
            while worker.conn.poll(0):
                self._handle_message(worker, worker.conn.recv())
        except (EOFError, OSError):
            pass

    # -- shard lifecycle -----------------------------------------------------------

    def _dispatch(self, worker: _Worker, shard: _Shard) -> bool:
        now = self._clock()
        try:
            worker.conn.send(("run", shard.id, shard.span[0], shard.span[1],
                              shard.attempts, self.shard_deadline))
        except (BrokenPipeError, EOFError, OSError):
            self._handle_death(worker, unfinished_left=True)
            return False
        shard.status = "running"
        shard.worker = worker.id
        shard.kill_at = (now + self.shard_deadline * self.DEADLINE_GRACE
                         if self.shard_deadline is not None else None)
        worker.shard = shard
        worker.state = "busy"
        self._event("shard_dispatched", shard=shard.id,
                    span=list(shard.span), attempt=shard.attempts,
                    worker=worker.id)
        self._journal_soft({"kind": "shard_dispatched", "shard": shard.id,
                            "span": list(shard.span),
                            "attempt": shard.attempts,
                            "worker": worker.id})
        return True

    def _shard_failed(self, shard: _Shard, error: Dict[str, object],
                      worker_id: Optional[str]) -> None:
        shard.attempts += 1
        shard.status = "pending"
        shard.worker = None
        shard.kill_at = None
        transient = bool(error.get("transient"))
        if transient and shard.attempts < self.retry.max_attempts:
            delay = self.retry.delay(shard.attempts)
            shard.next_eligible = self._clock() + delay
            self.stats.retries += 1
            self._event("shard_retried", shard=shard.id,
                        span=list(shard.span), attempt=shard.attempts,
                        backoff=delay, worker=worker_id,
                        error=error.get("type"),
                        message=error.get("message"))
            self._journal_soft({"kind": "shard_retried", "shard": shard.id,
                                "span": list(shard.span),
                                "attempt": shard.attempts,
                                "error": error.get("type")})
        else:
            shard.status = "abandoned"
            shard.error = error
            self.stats.abandoned += 1
            if self._journal is not None:
                self._journal.append({
                    "kind": "shard_abandoned", "shard": shard.id,
                    "span": list(shard.span), "attempts": shard.attempts,
                    "error": error,
                })
            self._event("shard_abandoned", shard=shard.id,
                        span=list(shard.span), attempts=shard.attempts,
                        transient=transient, error=error.get("type"),
                        message=error.get("message"))

    def _shard_done(self, worker: _Worker, shard: _Shard, payload,
                    telemetry: Optional[dict] = None) -> None:
        # Write-ahead: the journal record lands on disk before the
        # runner believes the shard happened.  The telemetry fragment
        # rides the same record, so a resumed run merges the identical
        # campaign view without re-executing the shard.
        if self._journal is not None:
            self._journal.append({
                "kind": "shard_done", "shard": shard.id,
                "span": list(shard.span), "attempt": shard.attempts,
                "results": payload,
                "telemetry": telemetry,
            })
        shard.status = "done"
        shard.results = payload
        shard.telemetry = telemetry
        shard.worker = None
        shard.kill_at = None
        self.stats.completed += 1
        self._completions_this_run += 1
        self._event("shard_completed", shard=shard.id,
                    span=list(shard.span), attempt=shard.attempts,
                    worker=worker.id, results=len(payload))
        self.chaos.after_completion(self._completions_this_run)

    def _handle_message(self, worker: _Worker, message) -> None:
        kind = message[0]
        if kind == "ready":
            if worker.state == "init":
                worker.state = "idle"
            return
        if kind == "init_error":
            raise RunnerError(
                f"worker {message[1]} failed to initialize: "
                f"{message[2].get('type')}: {message[2].get('message')}"
            )
        if kind == "progress":
            _, shard_id, done, total = message
            shard = worker.shard
            if shard is not None and shard.id == shard_id \
                    and shard.status == "running":
                self._journal_soft({"kind": "progress", "shard": shard_id,
                                    "done": done, "total": total,
                                    "worker": worker.id})
                self._event("progress", shard=shard_id, done=done,
                            total=total, worker=worker.id)
            return
        # Replies are ("done"|"error", shard, payload[, extra]) — the
        # trailing extra dict (spans, telemetry) is optional so older
        # wire forms stay readable.
        shard_id, payload = message[1], message[2]
        extra = message[3] if len(message) > 3 else {}
        if extra.get("spans"):
            # Timing observations: absorbed even from stale replies.
            self.tracer.add(extra["spans"])
        shard = worker.shard
        if shard is None or shard.id != shard_id or shard.status != "running":
            return  # stale reply for a shard already resolved elsewhere
        worker.shard = None
        worker.state = "idle"
        if kind == "done":
            self._shard_done(worker, shard, payload,
                             extra.get("telemetry"))
        elif kind == "error":
            self._shard_failed(shard, payload, worker.id)

    # -- the event loop ------------------------------------------------------------

    def _unfinished(self, shards: List[_Shard]) -> bool:
        return any(s.status in ("pending", "running") for s in shards)

    def _event_loop(self, shards: List[_Shard]) -> None:
        from multiprocessing.connection import wait as conn_wait

        if not self._unfinished(shards):
            return
        want = min(self.workers, len([s for s in shards
                                      if s.status == "pending"]))
        for _ in range(max(1, want)):
            self._spawn_worker()
        while self._unfinished(shards):
            now = self._clock()
            # 0. Advisory heartbeat for the live tail (never fsync'd).
            if now - self._last_heartbeat >= self.heartbeat:
                self._last_heartbeat = now
                self._journal_soft({
                    "kind": "heartbeat",
                    "workers": {w.id: w.state for w in self._workers
                                if w.state != "dead"},
                })
            # 1. Feed idle workers the lowest pending, eligible shard.
            pending = [s for s in shards if s.status == "pending"
                       and s.next_eligible <= now]
            pending.sort(key=lambda s: s.id)
            for worker in self._workers:
                if not pending:
                    break
                if worker.state == "idle":
                    if self._dispatch(worker, pending[0]):
                        pending.pop(0)
            # 2. Wait for traffic.
            conns = {w.conn: w for w in self._workers
                     if w.state in ("init", "idle", "busy")}
            if conns:
                try:
                    ready = conn_wait(list(conns), timeout=self.poll_interval)
                except OSError:
                    ready = []
                for conn in ready:
                    worker = conns[conn]
                    if worker.state == "dead":
                        continue
                    try:
                        message = worker.conn.recv()
                    except (EOFError, OSError):
                        self._handle_death(
                            worker, self._unfinished(shards))
                        continue
                    self._handle_message(worker, message)
            else:
                time.sleep(self.poll_interval)
            # 3. Liveness: a killed worker's pipe may be held open by
            #    sibling forks, so EOF alone cannot be trusted.
            for worker in list(self._workers):
                if worker.state != "dead" and not worker.process.is_alive():
                    self._handle_death(worker, self._unfinished(shards))
            # 4. Parent-side deadline: SIGKILL a hung worker.
            now = self._clock()
            for worker in self._workers:
                if (worker.state == "busy" and worker.shard is not None
                        and worker.shard.kill_at is not None
                        and now > worker.shard.kill_at):
                    worker.timed_out = True
                    worker.process.kill()
                    worker.process.join(timeout=1.0)
                    self._handle_death(worker, self._unfinished(shards))
            # 5. Starvation backstop: pending work, nobody to run it.
            if not self._alive() and self._unfinished(shards):
                if self._spawned < self.max_respawns + self.workers:
                    self._spawn_worker()
                else:
                    for shard in shards:
                        if shard.status in ("pending", "running"):
                            self._shard_failed(shard, describe_error(
                                RunnerError(
                                    "worker respawn budget exhausted "
                                    f"({self.max_respawns} respawns)"
                                )), None)

    # -- merge ---------------------------------------------------------------------

    def _parent_fragment(self, total_faults, work_size,
                         skipped: int) -> Dict[str, object]:
        """The parent's own telemetry: the campaign denominators.

        Only values that are pure functions of the job and the set of
        completed shards belong here — runner accounting (retries,
        worker deaths) varies with crash history and would break the
        byte-identity of the merged view.  It lives in
        ``RunStats`` / the event stream instead.
        """
        metrics: Dict[str, object] = {
            "campaign/work_size": {"type": "counter", "value": work_size},
            "campaign/skipped": {"type": "counter", "value": skipped},
        }
        if total_faults is not None:
            metrics["campaign/total_faults"] = {
                "type": "counter", "value": total_faults}
        return {"metrics": metrics, "activity": {}, "fsm": {},
                "profile": {}, "events": {}}

    def _finish(self, netlist, total_faults, work_size,
                shards: List[_Shard]) -> RunOutcome:
        complete = True
        skipped = 0
        abandoned_records: List[Dict[str, object]] = []
        merged: List = []
        for shard in shards:  # already in span order
            if shard.status == "done":
                merged.extend(shard.results)
            else:
                complete = False
                skipped += shard.span[1] - shard.span[0]
                abandoned_records.append({
                    "shard": shard.id, "span": list(shard.span),
                    "attempts": shard.attempts, "error": shard.error,
                })
        if isinstance(self.job, CampaignJob):
            report: object = CampaignReport(
                netlist_name=netlist.name,
                cycles=self.job.cycles,
                total_faults=total_faults,
                collapsed_faults=work_size,
                results=[result_from_json(r) for r in merged],
                complete=complete,
                skipped=skipped,
            )
        else:
            report = SweepReport(
                netlist_name=netlist.name, cycles=self.job.cycles,
                items=self.job.items, results=merged,
                complete=complete, skipped=skipped,
            )
        # Merge the telemetry fragments in shard order: parent
        # denominators first, then every completed shard's fragment.
        # A pure fold over deterministic inputs — byte-identical for
        # any worker count or crash history.
        telemetry = merge_captures(
            [self._parent_fragment(total_faults, work_size, skipped)]
            + [shard.telemetry for shard in shards
               if shard.status == "done"])
        self.stats.wall_seconds = self._clock() - self._start
        if self._journal is not None:
            self._journal.append({"kind": "run_end", "complete": complete,
                                  "skipped": skipped})
            self._journal.close()
            self._journal = None
        self._event("run_end", complete=complete, skipped=skipped,
                    completed=self.stats.completed,
                    reused=self.stats.reused,
                    retries=self.stats.retries,
                    abandoned=self.stats.abandoned,
                    worker_deaths=self.stats.worker_deaths,
                    wall_seconds=round(self.stats.wall_seconds, 6))
        return RunOutcome(report=report, stats=self.stats,
                          abandoned=abandoned_records,
                          telemetry=telemetry)
