"""Compiled-artifact cache keyed by design + IR passes + engine.

Synthesizing a netlist is pure: the same design spec, the same IR-pass
configuration and the same engine always yield the same artifact.  The
cache exploits that to make worker start-up O(unpickle) instead of
O(synthesis) — the parent warms the entry once, then every worker (and
every respawned replacement after a crash) loads the identical bytes.

Keys are SHA-256 over the canonical JSON of the spec fields, so any
change to the design callable's identity, its kwargs, the pass
configuration or the target engine misses cleanly.  Writes are atomic
(temp file + ``os.replace``): a worker killed mid-store can never leave
a half-written artifact for the next reader.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from typing import Dict, Optional


def artifact_key(spec: Dict[str, object]) -> str:
    """The cache key of a canonical spec dict (sorted-key JSON, SHA-256)."""
    canon = json.dumps(spec, sort_keys=True, separators=(",", ":"),
                       default=str)
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


class ArtifactCache:
    """A directory of pickled synthesis artifacts.

    ``root`` defaults to ``$REPRO_CACHE_DIR`` or ``.repro_cache`` under
    the current directory.  ``hits``/``misses`` make the reuse claim
    measurable.
    """

    def __init__(self, root: Optional[str] = None):
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
        self.root = root
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.pkl")

    def load(self, key: str):
        """The cached artifact, or None on miss (counted)."""
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                artifact = pickle.load(handle)
        except (FileNotFoundError, EOFError, pickle.UnpicklingError):
            self.misses += 1
            return None
        self.hits += 1
        return artifact

    def store(self, key: str, artifact) -> str:
        """Atomically persist *artifact* under *key*; returns the path."""
        os.makedirs(self.root, exist_ok=True)
        path = self._path(key)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(artifact, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def get_or_build(self, key: str, build):
        """Cached artifact for *key*, building and storing on miss."""
        artifact = self.load(key)
        if artifact is None:
            artifact = build()
            self.store(key, artifact)
        return artifact
