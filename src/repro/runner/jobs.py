"""Job specs: the serializable description of a distributable workload.

A job is everything a worker process needs to rebuild its slice of the
work bit-exactly: design spec, stimulus seed, lane count, pass
configuration.  Jobs round-trip through JSON (they live in journal
``meta`` records and cross process boundaries as strings), and every
derived quantity — the stimulus program, the collapsed work list, each
sweep item's RNG stream — is a pure function of the spec, which is what
makes a sharded run mergeable into a byte-identical serial report.

Two workloads:

* :class:`CampaignJob` — a fault campaign over the collapsed stuck-at
  universe; work items are the collapsed representatives.
* :class:`SweepJob` — a stimulus sweep: N independent random programs
  (per-item seed ``derive_seed(seed, item)``), each replayed on the
  golden netlist and digested; work items are sweep indices.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.errors import WatchdogTimeout
from ..synth.gatesim import GateSimulator
from ..verify.campaign import (
    CampaignReport,
    FaultCampaign,
    FaultResult,
    random_stimulus,
)
from ..verify.faults import StuckAtFault, TransientFault
from ..verify.guard import Watchdog
from .cache import ArtifactCache, artifact_key
from .errors import RunnerError
from .registry import resolve_design


# -- fault/result wire form ----------------------------------------------------


def result_to_json(result: FaultResult) -> Dict[str, object]:
    """A :class:`FaultResult` as a JSON-safe dict (journal/pipe form)."""
    fault = result.fault
    if isinstance(fault, StuckAtFault):
        encoded: Dict[str, object] = {"f": "sa", "n": fault.net,
                                      "v": fault.value}
    elif isinstance(fault, TransientFault):
        encoded = {"f": "tr", "n": fault.net, "c": fault.cycle}
    else:
        raise RunnerError(f"unserializable fault type {type(fault).__name__}")
    return {
        "fault": encoded,
        "d": bool(result.detected),
        "dc": result.detect_cycle,
        "do": result.detect_output,
        "cs": result.class_size,
    }


def result_from_json(record: Dict[str, object]) -> FaultResult:
    """Rebuild a :class:`FaultResult` from :func:`result_to_json` output."""
    encoded = record["fault"]
    kind = encoded["f"]
    if kind == "sa":
        fault = StuckAtFault(int(encoded["n"]), int(encoded["v"]))
    elif kind == "tr":
        fault = TransientFault(int(encoded["n"]), int(encoded["c"]))
    else:
        raise RunnerError(f"unknown fault wire form {kind!r}")
    return FaultResult(
        fault=fault,
        detected=bool(record["d"]),
        detect_cycle=record["dc"],
        detect_output=record["do"],
        class_size=int(record.get("cs", 1)),
    )


# -- job specs -----------------------------------------------------------------


@dataclass
class CampaignJob:
    """A sharded fault campaign (collapsed stuck-at universe)."""

    design: str
    cycles: int
    seed: int = 0
    lanes: int = 64
    collapse: bool = True
    ir_passes: bool = True
    engine: str = "gate"
    design_kwargs: Dict[str, object] = field(default_factory=dict)
    #: Serialized :class:`~repro.obs.spans.SpanContext` of the parent
    #: run's open span, injected by the runner at dispatch time so a
    #: worker's shard spans continue the parent's trace.  Never part of
    #: the job's identity: excluded from comparison, the cache spec and
    #: (when None) the wire form.
    span_context: Optional[Dict[str, str]] = \
        field(default=None, compare=False, repr=False)

    kind = "campaign"

    def to_json(self) -> Dict[str, object]:
        record = {
            "kind": self.kind, "design": self.design, "cycles": self.cycles,
            "seed": self.seed, "lanes": self.lanes, "collapse": self.collapse,
            "ir_passes": self.ir_passes, "engine": self.engine,
            "design_kwargs": dict(self.design_kwargs),
        }
        if self.span_context is not None:
            record["span_context"] = dict(self.span_context)
        return record

    def cache_spec(self) -> Dict[str, object]:
        """The artifact-cache identity of this job's synthesized netlist."""
        return {
            "design": self.design,
            "design_kwargs": dict(self.design_kwargs),
            "ir_passes": self.ir_passes,
            "engine": self.engine,
        }

    def build_netlist(self, cache: Optional[ArtifactCache] = None):
        """Synthesize (or cache-load) the netlist this job targets."""
        if self.engine != "gate":
            raise RunnerError(
                f"runner jobs execute on the gate engine, not "
                f"{self.engine!r}"
            )
        build = lambda: resolve_design(self.design)(  # noqa: E731
            ir_passes=self.ir_passes, **self.design_kwargs)
        if cache is None:
            return build()
        return cache.get_or_build(artifact_key(self.cache_spec()), build)

    def make_campaign(self, netlist) -> FaultCampaign:
        """The full (unsharded) campaign — one collapse, many shards."""
        stimuli = random_stimulus(netlist, self.cycles, seed=self.seed)
        return FaultCampaign(netlist, stimuli, collapse=self.collapse,
                             lanes=self.lanes)

    def run_serial(self, netlist) -> CampaignReport:
        """The single-process reference run sharded results must match."""
        return self.make_campaign(netlist).run()


@dataclass
class SweepJob:
    """A sharded stimulus sweep: one digest per independent random program."""

    design: str
    cycles: int
    items: int
    seed: int = 0
    ir_passes: bool = True
    engine: str = "gate"
    design_kwargs: Dict[str, object] = field(default_factory=dict)
    #: See :attr:`CampaignJob.span_context`.
    span_context: Optional[Dict[str, str]] = \
        field(default=None, compare=False, repr=False)

    kind = "sweep"

    def to_json(self) -> Dict[str, object]:
        record = {
            "kind": self.kind, "design": self.design, "cycles": self.cycles,
            "items": self.items, "seed": self.seed,
            "ir_passes": self.ir_passes, "engine": self.engine,
            "design_kwargs": dict(self.design_kwargs),
        }
        if self.span_context is not None:
            record["span_context"] = dict(self.span_context)
        return record

    cache_spec = CampaignJob.cache_spec
    build_netlist = CampaignJob.build_netlist

    def run_item(self, netlist, index: int) -> Dict[str, object]:
        """Replay sweep item *index* and digest its output stream.

        The item's stimulus comes from RNG stream ``derive_seed(seed,
        index)`` — a function of the item index alone, so any shard
        split reproduces it exactly.
        """
        program = random_stimulus(netlist, self.cycles, seed=self.seed,
                                  stream=index)
        sim = GateSimulator(netlist)
        outputs: List[Dict[str, int]] = []
        for pins in program:
            sim.step(pins)
            outputs.append(sim.settled_outputs())
        digest = hashlib.sha256(
            json.dumps(outputs, sort_keys=True).encode("utf-8")
        ).hexdigest()
        return {"item": index, "digest": digest, "cycles": len(program)}

    def run_serial(self, netlist) -> "SweepReport":
        """The single-process reference run sharded results must match."""
        return SweepReport(
            netlist_name=netlist.name, cycles=self.cycles, items=self.items,
            results=[self.run_item(netlist, i) for i in range(self.items)],
        )


@dataclass
class SweepReport:
    """Merged outcome of a stimulus sweep."""

    netlist_name: str
    cycles: int
    items: int
    results: List[Dict[str, object]] = field(default_factory=list)
    complete: bool = True
    skipped: int = 0

    def report(self) -> str:
        lines = [
            f"stimulus sweep {self.netlist_name}",
            f"  stimulus   : {self.cycles} cycles x {self.items} programs",
            f"  executed   : {len(self.results)} items"
            + ("" if self.complete
               else f" (partial: {self.skipped} skipped)"),
            f"  distinct   : {len({r['digest'] for r in self.results})} "
            "output signatures",
        ]
        return "\n".join(lines)


def job_from_json(record: Dict[str, object]):
    """Rebuild a job spec from its :meth:`to_json` form."""
    record = dict(record)
    kind = record.pop("kind", None)
    if kind == "campaign":
        return CampaignJob(**record)
    if kind == "sweep":
        return SweepJob(**record)
    raise RunnerError(f"unknown job kind {kind!r}")


def require_complete(report: CampaignReport, deadline: Optional[float],
                     watchdog: Optional[Watchdog]) -> CampaignReport:
    """Turn a budget-truncated shard report into a retryable timeout.

    A shard is all-or-nothing: merging partial shard results would
    depend on where the budget cut, breaking determinism.  The polling
    watchdog's graceful partial result therefore becomes a
    :class:`~repro.core.errors.WatchdogTimeout` here.
    """
    if report.complete:
        return report
    raise WatchdogTimeout(
        f"shard exceeded its deadline "
        f"({deadline if deadline is not None else '?'}s): "
        f"{report.skipped} of {report.skipped + len(report.results)} "
        "representatives unexecuted",
        budget="wall_clock",
        seconds=watchdog.elapsed() if watchdog is not None else None,
    )
