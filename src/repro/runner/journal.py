"""The write-ahead journal that makes interrupted campaigns resumable.

One JSONL record per event, appended and **fsync'd** before the runner
acts on it — a parent killed at any instant loses at most the record
being written.  The reader tolerates exactly that failure mode: a
truncated final line is dropped (and flagged), while garbage anywhere
else raises :class:`~repro.runner.errors.JournalCorrupt` — silent
mid-file damage must never masquerade as completed work.

Record kinds
------------
``meta``
    First record of a run: the job spec, the shard plan and the
    campaign denominators.  ``resume`` rebuilds the run from this —
    the stored plan is authoritative (recomputing it under different
    runner settings would orphan the completed-shard records).
``shard_done``
    One completed shard: span, attempt number and the serialized
    per-item results.
``shard_abandoned``
    A shard whose retry budget ran out, with the final error.  Resume
    treats abandoned shards as *incomplete* — a fresh invocation gets a
    fresh budget.
``run_end``
    The run finished (``complete`` says whether every shard landed).

The runner also appends advisory, *non*-fsync'd records as the run
advances — ``shard_dispatched``, ``shard_retried``, ``progress``,
``heartbeat`` — which ``python -m repro.obs tail`` follows to render a
live status panel.  :func:`load_journal` ignores them (like any
unknown kind): they never affect resume.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .errors import JournalCorrupt

JOURNAL_VERSION = 1


class Journal:
    """Append-only fsync'd JSONL writer."""

    def __init__(self, path: str):
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._handle = open(path, "a", encoding="utf-8")

    def append(self, record: Dict[str, object], sync: bool = True) -> None:
        """Write one record; ``sync=True`` forces it to disk first.

        Correctness records (``meta``, ``shard_done``, ...) must fsync —
        the runner acts on them only once they are durable.  Advisory
        progress records (``progress``, ``heartbeat``, consumed by
        ``python -m repro.obs tail``) pass ``sync=False``: losing one to
        a crash costs nothing, and fsync-per-heartbeat would dominate
        the run.
        """
        self._handle.write(json.dumps(record, default=str) + "\n")
        self._handle.flush()
        if sync:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class JournalState:
    """What a journal says happened, after :func:`load_journal`."""

    meta: Optional[Dict[str, object]] = None
    #: shard id -> its (latest) ``shard_done`` record.
    done: Dict[int, Dict[str, object]] = field(default_factory=dict)
    #: shard id -> its (latest) ``shard_abandoned`` record, only while
    #: no ``shard_done`` superseded it.
    abandoned: Dict[int, Dict[str, object]] = field(default_factory=dict)
    #: True when the final line was truncated mid-write (parent crash).
    truncated_tail: bool = False
    #: True when a ``run_end`` record with ``complete`` was seen.
    run_complete: bool = False

    def incomplete_shards(self, plan_len: int) -> List[int]:
        """Shard ids the next invocation still has to execute."""
        return [k for k in range(plan_len) if k not in self.done]


def load_journal(path: str) -> JournalState:
    """Parse a journal, tolerating only a truncated final line."""
    state = JournalState()
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            record = json.loads(stripped)
        except json.JSONDecodeError as exc:
            if lineno == len(lines):
                state.truncated_tail = True
                break
            raise JournalCorrupt(
                f"{path}:{lineno}: unreadable journal record: {exc}"
            ) from None
        kind = record.get("kind")
        if kind == "meta":
            if state.meta is None:
                state.meta = record
            elif record.get("run_id") != state.meta.get("run_id"):
                raise JournalCorrupt(
                    f"{path}:{lineno}: meta record for a different run — "
                    "journals are per-campaign, not shared"
                )
        elif kind == "shard_done":
            shard = int(record["shard"])
            state.done[shard] = record
            state.abandoned.pop(shard, None)
        elif kind == "shard_abandoned":
            shard = int(record["shard"])
            if shard not in state.done:
                state.abandoned[shard] = record
        elif kind == "run_end":
            state.run_complete = bool(record.get("complete", False))
        # Unknown kinds are tolerated: the stream is forward-compatible.
    if state.meta is None:
        raise JournalCorrupt(f"{path}: no meta record — not a runner journal")
    return state
