"""Command line interface: ``python -m repro.runner {run,resume,chaos}``.

``run``
    Execute a campaign or sweep job sharded across workers, journaled
    and resumable.  Exit 0 when every shard landed, 2 on a partial
    (degraded) report.
``resume <journal>``
    Finish an interrupted run: completed shards replay from the
    journal, only the remainder executes.
``chaos``
    The recovery self-test CI runs: serial reference, then a sharded
    run with a worker SIGKILLed and a shard hung past its deadline
    (both must be recovered, merged report byte-identical to serial),
    then a parent crash mid-run followed by a resume that re-executes
    only incomplete shards.  Exit 0 only if every property holds.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from typing import List, Optional

from ..obs.events import EventTrace
from .cache import ArtifactCache
from .chaos import ChaosPlan
from .jobs import CampaignJob, SweepJob
from .runner import RetryPolicy, ShardedRunner


def _add_runtime_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=4,
                        help="worker process count (default 4)")
    parser.add_argument("--shard-size", type=int, default=None,
                        help="work items per shard (default: auto)")
    parser.add_argument("--journal", default=None,
                        help="write-ahead journal path (enables resume)")
    parser.add_argument("--deadline", type=float, default=None,
                        help="per-shard wall-clock budget in seconds")
    parser.add_argument("--max-attempts", type=int, default=3,
                        help="attempt budget per shard (default 3)")
    parser.add_argument("--backoff-base", type=float, default=0.25,
                        help="first retry backoff in seconds (default 0.25)")
    parser.add_argument("--cache-dir", default=None,
                        help="artifact cache directory "
                             "(default $REPRO_CACHE_DIR or .repro_cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="synthesize in every process, no artifact cache")
    parser.add_argument("--events", default=None,
                        help="stream lifecycle events (JSONL) to this path; "
                             "render with 'python -m repro.obs report'")
    parser.add_argument("--capture", default=None, metavar="DIR",
                        help="land merged telemetry, events, spans and the "
                             "journal in DIR; render with 'python -m "
                             "repro.obs report DIR', follow live with "
                             "'python -m repro.obs tail DIR'")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable outcome on stdout")


def _add_job_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--design", default="hcor",
                        help="registry name or 'module:function' "
                             "(default hcor)")
    parser.add_argument("--cycles", type=int, default=40,
                        help="stimulus length in cycles (default 40)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base stimulus seed (default 0)")
    parser.add_argument("--lanes", type=int, default=64,
                        help="faults per word-parallel replay (default 64)")
    parser.add_argument("--sweep", type=int, default=None, metavar="ITEMS",
                        help="run a stimulus sweep of ITEMS programs "
                             "instead of a fault campaign")


def _make_job(args: argparse.Namespace):
    if args.sweep is not None:
        return SweepJob(design=args.design, cycles=args.cycles,
                        items=args.sweep, seed=args.seed)
    return CampaignJob(design=args.design, cycles=args.cycles,
                       seed=args.seed, lanes=args.lanes)


def _make_runner_kwargs(args: argparse.Namespace, chaos=None):
    cache = None if args.no_cache else ArtifactCache(args.cache_dir)
    events = None
    handle = None
    if args.events:
        handle = open(args.events, "w", encoding="utf-8")
        events = EventTrace(stream=handle)
    kwargs = dict(
        workers=args.workers,
        shard_size=args.shard_size,
        journal_path=args.journal,
        shard_deadline=args.deadline,
        retry=RetryPolicy(max_attempts=args.max_attempts,
                          backoff_base=args.backoff_base),
        cache=cache,
        events=events,
        capture_dir=getattr(args, "capture", None),
        chaos=chaos if chaos is not None else ChaosPlan.from_env(),
    )
    return kwargs, handle


def _print_outcome(outcome, args: argparse.Namespace) -> None:
    if args.json:
        print(json.dumps({
            "complete": outcome.report.complete,
            "stats": vars(outcome.stats),
            "abandoned": outcome.abandoned,
            "report": outcome.report.report()
            if hasattr(outcome.report, "report") else None,
        }, indent=2, default=str))
        return
    print(outcome.report.report())
    stats = outcome.stats
    print(f"  shards     : {stats.shards} "
          f"({stats.completed} run, {stats.reused} from journal, "
          f"{stats.abandoned} abandoned)")
    print(f"  recovery   : {stats.retries} retries, "
          f"{stats.worker_deaths} worker deaths, "
          f"{stats.workers_spawned} workers spawned")
    print(f"  cache      : {stats.cache_hits} hits, "
          f"{stats.cache_misses} misses")
    print(f"  wall       : {stats.wall_seconds:.2f}s")


def _cmd_run(args: argparse.Namespace) -> int:
    kwargs, handle = _make_runner_kwargs(args)
    try:
        runner = ShardedRunner(_make_job(args), **kwargs)
        outcome = runner.run()
    finally:
        if handle is not None:
            handle.close()
    _print_outcome(outcome, args)
    return 0 if outcome.report.complete else 2


def _cmd_resume(args: argparse.Namespace) -> int:
    kwargs, handle = _make_runner_kwargs(args)
    kwargs.pop("journal_path", None)
    kwargs.pop("shard_size", None)
    try:
        runner = ShardedRunner.resume(args.journal_file, **kwargs)
        outcome = runner.run()
    finally:
        if handle is not None:
            handle.close()
    _print_outcome(outcome, args)
    return 0 if outcome.report.complete else 2


def _cmd_chaos(args: argparse.Namespace) -> int:
    failures: List[str] = []
    workdir = args.workdir or tempfile.mkdtemp(prefix="repro_chaos_")
    os.makedirs(workdir, exist_ok=True)
    cache = ArtifactCache(os.path.join(workdir, "cache"))
    job = _make_job(args)

    print(f"[chaos] serial reference ({args.design}, {args.cycles} cycles)")
    netlist = job.build_netlist(cache)
    serial = job.run_serial(netlist)

    # Phase A: worker kill + shard hang, recovered within one run, the
    # whole thing traced and captured (telemetry/events/spans/journal).
    plan = ChaosPlan(kill_shard=1, hang_shard=2, hang_seconds=3600.0)
    capture_a = os.path.join(workdir, "capture")
    events_path = args.events or os.path.join(workdir, "chaos_events.jsonl")
    with open(events_path, "w", encoding="utf-8") as handle:
        runner = ShardedRunner(
            job, workers=args.workers, capture_dir=capture_a,
            shard_deadline=args.deadline, cache=cache, chaos=plan,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.05),
            events=EventTrace(stream=handle),
        )
        outcome = runner.run()
    stats = outcome.stats
    print(f"[chaos] phase A: {stats.worker_deaths} worker deaths, "
          f"{stats.retries} retries, wall {stats.wall_seconds:.2f}s")
    if stats.worker_deaths < 2:
        failures.append(
            f"expected >=2 worker deaths (kill + hang-kill), saw "
            f"{stats.worker_deaths}")
    if stats.retries < 2:
        failures.append(f"expected >=2 retries, saw {stats.retries}")
    if outcome.report != serial:
        failures.append("phase A merged report != serial report")
    if outcome.report.report() != serial.report():
        failures.append("phase A rendered report not byte-identical")
    for name in ("metrics.json", "events.jsonl", "spans.jsonl",
                 "journal.jsonl"):
        if not os.path.isfile(os.path.join(capture_a, name)):
            failures.append(f"capture dir missing {name}")
    spans_path = os.path.join(capture_a, "spans.jsonl")
    if os.path.isfile(spans_path):
        from ..obs.spans import read_spans
        spans = read_spans(spans_path)
        if not any(s.get("status") == "failed" for s in spans):
            failures.append(
                "no failed span recorded for the killed/hung workers")
        own = {s["span"] for s in spans}
        if not any(s.get("parent") in own and s["name"].startswith("shard")
                   for s in spans):
            failures.append(
                "no worker shard span nests under the parent trace")

    # Phase B: parent killed mid-run (in a subprocess — the chaos knob
    # calls os._exit), then resume finishes only the remainder.
    journal_b = os.path.join(workdir, "chaos_b.jsonl")
    exit_after = 2
    env = dict(os.environ)
    env["REPRO_CHAOS"] = json.dumps({"parent_exit_after": exit_after})
    src_dir = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    command = [
        sys.executable, "-m", "repro.runner", "run",
        "--design", args.design, "--cycles", str(args.cycles),
        "--seed", str(args.seed), "--lanes", str(args.lanes),
        "--workers", str(args.workers), "--journal", journal_b,
        "--cache-dir", cache.root,
    ]
    if args.sweep is not None:
        command += ["--sweep", str(args.sweep)]
    proc = subprocess.run(command, env=env, capture_output=True, text=True)
    if proc.returncode != 3:
        failures.append(
            f"chaos parent was supposed to _exit(3), got rc={proc.returncode}"
            f"\n{proc.stderr[-2000:]}")
    resumed = ShardedRunner.resume(
        journal_b, workers=args.workers, cache=cache,
        shard_deadline=args.deadline,
    )
    outcome_b = resumed.run()
    print(f"[chaos] phase B: resumed with {outcome_b.stats.reused} shards "
          f"from the journal, {outcome_b.stats.completed} re-executed")
    if outcome_b.stats.reused < exit_after:
        failures.append(
            f"resume replayed {outcome_b.stats.reused} shards from the "
            f"journal, expected >= {exit_after}")
    if outcome_b.stats.completed + outcome_b.stats.reused \
            != outcome_b.stats.shards:
        failures.append("resume did not account for every shard")
    if outcome_b.report != serial:
        failures.append("phase B resumed report != serial report")

    if failures:
        print("[chaos] FAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"[chaos] PASS — merged reports byte-identical to serial; "
          f"capture at {capture_a}, journal at {journal_b}, "
          f"events at {events_path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description="fault-tolerant sharded campaign runner",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="execute a sharded job")
    _add_job_args(run)
    _add_runtime_args(run)
    run.set_defaults(func=_cmd_run)

    resume = commands.add_parser(
        "resume", help="finish an interrupted run from its journal")
    resume.add_argument("journal_file", help="journal written by 'run'")
    _add_runtime_args(resume)
    resume.set_defaults(func=_cmd_resume)

    chaos = commands.add_parser(
        "chaos", help="recovery self-test (kill, hang, parent crash)")
    _add_job_args(chaos)
    chaos.add_argument("--workers", type=int, default=4)
    chaos.add_argument("--deadline", type=float, default=6.0,
                       help="per-shard deadline the hung shard must blow")
    chaos.add_argument("--workdir", default=None,
                       help="where journals/cache/events land "
                            "(default: temp dir)")
    chaos.add_argument("--events", default=None)
    chaos.set_defaults(func=_cmd_chaos)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
