"""Worker process entry point: execute shards until told to stop.

A worker is deliberately dumb: it rebuilds the job from its JSON spec
(netlist via the artifact cache, fault collapse once at start-up), then
loops on its pipe executing ``("run", shard, start, stop, attempt,
deadline)`` commands.  All policy — retries, backoff, reassignment —
lives in the parent; the worker's only contract is that every command
gets exactly one reply, ``("done", ...)`` or ``("error", ...)``, unless
the process dies, which the parent detects by liveness.

Per-shard deadlines run through a :class:`~repro.verify.guard.Watchdog`
threaded into the campaign; a budget-truncated shard is converted into
a retryable :class:`~repro.core.errors.WatchdogTimeout` (shards are
all-or-nothing — see :func:`repro.runner.jobs.require_complete`).
"""

from __future__ import annotations

import os
from typing import Optional

from ..verify.guard import Watchdog
from .cache import ArtifactCache
from .chaos import ChaosPlan
from .errors import describe_error
from .jobs import (
    CampaignJob,
    SweepJob,
    job_from_json,
    require_complete,
    result_to_json,
)


def _run_campaign_shard(campaign, start: int, stop: int,
                        deadline: Optional[float]):
    watchdog = None
    if deadline is not None:
        watchdog = Watchdog(max_seconds=deadline, check_every=4)
    campaign.watchdog = watchdog
    report = campaign.run_shard(start, stop)
    require_complete(report, deadline, watchdog)
    return [result_to_json(r) for r in report.results]


def _run_sweep_shard(job: SweepJob, netlist, start: int, stop: int,
                     deadline: Optional[float]):
    watchdog = Watchdog(max_seconds=deadline).start() \
        if deadline is not None else None
    results = []
    for index in range(start, stop):
        if watchdog is not None and watchdog.expired():
            from ..core.errors import WatchdogTimeout
            raise WatchdogTimeout(
                f"sweep shard exceeded its deadline ({deadline}s) after "
                f"{index - start} of {stop - start} items",
                budget="wall_clock", seconds=watchdog.elapsed(),
            )
        results.append(job.run_item(netlist, index))
    return results


def worker_main(conn, worker_id: str, job_json: dict,
                cache_dir: Optional[str], chaos_json: Optional[dict]) -> None:
    """Process target: initialize once, then serve shard commands."""
    chaos = ChaosPlan.from_json(chaos_json)
    try:
        job = job_from_json(job_json)
        cache = ArtifactCache(cache_dir) if cache_dir else None
        netlist = job.build_netlist(cache)
        campaign = None
        if isinstance(job, CampaignJob):
            campaign = job.make_campaign(netlist)
    except BaseException as exc:  # init failures are fatal, but reported
        try:
            conn.send(("init_error", worker_id, describe_error(exc)))
        except (BrokenPipeError, EOFError, OSError):
            pass
        return
    conn.send(("ready", worker_id))
    parent_pid = os.getppid()
    while True:
        try:
            # Sibling workers hold forked copies of each other's pipe
            # ends, so EOF alone cannot signal parent death: poll, and
            # exit when reparented (orphaned by a parent crash).  An
            # orphan that lingered would also hold the parent's
            # stdout/stderr open, wedging any harness capturing them.
            while not conn.poll(1.0):
                if os.getppid() != parent_pid:
                    return
            message = conn.recv()
        except (EOFError, OSError):
            return  # parent is gone; nothing left to serve
        if message[0] == "stop":
            return
        _, shard_id, start, stop, attempt, deadline = message
        try:
            chaos.before_shard(shard_id, attempt)
            if campaign is not None:
                payload = _run_campaign_shard(campaign, start, stop, deadline)
            else:
                payload = _run_sweep_shard(job, netlist, start, stop,
                                           deadline)
            reply = ("done", shard_id, payload)
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:
            reply = ("error", shard_id, describe_error(exc))
        try:
            conn.send(reply)
        except (BrokenPipeError, EOFError, OSError):
            return
