"""Worker process entry point: execute shards until told to stop.

A worker is deliberately dumb: it rebuilds the job from its JSON spec
(netlist via the artifact cache, fault collapse once at start-up), then
loops on its pipe executing ``("run", shard, start, stop, attempt,
deadline)`` commands.  All policy — retries, backoff, reassignment —
lives in the parent; the worker's only contract is that every command
gets exactly one reply, ``("done", ...)`` or ``("error", ...)``, unless
the process dies, which the parent detects by liveness.

Observability rides the same pipe.  When the job spec carries a
``span_context``, the worker opens a
:class:`~repro.obs.spans.SpanTracer` *continued from* the parent's
trace: each shard runs inside its own span (marked ``failed`` on
error), and closed spans ship back in the reply's trailing ``extra``
dict alongside the shard's telemetry fragment — a fresh
:class:`~repro.obs.Capture` per attempt, so the fragment is a pure
function of the shard's contents and the merged campaign telemetry is
byte-identical whatever the retry history.  Throttled ``("progress",
shard, done, total)`` messages stream mid-shard completion counts for
the parent to journal (``python -m repro.obs tail`` renders them).

Per-shard deadlines run through a :class:`~repro.verify.guard.Watchdog`
threaded into the campaign; a budget-truncated shard is converted into
a retryable :class:`~repro.core.errors.WatchdogTimeout` (shards are
all-or-nothing — see :func:`repro.runner.jobs.require_complete`).
"""

from __future__ import annotations

import os
import time
from typing import Callable, Optional

from ..obs.capture import Capture
from ..obs.spans import SpanTracer
from ..verify.guard import Watchdog
from .cache import ArtifactCache
from .chaos import ChaosPlan
from .errors import describe_error
from .jobs import (
    CampaignJob,
    SweepJob,
    job_from_json,
    require_complete,
    result_to_json,
)

#: Minimum seconds between two progress messages for one shard.
PROGRESS_INTERVAL = 0.2

#: Per-shard framing kinds excluded from the telemetry fragment: their
#: counts scale with the shard plan (one per ``run_shard`` call), not
#: with the campaign's content, and would break the byte-identity of
#: the merged telemetry across worker counts.
FRAMING_KINDS = ("campaign_start", "campaign_end")


def _shard_capture() -> Capture:
    """The per-attempt telemetry fragment collector.

    Activity/FSM stay off — a fault campaign drives the gate engine
    directly — but the event stream is on, so per-fault events become
    deterministic event-kind counts in the merged campaign view.
    """
    return Capture(activity=False, fsm=False, events=True, profile=False)


def _fragment(capture: Capture) -> dict:
    """The shard's telemetry fragment: ``as_dict`` minus shard framing."""
    fragment = capture.as_dict()
    events = fragment.get("events") or {}
    fragment["events"] = {kind: count for kind, count in events.items()
                          if kind not in FRAMING_KINDS}
    return fragment


def _run_campaign_shard(campaign, start: int, stop: int,
                        deadline: Optional[float], capture: Capture,
                        progress: Optional[Callable[[int, int], None]]):
    watchdog = None
    if deadline is not None:
        watchdog = Watchdog(max_seconds=deadline, check_every=4)
    campaign.watchdog = watchdog
    campaign.obs = capture
    campaign.progress = progress
    try:
        report = campaign.run_shard(start, stop)
    finally:
        campaign.obs = None
        campaign.progress = None
    require_complete(report, deadline, watchdog)
    detected = report.detected()
    metrics = capture.metrics
    metrics.counter("campaign/representatives").inc(len(report.results))
    metrics.counter("campaign/detected").inc(len(detected))
    metrics.counter("campaign/detected_weight").inc(
        sum(r.class_size for r in detected))
    return [result_to_json(r) for r in report.results]


def _run_sweep_shard(job: SweepJob, netlist, start: int, stop: int,
                     deadline: Optional[float], capture: Capture,
                     progress: Optional[Callable[[int, int], None]]):
    watchdog = Watchdog(max_seconds=deadline).start() \
        if deadline is not None else None
    results = []
    total = stop - start
    for index in range(start, stop):
        if watchdog is not None and watchdog.expired():
            from ..core.errors import WatchdogTimeout
            raise WatchdogTimeout(
                f"sweep shard exceeded its deadline ({deadline}s) after "
                f"{index - start} of {stop - start} items",
                budget="wall_clock", seconds=watchdog.elapsed(),
            )
        results.append(job.run_item(netlist, index))
        capture.event("sweep_item", item=index,
                      digest=results[-1]["digest"])
        if progress is not None:
            progress(index - start + 1, total)
    capture.metrics.counter("sweep/items").inc(len(results))
    return results


def _progress_sender(conn, shard_id: int,
                     clock: Callable[[], float] = time.monotonic
                     ) -> Callable[[int, int], None]:
    """A throttled ``fn(done, total)`` streaming progress to the parent.

    Send failures are swallowed — if the parent is gone the main loop
    notices on the reply send; progress must never fail a shard.
    """
    last = [0.0]

    def send(done: int, total: int) -> None:
        now = clock()
        if done < total and now - last[0] < PROGRESS_INTERVAL:
            return
        last[0] = now
        try:
            conn.send(("progress", shard_id, done, total))
        except (BrokenPipeError, EOFError, OSError):
            pass

    return send


def worker_main(conn, worker_id: str, job_json: dict,
                cache_dir: Optional[str], chaos_json: Optional[dict]) -> None:
    """Process target: initialize once, then serve shard commands."""
    chaos = ChaosPlan.from_json(chaos_json)
    tracer = SpanTracer(enabled=bool(job_json.get("span_context")),
                        parent=job_json.get("span_context"))
    try:
        with tracer.span("worker_init", worker=worker_id):
            job = job_from_json(job_json)
            cache = ArtifactCache(cache_dir) if cache_dir else None
            netlist = job.build_netlist(cache)
            campaign = None
            if isinstance(job, CampaignJob):
                campaign = job.make_campaign(netlist)
    except BaseException as exc:  # init failures are fatal, but reported
        try:
            conn.send(("init_error", worker_id, describe_error(exc)))
        except (BrokenPipeError, EOFError, OSError):
            pass
        return
    conn.send(("ready", worker_id))
    parent_pid = os.getppid()
    while True:
        try:
            # Sibling workers hold forked copies of each other's pipe
            # ends, so EOF alone cannot signal parent death: poll, and
            # exit when reparented (orphaned by a parent crash).  An
            # orphan that lingered would also hold the parent's
            # stdout/stderr open, wedging any harness capturing them.
            while not conn.poll(1.0):
                if os.getppid() != parent_pid:
                    return
            message = conn.recv()
        except (EOFError, OSError):
            return  # parent is gone; nothing left to serve
        if message[0] == "stop":
            return
        _, shard_id, start, stop, attempt, deadline = message
        capture = _shard_capture()
        progress = _progress_sender(conn, shard_id)
        try:
            with tracer.span(f"shard {shard_id}", worker=worker_id,
                             shard=shard_id, attempt=attempt,
                             items=stop - start):
                chaos.before_shard(shard_id, attempt)
                if campaign is not None:
                    payload = _run_campaign_shard(
                        campaign, start, stop, deadline, capture, progress)
                else:
                    payload = _run_sweep_shard(
                        job, netlist, start, stop, deadline, capture,
                        progress)
            reply = ("done", shard_id, payload,
                     {"spans": tracer.drain(),
                      "telemetry": _fragment(capture)})
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:
            # The failed shard span still ships: the parent's trace
            # shows the attempt even though its telemetry is discarded.
            reply = ("error", shard_id, describe_error(exc),
                     {"spans": tracer.drain()})
        try:
            conn.send(reply)
        except (BrokenPipeError, EOFError, OSError):
            return
