"""Design registry: name -> a callable that synthesizes a netlist.

Workers are separate processes, so a job cannot carry a live netlist or
a closure — it carries a *design spec string* every process resolves
identically:

* a registry name (``"hcor"``, ``"and2"``) for the built-in reference
  designs, or
* a dotted path ``"package.module:function"`` naming any importable
  callable that returns a :class:`~repro.synth.netlist.Netlist`.

Builders accept ``ir_passes`` (threaded from the job spec, part of the
artifact-cache key) plus the job's ``design_kwargs``.
"""

from __future__ import annotations

import importlib
from typing import Callable, Dict

from .errors import RunnerError


def build_hcor_netlist(ir_passes: bool = True, **kwargs):
    """The synthesized DECT header-correlator netlist (Table 1 design)."""
    from ..designs.hcor import build_hcor
    from ..synth.flow import synthesize_process

    design = build_hcor(**kwargs)
    return synthesize_process(design.process, ir_passes=ir_passes).netlist


def build_and2_netlist(ir_passes: bool = True, **kwargs):
    """``y = a & b`` — the smallest useful runner smoke target."""
    from ..synth.gates import GateKind
    from ..synth.netlist import Netlist

    nl = Netlist("and2")
    a = nl.add_input("a", 1)
    b = nl.add_input("b", 1)
    y = nl.add(GateKind.AND2, [a[0], b[0]])
    nl.set_output("y", [y])
    return nl


_BUILTIN: Dict[str, Callable] = {
    "hcor": build_hcor_netlist,
    "and2": build_and2_netlist,
}


def resolve_design(design: str) -> Callable:
    """The builder callable a design spec string names."""
    if ":" in design:
        module_name, _, attr = design.partition(":")
        try:
            module = importlib.import_module(module_name)
        except ImportError as exc:
            raise RunnerError(
                f"design spec {design!r}: cannot import {module_name!r} "
                f"({exc})"
            ) from None
        builder = getattr(module, attr, None)
        if not callable(builder):
            raise RunnerError(
                f"design spec {design!r}: {module_name}.{attr} is not a "
                "callable netlist builder"
            )
        return builder
    builder = _BUILTIN.get(design)
    if builder is None:
        raise RunnerError(
            f"unknown design {design!r}; built-ins: "
            f"{', '.join(sorted(_BUILTIN))} (or use 'module:function')"
        )
    return builder
