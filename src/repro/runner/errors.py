"""Runner-specific errors and the wire form of worker failures.

The runner's retry decisions are taxonomy-driven (see
:func:`repro.core.errors.is_transient`): a worker ships a structured
:func:`describe_error` record over its pipe — type, message and the
transient classification *computed where the exception type is known* —
so the parent never pattern-matches on message strings, and never needs
the worker's exception class importable.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.errors import ReproError, TransientError, is_transient


class RunnerError(ReproError):
    """The sharded runner itself could not proceed (bad plan, bad journal)."""


class WorkerCrash(TransientError, RunnerError):
    """A worker process died without reporting a result.

    Covers kill -9, segfaults and broken pipes.  Transient: the shard
    the worker held is re-dispatched to a fresh worker.
    """

    def __init__(self, message: str, *, worker: Optional[str] = None,
                 shard: Optional[int] = None,
                 exitcode: Optional[int] = None):
        super().__init__(message)
        self.worker = worker
        self.shard = shard
        self.exitcode = exitcode


class JournalCorrupt(RunnerError):
    """A journal record (other than a truncated final line) is unreadable."""


def describe_error(exc: BaseException) -> Dict[str, object]:
    """The JSON-safe wire form of an exception, for pipes and journals."""
    return {
        "type": f"{type(exc).__module__}.{type(exc).__qualname__}",
        "message": str(exc),
        "transient": is_transient(exc),
    }
