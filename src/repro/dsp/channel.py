"""Multipath radio channel model (Fig. 1: "multipath" on the radio link).

The paper's motivation: the DECT base-station transceiver must equalize
multi-path distortion introduced in the radio link.  This module provides
the synthetic substitute for the real RF link: a complex FIR multipath
channel with configurable delay spread, plus AWGN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np


@dataclass
class MultipathChannel:
    """A tapped-delay-line channel: sum of delayed, weighted echoes.

    ``taps[k]`` is the complex gain of the echo delayed by ``delays[k]``
    samples.  The canonical DECT indoor profile is a strong direct path
    plus echoes within ~200 ns (a fraction of the 868 ns symbol).
    """

    taps: Sequence[complex]
    delays: Sequence[int]

    def __post_init__(self) -> None:
        if len(self.taps) != len(self.delays):
            raise ValueError("taps and delays must pair up")

    @property
    def max_delay(self) -> int:
        return max(self.delays, default=0)

    def impulse_response(self) -> np.ndarray:
        """Dense complex FIR impulse response."""
        h = np.zeros(self.max_delay + 1, dtype=complex)
        for gain, delay in zip(self.taps, self.delays):
            h[delay] += gain
        return h

    def apply(self, samples: np.ndarray,
              rng: Optional[np.random.Generator] = None,
              snr_db: Optional[float] = None) -> np.ndarray:
        """Convolve with the channel and optionally add complex AWGN."""
        out = np.convolve(np.asarray(samples, dtype=complex),
                          self.impulse_response())[:len(samples)]
        if snr_db is not None:
            if rng is None:
                rng = np.random.default_rng()
            power = float(np.mean(np.abs(out) ** 2))
            noise_power = power / (10.0 ** (snr_db / 10.0))
            noise = rng.normal(size=len(out)) + 1j * rng.normal(size=len(out))
            out = out + noise * np.sqrt(noise_power / 2.0)
        return out


def ideal_channel() -> MultipathChannel:
    """A distortion-free channel."""
    return MultipathChannel(taps=[1.0 + 0j], delays=[0])


def indoor_channel(samples_per_symbol: int = 8,
                   echo_gain: float = 0.4,
                   echo_delay_symbols: float = 0.25,
                   second_echo_gain: float = 0.2) -> MultipathChannel:
    """A typical DECT indoor profile: direct path + two in-symbol echoes."""
    delay1 = max(1, int(round(echo_delay_symbols * samples_per_symbol)))
    delay2 = 2 * delay1
    return MultipathChannel(
        taps=[1.0 + 0j, echo_gain * np.exp(1j * 0.7),
              second_echo_gain * np.exp(-1j * 1.9)],
        delays=[0, delay1, delay2],
    )


def severe_channel(samples_per_symbol: int = 8) -> MultipathChannel:
    """A worst-case profile: strong echoes at one and two symbol periods.

    Echoes at symbol spacing maximally confuse a symbol-differential
    discriminator — this is the profile that makes the equalizer earn
    its 152 multiplies per symbol.
    """
    return MultipathChannel(
        taps=[1.0 + 0j, 0.65 * np.exp(1j * 2.0), 0.35 * np.exp(-1j * 0.5)],
        delays=[0, samples_per_symbol, 2 * samples_per_symbol],
    )
