"""Header correlation reference model (the HCOR processor's algorithm).

The HCOR design of Table 1 hunts for the S-field sync word in the
incoming soft-symbol stream: a sliding correlation of the last N soft
symbols against the known +/-1 sync pattern, peak-detected against a
threshold to produce burst timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .dect import SYNC_RFP, nrz


@dataclass
class CorrelationHit:
    """A detected sync word."""

    position: int   # index of the symbol *after* the sync word
    score: float    # correlation magnitude at the peak


def correlate(soft_symbols: Sequence[float],
              pattern_bits: Sequence[int] = SYNC_RFP) -> np.ndarray:
    """Sliding correlation of the stream against the sync pattern.

    ``result[k]`` is the correlation of the pattern with the window
    *ending* at symbol k (so a hit at k means the sync word's last bit is
    at k).
    """
    soft = np.asarray(soft_symbols, dtype=float)
    pattern = nrz(pattern_bits)
    n = len(pattern)
    result = np.zeros(len(soft))
    if len(soft) < n:
        return result
    window = np.convolve(soft, pattern[::-1], mode="full")
    result[n - 1:] = window[n - 1:len(soft)]
    return result


def detect(soft_symbols: Sequence[float],
           pattern_bits: Sequence[int] = SYNC_RFP,
           threshold: float = 0.65) -> Optional[CorrelationHit]:
    """First position where correlation exceeds threshold * max score."""
    pattern_len = len(pattern_bits)
    scores = correlate(soft_symbols, pattern_bits)
    limit = threshold * pattern_len
    for index in range(pattern_len - 1, len(scores)):
        if scores[index] >= limit:
            return CorrelationHit(position=index + 1,
                                  score=float(scores[index]))
    return None


def detect_all(soft_symbols: Sequence[float],
               pattern_bits: Sequence[int] = SYNC_RFP,
               threshold: float = 0.65,
               dead_time: Optional[int] = None) -> List[CorrelationHit]:
    """Every detection, applying a post-hit dead time (default: pattern)."""
    pattern_len = len(pattern_bits)
    if dead_time is None:
        dead_time = pattern_len
    scores = correlate(soft_symbols, pattern_bits)
    limit = threshold * pattern_len
    hits: List[CorrelationHit] = []
    index = pattern_len - 1
    while index < len(scores):
        if scores[index] >= limit:
            hits.append(CorrelationHit(position=index + 1,
                                       score=float(scores[index])))
            index += dead_time
        else:
            index += 1
    return hits
