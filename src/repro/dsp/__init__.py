"""Algorithm-level (Matlab-equivalent) reference models for the DECT
driver design: burst structure, GFSK modem, multipath channel, equalizer
and header correlator.  These are the "high level design environment"
descriptions of the paper's section 1, against which the bit-true
hardware descriptions in :mod:`repro.designs` are refined and verified.
"""

from .channel import MultipathChannel, ideal_channel, indoor_channel, severe_channel
from .correlator import CorrelationHit, correlate, detect, detect_all
from .dect import (
    A_FIELD_BITS,
    B_FIELD_BITS,
    D_FIELD_BITS,
    LATENCY_BUDGET_SECONDS,
    LATENCY_BUDGET_SYMBOLS,
    PREAMBLE_RFP,
    SLOT_BITS,
    SLOTS_PER_FRAME,
    SYMBOL_RATE,
    SYNC_PP,
    SYNC_RFP,
    Burst,
    build_burst,
    check_a_field,
    crc_bits,
    nrz,
    random_payloads,
    rcrc,
    s_field,
    to_bits,
)
from .equalizer import (
    ComplexLmsEqualizer,
    DecisionFeedbackEqualizer,
    DfeConfig,
    bit_error_rate,
    equalize_burst,
)
from .modem import BT, MODULATION_INDEX, demodulate, discriminate, gaussian_pulse, modulate

__all__ = [
    "A_FIELD_BITS",
    "B_FIELD_BITS",
    "BT",
    "Burst",
    "ComplexLmsEqualizer",
    "CorrelationHit",
    "D_FIELD_BITS",
    "DecisionFeedbackEqualizer",
    "DfeConfig",
    "LATENCY_BUDGET_SECONDS",
    "LATENCY_BUDGET_SYMBOLS",
    "MODULATION_INDEX",
    "MultipathChannel",
    "PREAMBLE_RFP",
    "SLOT_BITS",
    "SLOTS_PER_FRAME",
    "SYMBOL_RATE",
    "SYNC_PP",
    "SYNC_RFP",
    "bit_error_rate",
    "build_burst",
    "check_a_field",
    "correlate",
    "crc_bits",
    "demodulate",
    "detect",
    "detect_all",
    "discriminate",
    "equalize_burst",
    "gaussian_pulse",
    "ideal_channel",
    "indoor_channel",
    "modulate",
    "nrz",
    "random_payloads",
    "rcrc",
    "s_field",
    "severe_channel",
    "to_bits",
]
