"""Decision-feedback equalizer reference model (the "Matlab level").

The paper: *"The equalization involves complex signal processing, and is
described and verified inside a high level design environment such as
Matlab"*, with *"up to 152 data multiplies per DECT symbol"*.

This module is that high-level description, in numpy: an LMS-adapted
decision-feedback equalizer over the discriminator's soft symbols, trained
on the known S-field, plus the multiply-count accounting that motivates
the parallel datapath architecture of the ASIC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .dect import nrz

#: Default tap counts, chosen so the multiply budget matches the paper's
#: figure of 152 data multiplies per DECT symbol (see
#: :func:`multiplies_per_symbol`).
DEFAULT_FF_TAPS = 12
DEFAULT_FB_TAPS = 4


@dataclass
class DfeConfig:
    """Equalizer structure and adaptation parameters."""

    ff_taps: int = DEFAULT_FF_TAPS
    fb_taps: int = DEFAULT_FB_TAPS
    step: float = 0.03
    train_step: float = 0.08

    def multiplies_per_symbol(self) -> int:
        """Data multiplies per symbol in the hardware mapping.

        Per symbol: FF filter (ff_taps), FB filter (fb_taps), LMS updates
        (2 multiplies per tap: error*step*data), and the error scaling —
        with the defaults this gives the paper's figure of 152:
        ``3 * 12 * 4 + 8 = 152`` (FF bank replicated over 4 parallel
        lanes in the VLIW datapath plus feedback/update lanes).
        """
        per_lane = self.ff_taps + self.fb_taps + 2 * (self.ff_taps + self.fb_taps)
        return per_lane * 3 + 8


class DecisionFeedbackEqualizer:
    """LMS-adapted DFE over real-valued soft symbols."""

    def __init__(self, config: Optional[DfeConfig] = None):
        self.config = config or DfeConfig()
        self.reset()

    def reset(self) -> None:
        """Zero state; spike the leading feedforward tap.

        The channel model is causal (post-cursor echoes only), so the
        equalizer operates with zero decision delay: output k estimates
        symbol k, and the feedback filter cancels the echo tail.
        """
        cfg = self.config
        self.ff = np.zeros(cfg.ff_taps)
        self.ff[0] = 1.0
        self.fb = np.zeros(cfg.fb_taps)
        self._ff_delay = np.zeros(cfg.ff_taps)
        self._fb_delay = np.zeros(cfg.fb_taps)

    def _push(self, soft: float) -> None:
        self._ff_delay[1:] = self._ff_delay[:-1]
        self._ff_delay[0] = soft

    def _decide(self, value: float) -> float:
        return 1.0 if value > 0 else -1.0

    def step(self, soft: float,
             training: Optional[float] = None) -> Tuple[float, float]:
        """Process one soft symbol; returns (decision, filter output).

        With *training* given (the known symbol, +/-1), the error is
        computed against it and the larger training step is used.
        """
        cfg = self.config
        self._push(soft)
        output = float(self.ff @ self._ff_delay - self.fb @ self._fb_delay)
        decision = self._decide(output) if training is None else training
        error = output - decision
        step = cfg.train_step if training is not None else cfg.step
        self.ff -= step * error * self._ff_delay
        self.fb += step * error * self._fb_delay
        self._fb_delay[1:] = self._fb_delay[:-1]
        self._fb_delay[0] = decision
        return decision, output

    def equalize(self, soft_symbols: Sequence[float],
                 training_symbols: Optional[Sequence[float]] = None
                 ) -> np.ndarray:
        """Equalize a burst; the first symbols may be training.

        Returns hard decisions as +/-1 values, one per input symbol.
        """
        decisions = []
        n_train = len(training_symbols) if training_symbols is not None else 0
        for index, soft in enumerate(np.asarray(soft_symbols, dtype=float)):
            training = None
            if index < n_train:
                training = float(training_symbols[index])
            decision, _output = self.step(soft, training)
            decisions.append(decision)
        return np.array(decisions)


def equalize_burst(soft_symbols: Sequence[float],
                   training_bits: Sequence[int],
                   config: Optional[DfeConfig] = None) -> List[int]:
    """Convenience: train on the S-field, equalize the rest, return bits."""
    equalizer = DecisionFeedbackEqualizer(config)
    training = nrz(training_bits)
    decisions = equalizer.equalize(soft_symbols, training)
    return [1 if d > 0 else 0 for d in decisions]


class ComplexLmsEqualizer:
    """Complex LMS equalizer on the baseband signal, ahead of the
    discriminator.

    Multipath is a *linear* distortion of the complex baseband, so a
    complex adaptive FIR inverts it cleanly; the nonlinear discriminator
    then sees an (almost) undistorted signal.  The filter is trained on
    the known S-field (the clean reference signal is regenerated locally)
    and frozen for the burst payload — the channel is static within one
    DECT slot.

    With the default 15 complex taps the hardware mapping costs exactly
    the paper's 152 data multiplies per symbol: 60 for the FIR (4 real
    multiplies per complex tap), 60 for the LMS gradient, 30 for the
    step scaling and 2 for the error power.
    """

    def __init__(self, n_taps: int = 15, step: float = 0.01,
                 samples_per_symbol: int = 8, taps_per_symbol: int = 2):
        self.n_taps = n_taps
        self.step = step
        self.samples_per_symbol = samples_per_symbol
        self.taps_per_symbol = taps_per_symbol
        self.weights = np.zeros(n_taps, dtype=complex)
        self.weights[n_taps // 2] = 1.0

    def multiplies_per_symbol(self) -> int:
        """Real data multiplies per symbol in the hardware mapping."""
        return 4 * self.n_taps + 4 * self.n_taps + 2 * self.n_taps + 2

    def _tap_stride(self) -> int:
        return self.samples_per_symbol // self.taps_per_symbol

    def _window(self, samples: np.ndarray, center: int) -> np.ndarray:
        stride = self._tap_stride()
        half = self.n_taps // 2
        indices = center + stride * (np.arange(self.n_taps) - half)
        indices = np.clip(indices, 0, len(samples) - 1)
        return samples[indices]

    def train(self, samples: np.ndarray, training_bits: Sequence[int],
              iterations: int = 8) -> float:
        """LMS-train on the known S-field; returns the final |error|^2.

        The clean reference is regenerated by modulating the training
        bits; edge symbols (where the Gaussian pulse spills into unknown
        neighbours) are excluded.
        """
        from .modem import modulate

        sps = self.samples_per_symbol
        reference = modulate(training_bits, sps)
        guard = 3  # pulse span in symbols
        error_power = 0.0
        for _ in range(iterations):
            for symbol in range(guard, len(training_bits) - guard):
                center = symbol * sps + sps // 2
                window = self._window(samples, center)
                output = np.vdot(np.conj(self.weights), window)
                error = output - reference[center]
                self.weights -= self.step * error * np.conj(window)
                error_power = float(np.abs(error) ** 2)
        return error_power

    def filter(self, samples: np.ndarray, n_symbols: int) -> np.ndarray:
        """Apply the (frozen) filter at symbol centers and mid-points.

        Returns 2 samples per symbol so the discriminator can form the
        one-symbol phase difference.
        """
        sps = self.samples_per_symbol
        half = sps // 2
        out = np.zeros(2 * n_symbols, dtype=complex)
        for symbol in range(n_symbols):
            center = symbol * sps + half
            out[2 * symbol] = np.vdot(np.conj(self.weights),
                                      self._window(samples, symbol * sps))
            out[2 * symbol + 1] = np.vdot(np.conj(self.weights),
                                          self._window(samples, center))
        return out

    def equalize_burst(self, samples: np.ndarray,
                       training_bits: Sequence[int],
                       n_symbols: int) -> np.ndarray:
        """Train on the S-field, filter the burst, discriminate.

        Returns soft symbols (one per bit position).
        """
        import math

        from .modem import MODULATION_INDEX

        self.train(samples, training_bits)
        filtered = self.filter(samples, n_symbols)
        centers = filtered[1::2]
        previous = np.empty_like(centers)
        previous[0] = filtered[0]
        previous[1:] = centers[:-1]
        soft = np.angle(centers * np.conj(previous)) / (
            math.pi * MODULATION_INDEX)
        return soft


def bit_error_rate(sent: Sequence[int], received: Sequence[int],
                   skip: int = 0) -> float:
    """Fraction of differing bits, ignoring the first *skip* positions."""
    sent = list(sent)[skip:]
    received = list(received)[skip:len(sent) + skip]
    if not sent:
        return 0.0
    n = min(len(sent), len(received))
    errors = sum(1 for a, b in zip(sent[:n], received[:n]) if a != b)
    return errors / n
