"""GFSK baseband modem model (the RF front-end behind the paper's Fig. 1).

DECT uses Gaussian FSK with BT = 0.5 and a nominal modulation index of
0.5.  The transmitter shapes NRZ symbols with a Gaussian pulse, integrates
to phase and produces complex baseband samples; the receiver is the
classical limiter-discriminator: differentiate the phase and sample at
symbol centers, producing the soft symbol stream the equalizer and header
correlator consume.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from .dect import nrz

#: Gaussian filter bandwidth-time product and modulation index.
BT = 0.5
MODULATION_INDEX = 0.5


def gaussian_pulse(samples_per_symbol: int, bt: float = BT,
                   span: int = 3) -> np.ndarray:
    """The Gaussian frequency pulse, normalized to unit area."""
    # Standard GMSK pulse: difference of Q functions, approximated by a
    # sampled Gaussian convolved with a rectangular symbol window.
    n = span * samples_per_symbol
    t = (np.arange(-n, n + 1) + 0.5) / samples_per_symbol
    sigma = math.sqrt(math.log(2.0)) / (2.0 * math.pi * bt)
    gauss = np.exp(-0.5 * (t / sigma) ** 2)
    rect = np.ones(samples_per_symbol)
    pulse = np.convolve(gauss, rect)
    return pulse / pulse.sum()


def modulate(bits: Sequence[int], samples_per_symbol: int = 8,
             bt: float = BT, h: float = MODULATION_INDEX) -> np.ndarray:
    """GFSK-modulate *bits* to complex baseband samples."""
    symbols = nrz(bits)
    impulses = np.zeros(len(symbols) * samples_per_symbol)
    impulses[::samples_per_symbol] = symbols
    frequency = np.convolve(impulses, gaussian_pulse(samples_per_symbol, bt))
    phase = np.cumsum(frequency) * (math.pi * h / 1.0)
    # Trim the filter group delay so sample k*sps is symbol k's center.
    delay = (len(gaussian_pulse(samples_per_symbol, bt)) - 1) // 2
    phase = phase[delay:delay + len(impulses)]
    return np.exp(1j * phase)


def discriminate(samples: np.ndarray,
                 samples_per_symbol: int = 8) -> np.ndarray:
    """Limiter-discriminator demodulation to soft symbols.

    Returns one soft value per symbol, scaled so that an undistorted
    signal gives approximately +/-1.
    """
    samples = np.asarray(samples)
    # Phase difference over one symbol period (differential detection).
    delayed = np.empty_like(samples)
    delayed[:samples_per_symbol] = samples[0]
    delayed[samples_per_symbol:] = samples[:-samples_per_symbol]
    phase_step = np.angle(samples * np.conj(delayed))
    centers = np.arange(0, len(samples), samples_per_symbol) \
        + samples_per_symbol // 2
    centers = centers[centers < len(samples)]
    soft = phase_step[centers] / (math.pi * MODULATION_INDEX)
    return soft


def demodulate(samples: np.ndarray, n_bits: int,
               samples_per_symbol: int = 8) -> Tuple[np.ndarray, list]:
    """Full receive path: discriminator + hard decision.

    Returns (soft symbols, hard bits), truncated/padded to *n_bits*.
    """
    soft = discriminate(samples, samples_per_symbol)[:n_bits]
    hard = [1 if value > 0 else 0 for value in soft]
    return soft, hard
