"""DECT burst structure and timing (the driver application's air interface).

The transceiver ASIC of the paper processes DECT burst signals in a base
station.  This module models the parts of the DECT physical layer the
design needs: slot/frame timing, the S-field synchronization word that the
header correlator (HCOR) hunts for, the A-field R-CRC, and burst assembly
/ disassembly.

Numbers follow the DECT common interface: 1.152 Mbit/s symbol rate, 10 ms
frames of 24 slots, 480-bit slot of which a full slot carries a 32-bit
S-field, a 388-bit D-field and guard space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

#: Symbol (bit) rate of the DECT air interface, in bits per second.
SYMBOL_RATE = 1_152_000

#: Bits per full slot, S-field, A-field, B-field and D-field.
SLOT_BITS = 480
S_FIELD_BITS = 32
A_FIELD_BITS = 64
B_FIELD_BITS = 320
X_FIELD_BITS = 4
D_FIELD_BITS = A_FIELD_BITS + B_FIELD_BITS + X_FIELD_BITS  # 388

#: Slots per frame and frame duration.
SLOTS_PER_FRAME = 24
FRAME_SECONDS = 0.010

#: The S-field: 16 preamble bits + 16-bit sync word.  Fixed Part (base
#: station) transmissions use AAAAE98A; Portable Part uses 55551675.
PREAMBLE_RFP = [1, 0] * 8          # 0xAAAA msb-first
SYNC_RFP = [1, 1, 1, 0, 1, 0, 0, 1, 1, 0, 0, 0, 1, 0, 1, 0]  # 0xE98A
PREAMBLE_PP = [0, 1] * 8           # 0x5555
SYNC_PP = [0, 0, 0, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 1, 0, 1]   # 0x1675

#: The latency budget quoted in the paper: 29 DECT symbols (25.2 us).
LATENCY_BUDGET_SYMBOLS = 29
LATENCY_BUDGET_SECONDS = LATENCY_BUDGET_SYMBOLS / SYMBOL_RATE

#: A-field R-CRC generator polynomial: x^16 + x^10 + x^8 + x^7 + x^3 + 1.
RCRC_POLY = 0x10589


def s_field(base_station: bool = True) -> List[int]:
    """The 32 S-field bits (preamble + sync word)."""
    if base_station:
        return list(PREAMBLE_RFP) + list(SYNC_RFP)
    return list(PREAMBLE_PP) + list(SYNC_PP)


def rcrc(bits: Sequence[int]) -> int:
    """The 16-bit R-CRC over *bits* (MSB-first polynomial division)."""
    register = 0
    for bit in bits:
        register = (register << 1) | (int(bit) & 1)
        if register & 0x10000:
            register ^= RCRC_POLY
    for _ in range(16):
        register <<= 1
        if register & 0x10000:
            register ^= RCRC_POLY
    return register & 0xFFFF


def crc_bits(value: int, width: int = 16) -> List[int]:
    """Expand a CRC value to MSB-first bits."""
    return [(value >> (width - 1 - i)) & 1 for i in range(width)]


@dataclass
class Burst:
    """One assembled physical burst."""

    bits: List[int]
    a_field: List[int]
    b_field: List[int]

    @property
    def sync_position(self) -> int:
        """Index of the first bit after the S-field."""
        return S_FIELD_BITS


def build_burst(a_payload: Sequence[int], b_payload: Sequence[int],
                base_station: bool = True) -> Burst:
    """Assemble a full-slot burst: S-field + A-field(+CRC) + B-field + X.

    The A-field is 48 payload bits + 16 R-CRC bits; the X-field is a
    4-bit parity check over the B-field tail (simplified to the first 4
    bits of the B-field CRC here).
    """
    a_payload = [int(b) & 1 for b in a_payload]
    b_payload = [int(b) & 1 for b in b_payload]
    if len(a_payload) != A_FIELD_BITS - 16:
        raise ValueError(f"A-field payload must be {A_FIELD_BITS - 16} bits")
    if len(b_payload) != B_FIELD_BITS:
        raise ValueError(f"B-field payload must be {B_FIELD_BITS} bits")
    a_field = a_payload + crc_bits(rcrc(a_payload))
    x_field = crc_bits(rcrc(b_payload))[:X_FIELD_BITS]
    bits = s_field(base_station) + a_field + b_payload + x_field
    return Burst(bits=bits, a_field=a_field, b_field=b_payload)


def check_a_field(a_field: Sequence[int]) -> bool:
    """Verify the A-field R-CRC."""
    if len(a_field) != A_FIELD_BITS:
        return False
    payload = list(a_field[:-16])
    received = 0
    for bit in a_field[-16:]:
        received = (received << 1) | (int(bit) & 1)
    return rcrc(payload) == received


def random_payloads(rng: np.random.Generator):
    """Random A- and B-field payloads for testing."""
    a = rng.integers(0, 2, size=A_FIELD_BITS - 16).tolist()
    b = rng.integers(0, 2, size=B_FIELD_BITS).tolist()
    return a, b


def nrz(bits: Sequence[int]) -> np.ndarray:
    """Map bits {0,1} to NRZ symbols {-1,+1}."""
    return 2.0 * np.asarray(bits, dtype=float) - 1.0


def to_bits(symbols: np.ndarray) -> List[int]:
    """Hard-decide NRZ soft symbols back to bits."""
    return [1 if s > 0 else 0 for s in np.asarray(symbols)]
