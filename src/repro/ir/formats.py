"""Shared fixed-point representation helpers.

Every back-end represents fixed-point words as *signed* integers wide
enough to hold the format exactly; unsigned model formats get one extra
headroom bit.  These helpers used to live in ``hdl/vhdl.py`` and were
imported privately by the other back-ends; they are the vocabulary of
the lowered IR, so they live at the bottom of the layering now.
"""

from __future__ import annotations

from typing import Optional

from ..core.errors import CodegenError
from ..fixpt import FxFormat


def vector_width(fmt: FxFormat) -> int:
    """Bits of the signed internal representation of *fmt*."""
    return fmt.wl if fmt.signed else fmt.wl + 1


def sig_fmt(sig, error=CodegenError) -> FxFormat:
    """The signal's format, raising *error* when it has none."""
    if sig.fmt is None:
        raise error(
            f"signal {sig.name!r} has no fixed-point format; bit-true "
            "wordlengths are required for code generation/synthesis"
        )
    return sig.fmt
