"""A typed three-address IR for lowered signal-flow graphs.

The paper feeds simulation, HDL generation and synthesis from one
``gen_code()`` data structure.  This module is that shared form for the
reproduction: an :class:`IRBlock` is a list of :class:`IROp` values in
SSA/topological order, where a value id is simply the op's index in the
list.  Every op carries the binary-point position (``frac``) and the
signed-vector width of its result, so a back-end never re-derives
fixed-point alignment — the lowering (:mod:`repro.ir.lower`) has already
made every shift, quantization and mux-branch alignment explicit.

Value domains
-------------
``frac`` is an ``int`` for fixed-point values: the op's result is a raw
integer whose real value is ``raw * 2**-frac``.  ``frac is None`` marks
the float/interpreter domain (unformatted signals); only the compiled
simulator accepts such ops — HDL generation and synthesis require
formats everywhere and never see them.

Opcodes
-------
=============  =========================  =====================================
opcode         attrs                      meaning (raw domain)
=============  =========================  =====================================
``const``      ``(raw,)``                 integer literal at ``frac``
``fconst``     ``(value,)``               float literal (``frac is None``)
``read``       ``(sig,)``                 leaf read of a signal/register
``add sub``    ``()``                     operands pre-aligned to equal frac
``mul``        ``()``                     result frac = sum of operand fracs
``neg abs``    ``()``                     arithmetic; one growth bit
``shl``        ``(bits,)``                ``raw << bits`` (float: ``* 2**bits``)
``ashr``       ``(bits,)``                arithmetic ``raw >> bits``
``retag``      ``()``                     raw unchanged, frac/width re-labelled
``cmp``        ``(pyop,)``                pre-aligned compare; 0/1 at frac 0
``band bor
bxor``         ``(wl, signed)``           masked bitwise op, sign-folded
``bnot``       ``(wl, signed)``           masked bitwise invert, sign-folded
``mux``        ``()``                     args = (sel, t, f); t/f pre-aligned
``bitsel``     ``(index,)``               bit of a frac-0 value
``slice``      ``(hi, lo)``               unsigned field of a frac-0 value
``concat``     ``(widths...)``            frac-0 parts, first = most significant
``quantize``   ``(fmt,)``                 round/saturate/wrap into *fmt*
``tofloat``    ``()``                     raw at frac -> Python float
``toint``      ``()``                     float -> ``int()`` (truncation)
=============  =========================  =====================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core.errors import CodegenError
from ..fixpt import FxFormat, Overflow, Rounding
from ..fixpt.fixed import FxOverflowError

#: Opcodes whose result lives in the float/interpreter domain markers.
FLOAT_OPS = frozenset({"fconst", "tofloat"})

#: Opcodes that never deserve a temporary (already atomic references).
LEAF_OPS = frozenset({"const", "fconst", "read"})

_CMP = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class IROp:
    """One three-address operation; its value id is its block index."""

    opcode: str
    args: Tuple[int, ...] = ()
    attrs: Tuple = ()
    #: Binary-point position of the result; None = float domain.
    frac: Optional[int] = 0
    #: Signed-vector bits needed to hold the result (0 in float domain).
    width: int = 0


@dataclass(frozen=True)
class Store:
    """Commit a block value into a signal/register target.

    The lowered value already includes the quantization into the
    target's format (or a ``tofloat`` for unformatted targets), so a
    back-end only renders an assignment.
    """

    target: object  # Sig
    value: int


@dataclass
class IRBlock:
    """An SSA op list plus the stores/roots that keep it alive."""

    ops: List[IROp] = field(default_factory=list)
    stores: List[Store] = field(default_factory=list)
    #: Extra live value ids (FSM guard conditions, watched expressions).
    roots: List[int] = field(default_factory=list)
    #: Source locations (value id -> SrcLoc) of the model expressions each
    #: op was lowered from.  A side-table so op identity/CSE keys are
    #: unaffected; populated by the lowerer, dropped by the optimization
    #: passes (lint analyses run on freshly lowered, unoptimized blocks).
    locs: Dict[int, object] = field(default_factory=dict)

    def emit(self, op: IROp) -> int:
        self.ops.append(op)
        return len(self.ops) - 1

    def op_count(self) -> int:
        return len(self.ops)

    def counts(self) -> Dict[str, int]:
        """Op histogram by opcode (handy for tests and benchmarks)."""
        out: Dict[str, int] = {}
        for op in self.ops:
            out[op.opcode] = out.get(op.opcode, 0) + 1
        return out


def sign_fold(raw: int, wl: int, signed: bool) -> int:
    """Wrap *raw* into the two's-complement range of a *wl*-bit word."""
    raw &= (1 << wl) - 1
    if signed and raw >= 1 << (wl - 1):
        raw -= 1 << wl
    return raw


def quantize_raw_at(raw: int, frac: int, fmt: FxFormat) -> int:
    """Quantize a raw integer at binary point *frac* into *fmt*.

    This is the single arithmetic definition every back-end renders:
    shift to the target binary point (rounding per the format), then
    apply the overflow policy.  Raises :class:`FxOverflowError` for
    ``Overflow.ERROR`` formats when the value does not fit.
    """
    shift = frac - fmt.frac_bits
    if shift < 0:
        value = raw << -shift
    elif shift == 0:
        value = raw
    elif fmt.rounding is Rounding.ROUND:
        value = (raw + (1 << (shift - 1))) >> shift
    else:
        value = raw >> shift
    lo, hi = fmt.raw_min, fmt.raw_max
    if fmt.overflow is Overflow.SATURATE:
        return min(max(value, lo), hi)
    if fmt.overflow is Overflow.WRAP:
        return sign_fold(value, fmt.wl, fmt.signed)
    if not lo <= value <= hi:
        raise FxOverflowError(
            f"overflow quantizing raw {raw} (frac {frac}) into {fmt}: "
            f"{value} not in [{lo}, {hi}]"
        )
    return value


def execute(block: IRBlock,
            read: Callable[[object], object],
            override: Optional[Callable[[int, object], object]] = None
            ) -> Dict[int, object]:
    """Reference interpreter: evaluate every op of *block*.

    *read* maps a leaf signal to its current value — a raw integer for
    formatted signals, a Python number for unformatted ones.  Returns
    the full id -> value map so tests can check stores and roots.  This
    is the executable specification the fast back-ends are validated
    against; it is deliberately simple, not fast.

    *override*, when given, maps ``(value id, computed value)`` to the
    value actually recorded — the hook the bit-liveness soundness
    harness uses to flip claimed-dead bits of one intermediate value
    and confirm no observable moves.
    """
    values: Dict[int, object] = {}
    for index, op in enumerate(block.ops):
        a = [values[arg] for arg in op.args]
        code = op.opcode
        if code == "const" or code == "fconst":
            result = op.attrs[0]
        elif code == "read":
            result = read(op.attrs[0])
        elif code == "add":
            result = a[0] + a[1]
        elif code == "sub":
            result = a[0] - a[1]
        elif code == "mul":
            result = a[0] * a[1]
        elif code == "neg":
            result = -a[0]
        elif code == "abs":
            result = abs(a[0])
        elif code == "shl":
            bits = op.attrs[0]
            if op.frac is None:
                result = a[0] * (2.0 ** bits)
            else:
                result = a[0] << bits
        elif code == "ashr":
            result = a[0] >> op.attrs[0]
        elif code == "retag":
            result = a[0]
        elif code == "cmp":
            result = 1 if _CMP[op.attrs[0]](a[0], a[1]) else 0
        elif code in ("band", "bor", "bxor"):
            wl, signed = op.attrs
            mask = (1 << wl) - 1
            x, y = a[0] & mask, a[1] & mask
            raw = x & y if code == "band" else (
                x | y if code == "bor" else x ^ y)
            result = sign_fold(raw, wl, signed)
        elif code == "bnot":
            wl, signed = op.attrs
            result = sign_fold(~a[0], wl, signed)
        elif code == "mux":
            sel = a[0]
            taken = bool(int(sel)) if isinstance(sel, float) else bool(sel)
            result = a[1] if taken else a[2]
        elif code == "bitsel":
            result = (a[0] >> op.attrs[0]) & 1
        elif code == "slice":
            hi, lo = op.attrs
            result = (a[0] >> lo) & ((1 << (hi - lo + 1)) - 1)
        elif code == "concat":
            result = 0
            for value, width in zip(a, op.attrs):
                result = (result << width) | (value & ((1 << width) - 1))
        elif code == "quantize":
            fmt = op.attrs[0]
            src = block.ops[op.args[0]]
            if src.frac is None:
                from ..fixpt import quantize_raw

                result = quantize_raw(a[0], fmt)
            else:
                result = quantize_raw_at(a[0], src.frac, fmt)
        elif code == "tofloat":
            src = block.ops[op.args[0]]
            result = a[0] if not src.frac else a[0] * (2.0 ** -src.frac)
        elif code == "toint":
            result = int(a[0])
        else:
            raise CodegenError(f"unknown IR opcode {code!r}")
        if override is not None:
            result = override(index, result)
        values[index] = result
    return values
