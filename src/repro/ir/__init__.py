"""Typed three-address IR shared by all four back-ends.

``lower`` turns Expr DAGs / SFGs into :class:`IRBlock` values with all
fixed-point alignment explicit; ``passes`` optimizes blocks (constant
folding, algebraic simplification, CSE, DCE); the compiled simulator,
both HDL generators and the datapath synthesizer render the result.
"""

from .formats import sig_fmt, vector_width
from .lower import Lowerer, lower_assignments, lower_expr, lower_sfg
from .ops import (
    IRBlock,
    IROp,
    Store,
    execute,
    quantize_raw_at,
    sign_fold,
)
from .passes import (
    DEFAULT_PASSES,
    PassManager,
    algebraic_simplify,
    cse,
    constant_fold,
    dce,
    run_passes,
)

__all__ = [
    "DEFAULT_PASSES",
    "IRBlock",
    "IROp",
    "Lowerer",
    "PassManager",
    "Store",
    "algebraic_simplify",
    "cse",
    "constant_fold",
    "dce",
    "execute",
    "lower_assignments",
    "lower_expr",
    "lower_sfg",
    "quantize_raw_at",
    "run_passes",
    "sig_fmt",
    "sign_fold",
    "vector_width",
]
