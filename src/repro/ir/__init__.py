"""Typed three-address IR shared by all four back-ends.

``lower`` turns Expr DAGs / SFGs into :class:`IRBlock` values with all
fixed-point alignment explicit; ``passes`` optimizes blocks (constant
folding, algebraic simplification, CSE, DCE); the compiled simulator,
both HDL generators and the datapath synthesizer render the result.
"""

from .equiv import (
    Counterexample,
    EquivReport,
    PassEquivalenceError,
    VALIDATE_MODES,
    check_blocks,
    observable_srclocs,
)
from .formats import sig_fmt, vector_width
from .lower import Lowerer, lower_assignments, lower_expr, lower_sfg
from .ops import (
    IRBlock,
    IROp,
    Store,
    execute,
    quantize_raw_at,
    sign_fold,
)
from .passes import (
    AGGRESSIVE_PASSES,
    DEFAULT_PASSES,
    NARROW_PASSES,
    PIPELINES,
    PassManager,
    algebraic_simplify,
    cse,
    constant_fold,
    dce,
    narrow_bitwidth,
    resolve_pipeline,
    restructure_mux,
    run_passes,
    strength_reduce,
)

__all__ = [
    "AGGRESSIVE_PASSES",
    "Counterexample",
    "DEFAULT_PASSES",
    "NARROW_PASSES",
    "EquivReport",
    "IRBlock",
    "IROp",
    "Lowerer",
    "PIPELINES",
    "PassEquivalenceError",
    "PassManager",
    "Store",
    "VALIDATE_MODES",
    "algebraic_simplify",
    "check_blocks",
    "cse",
    "constant_fold",
    "dce",
    "execute",
    "lower_assignments",
    "lower_expr",
    "lower_sfg",
    "narrow_bitwidth",
    "observable_srclocs",
    "quantize_raw_at",
    "resolve_pipeline",
    "restructure_mux",
    "run_passes",
    "sig_fmt",
    "sign_fold",
    "strength_reduce",
    "vector_width",
]
