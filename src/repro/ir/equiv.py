"""Translation validation: prove an optimized IRBlock ≡ its raw source.

Every optimization pass claims "same observables, fewer ops".  This
module checks the claim per block pair, without trusting the pass:

* **Exhaustive** — when the product of the leaf-input ranges feeding an
  observable (a store or root) is small enough to enumerate, every
  input valuation of that cone is executed through both blocks with the
  reference interpreter (:func:`repro.ir.ops.execute`) and the
  observable is *proved* bit-identical.  Observables sharing a cone
  share the enumeration.
* **Interval** — the lint interval analysis (:mod:`repro.lint.interval`)
  gives sound raw-value ranges per observable.  Disjoint ranges refute
  equivalence for *every* input (the counterexample is then concrete,
  from the base valuation); equal constant ranges prove an observable
  without enumeration.  The import is lazy: the IR stays buildable
  without the analysis layer, and layering contract 6 whitelists this
  one edge.
* **Stratified sampling** — wide cones fall back to seeded, stratified
  random valuations (corners lo/lo+1/0/hi-1/hi plus uniform draws), so
  a failure is reproducible from the seed alone.

A refutation is reported as a :class:`Counterexample`: the concrete
input valuation, the first divergent observable in block order, both
values, and the source location the observable was lowered from (when
the caller still has the pristine block's ``locs`` side-table —
optimization passes drop it).

Blocks compare on their observables only: stores pair by position (and
must target the identical signal), roots pair by index.  A structural
mismatch is itself a counterexample.  ``Overflow.ERROR`` quantizes may
legitimately raise in both blocks — a divergence is when only one side
raises, or they produce different values.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import ReproError
from ..fixpt.fixed import FxOverflowError
from .ops import IRBlock, execute

#: Recognized validation modes, weakest to strongest.
VALIDATE_MODES = ("off", "sampled", "exhaustive")

#: Default number of sampled valuations per mode.
SAMPLED_TRIALS = 64
EXHAUSTIVE_TRIALS = 256

#: Default cap on enumerated valuations per observable cone.
EXHAUSTIVE_BUDGET = 4096

#: Sentinel observable value: the block raised FxOverflowError.
RAISED = "<FxOverflowError>"


@dataclass(frozen=True)
class Observable:
    """One compared output: a store (by position) or a root (by index)."""

    kind: str            # "store" | "root"
    index: int
    target: object = None  # the stored signal, None for roots

    def label(self) -> str:
        if self.kind == "store":
            name = getattr(self.target, "name", None) or repr(self.target)
            return f"store[{self.index}] -> {name}"
        return f"root[{self.index}]"


@dataclass
class Counterexample:
    """A concrete input valuation on which the two blocks diverge."""

    inputs: Dict[object, object]     # leaf signal -> raw int / float
    observable: Optional[Observable]
    expected: object                 # raw block's value (or RAISED)
    got: object                      # optimized block's value (or RAISED)
    srcloc: object = None            # SrcLoc of the divergent observable
    note: str = ""

    def valuation(self) -> Dict[str, object]:
        """The inputs keyed by signal name (stable, printable)."""
        return {getattr(sig, "name", None) or repr(sig): value
                for sig, value in self.inputs.items()}

    def describe(self) -> str:
        where = self.observable.label() if self.observable else "structure"
        parts = [f"first divergent observable {where}: "
                 f"expected {self.expected!r}, got {self.got!r}"]
        if self.srcloc is not None:
            parts.append(f"lowered at {self.srcloc}")
        if self.inputs:
            vals = ", ".join(f"{name}={value!r}"
                             for name, value in sorted(self.valuation().items()))
            parts.append(f"under inputs {{{vals}}}")
        if self.note:
            parts.append(self.note)
        return "; ".join(parts)


@dataclass
class EquivReport:
    """The outcome of :func:`check_blocks` on one block pair."""

    equivalent: bool
    counterexample: Optional[Counterexample] = None
    #: True when every observable was exhaustively enumerated or proved
    #: constant by interval analysis — a proof, not just absence of a
    #: sampled refutation.
    proved: bool = False
    #: Input valuations executed through both blocks.
    assignments: int = 0
    observables: int = 0
    proved_observables: int = 0
    strategy: str = "sampled"


class PassEquivalenceError(ReproError):
    """An optimization pass changed observable behavior.

    Carries the guilty pass name and the concrete
    :class:`Counterexample` so callers (and CI logs) can replay it.
    """

    def __init__(self, pass_name: str, counterexample: Counterexample,
                 iteration: int = 0):
        self.pass_name = pass_name
        self.counterexample = counterexample
        self.iteration = iteration
        super().__init__(
            f"pass {pass_name!r} (pipeline iteration {iteration}) is not "
            f"equivalence-preserving: {counterexample.describe()}")


def block_leaves(block: IRBlock) -> List[object]:
    """The leaf signals read by *block*, in first-read order."""
    seen: List[object] = []
    ids = set()
    for op in block.ops:
        if op.opcode == "read" and id(op.attrs[0]) not in ids:
            ids.add(id(op.attrs[0]))
            seen.append(op.attrs[0])
    return seen


def observable_srclocs(block: IRBlock) -> Dict[Tuple[str, int], object]:
    """Observable -> SrcLoc map from a block that still carries ``locs``.

    Passes preserve store/root order, so the map built from the pristine
    lowered block labels the same observables in every optimized
    descendant.
    """
    out: Dict[Tuple[str, int], object] = {}
    for index, store in enumerate(block.stores):
        loc = block.locs.get(store.value)
        if loc is not None:
            out[("store", index)] = loc
    for index, root in enumerate(block.roots):
        loc = block.locs.get(root)
        if loc is not None:
            out[("root", index)] = loc
    return out


def _leaf_range(sig) -> Optional[Tuple[int, int]]:
    """Raw [lo, hi] of a formatted leaf, None for float-domain leaves."""
    fmt = getattr(sig, "fmt", None)
    if fmt is None:
        return None
    return fmt.raw_min, fmt.raw_max


def _observables(block: IRBlock) -> List[Observable]:
    obs = [Observable("store", i, s.target)
           for i, s in enumerate(block.stores)]
    obs += [Observable("root", i) for i in range(len(block.roots))]
    return obs


def _observe(block: IRBlock, assignment: Dict[int, object],
             leaves: Sequence[object]) -> List[object]:
    """Observable values of *block* under *assignment* (id(sig)-keyed).

    A raising ``Overflow.ERROR`` quantize maps every observable to
    :data:`RAISED` — two blocks that both raise agree.
    """
    try:
        values = execute(block, lambda sig: assignment[id(sig)])
    except FxOverflowError:
        n = len(block.stores) + len(block.roots)
        return [RAISED] * n
    out = [values[s.value] for s in block.stores]
    out += [values[r] for r in block.roots]
    return out


def _cone_leaves(block: IRBlock, vid: int) -> List[object]:
    """Leaf signals feeding value *vid*, deduplicated by identity."""
    seen_ops = set()
    work = [vid]
    leaves: List[object] = []
    leaf_ids = set()
    while work:
        v = work.pop()
        if v in seen_ops:
            continue
        seen_ops.add(v)
        op = block.ops[v]
        if op.opcode == "read":
            if id(op.attrs[0]) not in leaf_ids:
                leaf_ids.add(id(op.attrs[0]))
                leaves.append(op.attrs[0])
        work.extend(op.args)
    return leaves


def _observable_vid(block: IRBlock, obs: Observable) -> int:
    if obs.kind == "store":
        return block.stores[obs.index].value
    return block.roots[obs.index]


def _base_assignment(leaves: Sequence[object]) -> Dict[int, object]:
    """A deterministic valuation: 0 where representable, else the low end."""
    out: Dict[int, object] = {}
    for sig in leaves:
        rng = _leaf_range(sig)
        if rng is None:
            out[id(sig)] = 0.0
        else:
            lo, hi = rng
            out[id(sig)] = min(max(0, lo), hi)
    return out


def _strata(lo: int, hi: int) -> List[int]:
    """Corner values of a raw range, deduplicated, in order."""
    candidates = [lo, lo + 1, 0, (lo + hi) // 2, hi - 1, hi]
    out: List[int] = []
    for c in candidates:
        if lo <= c <= hi and c not in out:
            out.append(c)
    return out


def _sample(leaves: Sequence[object], rng: random.Random,
            trial: int) -> Dict[int, object]:
    """One stratified valuation: corners first, then mixed random draws."""
    out: Dict[int, object] = {}
    for sig in leaves:
        bounds = _leaf_range(sig)
        if bounds is None:
            if trial == 0:
                out[id(sig)] = 0.0
            elif trial == 1:
                out[id(sig)] = 1.0
            elif trial == 2:
                out[id(sig)] = -1.0
            else:
                out[id(sig)] = rng.uniform(-8.0, 8.0)
            continue
        lo, hi = bounds
        if trial == 0:
            out[id(sig)] = lo
        elif trial == 1:
            out[id(sig)] = hi
        elif trial == 2:
            out[id(sig)] = min(max(0, lo), hi)
        else:
            strata = _strata(lo, hi)
            pick = rng.randrange(len(strata) + 2)
            if pick < len(strata):
                out[id(sig)] = strata[pick]
            else:
                out[id(sig)] = rng.randint(lo, hi)
    return out


def _divergence(raw: IRBlock, opt: IRBlock, observables: Sequence[Observable],
                assignment: Dict[int, object], leaves: Sequence[object],
                srclocs, only: Optional[set] = None,
                note: str = "") -> Optional[Counterexample]:
    """Compare both blocks under one valuation; None when they agree."""
    got_raw = _observe(raw, assignment, leaves)
    got_opt = _observe(opt, assignment, leaves)
    for pos, obs in enumerate(observables):
        if only is not None and pos not in only:
            continue
        if got_raw[pos] != got_opt[pos]:
            inputs = {sig: assignment[id(sig)] for sig in leaves}
            loc = None
            if srclocs:
                loc = srclocs.get((obs.kind, obs.index))
            return Counterexample(inputs, obs, got_raw[pos], got_opt[pos],
                                  srcloc=loc, note=note)
    return None


def _interval_phase(raw: IRBlock, opt: IRBlock,
                    observables: Sequence[Observable]):
    """Sound per-observable interval facts: (disjoint_pos, proved_pos).

    Uses :mod:`repro.lint.interval` lazily — the lint package imports
    ``repro.ir`` at init, so a module-level import here would be
    circular (and would make the analysis layer load-bearing for the
    IR).
    """
    try:
        from ..lint.interval import analyze
    except ImportError:        # pragma: no cover - lint layer stripped
        return None, set()
    ana_raw = analyze(raw)
    ana_opt = analyze(opt)
    disjoint: Optional[int] = None
    proved = set()
    for pos, obs in enumerate(observables):
        iv_raw = ana_raw.of(_observable_vid(raw, obs))
        iv_opt = ana_opt.of(_observable_vid(opt, obs))
        if iv_raw is None or iv_opt is None:
            continue
        if iv_raw.hi < iv_opt.lo or iv_opt.hi < iv_raw.lo:
            if disjoint is None:
                disjoint = pos
        elif (iv_raw.is_constant and iv_opt.is_constant
                and iv_raw.lo == iv_opt.lo):
            proved.add(pos)
    return disjoint, proved


def check_blocks(raw: IRBlock, opt: IRBlock, mode: str = "sampled",
                 seed: int = 0, trials: Optional[int] = None,
                 budget: int = EXHAUSTIVE_BUDGET,
                 srclocs: Optional[Dict[Tuple[str, int], object]] = None,
                 ) -> EquivReport:
    """Check that *opt* computes the same observables as *raw*.

    *mode* is ``"sampled"`` (stratified random valuations) or
    ``"exhaustive"`` (additionally enumerate every observable whose
    input cone has at most *budget* valuations — those observables are
    *proved*).  *srclocs* optionally maps ``(kind, index)`` observables
    to source locations for counterexample reporting (build it from the
    pristine block with :func:`observable_srclocs`).
    """
    if mode not in VALIDATE_MODES or mode == "off":
        raise ValueError(
            f"validate mode {mode!r}: expected one of {VALIDATE_MODES[1:]}")
    observables = _observables(raw)
    report = EquivReport(True, observables=len(observables), strategy=mode)

    # Structural contract: same observables, same targets, same order.
    structural = None
    if len(opt.stores) != len(raw.stores) or len(opt.roots) != len(raw.roots):
        structural = (f"store/root shape {len(raw.stores)}/{len(raw.roots)} "
                      f"-> {len(opt.stores)}/{len(opt.roots)}")
    else:
        for i, (a, b) in enumerate(zip(raw.stores, opt.stores)):
            if a.target is not b.target:
                structural = (f"store[{i}] retargeted from "
                              f"{getattr(a.target, 'name', a.target)!r} to "
                              f"{getattr(b.target, 'name', b.target)!r}")
                break
    if structural is not None:
        report.equivalent = False
        report.counterexample = Counterexample(
            {}, None, "<raw block shape>", "<optimized block shape>",
            note=structural)
        return report

    leaves = block_leaves(raw)
    for extra in block_leaves(opt):
        if not any(extra is sig for sig in leaves):
            leaves.append(extra)

    # Interval refutation / constant proofs (sound, no execution).
    disjoint_pos, proved = _interval_phase(raw, opt, observables)
    report.proved_observables = len(proved)
    base = _base_assignment(leaves)
    if disjoint_pos is not None:
        cex = _divergence(
            raw, opt, observables, base, leaves, srclocs,
            note="raw-value intervals are disjoint: the blocks diverge on "
                 "every input (refuted by interval analysis)")
        report.assignments += 1
        if cex is not None:
            report.equivalent = False
            report.counterexample = cex
            report.strategy = "interval"
            return report

    # Exhaustive enumeration per cone, grouped by shared leaf sets.
    if mode == "exhaustive":
        groups: Dict[frozenset, List[int]] = {}
        cone_sigs: Dict[frozenset, List[object]] = {}
        for pos, obs in enumerate(observables):
            if pos in proved:
                continue
            cone = _cone_leaves(raw, _observable_vid(raw, obs))
            for extra in _cone_leaves(opt, _observable_vid(opt, obs)):
                if not any(extra is sig for sig in cone):
                    cone.append(extra)
            key = frozenset(id(sig) for sig in cone)
            groups.setdefault(key, []).append(pos)
            cone_sigs.setdefault(key, cone)
        for key, positions in groups.items():
            cone = cone_sigs[key]
            total = 1
            for sig in cone:
                bounds = _leaf_range(sig)
                if bounds is None:
                    total = None
                    break
                total *= bounds[1] - bounds[0] + 1
                if total > budget:
                    break
            if total is None or total > budget:
                continue
            ranges = [range(bounds[0], bounds[1] + 1)
                      for bounds in map(_leaf_range, cone)]
            for combo in itertools.product(*ranges):
                assignment = dict(base)
                for sig, value in zip(cone, combo):
                    assignment[id(sig)] = value
                report.assignments += 1
                cex = _divergence(raw, opt, observables, assignment, leaves,
                                  srclocs, only=set(positions),
                                  note=f"found by exhaustive enumeration of "
                                       f"a {total}-valuation input cone")
                if cex is not None:
                    report.equivalent = False
                    report.counterexample = cex
                    report.strategy = "exhaustive"
                    return report
            proved.update(positions)
        report.proved_observables = len(proved)

    # Stratified sampling over the full leaf set for whatever is left.
    remaining = {pos for pos in range(len(observables)) if pos not in proved}
    if remaining:
        n = trials if trials is not None else (
            EXHAUSTIVE_TRIALS if mode == "exhaustive" else SAMPLED_TRIALS)
        rng = random.Random(seed)
        for trial in range(n):
            assignment = _sample(leaves, rng, trial)
            report.assignments += 1
            cex = _divergence(raw, opt, observables, assignment, leaves,
                              srclocs, only=remaining,
                              note=f"found by stratified sampling "
                                   f"(seed {seed}, trial {trial})")
            if cex is not None:
                report.equivalent = False
                report.counterexample = cex
                return report

    report.proved = len(proved) == len(observables)
    if report.proved and mode == "exhaustive":
        report.strategy = "exhaustive"
    return report
