"""Lowering: Expr DAGs / SFGs -> three-address IR.

This is the one place that knows fixed-point alignment.  Historically
the compiled simulator, both HDL generators and the datapath
synthesizer each tracked ``(code, frac)`` pairs and re-implemented the
same shift/round/saturate decisions; they now all consume blocks
produced here, where every alignment is an explicit ``shl``/``ashr``/
``retag`` op and every wordlength boundary an explicit ``quantize``.

The contract:

* operands of ``add``/``sub``/``cmp``/``mux`` arrive pre-aligned to a
  common ``frac``;
* ``mul`` results sit at the sum of the operand fracs;
* the model's ``x << n`` doubles the value (``shl``, frac unchanged)
  while ``x >> n`` moves the binary point only (``retag``);
* bit-level ops (``bitsel``/``slice``/``concat``/bitwise) see their
  operands aligned to frac 0;
* every :class:`~repro.ir.ops.Store` value already went through the
  target's ``quantize`` (or ``tofloat`` for unformatted targets).

Shared sub-DAGs lower to one value id (lowering memoizes on node
identity), so a back-end that renders each op once gets reference
sharing for free; the CSE pass additionally merges structurally equal
ops built as distinct DAG nodes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..core.errors import CodegenError
from ..core.expr import (
    BinOp,
    BitSelect,
    Cast,
    Concat,
    Constant,
    Expr,
    Mux,
    SliceSelect,
    UnOp,
)
from ..core.sfg import SFG, Assignment
from ..core.signal import Register, Sig
from ..fixpt import Fx, FxFormat, quantize_raw
from .formats import vector_width
from .ops import IRBlock, IROp, Store

_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")
_BIT_OPS = {"&": "band", "|": "bor", "^": "bxor"}


class Lowerer:
    """Lower expressions/assignments of one straight-line region.

    Parameters
    ----------
    leaf_fmt:
        Maps a leaf :class:`Sig` to its format (None = float domain).
        Back-ends that require formats pass a callable that raises.
    resolve:
        Canonicalizes a signal before it is read or stored (the
        compiled simulator resolves channel aliases here); identity by
        default.
    require_formats:
        When True, unformatted leaves and constants raise *error_cls* —
        the HDL/synthesis contract.
    """

    def __init__(self,
                 leaf_fmt: Optional[Callable[[Sig], Optional[FxFormat]]] = None,
                 resolve: Optional[Callable[[Sig], Sig]] = None,
                 require_formats: bool = False,
                 error_cls=CodegenError):
        self.block = IRBlock()
        self.leaf_fmt = leaf_fmt or (lambda sig: sig.fmt)
        self.resolve = resolve or (lambda sig: sig)
        self.require_formats = require_formats
        self.error_cls = error_cls
        #: Wire targets already stored in this region -> their value id.
        self.env: Dict[Sig, int] = {}
        self._memo: Dict[int, int] = {}

    # -- small helpers -----------------------------------------------------------

    def _emit(self, opcode: str, args: Tuple[int, ...] = (), attrs: Tuple = (),
              frac: Optional[int] = 0, width: int = 0) -> int:
        return self.block.emit(IROp(opcode, args, attrs, frac, width))

    def _frac(self, vid: int) -> Optional[int]:
        return self.block.ops[vid].frac

    def _width(self, vid: int) -> int:
        return self.block.ops[vid].width

    def _align(self, vid: int, to_frac: int) -> int:
        """View a raw value at binary point *to_frac* (value preserved)."""
        frac = self._frac(vid)
        if frac == to_frac:
            return vid
        if to_frac > frac:
            bits = to_frac - frac
            return self._emit("shl", (vid,), (bits,), to_frac,
                              self._width(vid) + bits)
        bits = frac - to_frac
        return self._emit("ashr", (vid,), (bits,), to_frac,
                          max(self._width(vid) - bits, 1))

    def _as_int(self, vid: int) -> int:
        """View a value as a raw integer at frac 0."""
        if self._frac(vid) is None:
            return self._emit("toint", (vid,), (), 0, self._width(vid))
        return self._align(vid, 0)

    def _to_float(self, vid: int) -> int:
        if self._frac(vid) is None:
            return vid
        return self._emit("tofloat", (vid,), (), None, 0)

    # -- expression dispatch -----------------------------------------------------

    def value_of(self, expr: Expr) -> int:
        got = self._memo.get(id(expr))
        if got is None:
            got = self._lower(expr)
            self._memo[id(expr)] = got
            loc = getattr(expr, "loc", None)
            if loc is not None and got not in self.block.locs:
                self.block.locs[got] = loc
        return got

    def _lower(self, expr: Expr) -> int:
        if isinstance(expr, Sig):
            sig = self.resolve(expr)
            env_id = self.env.get(sig)
            if env_id is not None:
                return env_id
            fmt = self.leaf_fmt(sig)
            if fmt is None:
                if self.require_formats:
                    raise self.error_cls(
                        f"signal {sig.name!r} has no fixed-point format; "
                        "bit-true wordlengths are required for code "
                        "generation/synthesis"
                    )
                return self._emit("read", (), (sig,), None, 0)
            return self._emit("read", (), (sig,), fmt.frac_bits,
                              vector_width(fmt))
        if isinstance(expr, Constant):
            return self._constant(expr)
        if isinstance(expr, BinOp):
            return self._binop(expr)
        if isinstance(expr, UnOp):
            return self._unop(expr)
        if isinstance(expr, Mux):
            return self._mux(expr)
        if isinstance(expr, Cast):
            return self.quantize(self.value_of(expr.operand), expr.fmt)
        if isinstance(expr, BitSelect):
            raw = self._as_int(self.value_of(expr.operand))
            return self._emit("bitsel", (raw,), (expr.index,), 0, 2)
        if isinstance(expr, SliceSelect):
            raw = self._as_int(self.value_of(expr.operand))
            return self._emit("slice", (raw,), (expr.hi, expr.lo), 0,
                              expr.width + 1)
        if isinstance(expr, Concat):
            return self._concat(expr)
        raise self.error_cls(f"cannot lower {expr!r} to IR")

    # -- node kinds --------------------------------------------------------------

    def _constant(self, expr: Constant) -> int:
        fmt = expr.result_fmt()
        if fmt is None:
            if self.require_formats:
                raise self.error_cls(
                    f"constant {expr.value!r} has no fixed-point format"
                )
            return self._emit("fconst", (), (float(expr.value),), None, 0)
        raw = expr.value.raw if isinstance(expr.value, Fx) \
            else quantize_raw(expr.value, fmt)
        return self._emit("const", (), (raw,), fmt.frac_bits,
                          vector_width(fmt))

    def _binop(self, expr: BinOp) -> int:
        op = expr.op
        left = self.value_of(expr.left)
        lfrac = self._frac(left)
        if op in ("<<", ">>"):
            bits = int(expr.right.evaluate())
            if lfrac is None:
                # Float domain: scale by 2**±bits.
                power = bits if op == "<<" else -bits
                return self._emit("shl", (left,), (power,), None, 0)
            if bits == 0:
                return left
            if op == "<<":
                # Value doubled per bit; binary point stays put.
                return self._emit("shl", (left,), (bits,), lfrac,
                                  self._width(left) + bits)
            # '>>' halves the value by moving the binary point; the raw
            # bits are untouched.
            return self._emit("retag", (left,), (), lfrac + bits,
                              self._width(left))
        right = self.value_of(expr.right)
        rfrac = self._frac(right)
        if lfrac is None or rfrac is None:
            return self._float_binop(op, left, right, expr)
        if op in ("+", "-"):
            frac = max(lfrac, rfrac)
            la, ra = self._align(left, frac), self._align(right, frac)
            width = max(self._width(la), self._width(ra)) + 1
            return self._emit("add" if op == "+" else "sub", (la, ra), (),
                              frac, width)
        if op == "*":
            return self._emit("mul", (left, right), (), lfrac + rfrac,
                              self._width(left) + self._width(right))
        if op in _CMP_OPS:
            frac = max(lfrac, rfrac)
            la, ra = self._align(left, frac), self._align(right, frac)
            return self._emit("cmp", (la, ra), (op,), 0, 2)
        # Bitwise on integer formats, masked to the union width.
        fmt = expr.require_fmt()
        la, ra = self._align(left, 0), self._align(right, 0)
        return self._emit(_BIT_OPS[op], (la, ra), (fmt.wl, fmt.signed), 0,
                          vector_width(fmt))

    def _float_binop(self, op: str, left: int, right: int,
                     expr: BinOp) -> int:
        if op in _BIT_OPS:
            raise self.error_cls(
                "bitwise operators need fixed-point formats")
        lf, rf = self._to_float(left), self._to_float(right)
        if op in _CMP_OPS:
            return self._emit("cmp", (lf, rf), (op,), 0, 2)
        opcode = {"+": "add", "-": "sub", "*": "mul"}[op]
        return self._emit(opcode, (lf, rf), (), None, 0)

    def _unop(self, expr: UnOp) -> int:
        operand = self.value_of(expr.operand)
        frac = self._frac(operand)
        if expr.op == "-":
            width = 0 if frac is None else self._width(operand) + 1
            return self._emit("neg", (operand,), (), frac, width)
        if expr.op == "abs":
            width = 0 if frac is None else self._width(operand) + 1
            return self._emit("abs", (operand,), (), frac, width)
        # '~' needs an integer fixed-point format.
        fmt = expr.operand.result_fmt()
        if frac is None or (fmt is not None and not fmt.is_integer()):
            raise self.error_cls(
                "bitwise invert needs an integer fixed-point format")
        return self._emit("bnot", (operand,), (fmt.wl, fmt.signed), frac,
                          self._width(operand))

    def _mux(self, expr: Mux) -> int:
        sel = self.value_of(expr.sel)
        if_true = self.value_of(expr.if_true)
        if_false = self.value_of(expr.if_false)
        tfrac, ffrac = self._frac(if_true), self._frac(if_false)
        if tfrac is None or ffrac is None:
            tf, ff = self._to_float(if_true), self._to_float(if_false)
            return self._emit("mux", (sel, tf, ff), (), None, 0)
        frac = max(tfrac, ffrac)
        ta, fa = self._align(if_true, frac), self._align(if_false, frac)
        width = max(self._width(ta), self._width(fa))
        return self._emit("mux", (sel, ta, fa), (), frac, width)

    def _concat(self, expr: Concat) -> int:
        fmts = [child.require_fmt() for child in expr.children]
        args = tuple(self._as_int(self.value_of(child))
                     for child in expr.children)
        widths = tuple(fmt.wl for fmt in fmts)
        return self._emit("concat", args, widths, 0, sum(widths) + 1)

    # -- quantization and stores -------------------------------------------------

    def quantize(self, vid: int, fmt: FxFormat) -> int:
        return self._emit("quantize", (vid,), (fmt,), fmt.frac_bits,
                          vector_width(fmt))

    def lower_assignment(self, assignment: Assignment) -> Store:
        """Lower one assignment, appending the target-format quantize."""
        value = self.value_of(assignment.expr)
        target = self.resolve(assignment.target)
        if target.fmt is not None:
            value = self.quantize(value, target.fmt)
            loc = getattr(assignment, "loc", None)
            if loc is not None:
                self.block.locs[value] = loc
        elif self.require_formats:
            raise self.error_cls(
                f"signal {target.name!r} has no fixed-point format; bit-true "
                "wordlengths are required for code generation/synthesis"
            )
        elif self._frac(value) is not None:
            value = self._to_float(value)
        store = Store(target, value)
        self.block.stores.append(store)
        if not isinstance(target, Register):
            # Later reads in this region see the committed wire value.
            self.env[target] = value
        return store

    def lower_sfg(self, sfg: SFG) -> IRBlock:
        for assignment in sfg.ordered_assignments():
            self.lower_assignment(assignment)
        return self.block

    def lower_expr(self, expr: Expr) -> int:
        """Lower a bare expression (an FSM guard), keeping it live."""
        vid = self.value_of(expr)
        self.block.roots.append(vid)
        return vid


def lower_expr(expr: Expr, **kwargs) -> IRBlock:
    """Lower one expression into a fresh single-root block."""
    lowerer = Lowerer(**kwargs)
    lowerer.lower_expr(expr)
    return lowerer.block


def lower_sfg(sfg: SFG, **kwargs) -> IRBlock:
    """Lower one SFG's assignments (in topological order) to a block."""
    return Lowerer(**kwargs).lower_sfg(sfg)


def lower_assignments(assignments, **kwargs) -> IRBlock:
    """Lower a straight-line run of assignments into one block."""
    lowerer = Lowerer(**kwargs)
    for assignment in assignments:
        lowerer.lower_assignment(assignment)
    return lowerer.block
