"""Optimization passes over lowered IR blocks.

Classic scalar optimizations, each a pure function
``block -> (new_block, changed)`` that preserves op order and rewrites
stores/roots.  All IR ops are pure, so the legality arguments are
simple: constants fold by the reference semantics of
:func:`repro.ir.ops.execute`; structurally identical ops compute
identical values (CSE); ops reachable from no store/root are dead.

The aggressive passes (:func:`strength_reduce`,
:func:`restructure_mux`) rewrite arithmetic structure rather than just
pruning it, so every :class:`PassManager` run can *validate*: with
``validate="sampled"`` or ``"exhaustive"`` the manager checks each
changed block against its input with :mod:`repro.ir.equiv` translation
validation and raises :class:`~repro.ir.equiv.PassEquivalenceError`
naming the guilty pass on the first divergence.

:func:`run_passes` iterates the pipeline to a fixpoint, which makes the
whole pipeline idempotent — a property the test suite checks.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..fixpt import Overflow
from ..fixpt.fixed import FxOverflowError
from .equiv import (
    PassEquivalenceError,
    VALIDATE_MODES,
    check_blocks,
    observable_srclocs,
)
from .ops import IRBlock, IROp, Store, quantize_raw_at, sign_fold

_CMP = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _rebuild(block: IRBlock, keep: Sequence[bool],
             replace: Dict[int, int]) -> IRBlock:
    """Drop un-kept ops and renumber, following replacement chains."""

    def chase(vid: int) -> int:
        while vid in replace:
            vid = replace[vid]
        return vid

    new_ids: Dict[int, int] = {}
    out = IRBlock()
    for index, op in enumerate(block.ops):
        if not keep[index] or index in replace:
            continue
        args = tuple(new_ids[chase(arg)] for arg in op.args)
        new_ids[index] = out.emit(
            IROp(op.opcode, args, op.attrs, op.frac, op.width))
    out.stores = [Store(s.target, new_ids[chase(s.value)])
                  for s in block.stores]
    out.roots = [new_ids[chase(r)] for r in block.roots]
    return out


def _const_raw(block: IRBlock, vid: int) -> Optional[int]:
    op = block.ops[vid]
    if op.opcode == "const":
        return op.attrs[0]
    return None


def constant_fold(block: IRBlock) -> Tuple[IRBlock, bool]:
    """Evaluate raw-domain ops whose operands are all constants."""
    ops: List[IROp] = []
    out = IRBlock()
    out.ops = ops
    remap: Dict[int, int] = {}
    changed = False

    def const_of(new_id: int) -> Optional[int]:
        op = ops[new_id]
        return op.attrs[0] if op.opcode == "const" else None

    for op in block.ops:
        args = tuple(remap[a] for a in op.args)
        raws = [const_of(a) for a in args]
        folded: Optional[int] = None
        code = op.opcode
        if all(raw is not None for raw in raws) and op.frac is not None:
            a = raws
            if code == "add":
                folded = a[0] + a[1]
            elif code == "sub":
                folded = a[0] - a[1]
            elif code == "mul":
                folded = a[0] * a[1]
            elif code == "neg":
                folded = -a[0]
            elif code == "abs":
                folded = abs(a[0])
            elif code == "shl":
                folded = a[0] << op.attrs[0]
            elif code == "ashr":
                folded = a[0] >> op.attrs[0]
            elif code == "retag":
                folded = a[0]
            elif code == "cmp":
                folded = 1 if _CMP[op.attrs[0]](a[0], a[1]) else 0
            elif code in ("band", "bor", "bxor"):
                wl, signed = op.attrs
                mask = (1 << wl) - 1
                x, y = a[0] & mask, a[1] & mask
                raw = x & y if code == "band" else (
                    x | y if code == "bor" else x ^ y)
                folded = sign_fold(raw, wl, signed)
            elif code == "bnot":
                folded = sign_fold(~a[0], *op.attrs)
            elif code == "bitsel":
                folded = (a[0] >> op.attrs[0]) & 1
            elif code == "slice":
                hi, lo = op.attrs
                folded = (a[0] >> lo) & ((1 << (hi - lo + 1)) - 1)
            elif code == "concat":
                folded = 0
                for raw, width in zip(a, op.attrs):
                    folded = (folded << width) | (raw & ((1 << width) - 1))
            elif code == "quantize":
                src_frac = ops[args[0]].frac
                if src_frac is not None:
                    try:
                        folded = quantize_raw_at(a[0], src_frac, op.attrs[0])
                    except FxOverflowError:
                        # Overflow.ERROR must keep raising at run time.
                        folded = None
        if code == "mux" and op.frac is not None:
            sel = const_of(args[0])
            if sel is not None:
                remap[len(remap)] = args[1] if sel else args[2]
                changed = True
                continue
        if folded is None:
            remap[len(remap)] = out.emit(
                IROp(code, args, op.attrs, op.frac, op.width))
        else:
            remap[len(remap)] = out.emit(
                IROp("const", (), (folded,), op.frac, op.width))
            changed = True
    out.stores = [Store(s.target, remap[s.value]) for s in block.stores]
    out.roots = [remap[r] for r in block.roots]
    return out, changed


def algebraic_simplify(block: IRBlock) -> Tuple[IRBlock, bool]:
    """Strength reductions and identities on raw-domain ops.

    ``x+0``/``x-0`` -> x, ``0-x`` -> neg, ``x*1`` -> retag, ``x*0`` -> 0,
    ``x*2**k`` -> shl, shift-by-0 -> x, ``mux(s,t,t)`` -> t, constant-
    condition mux -> branch, no-op retag -> x, and dropping quantizes
    whose operand is already exactly in the target format (a prior
    quantize into the same format, or a read of a signal committed in
    it).  A value only substitutes directly when its frac matches the
    replaced op's; otherwise a ``retag`` keeps downstream alignment
    metadata honest.  Dead operands left behind are dce's job.
    """
    out = IRBlock()
    remap: Dict[int, int] = {}
    changed = False

    def op_of(new_id: int) -> IROp:
        return out.ops[new_id]

    def const_raw(new_id: int) -> Optional[int]:
        op = op_of(new_id)
        if op.opcode == "const" and op.frac is not None:
            return op.attrs[0]
        return None

    def substitute(new_id: int, frac, width: int) -> int:
        """Reuse *new_id* for the current op, retagging if fracs differ."""
        nonlocal changed
        changed = True
        if op_of(new_id).frac == frac:
            return new_id
        return out.emit(IROp("retag", (new_id,), (), frac, width))

    for op in block.ops:
        args = tuple(remap[a] for a in op.args)
        code = op.opcode
        result: Optional[int] = None
        if op.frac is not None:
            if code in ("add", "sub"):
                la, ra = const_raw(args[0]), const_raw(args[1])
                if ra == 0:
                    result = substitute(args[0], op.frac, op.width)
                elif la == 0 and code == "add":
                    result = substitute(args[1], op.frac, op.width)
                elif la == 0 and code == "sub":
                    changed = True
                    result = out.emit(
                        IROp("neg", (args[1],), (), op.frac, op.width))
            elif code == "mul":
                for this, other in ((args[0], args[1]), (args[1], args[0])):
                    raw = const_raw(this)
                    if raw == 0:
                        changed = True
                        result = out.emit(
                            IROp("const", (), (0,), op.frac, op.width))
                        break
                    if raw is not None and raw > 0 and raw & (raw - 1) == 0:
                        # Multiply by a raw power of two: shift the other
                        # operand; the product's binary point (sum of the
                        # operand fracs) is recorded on the new op.
                        bits = raw.bit_length() - 1
                        if bits == 0:
                            result = substitute(other, op.frac, op.width)
                        else:
                            changed = True
                            result = out.emit(IROp(
                                "shl", (other,), (bits,), op.frac,
                                op_of(other).width + bits))
                        break
            elif code in ("shl", "ashr") and op.attrs[0] == 0:
                result = substitute(args[0], op.frac, op.width)
            elif code == "retag" and op_of(args[0]).frac == op.frac:
                changed = True
                result = args[0]
            elif code == "mux":
                sel = const_raw(args[0])
                if sel is not None:
                    result = substitute(args[1] if sel else args[2],
                                        op.frac, op.width)
                elif args[1] == args[2]:
                    result = substitute(args[1], op.frac, op.width)
            elif code == "quantize":
                fmt = op.attrs[0]
                src = op_of(args[0])
                already_exact = (
                    (src.opcode == "quantize" and src.attrs[0] == fmt) or
                    (src.opcode == "read" and src.attrs[0].fmt == fmt)
                )
                if already_exact:
                    # The operand is a committed value of exactly this
                    # format, hence in range for every overflow mode.
                    changed = True
                    result = args[0]
        if result is None:
            result = out.emit(IROp(code, args, op.attrs, op.frac, op.width))
        remap[len(remap)] = result
    out.stores = [Store(s.target, remap[s.value]) for s in block.stores]
    out.roots = [remap[r] for r in block.roots]
    return out, changed


def cse(block: IRBlock) -> Tuple[IRBlock, bool]:
    """Merge structurally identical pure ops (value numbering)."""
    out = IRBlock()
    remap: Dict[int, int] = {}
    seen: Dict[tuple, int] = {}
    changed = False
    for index, op in enumerate(block.ops):
        args = tuple(remap[a] for a in op.args)
        key = (op.opcode, args, op.attrs, op.frac, op.width)
        got = seen.get(key)
        if got is not None:
            remap[index] = got
            changed = True
            continue
        new_id = out.emit(IROp(op.opcode, args, op.attrs, op.frac, op.width))
        seen[key] = new_id
        remap[index] = new_id
    out.stores = [Store(s.target, remap[s.value]) for s in block.stores]
    out.roots = [remap[r] for r in block.roots]
    return out, changed


def dce(block: IRBlock) -> Tuple[IRBlock, bool]:
    """Drop ops not reachable from any store or root."""
    live = [False] * len(block.ops)
    work = [s.value for s in block.stores] + list(block.roots)
    while work:
        vid = work.pop()
        if live[vid]:
            continue
        live[vid] = True
        work.extend(block.ops[vid].args)
    if all(live):
        return block, False
    return _rebuild(block, live, {}), True


def _csd_digits(value: int) -> List[Tuple[int, int]]:
    """Canonical signed-digit form of *value*: ``[(bit, ±1), ...]``.

    ``value == sum(sign << bit)`` with no two adjacent non-zero digits —
    the minimal shift/add form of a constant multiplier.
    """
    digits: List[Tuple[int, int]] = []
    bit = 0
    while value:
        if value & 1:
            sign = 1 if value % 4 == 1 else -1
            digits.append((bit, sign))
            value -= sign
        value >>= 1
        bit += 1
    return digits


def strength_reduce(block: IRBlock, max_terms: int = 4) -> Tuple[IRBlock, bool]:
    """Rewrite constant multiplies as signed shift/add trees.

    ``x * c`` becomes ``±(x << k0) ± (x << k1) ...`` from the CSD
    digits of the raw constant, when that takes at most *max_terms*
    shifts — exact in the raw domain (every shift appends zero bits, the
    signed sum reassembles ``x*c`` bit for bit), and far cheaper than an
    array multiplier in synthesis.  Power-of-two positives are
    :func:`algebraic_simplify`'s job; negative powers of two and
    multi-digit constants land here.
    """
    out = IRBlock()
    remap: Dict[int, int] = {}
    changed = False

    def const_raw(new_id: int) -> Optional[int]:
        op = out.ops[new_id]
        if op.opcode == "const" and op.frac is not None:
            return op.attrs[0]
        return None

    for op in block.ops:
        args = tuple(remap[a] for a in op.args)
        result: Optional[int] = None
        if op.opcode == "mul" and op.frac is not None:
            for this, other in ((args[0], args[1]), (args[1], args[0])):
                raw = const_raw(this)
                if raw is None or const_raw(other) is not None:
                    continue  # non-const, or const*const (fold's job)
                digits = _csd_digits(raw)
                single_pos = (len(digits) == 1 and digits[0][1] > 0)
                if not digits or single_pos or len(digits) > max_terms:
                    continue  # 0 / +2**k are simpler passes' territory
                x_width = out.ops[other].width

                def term(bits: int) -> int:
                    if bits == 0:
                        return other
                    return out.emit(IROp("shl", (other,), (bits,), op.frac,
                                         x_width + bits))

                acc: Optional[int] = None
                width = 0
                for bits, sign in digits:
                    t = term(bits)
                    t_width = out.ops[t].width
                    if acc is None:
                        if sign > 0:
                            acc = t
                            width = t_width
                        else:
                            acc = out.emit(IROp("neg", (t,), (), op.frac,
                                                t_width + 1))
                            width = t_width + 1
                    else:
                        width = max(width, t_width) + 1
                        acc = out.emit(IROp("add" if sign > 0 else "sub",
                                            (acc, t), (), op.frac, width))
                result = acc
                changed = True
                break
        if result is None:
            result = out.emit(IROp(op.opcode, args, op.attrs, op.frac,
                                   op.width))
        remap[len(remap)] = result
    out.stores = [Store(s.target, remap[s.value]) for s in block.stores]
    out.roots = [remap[r] for r in block.roots]
    return out, changed


def restructure_mux(block: IRBlock) -> Tuple[IRBlock, bool]:
    """Restructure mux trees: collapse, booleanize, and hoist operators.

    Four rewrites, all matched on the input block so a fixpoint pipeline
    finds chained opportunities:

    * nested same-selector collapse —
      ``mux(s, mux(s, a, _), mux(s, _, b))`` -> ``mux(s, a, b)``;
    * boolean mux — ``mux(s, 1, 0)`` at frac 0 is ``s`` itself when the
      selector is a ``cmp``/``bitsel`` (already 0/1);
    * unary hoisting — ``mux(s, neg(a), neg(b))`` -> ``neg(mux(s,a,b))``
      (likewise ``abs``), seeing through single-use alignment shifts;
    * chain operator hoisting — a priority-decode chain
      ``mux(c1, f(a1,b1), mux(c2, f(a2,b2), d))`` with two or more
      single-use ``add``/``sub``/``mul`` leaves factors into **one**
      operator fed by two selector chains:
      ``f(mux(c1, a1, mux(c2, a2, d)), mux(c1, b1, mux(c2, b2, e)))``
      where a non-matching leaf rides the left chain and its right-chain
      partner is the operator's identity (0 for add/sub, 1 for mul).
      On a decode chain with N multiply leaves this replaces N array
      multipliers with one.

    Every rewrite is exact in the raw domain (alignment shifts
    distribute over add/sub and fold into mul operands, shifting only
    provably-zero bits), and every emitted op carries its *true* binary
    point — the gate back-end re-derives alignment from those labels,
    so a dishonest frac would synthesize a different function even
    though the IR interpreter agreed.  Chains whose branch fracs do not
    reconstruct the mux frac (labels the lowerer did not produce) are
    left alone.  The displaced branch ops go dead and are swept by
    :func:`dce`.
    """
    uses = [0] * len(block.ops)
    for op in block.ops:
        for a in op.args:
            uses[a] += 1
    for s in block.stores:
        uses[s.value] += 1
    for r in block.roots:
        uses[r] += 1

    out = IRBlock()
    remap: Dict[int, int] = {}
    changed = False

    #: Binary opcodes the chain hoist factors, with their right-identity
    #: values (``x+0``, ``x-0``, ``x*1`` leave the left value as is).
    identities = {"add": 0, "sub": 0, "mul": 1}

    def peel(vid: int) -> Tuple[int, int]:
        """``(base, k)`` with ``raw(vid) == raw(base) << k``.

        Peels single-use alignment ``shl``/``retag`` chains (the shifts
        the lowerer inserts to bring mux branches to a common binary
        point) so structurally different branches expose their common
        operator.
        """
        k = 0
        while True:
            node = block.ops[vid]
            if node.opcode == "shl" and uses[vid] == 1 \
                    and node.frac is not None:
                k += node.attrs[0]
                vid = node.args[0]
            elif node.opcode == "retag" and uses[vid] == 1:
                vid = node.args[0]
            else:
                return vid, k

    def shifted(orig: int, k: int) -> int:
        """Emit ``raw(orig) << k``, labelled at its true binary point."""
        if k == 0:
            return remap[orig]
        node = block.ops[orig]
        return out.emit(IROp("shl", (remap[orig],), (k,), node.frac + k,
                             node.width + k))

    def flatten(vid: int):
        """The priority chain under mux *vid*: cases plus default.

        Follows single-use false branches (through alignment shifts)
        collecting ``(sel, branch, shift)`` triples such that
        ``raw(vid)`` selects the first true case's ``raw(branch) <<
        shift``, else ``raw(default) << shift``.
        """
        cases = []
        shift = 0
        while True:
            node = block.ops[vid]
            cases.append((node.args[0], node.args[1], shift))
            nxt, k = peel(node.args[2])
            nxt_op = block.ops[nxt]
            if (nxt_op.opcode == "mux" and nxt_op.frac is not None
                    and uses[nxt] == 1 and len(cases) < 8):
                vid = nxt
                shift += k
            else:
                return cases, (nxt, shift + k)

    def matchable(vid: int) -> Optional[str]:
        op_ = block.ops[vid]
        if (op_.opcode in identities and uses[vid] == 1
                and op_.frac is not None):
            return op_.opcode
        return None

    def hoist_chain(index: int, op: IROp) -> Optional[int]:
        """Factor one binary operator out of the chain under *index*."""
        cases, (dflt_v, dflt_k) = flatten(index)
        leaves = []          # (sel or None, base, total_shift, code)
        counts: Dict[str, int] = {}
        for sel_v, t_v, s in cases:
            b, k = peel(t_v)
            leaves.append((sel_v, b, s + k, matchable(b)))
        leaves.append((None, dflt_v, dflt_k, matchable(dflt_v)))
        for _sel, b, k, code in leaves:
            frac = block.ops[b].frac
            if frac is None or frac + k != op.frac:
                return None  # alignment labels do not reconstruct
            if code:
                counts[code] = counts.get(code, 0) + 1
        if not counts:
            return None
        code = sorted(counts, key=lambda c: (-counts[c], c))[0]
        if counts[code] < 2:
            return None

        if code == "mul":
            # Branch products sit at op.frac = frac(x)+frac(y)+k; pick
            # common operand points fa/fb and let exact shifts make up
            # the difference, realigning the single product at the end.
            fa = fb = 0
            for _sel, b, k, leaf_code in leaves:
                if leaf_code == code:
                    x, y = block.ops[b].args
                    fa = max(fa, block.ops[x].frac + k)
                    fb = max(fb, block.ops[y].frac)
                else:
                    fa = max(fa, op.frac)
            lefts, rights = [], []
            for _sel, b, k, leaf_code in leaves:
                if leaf_code == code:
                    x, y = block.ops[b].args
                    lefts.append(shifted(x, fa - block.ops[x].frac))
                    rights.append(shifted(y, fb - block.ops[y].frac))
                else:
                    lefts.append(shifted(b, k + fa - op.frac))
                    rights.append(out.emit(IROp(
                        "const", (), (1 << fb,), fb, fb + 2)))
        else:
            # (x ± y) << k == (x << k) ± (y << k): every left/right
            # leaf lands exactly at op.frac.
            lefts, rights = [], []
            for _sel, b, k, leaf_code in leaves:
                if leaf_code == code:
                    x, y = block.ops[b].args
                    lefts.append(shifted(x, k))
                    rights.append(shifted(y, k))
                else:
                    lefts.append(shifted(b, k))
                    rights.append(out.emit(IROp(
                        "const", (), (0,), op.frac, 2)))

        def build(values) -> int:
            acc = values[-1]
            for (sel_v, _b, _k, _c), value in zip(reversed(leaves[:-1]),
                                                  reversed(values[:-1])):
                acc = out.emit(IROp(
                    "mux", (remap[sel_v], value, acc), (),
                    out.ops[value].frac,
                    max(out.ops[value].width, out.ops[acc].width)))
            return acc

        left, right = build(lefts), build(rights)
        if code != "mul":
            return out.emit(IROp(code, (left, right), (), op.frac,
                                 op.width))
        prod_width = out.ops[left].width + out.ops[right].width
        prod = out.emit(IROp("mul", (left, right), (), fa + fb,
                             prod_width))
        realign = fa + fb - op.frac
        if realign == 0:
            return prod
        return out.emit(IROp("ashr", (prod,), (realign,), op.frac,
                             max(op.width, prod_width - realign)))

    for index, op in enumerate(block.ops):
        args = tuple(remap[a] for a in op.args)
        result: Optional[int] = None
        if op.opcode == "mux" and op.frac is not None:
            sel, t, f = op.args
            sel_op = block.ops[sel]
            # 1. Collapse nested muxes on the same selector.
            while (block.ops[t].opcode == "mux"
                   and block.ops[t].args[0] == sel):
                t = block.ops[t].args[1]
                changed = True
            while (block.ops[f].opcode == "mux"
                   and block.ops[f].args[0] == sel):
                f = block.ops[f].args[2]
                changed = True
            t_op, f_op = block.ops[t], block.ops[f]
            bt, kt = peel(t)
            bf, kf = peel(f)
            bt_op, bf_op = block.ops[bt], block.ops[bf]
            if (t, f) != op.args[1:]:
                result = out.emit(IROp("mux", (remap[sel], remap[t],
                                               remap[f]), (), op.frac,
                                      op.width))
            # 2. mux(s, 1, 0) at frac 0 is the 0/1 selector itself.
            elif (op.frac == 0 and sel_op.frac == 0
                    and sel_op.opcode in ("cmp", "bitsel")
                    and t_op.opcode == "const" and t_op.attrs[0] == 1
                    and f_op.opcode == "const" and f_op.attrs[0] == 0):
                changed = True
                result = remap[sel]
            # 3. Hoist a single-use unary operator above the mux.
            elif (bt != bf and bt_op.opcode == bf_op.opcode
                    and bt_op.opcode in ("neg", "abs")
                    and uses[bt] == 1 and uses[bf] == 1
                    and bt_op.frac is not None and bf_op.frac is not None
                    and bt_op.frac + kt == op.frac
                    and bf_op.frac + kf == op.frac):
                t_new = shifted(bt_op.args[0], kt)
                f_new = shifted(bf_op.args[0], kf)
                inner = out.emit(IROp(
                    "mux", (remap[sel], t_new, f_new), (), op.frac,
                    max(out.ops[t_new].width, out.ops[f_new].width)))
                changed = True
                result = out.emit(IROp(bt_op.opcode, (inner,), (),
                                       op.frac, op.width))
            # 4. Factor a common binary operator out of the chain.
            elif uses[index] > 0:
                result = hoist_chain(index, op)
                if result is not None:
                    changed = True
        if result is None:
            result = out.emit(IROp(op.opcode, args, op.attrs, op.frac,
                                   op.width))
        remap[index] = result
    out.stores = [Store(s.target, remap[s.value]) for s in block.stores]
    out.roots = [remap[r] for r in block.roots]
    return out, changed


def narrow_bitwidth(block: IRBlock) -> Tuple[IRBlock, bool]:
    """Shrink every op to its minimal width with bit-analysis facts.

    The pass body lives in :func:`repro.lint.bits.narrow_block` — the
    reduced product of known-bits, bit-liveness and interval domains
    proves which bits are constant or never observed, then ops are
    constant-folded, in-range quantizes become pure shifts, and width
    labels drop to the minimum that preserves every observable.
    Operator allocation sizes hardware straight from those labels, so
    this is the pass that turns static wordlength analysis into gates.

    The import is deferred, mirroring ``ir/equiv.py``'s sanctioned edge
    onto the analysis layer: the IR package stays importable without
    the linter, and only this pass touches ``repro.lint.bits``
    (layering contract #7).
    """
    from ..lint.bits import narrow_block

    return narrow_block(block)


#: The default pipeline, in application order.
DEFAULT_PASSES: Tuple[Tuple[str, Callable], ...] = (
    ("constant_fold", constant_fold),
    ("algebraic_simplify", algebraic_simplify),
    ("cse", cse),
    ("dce", dce),
)

#: The aggressive pipeline: the default passes plus the structural
#: rewrites that change arithmetic (mux restructuring, strength
#: reduction).  Run it with ``validate="sampled"`` or better.
AGGRESSIVE_PASSES: Tuple[Tuple[str, Callable], ...] = (
    ("constant_fold", constant_fold),
    ("algebraic_simplify", algebraic_simplify),
    ("mux_restructure", restructure_mux),
    ("strength_reduce", strength_reduce),
    ("cse", cse),
    ("dce", dce),
)

#: The aggressive pipeline plus bit-level width narrowing.  The
#: narrowing runs after the structural rewrites (their new ops get
#: narrowed too) and before cse/dce (narrowing unifies widths, which
#: exposes sharing, and its constant rewrites leave dead cones).
NARROW_PASSES: Tuple[Tuple[str, Callable], ...] = (
    ("constant_fold", constant_fold),
    ("algebraic_simplify", algebraic_simplify),
    ("mux_restructure", restructure_mux),
    ("strength_reduce", strength_reduce),
    ("narrow_bitwidth", narrow_bitwidth),
    ("cse", cse),
    ("dce", dce),
)

#: Named pipelines accepted wherever a pass sequence is expected.
PIPELINES: Dict[str, Tuple[Tuple[str, Callable], ...]] = {
    "default": DEFAULT_PASSES,
    "aggressive": AGGRESSIVE_PASSES,
    "narrow": NARROW_PASSES,
}


def resolve_pipeline(passes) -> Tuple[Tuple[str, Callable], ...]:
    """A pass sequence from a name, None (default), or the sequence."""
    if passes is None:
        return DEFAULT_PASSES
    if isinstance(passes, str):
        try:
            return PIPELINES[passes]
        except KeyError:
            raise ValueError(
                f"unknown pass pipeline {passes!r}: expected one of "
                f"{sorted(PIPELINES)}") from None
    return tuple(passes)


class PassManager:
    """Run a pass sequence to fixpoint (bounded) over IR blocks.

    With *validate* set to ``"sampled"`` or ``"exhaustive"``, every pass
    application that reports a change is checked against its input block
    by :func:`repro.ir.equiv.check_blocks`;
    :class:`~repro.ir.equiv.PassEquivalenceError` names the guilty pass
    and carries the concrete counterexample.  Per-pass statistics
    accumulate in :attr:`stats` across every block the manager runs
    (engines feed one manager all their lowered blocks): runs, blocks
    changed, net ops removed, wall time, validations and proofs.
    """

    def __init__(self, passes=DEFAULT_PASSES, max_iterations: int = 8,
                 validate: str = "off", seed: int = 0,
                 trials: Optional[int] = None, budget: int = 4096):
        if validate not in VALIDATE_MODES:
            raise ValueError(
                f"validate={validate!r}: expected one of {VALIDATE_MODES}")
        self.passes = resolve_pipeline(passes)
        self.max_iterations = max_iterations
        self.validate = validate
        self.seed = seed
        self.trials = trials
        self.budget = budget
        self.stats: Dict[str, Dict[str, int]] = {}

    def _stat(self, name: str) -> Dict[str, int]:
        return self.stats.setdefault(name, {
            "runs": 0, "changed": 0, "ops_removed": 0, "time_us": 0,
            "validated": 0, "proved": 0,
        })

    def run(self, block: IRBlock) -> IRBlock:
        srclocs = observable_srclocs(block) if self.validate != "off" else None
        for iteration in range(self.max_iterations):
            any_change = False
            for name, fn in self.passes:
                begin = time.perf_counter()
                new_block, changed = fn(block)
                stat = self._stat(name)
                stat["runs"] += 1
                stat["time_us"] += int((time.perf_counter() - begin) * 1e6)
                if changed:
                    stat["changed"] += 1
                    stat["ops_removed"] += (block.op_count()
                                            - new_block.op_count())
                    if self.validate != "off":
                        report = check_blocks(
                            block, new_block, mode=self.validate,
                            seed=self.seed, trials=self.trials,
                            budget=self.budget, srclocs=srclocs)
                        stat["validated"] += 1
                        if report.proved:
                            stat["proved"] += 1
                        if not report.equivalent:
                            raise PassEquivalenceError(
                                name, report.counterexample, iteration)
                block = new_block
                any_change = any_change or changed
            if not any_change:
                break
        return block

    def publish(self, metrics) -> None:
        """Push accumulated per-pass statistics into a metrics registry.

        *metrics* is duck-typed on ``counter(name).inc(amount)`` (the
        :class:`repro.obs.metrics.MetricsRegistry` protocol — ``ir``
        cannot import ``obs``, so engines hand the registry in).
        Counters land under ``ir_passes/<pass>/<field>``.
        """
        for name, stat in self.stats.items():
            for field, value in stat.items():
                if value:
                    metrics.counter(f"ir_passes/{name}/{field}").inc(value)


def run_passes(block: IRBlock, passes=DEFAULT_PASSES,
               validate: str = "off", seed: int = 0) -> IRBlock:
    """Optimize *block* with a pipeline (to fixpoint), optionally
    validating every pass application (see :class:`PassManager`)."""
    return PassManager(passes, validate=validate, seed=seed).run(block)
