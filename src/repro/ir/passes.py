"""Optimization passes over lowered IR blocks.

Classic scalar optimizations, each a pure function
``block -> (new_block, changed)`` that preserves op order and rewrites
stores/roots.  All IR ops are pure, so the legality arguments are
simple: constants fold by the reference semantics of
:func:`repro.ir.ops.execute`; structurally identical ops compute
identical values (CSE); ops reachable from no store/root are dead.

:func:`run_passes` iterates the pipeline to a fixpoint, which makes the
whole pipeline idempotent — a property the test suite checks.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..fixpt import Overflow
from ..fixpt.fixed import FxOverflowError
from .ops import IRBlock, IROp, Store, quantize_raw_at, sign_fold

_CMP = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _rebuild(block: IRBlock, keep: Sequence[bool],
             replace: Dict[int, int]) -> IRBlock:
    """Drop un-kept ops and renumber, following replacement chains."""

    def chase(vid: int) -> int:
        while vid in replace:
            vid = replace[vid]
        return vid

    new_ids: Dict[int, int] = {}
    out = IRBlock()
    for index, op in enumerate(block.ops):
        if not keep[index] or index in replace:
            continue
        args = tuple(new_ids[chase(arg)] for arg in op.args)
        new_ids[index] = out.emit(
            IROp(op.opcode, args, op.attrs, op.frac, op.width))
    out.stores = [Store(s.target, new_ids[chase(s.value)])
                  for s in block.stores]
    out.roots = [new_ids[chase(r)] for r in block.roots]
    return out


def _const_raw(block: IRBlock, vid: int) -> Optional[int]:
    op = block.ops[vid]
    if op.opcode == "const":
        return op.attrs[0]
    return None


def constant_fold(block: IRBlock) -> Tuple[IRBlock, bool]:
    """Evaluate raw-domain ops whose operands are all constants."""
    ops: List[IROp] = []
    out = IRBlock()
    out.ops = ops
    remap: Dict[int, int] = {}
    changed = False

    def const_of(new_id: int) -> Optional[int]:
        op = ops[new_id]
        return op.attrs[0] if op.opcode == "const" else None

    for op in block.ops:
        args = tuple(remap[a] for a in op.args)
        raws = [const_of(a) for a in args]
        folded: Optional[int] = None
        code = op.opcode
        if all(raw is not None for raw in raws) and op.frac is not None:
            a = raws
            if code == "add":
                folded = a[0] + a[1]
            elif code == "sub":
                folded = a[0] - a[1]
            elif code == "mul":
                folded = a[0] * a[1]
            elif code == "neg":
                folded = -a[0]
            elif code == "abs":
                folded = abs(a[0])
            elif code == "shl":
                folded = a[0] << op.attrs[0]
            elif code == "ashr":
                folded = a[0] >> op.attrs[0]
            elif code == "retag":
                folded = a[0]
            elif code == "cmp":
                folded = 1 if _CMP[op.attrs[0]](a[0], a[1]) else 0
            elif code in ("band", "bor", "bxor"):
                wl, signed = op.attrs
                mask = (1 << wl) - 1
                x, y = a[0] & mask, a[1] & mask
                raw = x & y if code == "band" else (
                    x | y if code == "bor" else x ^ y)
                folded = sign_fold(raw, wl, signed)
            elif code == "bnot":
                folded = sign_fold(~a[0], *op.attrs)
            elif code == "bitsel":
                folded = (a[0] >> op.attrs[0]) & 1
            elif code == "slice":
                hi, lo = op.attrs
                folded = (a[0] >> lo) & ((1 << (hi - lo + 1)) - 1)
            elif code == "concat":
                folded = 0
                for raw, width in zip(a, op.attrs):
                    folded = (folded << width) | (raw & ((1 << width) - 1))
            elif code == "quantize":
                src_frac = ops[args[0]].frac
                if src_frac is not None:
                    try:
                        folded = quantize_raw_at(a[0], src_frac, op.attrs[0])
                    except FxOverflowError:
                        # Overflow.ERROR must keep raising at run time.
                        folded = None
        if code == "mux" and op.frac is not None:
            sel = const_of(args[0])
            if sel is not None:
                remap[len(remap)] = args[1] if sel else args[2]
                changed = True
                continue
        if folded is None:
            remap[len(remap)] = out.emit(
                IROp(code, args, op.attrs, op.frac, op.width))
        else:
            remap[len(remap)] = out.emit(
                IROp("const", (), (folded,), op.frac, op.width))
            changed = True
    out.stores = [Store(s.target, remap[s.value]) for s in block.stores]
    out.roots = [remap[r] for r in block.roots]
    return out, changed


def algebraic_simplify(block: IRBlock) -> Tuple[IRBlock, bool]:
    """Strength reductions and identities on raw-domain ops.

    ``x+0``/``x-0`` -> x, ``0-x`` -> neg, ``x*1`` -> retag, ``x*0`` -> 0,
    ``x*2**k`` -> shl, shift-by-0 -> x, ``mux(s,t,t)`` -> t, constant-
    condition mux -> branch, no-op retag -> x, and dropping quantizes
    whose operand is already exactly in the target format (a prior
    quantize into the same format, or a read of a signal committed in
    it).  A value only substitutes directly when its frac matches the
    replaced op's; otherwise a ``retag`` keeps downstream alignment
    metadata honest.  Dead operands left behind are dce's job.
    """
    out = IRBlock()
    remap: Dict[int, int] = {}
    changed = False

    def op_of(new_id: int) -> IROp:
        return out.ops[new_id]

    def const_raw(new_id: int) -> Optional[int]:
        op = op_of(new_id)
        if op.opcode == "const" and op.frac is not None:
            return op.attrs[0]
        return None

    def substitute(new_id: int, frac, width: int) -> int:
        """Reuse *new_id* for the current op, retagging if fracs differ."""
        nonlocal changed
        changed = True
        if op_of(new_id).frac == frac:
            return new_id
        return out.emit(IROp("retag", (new_id,), (), frac, width))

    for op in block.ops:
        args = tuple(remap[a] for a in op.args)
        code = op.opcode
        result: Optional[int] = None
        if op.frac is not None:
            if code in ("add", "sub"):
                la, ra = const_raw(args[0]), const_raw(args[1])
                if ra == 0:
                    result = substitute(args[0], op.frac, op.width)
                elif la == 0 and code == "add":
                    result = substitute(args[1], op.frac, op.width)
                elif la == 0 and code == "sub":
                    changed = True
                    result = out.emit(
                        IROp("neg", (args[1],), (), op.frac, op.width))
            elif code == "mul":
                for this, other in ((args[0], args[1]), (args[1], args[0])):
                    raw = const_raw(this)
                    if raw == 0:
                        changed = True
                        result = out.emit(
                            IROp("const", (), (0,), op.frac, op.width))
                        break
                    if raw is not None and raw > 0 and raw & (raw - 1) == 0:
                        # Multiply by a raw power of two: shift the other
                        # operand; the product's binary point (sum of the
                        # operand fracs) is recorded on the new op.
                        bits = raw.bit_length() - 1
                        if bits == 0:
                            result = substitute(other, op.frac, op.width)
                        else:
                            changed = True
                            result = out.emit(IROp(
                                "shl", (other,), (bits,), op.frac,
                                op_of(other).width + bits))
                        break
            elif code in ("shl", "ashr") and op.attrs[0] == 0:
                result = substitute(args[0], op.frac, op.width)
            elif code == "retag" and op_of(args[0]).frac == op.frac:
                changed = True
                result = args[0]
            elif code == "mux":
                sel = const_raw(args[0])
                if sel is not None:
                    result = substitute(args[1] if sel else args[2],
                                        op.frac, op.width)
                elif args[1] == args[2]:
                    result = substitute(args[1], op.frac, op.width)
            elif code == "quantize":
                fmt = op.attrs[0]
                src = op_of(args[0])
                already_exact = (
                    (src.opcode == "quantize" and src.attrs[0] == fmt) or
                    (src.opcode == "read" and src.attrs[0].fmt == fmt)
                )
                if already_exact:
                    # The operand is a committed value of exactly this
                    # format, hence in range for every overflow mode.
                    changed = True
                    result = args[0]
        if result is None:
            result = out.emit(IROp(code, args, op.attrs, op.frac, op.width))
        remap[len(remap)] = result
    out.stores = [Store(s.target, remap[s.value]) for s in block.stores]
    out.roots = [remap[r] for r in block.roots]
    return out, changed


def cse(block: IRBlock) -> Tuple[IRBlock, bool]:
    """Merge structurally identical pure ops (value numbering)."""
    out = IRBlock()
    remap: Dict[int, int] = {}
    seen: Dict[tuple, int] = {}
    changed = False
    for index, op in enumerate(block.ops):
        args = tuple(remap[a] for a in op.args)
        key = (op.opcode, args, op.attrs, op.frac, op.width)
        got = seen.get(key)
        if got is not None:
            remap[index] = got
            changed = True
            continue
        new_id = out.emit(IROp(op.opcode, args, op.attrs, op.frac, op.width))
        seen[key] = new_id
        remap[index] = new_id
    out.stores = [Store(s.target, remap[s.value]) for s in block.stores]
    out.roots = [remap[r] for r in block.roots]
    return out, changed


def dce(block: IRBlock) -> Tuple[IRBlock, bool]:
    """Drop ops not reachable from any store or root."""
    live = [False] * len(block.ops)
    work = [s.value for s in block.stores] + list(block.roots)
    while work:
        vid = work.pop()
        if live[vid]:
            continue
        live[vid] = True
        work.extend(block.ops[vid].args)
    if all(live):
        return block, False
    return _rebuild(block, live, {}), True


#: The default pipeline, in application order.
DEFAULT_PASSES: Tuple[Tuple[str, Callable], ...] = (
    ("constant_fold", constant_fold),
    ("algebraic_simplify", algebraic_simplify),
    ("cse", cse),
    ("dce", dce),
)


class PassManager:
    """Run a pass sequence to fixpoint (bounded) over IR blocks."""

    def __init__(self, passes: Sequence[Tuple[str, Callable]] = DEFAULT_PASSES,
                 max_iterations: int = 8):
        self.passes = list(passes)
        self.max_iterations = max_iterations

    def run(self, block: IRBlock) -> IRBlock:
        for _ in range(self.max_iterations):
            any_change = False
            for _name, fn in self.passes:
                block, changed = fn(block)
                any_change = any_change or changed
            if not any_change:
                break
        return block


def run_passes(block: IRBlock,
               passes: Sequence[Tuple[str, Callable]] = DEFAULT_PASSES) -> IRBlock:
    """Optimize *block* with the default pipeline (to fixpoint)."""
    return PassManager(passes).run(block)
