"""System- and process-scope rules: wiring, clocking, and firing rules.

These are the checks that need to see more than one SFG at a time — the
paper's system machine model (section 2) gives the linter the wiring
(ports and channels), the clock bindings, and the data-flow firing
contracts to judge against.
"""

from __future__ import annotations

import inspect
from typing import Dict, Iterator, List, Set, Tuple

from ..core.process import Process, TimedProcess, UntimedProcess
from ..core.sfg import SFG, constructed_sfgs
from ..core.signal import Register, Sig
from ..core.system import System
from .diagnostics import Diagnostic, ERROR, WARNING
from .rule import LintContext, Rule, register


def _process_sfgs(process: Process) -> List[SFG]:
    """The SFGs a process may execute (duck-typed: untimed hybrids too)."""
    all_sfgs = getattr(process, "all_sfgs", None)
    return list(all_sfgs()) if callable(all_sfgs) else []


@register
class UnconnectedPort(Rule):
    code = "L301"
    name = "unconnected-port"
    scope = "system"
    severity = WARNING
    description = "a process port is wired to no channel"

    def check(self, system: System, ctx: LintContext) -> Iterator[Diagnostic]:
        for port in system.unconnected_ports():
            yield self.diag(
                f"port {port.process.name}.{port.name} is not connected",
                obj=port)


@register
class MultiDrivenRegister(Rule):
    code = "L302"
    name = "multi-driven-register"
    scope = "system"
    severity = ERROR
    description = "one register is driven from multiple SFGs that co-execute"

    def check(self, system: System, ctx: LintContext) -> Iterator[Diagnostic]:
        # Register -> [(process, sfg, assignment)] across the whole system.
        drivers: Dict[Register, List[Tuple[Process, SFG, object]]] = {}
        for process in system.processes:
            for sfg in _process_sfgs(process):
                for assignment in sfg.assignments:
                    if assignment.target.is_register():
                        drivers.setdefault(assignment.target, []).append(
                            (process, sfg, assignment))

        for register, sites in drivers.items():
            processes = {process for process, _sfg, _a in sites}
            if len(processes) > 1:
                names = ", ".join(sorted(
                    f"{p.name}/{s.name}" for p, s, _a in sites))
                yield self.diag(
                    f"register {register.name!r} is driven from multiple "
                    f"processes ({names}); a register belongs to exactly one "
                    "component",
                    obj=register, loc=sites[1][2].loc)

        # Within one process: SFGs selected in the same cycle must not
        # both drive the same register.  Static SFGs run every cycle, so
        # they co-execute with every transition's action SFGs.
        for process in system.processes:
            fsm = getattr(process, "fsm", None)
            static = tuple(getattr(process, "static_sfgs", ()))
            co_sets: List[Tuple[SFG, ...]] = []
            if fsm is not None:
                for transition in fsm.transitions:
                    co_sets.append(tuple(dict.fromkeys(
                        tuple(transition.sfgs) + static)))
            elif static:
                co_sets.append(static)
            reported: Set[Tuple[Register, SFG, SFG]] = set()
            for co_set in co_sets:
                seen: Dict[Register, SFG] = {}
                for sfg in co_set:
                    for assignment in sfg.assignments:
                        target = assignment.target
                        if not target.is_register():
                            continue
                        first = seen.get(target)
                        if first is None:
                            seen[target] = sfg
                        elif first is not sfg:
                            key = (target, first, sfg)
                            if key in reported:
                                continue
                            reported.add(key)
                            yield self.diag(
                                f"process {process.name!r}: register "
                                f"{target.name!r} is driven by both SFG "
                                f"{first.name!r} and SFG {sfg.name!r} in the "
                                "same cycle",
                                obj=target, loc=assignment.loc)


@register
class ClockDomainMismatch(Rule):
    code = "L303"
    name = "clock-domain-mismatch"
    scope = "system"
    severity = WARNING
    description = "a channel connects timed processes on different clocks"

    def check(self, system: System, ctx: LintContext) -> Iterator[Diagnostic]:
        for channel in system.channels:
            producer = channel.producer
            if producer is None or not isinstance(producer.process,
                                                  TimedProcess):
                continue
            for consumer in channel.consumers:
                if not isinstance(consumer.process, TimedProcess):
                    continue
                if consumer.process.clk is not producer.process.clk:
                    yield self.diag(
                        f"channel {channel.name!r} crosses clock domains: "
                        f"{producer.process.name} runs on "
                        f"{producer.process.clk.name!r} but "
                        f"{consumer.process.name} runs on "
                        f"{consumer.process.clk.name!r} (no synchronizer is "
                        "modeled)",
                        obj=consumer)


@register
class ForeignClockRegister(Rule):
    code = "L304"
    name = "foreign-clock-register"
    scope = "system"
    severity = WARNING
    description = "an SFG uses a register bound to another process's clock"

    def check(self, system: System, ctx: LintContext) -> Iterator[Diagnostic]:
        for process in system.processes:
            clk = getattr(process, "clk", None)
            if clk is None:
                continue
            for sfg in _process_sfgs(process):
                for register in sfg.registers():
                    if register.clk is not clk:
                        yield self.diag(
                            f"process {process.name!r}: SFG {sfg.name!r} uses "
                            f"register {register.name!r} clocked by "
                            f"{register.clk.name!r}, not the process clock "
                            f"{clk.name!r}",
                            obj=register)


@register
class UnreferencedSfg(Rule):
    code = "L305"
    name = "unreferenced-sfg"
    scope = "system"
    severity = WARNING
    description = "an SFG shares the system's signals but nothing executes it"

    def check(self, system: System, ctx: LintContext) -> Iterator[Diagnostic]:
        reachable: Set[SFG] = set()
        for process in system.processes:
            reachable.update(_process_sfgs(process))
        system_sigs: Set[Sig] = set()
        for sfg in reachable:
            system_sigs |= sfg.targets()
            for assignment in sfg.assignments:
                system_sigs |= assignment.reads()
        for process in system.processes:
            for port in process.ports.values():
                if port.sig is not None:
                    system_sigs.add(port.sig)
        if not system_sigs:
            return
        for sfg in constructed_sfgs():
            if sfg in reachable or not sfg.assignments:
                continue
            touched: Set[Sig] = set(sfg.targets())
            for assignment in sfg.assignments:
                touched |= assignment.reads()
            if touched & system_sigs:
                yield self.diag(
                    f"SFG {sfg.name!r} shares signals with system "
                    f"{system.name!r} but is referenced by no FSM transition "
                    "or process (forgot to wire it into a transition?)",
                    obj=sfg)


@register
class FiringArityMismatch(Rule):
    code = "L306"
    name = "firing-arity-mismatch"
    scope = "process"
    severity = ERROR
    description = "an untimed process's behavior() cannot bind its ports"

    def check(self, process: Process, ctx: LintContext) -> Iterator[Diagnostic]:
        if not isinstance(process, UntimedProcess):
            return
        func = getattr(process, "_func", None) or process.behavior
        try:
            signature = inspect.signature(func)
        except (TypeError, ValueError):  # builtins and C callables
            return
        params = signature.parameters
        if any(p.kind is inspect.Parameter.VAR_KEYWORD
               for p in params.values()):
            return  # **kwargs binds anything
        accepted = {name for name, p in params.items()
                    if p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                                  inspect.Parameter.KEYWORD_ONLY)}
        port_names = {port.name for port in process.in_ports()}
        for missing in sorted(port_names - accepted):
            yield self.diag(
                f"process {process.name!r}: behavior() does not accept a "
                f"{missing!r} argument, but the process declares input port "
                f"{missing!r} — firing would raise TypeError",
                obj=process.port(missing))
        required = {name for name, p in params.items()
                    if p.default is inspect.Parameter.empty
                    and p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                                   inspect.Parameter.KEYWORD_ONLY)}
        for extra in sorted(required - port_names):
            yield self.diag(
                f"process {process.name!r}: behavior() requires argument "
                f"{extra!r} but no input port of that name exists — firing "
                "would raise TypeError",
                obj=process)
