"""Interval-analysis rules: overflow proofs on lowered SFGs.

Each SFG is lowered to the shared three-address IR (the same lowering
every back-end consumes, so the analysis judges exactly the arithmetic
the hardware will do) and swept by :mod:`repro.lint.interval`.  Three
rules interpret the findings:

* **L401 guaranteed-overflow** — every reachable value overflows the
  target format.  An error for ``Overflow.ERROR`` formats (simulation is
  guaranteed to raise) and a warning for saturate/wrap formats (the
  signal can never carry its nominal range).
* **L402 possible-overflow** — some reachable value overflows an
  ``Overflow.ERROR`` format, so simulation *can* raise ``FxOverflowError``
  depending on data.  Saturating/wrapping formats are not reported:
  partial-range clipping is ordinary fixed-point design.
* **L403 quantize-collapse** — a quantize step so coarse that the whole
  (non-constant) source range lands on one constant: the wordlength
  boundary destroys all information.

**L404 provably-constant** reports stores whose committed value the
analysis pins to a single constant even though the expression reads
signals — dead logic the IR constant folder cannot prove (it only folds
literal subtrees).
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..core.errors import ReproError
from ..core.sfg import SFG
from ..core.srcloc import SrcLoc
from ..fixpt import Overflow
from ..ir.lower import lower_sfg
from ..ir.ops import IRBlock
from .diagnostics import Diagnostic, ERROR, INFO, WARNING
from .interval import Analysis, analyze, describe_format, minimal_format
from .rule import LintContext, Rule, register


def suggest_format(finding) -> str:
    """The minimal-format advice appended to overflow diagnostics.

    Computed from the finding's value interval with
    :func:`repro.lint.interval.minimal_format`, so L4xx overflow advice
    and the L5xx bit rules quote the same numbers.
    """
    wl, iwl, signed = minimal_format(finding.value, finding.fmt)
    return f"; {describe_format(wl, iwl, signed)} would hold the range"


def analyze_sfg(sfg: SFG) -> Optional[Analysis]:
    """Lower *sfg* and run the interval analysis (None when not lowerable)."""
    try:
        block = lower_sfg(sfg)
    except ReproError:
        return None  # loops / illegal float ops: other rules own those
    return analyze(block)


def _loc_of(block: IRBlock, vid: int, sfg: SFG) -> Optional[SrcLoc]:
    """Best source location for value id *vid*: its own, else the SFG's."""
    loc = block.locs.get(vid)
    if loc is not None:
        return loc
    # Walk back through single-operand alignment ops the lowerer inserted.
    seen = set()
    while vid not in seen:
        seen.add(vid)
        op = block.ops[vid]
        if not op.args:
            break
        vid = op.args[0]
        loc = block.locs.get(vid)
        if loc is not None:
            return loc
    return getattr(sfg, "loc", None)


def _ancestors(block: IRBlock, vid: int) -> set:
    """*vid* plus every value id it transitively depends on."""
    seen = set()
    stack = [vid]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        stack.extend(block.ops[current].args)
    return seen


class _IntervalRule(Rule):
    scope = "sfg"

    def check(self, sfg: SFG, ctx: LintContext) -> Iterator[Diagnostic]:
        if not ctx.config.interval_analysis:
            return
        analysis = ctx.interval_analysis(sfg)
        if analysis is None:
            return
        yield from self.judge(sfg, analysis, ctx)

    def judge(self, sfg: SFG, analysis, ctx) -> Iterator[Diagnostic]:
        raise NotImplementedError


@register
class GuaranteedOverflow(_IntervalRule):
    code = "L401"
    name = "guaranteed-overflow"
    severity = WARNING
    description = "every reachable value overflows the target format"

    def judge(self, sfg: SFG, analysis: Analysis,
              ctx: LintContext) -> Iterator[Diagnostic]:
        for finding in analysis.findings:
            if finding.kind != "overflow" or not finding.certain:
                continue
            severity = ERROR if finding.fmt.overflow is Overflow.ERROR \
                else self.severity
            yield self.diag(
                f"SFG {sfg.name!r}: {finding.describe()}"
                f"{suggest_format(finding)}",
                obj=sfg, loc=_loc_of(analysis.block, finding.vid, sfg),
                severity=severity)


@register
class PossibleOverflow(_IntervalRule):
    code = "L402"
    name = "possible-overflow"
    severity = WARNING
    description = "an Overflow.ERROR format can overflow on reachable data"

    def judge(self, sfg: SFG, analysis: Analysis,
              ctx: LintContext) -> Iterator[Diagnostic]:
        for finding in analysis.findings:
            if (finding.kind != "overflow" or finding.certain
                    or finding.fmt.overflow is not Overflow.ERROR):
                continue
            yield self.diag(
                f"SFG {sfg.name!r}: {finding.describe()}; simulation can "
                f"raise FxOverflowError{suggest_format(finding)}",
                obj=sfg, loc=_loc_of(analysis.block, finding.vid, sfg))


@register
class QuantizeCollapse(_IntervalRule):
    code = "L403"
    name = "quantize-collapse"
    severity = WARNING
    description = "a quantize step maps the whole value range to one constant"

    def judge(self, sfg: SFG, analysis: Analysis,
              ctx: LintContext) -> Iterator[Diagnostic]:
        for finding in analysis.findings:
            if finding.kind != "collapse":
                continue
            yield self.diag(
                f"SFG {sfg.name!r}: {finding.describe()}",
                obj=sfg, loc=_loc_of(analysis.block, finding.vid, sfg))


@register
class ProvablyConstant(_IntervalRule):
    code = "L404"
    name = "provably-constant"
    severity = INFO
    description = "a store's value is provably one constant (dead logic)"

    def judge(self, sfg: SFG, analysis: Analysis,
              ctx: LintContext) -> Iterator[Diagnostic]:
        assignments = sfg.ordered_assignments()
        overflowed = {finding.vid for finding in analysis.findings
                      if finding.kind == "overflow"}
        for index, store in enumerate(analysis.block.stores):
            assignment = assignments[index]
            if not assignment.expr.signals():
                continue  # a literal constant store is intentional
            if overflowed & _ancestors(analysis.block, store.value):
                continue  # the constant is a clamp artifact: L401/L402's find
            interval = analysis.store_interval(index)
            if interval is None or not interval.is_constant:
                continue
            fmt = getattr(store.target, "fmt", None)
            scale = 2.0 ** -fmt.frac_bits if fmt is not None else 1.0
            yield self.diag(
                f"SFG {sfg.name!r}: {store.target.name!r} is provably the "
                f"constant {interval.lo * scale:g} despite reading signals",
                obj=assignment, loc=assignment.loc)
