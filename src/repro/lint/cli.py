"""Command-line lint driver.

``python -m repro.lint <paths>`` imports each Python file (directories
are walked recursively), collects its lintable design objects, and runs
every registered rule over them.  A module chooses what gets linted by
exposing a ``lint_targets()`` function returning design objects
(systems, processes, FSMs or SFGs); without the hook, any module-level
instances of those types are linted.  Modules with nothing to lint are
skipped.

Output is human-readable text (``file:line: severity [code/name]
message``) or, with ``--json``, a machine-readable report for CI.

``--select`` and ``--ignore`` filter diagnostics by code or name prefix
(``--select L5`` keeps the bit-level rules; ``--ignore L301,L504`` drops
specific findings).  Both are repeatable and accept comma-separated
lists; ``--ignore`` wins when a diagnostic matches both.  Unlike
``--disable``, which skips rules before they run, the filters apply to
the finished report — the summary line and exit status see only what
survives.

Exit-code contract (stable; CI scripts may rely on it):

* **0** — every module imported and no *surviving* diagnostic is at or
  above the ``--fail-on`` severity (or ``--fail-on never`` was given).
* **1** — lint ran to completion but at least one surviving diagnostic
  meets the ``--fail-on`` threshold (default: ``error``).
* **2** — a module could not be imported or its ``lint_targets()`` hook
  raised; the report is incomplete and the run is broken regardless of
  ``--fail-on`` or any filters.
"""

from __future__ import annotations

import argparse
import importlib
import importlib.util
import json
import os
import sys
import traceback
from typing import Iterable, List, Optional, Tuple

from ..core.fsm import FSM
from ..core.process import Process
from ..core.sfg import SFG
from ..core.system import System
from .diagnostics import Diagnostic, SEVERITIES, severity_rank
from .linter import Linter
from .rule import LintConfig, all_rules

LINTABLE = (System, Process, FSM, SFG)


def find_modules(paths: Iterable[str]) -> List[str]:
    """Expand files and directories into a sorted list of .py files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = [d for d in dirs if d != "__pycache__"]
                for name in sorted(files):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        elif path.endswith(".py"):
            out.append(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    return sorted(dict.fromkeys(out))


def _package_name(path: str) -> Optional[str]:
    """Dotted module name when *path* sits inside a package tree."""
    path = os.path.abspath(path)
    parts = [os.path.splitext(os.path.basename(path))[0]]
    directory = os.path.dirname(path)
    while os.path.exists(os.path.join(directory, "__init__.py")):
        parts.insert(0, os.path.basename(directory))
        directory = os.path.dirname(directory)
    if len(parts) == 1:
        return None
    if directory not in sys.path:
        sys.path.insert(0, directory)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def load_module(path: str):
    """Import *path* — package-aware so relative imports keep working."""
    dotted = _package_name(path)
    if dotted is not None:
        return importlib.import_module(dotted)
    directory = os.path.dirname(os.path.abspath(path))
    if directory not in sys.path:
        sys.path.insert(0, directory)
    name = "_lint_" + os.path.splitext(os.path.basename(path))[0]
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    except BaseException:
        sys.modules.pop(name, None)
        raise
    return module


def collect_targets(module) -> List[object]:
    """The design objects a module wants linted."""
    hook = getattr(module, "lint_targets", None)
    if callable(hook):
        return list(hook())
    systems = [obj for obj in vars(module).values()
               if isinstance(obj, System)]
    if systems:
        return systems
    return [obj for obj in vars(module).values() if isinstance(obj, LINTABLE)]


def _target_name(target) -> str:
    return f"{type(target).__name__}:{getattr(target, 'name', '?')}"


def lint_paths(paths: Iterable[str],
               config: Optional[LintConfig] = None) -> Tuple[List[dict], int]:
    """Lint every module under *paths*.

    Returns ``(reports, broken)`` where each report is ``{"path", "targets",
    "diagnostics"}`` (diagnostics as :class:`Diagnostic` objects) and
    *broken* counts modules that failed to import or collect.
    """
    linter = Linter(config=config)
    reports: List[dict] = []
    broken = 0
    for path in find_modules(paths):
        report = {"path": path, "targets": [], "diagnostics": [], "error": None}
        try:
            module = load_module(path)
            targets = collect_targets(module)
        except BaseException:
            report["error"] = traceback.format_exc(limit=4)
            broken += 1
            reports.append(report)
            continue
        if not targets:
            continue
        for target in targets:
            report["targets"].append(_target_name(target))
            report["diagnostics"].extend(linter.lint(target))
        reports.append(report)
    return reports, broken


def _matches(diagnostic: Diagnostic, prefixes: List[str]) -> bool:
    return any(diagnostic.code.startswith(prefix)
               or diagnostic.name.startswith(prefix)
               for prefix in prefixes)


def filter_diagnostics(diagnostics: List[Diagnostic],
                       select: List[str],
                       ignore: List[str]) -> List[Diagnostic]:
    """Apply the ``--select``/``--ignore`` prefix filters.

    *select*, when non-empty, keeps only diagnostics whose code or name
    starts with one of the prefixes; *ignore* then drops matches (it
    wins over *select*).
    """
    out = diagnostics
    if select:
        out = [d for d in out if _matches(d, select)]
    if ignore:
        out = [d for d in out if not _matches(d, ignore)]
    return out


def _summary(diagnostics: List[Diagnostic]) -> dict:
    counts = {severity: 0 for severity in SEVERITIES}
    for diagnostic in diagnostics:
        counts[diagnostic.severity] += 1
    return counts


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Static analysis for repro designs.")
    parser.add_argument("paths", nargs="*",
                        help="Python files or directories to lint")
    parser.add_argument("--json", action="store_true",
                        help="emit a machine-readable JSON report")
    parser.add_argument("--fail-on", choices=("error", "warning", "never"),
                        default="error",
                        help="lowest severity that fails the run "
                             "(default: error)")
    parser.add_argument("--disable", action="append", default=[],
                        metavar="CODE",
                        help="disable rules by code or name "
                             "(comma-separated, repeatable)")
    parser.add_argument("--select", action="append", default=[],
                        metavar="PREFIX",
                        help="report only diagnostics whose code or name "
                             "starts with PREFIX (comma-separated, "
                             "repeatable; e.g. --select L5)")
    parser.add_argument("--ignore", action="append", default=[],
                        metavar="PREFIX",
                        help="drop diagnostics whose code or name starts "
                             "with PREFIX (comma-separated, repeatable; "
                             "wins over --select)")
    parser.add_argument("--no-interval", action="store_true",
                        help="skip the IR interval-analysis rules")
    parser.add_argument("--no-bits", action="store_true",
                        help="skip the bit-level (known-bits/liveness) rules")
    parser.add_argument("--max-enum-states", type=int, default=4096,
                        metavar="N",
                        help="FSM guard enumeration budget (default 4096)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for cls in all_rules():
            print(f"{cls.code}  {cls.name:24s} {cls.scope:8s} "
                  f"{cls.severity:8s} {cls.description}")
        return 0
    if not args.paths:
        parser.error("no paths given (or use --list-rules)")

    def _split(chunks: List[str]) -> List[str]:
        return [item for chunk in chunks for item in chunk.split(",") if item]

    disabled = _split(args.disable)
    select, ignore = _split(args.select), _split(args.ignore)
    config = LintConfig(disabled=disabled,
                        max_enum_states=args.max_enum_states,
                        interval_analysis=not args.no_interval,
                        bit_analysis=not args.no_bits)
    reports, broken = lint_paths(args.paths, config)
    for report in reports:
        report["diagnostics"] = filter_diagnostics(
            report["diagnostics"], select, ignore)
    diagnostics = [d for report in reports for d in report["diagnostics"]]

    if args.json:
        payload = {
            "reports": [
                {"path": report["path"],
                 "targets": report["targets"],
                 "error": report["error"],
                 "diagnostics": [d.to_dict() for d in report["diagnostics"]]}
                for report in reports],
            "summary": _summary(diagnostics),
            "broken_modules": broken,
        }
        print(json.dumps(payload, indent=2))
    else:
        for report in reports:
            if report["error"] is not None:
                print(f"BROKEN {report['path']}:", file=sys.stderr)
                print(report["error"], file=sys.stderr)
                continue
            for diagnostic in report["diagnostics"]:
                print(diagnostic.format())
        counts = _summary(diagnostics)
        print(f"{len(diagnostics)} diagnostics "
              f"({counts['error']} errors, {counts['warning']} warnings, "
              f"{counts['info']} info) in {len(reports)} modules")

    if broken:
        return 2
    if args.fail_on == "never":
        return 0
    threshold = severity_rank(args.fail_on)
    if any(severity_rank(d.severity) <= threshold for d in diagnostics):
        return 1
    return 0
