"""The pluggable rule base class, registry, and per-run configuration.

A :class:`Rule` declares a stable code, a symbolic name, a default
severity and a *scope* — the kind of design object it inspects (``sfg``,
``fsm``, ``process`` or ``system``).  Registering happens with the
:func:`register` class decorator; the :class:`~repro.lint.linter.Linter`
instantiates every registered rule unless given an explicit subset.

:class:`LintConfig` carries per-run policy: disabled rules, severity
overrides, per-object suppressions, and budgets for the more expensive
analyses (FSM guard enumeration, interval analysis).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Type

from .diagnostics import SEVERITIES, Diagnostic, WARNING

#: Scopes a rule can declare.
SCOPES = ("sfg", "fsm", "process", "system")

_REGISTRY: List[Type["Rule"]] = []


def register(rule_cls: Type["Rule"]) -> Type["Rule"]:
    """Class decorator adding *rule_cls* to the global rule registry."""
    if any(existing.code == rule_cls.code for existing in _REGISTRY):
        raise ValueError(f"duplicate lint rule code {rule_cls.code!r}")
    _REGISTRY.append(rule_cls)
    return rule_cls


def all_rules() -> List[Type["Rule"]]:
    """Every registered rule class, in registration (code) order."""
    return sorted(_REGISTRY, key=lambda cls: cls.code)


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding :class:`Diagnostic` records.  ``check`` receives the object
    matching the rule's scope plus the :class:`LintContext` (config and
    surrounding system, when linting one).
    """

    code: str = ""
    name: str = ""
    scope: str = "sfg"
    severity: str = WARNING
    #: One-line description for ``--list-rules``.
    description: str = ""

    def check(self, obj, ctx: "LintContext") -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diag(self, message: str, obj=None, loc=None,
             severity: Optional[str] = None) -> Diagnostic:
        """Build a diagnostic with this rule's identity filled in."""
        if loc is None:
            loc = getattr(obj, "loc", None)
        return Diagnostic(severity or self.severity, self.code, self.name,
                          message, obj, loc)


class LintConfig:
    """Per-run lint policy."""

    def __init__(self,
                 disabled: Iterable[str] = (),
                 severities: Optional[Dict[str, str]] = None,
                 max_enum_states: int = 4096,
                 interval_analysis: bool = True,
                 bit_analysis: bool = True):
        #: Codes or names of rules to skip entirely.
        self.disabled: Set[str] = set(disabled)
        #: Per-rule severity overrides, keyed by code or name.
        self.severities: Dict[str, str] = dict(severities or {})
        for severity in self.severities.values():
            if severity not in SEVERITIES:
                raise ValueError(f"unknown severity {severity!r}")
        #: State-space budget for FSM guard satisfiability enumeration.
        self.max_enum_states = max_enum_states
        #: Run the IR interval analysis rules.
        self.interval_analysis = interval_analysis
        #: Run the bit-level (known-bits/liveness) analysis rules.
        self.bit_analysis = bit_analysis
        # Object-level suppression: id(obj) -> codes/names.  Strong refs
        # are kept alongside so ids cannot be recycled mid-run.
        self._suppressed: Dict[int, Set[str]] = {}
        self._suppress_refs: List[object] = []

    def disable(self, *codes: str) -> "LintConfig":
        """Disable rules by code or name."""
        self.disabled.update(codes)
        return self

    def override(self, code: str, severity: str) -> "LintConfig":
        """Override one rule's severity (by code or name)."""
        if severity not in SEVERITIES:
            raise ValueError(f"unknown severity {severity!r}")
        self.severities[code] = severity
        return self

    def suppress(self, obj, *codes: str) -> "LintConfig":
        """Suppress specific rules (or all, with no codes) for one object."""
        entry = self._suppressed.setdefault(id(obj), set())
        entry.update(codes or {"*"})
        self._suppress_refs.append(obj)
        return self

    def is_suppressed(self, diagnostic: Diagnostic) -> bool:
        """True when *diagnostic* is disabled or suppressed on its object."""
        if self.disabled & {diagnostic.code, diagnostic.name}:
            return True
        entry = self._suppressed.get(id(diagnostic.obj))
        if entry is None:
            return False
        return bool(entry & {diagnostic.code, diagnostic.name, "*"})

    def effective_severity(self, diagnostic: Diagnostic) -> str:
        """The diagnostic's severity after per-rule overrides."""
        for key in (diagnostic.code, diagnostic.name):
            if key in self.severities:
                return self.severities[key]
        return diagnostic.severity


class LintContext:
    """What a rule can see besides its own object."""

    def __init__(self, config: Optional[LintConfig] = None, system=None):
        self.config = config or LintConfig()
        #: The system being linted, when rules run under ``lint_system``
        #: (lets SFG/FSM rules see wiring context); None for standalone
        #: object lints.
        self.system = system
        self._interval_cache: Dict[int, object] = {}
        self._bits_cache: Dict[int, object] = {}

    def interval_analysis(self, sfg):
        """Cached lower-and-analyze of one SFG (shared by the L40x rules)."""
        key = id(sfg)
        if key not in self._interval_cache:
            from .rules_interval import analyze_sfg

            self._interval_cache[key] = analyze_sfg(sfg)
        return self._interval_cache[key]

    def bits_analysis(self, sfg):
        """Cached lower-and-bit-analyze of one SFG (the L50x rules).

        Liveness demand is seeded from architectural observables only
        (registers and SFG outputs), so internal wires expose their
        truly-dead bits.
        """
        key = id(sfg)
        if key not in self._bits_cache:
            from .rules_bits import analyze_sfg_bits

            self._bits_cache[key] = analyze_sfg_bits(sfg)
        return self._bits_cache[key]
