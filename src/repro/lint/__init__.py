"""Pluggable static analysis for repro designs.

The lint framework subsumes the historical ``repro.core.checks`` module:
rules are classes registered with :func:`repro.lint.rule.register`, the
:class:`Linter` drives them over SFGs, FSMs, processes, and whole
systems, and every :class:`Diagnostic` carries a stable code, a
severity, the offending design object, and the exact ``file:line`` where
the user's DSL code constructed it (captured by
:mod:`repro.core.srcloc`).

Rule families:

* ``L1xx`` (:mod:`.rules_sfg`) — structural SFG checks.
* ``L2xx`` (:mod:`.rules_fsm`) — FSM reachability and determinism.
* ``L3xx`` (:mod:`.rules_system`) — system wiring, clocking, firing rules.
* ``L4xx`` (:mod:`.rules_interval`) — IR interval analysis overflow proofs.
* ``L5xx`` (:mod:`.rules_bits`) — known-bits/bit-liveness wordlength advice.

Run from the command line with ``python -m repro.lint <paths>`` or
``tools/lint.py``.
"""

from .bits import (
    BitsAnalysis,
    KnownBits,
    TOP_BITS,
    WordlengthReport,
    analyze_bits,
    const_bits,
    narrow_block,
    wordlength_report,
)
from .diagnostics import Diagnostic, ERROR, INFO, SEVERITIES, WARNING, \
    severity_rank
from .interval import Analysis, Finding, Interval, TOP, analyze, fmt_interval
from .linter import Linter, lint
from .rule import LintConfig, LintContext, Rule, all_rules, register

# Importing the rule modules populates the registry.
from . import rules_sfg      # noqa: F401  (L1xx)
from . import rules_fsm      # noqa: F401  (L2xx)
from . import rules_system   # noqa: F401  (L3xx)
from . import rules_interval  # noqa: F401  (L4xx)
from . import rules_bits     # noqa: F401  (L5xx)
from .rules_interval import analyze_sfg
from .rules_bits import analyze_sfg_bits

__all__ = [
    "Analysis",
    "BitsAnalysis",
    "Diagnostic",
    "ERROR",
    "Finding",
    "INFO",
    "Interval",
    "KnownBits",
    "LintConfig",
    "LintContext",
    "Linter",
    "Rule",
    "SEVERITIES",
    "TOP",
    "TOP_BITS",
    "WARNING",
    "WordlengthReport",
    "all_rules",
    "analyze",
    "analyze_bits",
    "analyze_sfg",
    "analyze_sfg_bits",
    "const_bits",
    "fmt_interval",
    "lint",
    "narrow_block",
    "register",
    "severity_rank",
    "wordlength_report",
]
