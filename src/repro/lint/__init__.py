"""Pluggable static analysis for repro designs.

The lint framework subsumes the historical ``repro.core.checks`` module:
rules are classes registered with :func:`repro.lint.rule.register`, the
:class:`Linter` drives them over SFGs, FSMs, processes, and whole
systems, and every :class:`Diagnostic` carries a stable code, a
severity, the offending design object, and the exact ``file:line`` where
the user's DSL code constructed it (captured by
:mod:`repro.core.srcloc`).

Rule families:

* ``L1xx`` (:mod:`.rules_sfg`) — structural SFG checks.
* ``L2xx`` (:mod:`.rules_fsm`) — FSM reachability and determinism.
* ``L3xx`` (:mod:`.rules_system`) — system wiring, clocking, firing rules.
* ``L4xx`` (:mod:`.rules_interval`) — IR interval analysis overflow proofs.

Run from the command line with ``python -m repro.lint <paths>`` or
``tools/lint.py``.
"""

from .diagnostics import Diagnostic, ERROR, INFO, SEVERITIES, WARNING, \
    severity_rank
from .interval import Analysis, Finding, Interval, TOP, analyze, fmt_interval
from .linter import Linter, lint
from .rule import LintConfig, LintContext, Rule, all_rules, register

# Importing the rule modules populates the registry.
from . import rules_sfg      # noqa: F401  (L1xx)
from . import rules_fsm      # noqa: F401  (L2xx)
from . import rules_system   # noqa: F401  (L3xx)
from . import rules_interval  # noqa: F401  (L4xx)
from .rules_interval import analyze_sfg

__all__ = [
    "Analysis",
    "Diagnostic",
    "ERROR",
    "Finding",
    "INFO",
    "Interval",
    "LintConfig",
    "LintContext",
    "Linter",
    "Rule",
    "SEVERITIES",
    "TOP",
    "WARNING",
    "all_rules",
    "analyze",
    "analyze_sfg",
    "fmt_interval",
    "lint",
    "register",
    "severity_rank",
]
