"""Diagnostic records: what a lint rule reports.

Every finding carries a stable code (``L204``), a symbolic name
(``shadowed-transition`` — the legacy :mod:`repro.core.checks` code), a
severity, the design object it is about, and the source location of the
DSL construction that caused it (captured by :mod:`repro.core.srcloc`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.srcloc import SrcLoc

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: Severities in decreasing order of gravity.
SEVERITIES = (ERROR, WARNING, INFO)

_RANK = {severity: rank for rank, severity in enumerate(SEVERITIES)}


def severity_rank(severity: str) -> int:
    """0 for error, 1 for warning, 2 for info (for threshold comparisons)."""
    return _RANK[severity]


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a lint rule."""

    severity: str
    code: str          # stable rule code, e.g. "L204"
    name: str          # symbolic slug, e.g. "shadowed-transition"
    message: str
    obj: object = None           # the design object the finding is about
    loc: Optional[SrcLoc] = None  # construction site in user modeling code

    def format(self) -> str:
        """Human-readable one-liner, ``file:line: severity [code] message``."""
        prefix = f"{self.loc.file}:{self.loc.line}: " if self.loc else ""
        return f"{prefix}{self.severity} [{self.code}/{self.name}] {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable form for the CLI's JSON mode."""
        return {
            "severity": self.severity,
            "code": self.code,
            "name": self.name,
            "message": self.message,
            "object": getattr(self.obj, "name", None),
            "file": self.loc.file if self.loc else None,
            "line": self.loc.line if self.loc else None,
        }

    def __str__(self) -> str:
        return self.format()
