"""FSM-scope rules: reachability, determinism, and condition legality.

Beyond the historical checks, this module implements the determinism
analysis the old ``check_fsm`` docstring promised but never performed:
guard conditions are expressions over registered signals with known
fixed-point formats, so for small state spaces the linter *enumerates*
every register valuation and decides satisfiability exactly — reporting
overlapping guards (priority order silently decides) and states whose
guards can all be false at once (a run-time ``SimulationError``).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.fsm import FSM, State, Transition
from ..core.signal import Sig
from ..fixpt import Fx
from .diagnostics import Diagnostic, ERROR, WARNING
from .rule import LintContext, Rule, register


def _reachable(fsm: FSM) -> set:
    seen = {fsm.initial_state}
    frontier = [fsm.initial_state]
    while frontier:
        state = frontier.pop()
        for transition in state.transitions:
            if transition.target not in seen:
                seen.add(transition.target)
                frontier.append(transition.target)
    return seen


def _fmt_value(sig: Sig) -> str:
    value = sig.value
    if isinstance(value, Fx):
        return str(float(value))
    return str(value)


def guard_truth_table(
        transitions: Sequence[Transition],
        budget: int) -> Optional[List[Tuple[Dict[str, str], List[bool]]]]:
    """Enumerate guard truths over every register valuation.

    Returns ``[(valuation, [truth per transition]), ...]`` or None when
    the guards read unregistered/unformatted signals or the state space
    exceeds *budget* (exact analysis declined, not failed).
    """
    sigs = sorted(
        {sig
         for transition in transitions if transition.condition.expr is not None
         for sig in transition.condition.expr.signals()},
        key=lambda s: s.name)
    if any(not sig.is_register() or sig.fmt is None for sig in sigs):
        return None
    total = 1
    for sig in sigs:
        total *= sig.fmt.raw_max - sig.fmt.raw_min + 1
        if total > budget:
            return None
    saved = [sig._value for sig in sigs]
    table: List[Tuple[Dict[str, str], List[bool]]] = []
    try:
        ranges = [range(sig.fmt.raw_min, sig.fmt.raw_max + 1) for sig in sigs]
        for raws in itertools.product(*ranges):
            for sig, raw in zip(sigs, raws):
                sig._value = Fx(fmt=sig.fmt, raw=raw)
            truths = [t.condition.evaluate() for t in transitions]
            valuation = {sig.name: _fmt_value(sig) for sig in sigs}
            table.append((valuation, truths))
    finally:
        for sig, value in zip(sigs, saved):
            sig._value = value
    return table


def _describe(valuation: Dict[str, str]) -> str:
    if not valuation:
        return "always"
    return ", ".join(f"{name}={value}" for name, value in valuation.items())


@register
class NoInitialState(Rule):
    code = "L201"
    name = "no-initial-state"
    scope = "fsm"
    severity = ERROR
    description = "the FSM declares no states"

    def check(self, fsm: FSM, ctx: LintContext) -> Iterator[Diagnostic]:
        if fsm.initial_state is None:
            yield self.diag(f"FSM {fsm.name!r} has no states", obj=fsm)


@register
class UnreachableState(Rule):
    code = "L202"
    name = "unreachable-state"
    scope = "fsm"
    severity = WARNING
    description = "a state cannot be reached from the initial state"

    def check(self, fsm: FSM, ctx: LintContext) -> Iterator[Diagnostic]:
        if fsm.initial_state is None:
            return
        reachable = _reachable(fsm)
        for state in fsm.states:
            if state not in reachable:
                yield self.diag(
                    f"FSM {fsm.name!r}: state {state.name!r} is unreachable",
                    obj=state)


@register
class StuckState(Rule):
    code = "L203"
    name = "stuck-state"
    scope = "fsm"
    severity = ERROR
    description = "a reachable state has no outgoing transitions"

    def check(self, fsm: FSM, ctx: LintContext) -> Iterator[Diagnostic]:
        if fsm.initial_state is None:
            return
        reachable = _reachable(fsm)
        for state in fsm.states:
            if state in reachable and not state.transitions:
                yield self.diag(
                    f"FSM {fsm.name!r}: state {state.name!r} has no outgoing "
                    "transitions",
                    obj=state)


@register
class ShadowedTransition(Rule):
    code = "L204"
    name = "shadowed-transition"
    scope = "fsm"
    severity = WARNING
    description = "a transition can never fire (after an 'always', or 'never')"

    def check(self, fsm: FSM, ctx: LintContext) -> Iterator[Diagnostic]:
        for state in fsm.states:
            always_at: Optional[int] = None
            for index, transition in enumerate(state.transitions):
                condition = transition.condition
                if condition.expr is None and condition.negated:
                    yield self.diag(
                        f"FSM {fsm.name!r}: transition {transition!r} can "
                        "never fire (guard is 'never')",
                        obj=transition)
                    continue
                if always_at is not None:
                    yield self.diag(
                        f"FSM {fsm.name!r}: transition {transition!r} can "
                        "never fire — shadowed by the unconditional "
                        f"transition #{always_at} of state {state.name!r}",
                        obj=transition)
                    continue
                if condition.is_always() and index < len(state.transitions) - 1:
                    always_at = index


@register
class UnregisteredCondition(Rule):
    code = "L205"
    name = "unregistered-condition"
    scope = "fsm"
    severity = ERROR
    description = "a transition guard reads a non-registered signal"

    def check(self, fsm: FSM, ctx: LintContext) -> Iterator[Diagnostic]:
        for transition in fsm.transitions:
            expr = transition.condition.expr
            if expr is None:
                continue
            for sig in sorted(expr.signals(), key=lambda s: s.name):
                if not sig.is_register():
                    yield self.diag(
                        f"FSM {fsm.name!r}: condition of {transition!r} reads "
                        f"non-registered signal {sig.name!r}; conditions must "
                        "be stored in registers",
                        obj=transition)


@register
class OverlappingGuards(Rule):
    code = "L206"
    name = "overlapping-guards"
    scope = "fsm"
    severity = WARNING
    description = "two satisfiable guards of one state can be true together"

    def check(self, fsm: FSM, ctx: LintContext) -> Iterator[Diagnostic]:
        budget = ctx.config.max_enum_states
        for state in fsm.states:
            transitions = state.transitions
            if len(transitions) < 2:
                continue
            table = guard_truth_table(transitions, budget)
            if table is None:
                continue
            for i, j in itertools.combinations(range(len(transitions)), 2):
                first, second = transitions[i], transitions[j]
                # 'always' shadowing is L204's finding, not an overlap.
                if first.condition.is_always() or second.condition.is_always():
                    continue
                if (first.target is second.target
                        and first.sfgs == second.sfgs):
                    continue  # same effect either way: harmless
                witness = next((valuation for valuation, truths in table
                                if truths[i] and truths[j]), None)
                if witness is not None:
                    yield self.diag(
                        f"FSM {fsm.name!r}: guards of {first!r} and "
                        f"{second!r} overlap (e.g. {_describe(witness)}); "
                        "declaration order silently decides",
                        obj=second)


@register
class IncompleteTransitions(Rule):
    code = "L207"
    name = "incomplete-transitions"
    scope = "fsm"
    severity = WARNING
    description = "all guards of a reachable state can be false at once"

    def check(self, fsm: FSM, ctx: LintContext) -> Iterator[Diagnostic]:
        if fsm.initial_state is None:
            return
        budget = ctx.config.max_enum_states
        reachable = _reachable(fsm)
        for state in fsm.states:
            if state not in reachable or not state.transitions:
                continue
            if any(t.condition.is_always() for t in state.transitions):
                continue
            table = guard_truth_table(state.transitions, budget)
            if table is None:
                continue
            witness = next((valuation for valuation, truths in table
                            if not any(truths)), None)
            if witness is not None:
                yield self.diag(
                    f"FSM {fsm.name!r}: no transition of state "
                    f"{state.name!r} is enabled when {_describe(witness)}; "
                    "simulation would raise (add a default 'always' "
                    "transition)",
                    obj=state)
