"""The lint driver: walks design objects, runs rules, applies policy.

:class:`Linter` instantiates every registered rule (or an explicit
subset) and offers one entry point per design-object kind plus a
type-dispatching :meth:`Linter.lint`.  ``lint_system`` is the
workhorse: it visits every process of the system — timed *and* untimed
(hybrid actors are duck-typed through ``fsm``/``all_sfgs`` attributes)
— linting each FSM and SFG exactly once before running the
system-scope rules, then deduplicates, applies suppressions and
severity overrides, and returns diagnostics sorted by severity.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional, Type

from ..core.fsm import FSM
from ..core.process import Process
from ..core.sfg import SFG
from ..core.system import System
from .diagnostics import Diagnostic, severity_rank
from .rule import LintConfig, LintContext, Rule, all_rules


class Linter:
    """Runs lint rules over design objects."""

    def __init__(self, rules: Optional[Iterable[Type[Rule]]] = None,
                 config: Optional[LintConfig] = None):
        self.rules: List[Rule] = [cls() for cls in (rules if rules is not None
                                                    else all_rules())]
        self.config = config or LintConfig()

    def _rules_for(self, scope: str) -> List[Rule]:
        return [rule for rule in self.rules
                if rule.scope == scope
                and not self.config.disabled & {rule.code, rule.name}]

    def _run(self, scope: str, obj, ctx: LintContext) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        for rule in self._rules_for(scope):
            out.extend(rule.check(obj, ctx))
        return out

    def _finish(self, diagnostics: List[Diagnostic]) -> List[Diagnostic]:
        """Dedup, drop suppressed, apply severity overrides, sort."""
        seen = set()
        out: List[Diagnostic] = []
        for diagnostic in diagnostics:
            key = (diagnostic.code, diagnostic.message, diagnostic.loc)
            if key in seen or self.config.is_suppressed(diagnostic):
                continue
            seen.add(key)
            severity = self.config.effective_severity(diagnostic)
            if severity != diagnostic.severity:
                diagnostic = dataclasses.replace(diagnostic, severity=severity)
            out.append(diagnostic)
        out.sort(key=lambda d: (severity_rank(d.severity), d.code,
                                d.loc or ("", 0), d.message))
        return out

    # -- per-kind entry points --------------------------------------------

    def lint_sfg(self, sfg: SFG,
                 ctx: Optional[LintContext] = None) -> List[Diagnostic]:
        owned = ctx is None
        ctx = ctx or LintContext(self.config)
        found = self._run("sfg", sfg, ctx)
        return self._finish(found) if owned else found

    def lint_fsm(self, fsm: FSM,
                 ctx: Optional[LintContext] = None) -> List[Diagnostic]:
        owned = ctx is None
        ctx = ctx or LintContext(self.config)
        found = self._run("fsm", fsm, ctx)
        for sfg in fsm.sfgs():
            found.extend(self._run("sfg", sfg, ctx))
        return self._finish(found) if owned else found

    def lint_process(self, process: Process,
                     ctx: Optional[LintContext] = None) -> List[Diagnostic]:
        owned = ctx is None
        ctx = ctx or LintContext(self.config)
        found = self._run("process", process, ctx)
        fsm = getattr(process, "fsm", None)
        if fsm is not None:
            found.extend(self._run("fsm", fsm, ctx))
        all_sfgs = getattr(process, "all_sfgs", None)
        if callable(all_sfgs):
            for sfg in all_sfgs():
                found.extend(self._run("sfg", sfg, ctx))
        return self._finish(found) if owned else found

    def lint_system(self, system: System) -> List[Diagnostic]:
        ctx = LintContext(self.config, system=system)
        found = self._run("system", system, ctx)
        for process in system.processes:
            found.extend(self.lint_process(process, ctx))
        return self._finish(found)

    def lint(self, obj) -> List[Diagnostic]:
        """Type-dispatching convenience entry point."""
        if isinstance(obj, System):
            return self.lint_system(obj)
        if isinstance(obj, Process):
            return self.lint_process(obj)
        if isinstance(obj, FSM):
            return self.lint_fsm(obj)
        if isinstance(obj, SFG):
            return self.lint_sfg(obj)
        raise TypeError(f"cannot lint object of type {type(obj).__name__}")


def lint(obj, config: Optional[LintConfig] = None) -> List[Diagnostic]:
    """One-shot convenience: lint *obj* with all registered rules."""
    return Linter(config=config).lint(obj)
