"""Bit-level abstract interpretation over lowered IR blocks.

Where :mod:`repro.lint.interval` reasons about whole-word raw ranges,
this module tracks individual bits, with two cooperating domains:

* **Known bits** (forward).  Each value id maps to a :class:`KnownBits`
  fact — a pair of Python-int masks ``zeros``/``ones`` marking bits
  proved constant on every execution.  Python's unbounded two's
  complement makes the representation exact for the IR's raw integers:
  a *negative* mask claims an infinite tail of high bits (e.g.
  ``zeros = ~0b111`` says the value is a 3-bit unsigned quantity).
  Transfers cover every raw-domain opcode, including the fixed-point
  align/quantize ops the lowerer inserts; ``add``/``sub`` use the
  carry-propagation construction from LLVM's ``KnownBits``.

* **Bit liveness** (backward).  Demand masks flow from the observables
  (stores and roots — exactly what :mod:`repro.ir.equiv` compares)
  back to every operand: a bit is *dead* when flipping it can never
  change any observable.  Demand transfers are deliberately
  unconditional — a saturating or erroring quantize demands its whole
  operand even when the interval proves overflow impossible, because a
  liveness claim must survive arbitrary bit flips, not just reachable
  values (the brute-force harness in ``tests/lint/test_bits.py`` flips
  every claimed-dead bit and checks the observables).

The two domains and the interval domain form a **reduced product**:
each op's interval is recomputed over already-refined operand
intervals, known bits are seeded from the interval's common high bits,
and a finite unknown-mask tightens the interval right back
(:func:`bits_from_interval` / :func:`interval_from_bits`).

On top of the analysis:

* :func:`narrow_block` — the ``narrow_bitwidth`` IR pass body:
  constant-fold anything the product proves constant, rewrite
  provably-in-range quantizes into pure shifts, and relabel every op
  with its minimal width (range-exact, or demand-narrowed plus one
  guard bit so ``numeric_std.resize``'s keep-the-sign truncation stays
  faithful on every demanded bit).  Registered in
  :data:`repro.ir.passes.PIPELINES` as ``"narrow"`` and shipped under
  ``PassManager(validate=...)`` translation-validation obligations.
* :func:`wordlength_report` — per-signal minimal ``(wl, iwl)`` rows
  for a design, the static seed for wordlength exploration; publishes
  to an obs metrics registry via the duck-typed ``counter().inc()``
  protocol.

Layering: this module may import only ``repro.core``, ``repro.ir``,
``repro.fixpt`` and :mod:`repro.lint.interval` (contract #7 in
``tools/check_layering.py``) — it is the one lint module
``repro.ir.passes`` reaches (lazily), mirroring ``ir/equiv.py``'s
sanctioned edge onto the interval domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core.errors import ReproError
from ..fixpt import FxFormat, Overflow, Rounding
from ..ir.ops import IRBlock, IROp, LEAF_OPS, Store
from .interval import (
    Analysis,
    Interval,
    analyze,
    fmt_interval,
    minimal_format,
    shifted_interval,
    signed_width,
    transfer,
)


def _mask(bits: int) -> int:
    return (1 << bits) - 1


@dataclass(frozen=True)
class KnownBits:
    """Bits proved constant: ``zeros`` known 0, ``ones`` known 1.

    Masks are plain Python ints in two's complement, so a negative mask
    represents an infinite run of known high bits.  The concretization
    is ``{v : v & zeros == 0 and ~v & ones == 0}``; ``zeros & ones``
    must be empty.
    """

    zeros: int
    ones: int

    def __post_init__(self) -> None:
        if self.zeros & self.ones:
            raise ValueError(
                f"contradictory known bits: zeros={self.zeros:#x} "
                f"ones={self.ones:#x}")

    @property
    def known(self) -> int:
        return self.zeros | self.ones

    @property
    def unknown(self) -> int:
        return ~(self.zeros | self.ones)

    @property
    def is_constant(self) -> bool:
        return self.zeros | self.ones == -1

    @property
    def value(self) -> int:
        """The constant value (only valid when :attr:`is_constant`)."""
        return self.ones

    def contains(self, raw: int) -> bool:
        """True when *raw* is compatible with every known bit."""
        return (raw & self.zeros) == 0 and (~raw & self.ones) == 0

    def __str__(self) -> str:
        if self.is_constant:
            return f"const {self.ones}"
        unknown = self.unknown
        if unknown < 0:
            return f"zeros={self.zeros:#x} ones={self.ones:#x}"
        bits = max(unknown.bit_length(), self.ones.bit_length(), 1)
        digits = []
        for i in reversed(range(bits)):
            bit = 1 << i
            digits.append("?" if unknown & bit
                          else ("1" if self.ones & bit else "0"))
        return "…" + "".join(digits)


#: No bit known (the lattice top).
TOP_BITS = KnownBits(0, 0)


def const_bits(raw: int) -> KnownBits:
    """The exact fact for a constant raw value."""
    return KnownBits(~raw, raw)


def join_bits(a: KnownBits, b: KnownBits) -> KnownBits:
    """Union of concretizations: keep only bits known in both."""
    return KnownBits(a.zeros & b.zeros, a.ones & b.ones)


def meet_bits(a: KnownBits, b: KnownBits) -> KnownBits:
    """Intersection of two sound facts.

    Contradictory bits (possible only on vacuous paths, e.g. after a
    quantize that raises on every input) fall back to unknown rather
    than asserting an empty set.
    """
    zeros = a.zeros | b.zeros
    ones = a.ones | b.ones
    conflict = zeros & ones
    return KnownBits(zeros & ~conflict, ones & ~conflict)


def bits_from_interval(interval: Optional[Interval]) -> KnownBits:
    """Common high bits every raw in *interval* shares."""
    if interval is None:
        return TOP_BITS
    lo, hi = interval.lo, interval.hi
    if lo == hi:
        return const_bits(lo)
    diff = lo ^ hi
    if diff < 0:
        return TOP_BITS  # signs differ: no common high bits
    high = ~_mask(diff.bit_length())
    common = lo & high
    return KnownBits(~common & high, common & high)


def interval_from_bits(kb: KnownBits) -> Optional[Interval]:
    """The raw range implied by *kb* (None when the sign is unknown)."""
    unknown = kb.unknown
    if unknown < 0:
        return None
    return Interval(kb.ones, kb.ones | unknown)


def _tighten(interval: Optional[Interval],
             kb: KnownBits) -> Optional[Interval]:
    bound = interval_from_bits(kb)
    if bound is None:
        return interval
    if interval is None:
        return bound
    lo, hi = max(interval.lo, bound.lo), min(interval.hi, bound.hi)
    if lo > hi:
        return interval  # vacuous path: keep the base fact
    return Interval(lo, hi)


def _trailing_ones(mask: int) -> Optional[int]:
    """Consecutive set low bits of *mask* (None when infinite)."""
    if mask == -1:
        return None
    return ((~mask) & (mask + 1)).bit_length() - 1


def _not_bits(a: KnownBits) -> KnownBits:
    return KnownBits(a.ones, a.zeros)


def _add_bits(a: KnownBits, b: KnownBits, carry_zero: bool = True,
              carry_one: bool = False) -> KnownBits:
    """Known bits of ``a + b (+ carry)`` by carry propagation.

    The construction from LLVM's ``KnownBits::computeForAddCarry``:
    compute the sum with every unknown bit at its max and at its min;
    wherever both agree *and* all three inputs of that bit position are
    known, the result bit is known.
    """
    psz = ~a.zeros + ~b.zeros + (0 if carry_zero else 1)
    pso = a.ones + b.ones + (1 if carry_one else 0)
    carry_known = ~(psz ^ a.zeros ^ b.zeros) | (pso ^ a.ones ^ b.ones)
    known = a.known & b.known & carry_known
    return KnownBits(~psz & known, pso & known)


def _sub_bits(a: KnownBits, b: KnownBits) -> KnownBits:
    return _add_bits(a, _not_bits(b), carry_zero=False, carry_one=True)


def _neg_bits(a: KnownBits) -> KnownBits:
    return _sub_bits(const_bits(0), a)


def _mul_bits(a: KnownBits, b: KnownBits) -> KnownBits:
    if a.is_constant and b.is_constant:
        return const_bits(a.value * b.value)
    if (a.is_constant and a.value == 0) or (b.is_constant and b.value == 0):
        return const_bits(0)
    # Low-k agreement: the product mod 2**k needs only the operands'
    # low k bits, so when both are fully known the product's low k
    # bits are too.
    ka = _trailing_ones(a.known)
    kb = _trailing_ones(b.known)
    finite = [k for k in (ka, kb) if k is not None]
    k = min(finite) if finite else 0
    if k > 0:
        window = _mask(k)
        low = ((a.ones & window) * (b.ones & window)) & window
        kb_low = KnownBits(~low & window, low)
    else:
        kb_low = TOP_BITS
    # Trailing zeros multiply out: tz(a*b) >= tz(a) + tz(b).
    tz = (_trailing_ones(a.zeros) or 0) + (_trailing_ones(b.zeros) or 0)
    return meet_bits(kb_low, KnownBits(_mask(tz), 0))


def _abs_bits(a: KnownBits) -> KnownBits:
    if a.zeros < 0:  # an infinite known-zero tail: the value is >= 0
        return a
    if a.ones < 0:   # an infinite known-one tail: the value is < 0
        return _neg_bits(a)
    # Negation preserves trailing zeros, so |x| does too.
    return KnownBits(_mask(_trailing_ones(a.zeros) or 0), 0)


def _shl_bits(a: KnownBits, bits: int) -> KnownBits:
    return KnownBits((a.zeros << bits) | _mask(bits), a.ones << bits)


def _ashr_bits(a: KnownBits, bits: int) -> KnownBits:
    return KnownBits(a.zeros >> bits, a.ones >> bits)


def _window_bits(a: KnownBits, wl: int) -> KnownBits:
    """Known bits of ``raw & ((1 << wl) - 1)`` (an unsigned window)."""
    window = _mask(wl)
    return KnownBits((a.zeros & window) | ~window, a.ones & window)


def _fold_bits(kb: KnownBits, wl: int, signed: bool) -> KnownBits:
    """Known bits of ``sign_fold(window_value, wl, signed)``.

    *kb* must be window knowledge (bits at and above *wl* known zero).
    """
    if not signed:
        return kb
    low = _mask(wl - 1)
    top = 1 << (wl - 1)
    zeros, ones = kb.zeros & low, kb.ones & low
    if kb.zeros & top:
        zeros |= ~low
    elif kb.ones & top:
        ones |= ~low
    return KnownBits(zeros, ones)


_CMP_DECIDE = {
    "<": lambda a, b: 1 if a.hi < b.lo else (0 if a.lo >= b.hi else None),
    "<=": lambda a, b: 1 if a.hi <= b.lo else (0 if a.lo > b.hi else None),
    ">": lambda a, b: 1 if a.lo > b.hi else (0 if a.hi <= b.lo else None),
    ">=": lambda a, b: 1 if a.lo >= b.hi else (0 if a.hi < b.lo else None),
}


def _cmp_decide(pyop: str, ia: Optional[Interval], ib: Optional[Interval],
                ka: Optional[KnownBits],
                kb: Optional[KnownBits]) -> Optional[int]:
    """Decide a compare from refined operand facts, when possible."""
    equal = disjoint = None
    if ia is not None and ib is not None:
        if ia.is_constant and ib.is_constant:
            equal = ia.lo == ib.lo
        if ia.hi < ib.lo or ia.lo > ib.hi:
            disjoint = True
        if pyop in _CMP_DECIDE:
            return _CMP_DECIDE[pyop](ia, ib)
    if ka is not None and kb is not None:
        # A bit known 0 on one side and 1 on the other proves inequality.
        if (ka.zeros & kb.ones) | (ka.ones & kb.zeros):
            disjoint = True
    if pyop == "==":
        return 1 if equal else (0 if disjoint else None)
    if pyop == "!=":
        return 0 if equal else (1 if disjoint else None)
    return None


#: The 0/1 fact for undecided compares and bit selects.
_BOOL_BITS = KnownBits(~1, 0)


def _quantize_shift(src_frac: int, fmt: FxFormat) -> int:
    return src_frac - fmt.frac_bits


def _quantize_safe(source: Optional[Interval], src_frac: Optional[int],
                   fmt: FxFormat) -> bool:
    """True when no reachable value can overflow the quantize."""
    if source is None or src_frac is None:
        return False
    value = shifted_interval(source, _quantize_shift(src_frac, fmt),
                             fmt.rounding)
    return fmt.raw_min <= value.lo and value.hi <= fmt.raw_max


def _quantize_bits(src: KnownBits, source_interval: Optional[Interval],
                   src_frac: int, fmt: FxFormat) -> KnownBits:
    shift = _quantize_shift(src_frac, fmt)
    if shift < 0:
        shifted = _shl_bits(src, -shift)
    elif shift == 0:
        shifted = src
    elif fmt.rounding is Rounding.ROUND:
        shifted = _ashr_bits(_add_bits(src, const_bits(1 << (shift - 1))),
                             shift)
    else:
        shifted = _ashr_bits(src, shift)
    if _quantize_safe(source_interval, src_frac, fmt):
        return shifted
    if fmt.overflow is Overflow.SATURATE:
        return join_bits(join_bits(shifted, const_bits(fmt.raw_min)),
                         const_bits(fmt.raw_max))
    if fmt.overflow is Overflow.WRAP:
        return _fold_bits(_window_bits(shifted, fmt.wl), fmt.wl, fmt.signed)
    return shifted  # ERROR: completing executions took the plain shift


def _transfer_bits(block: IRBlock, op: IROp, vid: int,
                   known: List[KnownBits],
                   intervals: List[Optional[Interval]]) -> KnownBits:
    """Forward known-bits transfer for one op over refined operand facts."""
    code = op.opcode
    if op.frac is None:
        return TOP_BITS
    args = op.args
    kbs = [known[a] for a in args]

    if code == "const":
        return const_bits(op.attrs[0])
    if code == "read":
        return TOP_BITS  # the interval reduction supplies format bits
    if code == "add":
        return _add_bits(kbs[0], kbs[1])
    if code == "sub":
        return _sub_bits(kbs[0], kbs[1])
    if code == "mul":
        return _mul_bits(kbs[0], kbs[1])
    if code == "neg":
        return _neg_bits(kbs[0])
    if code == "abs":
        return _abs_bits(kbs[0])
    if code == "shl":
        return _shl_bits(kbs[0], op.attrs[0])
    if code == "ashr":
        return _ashr_bits(kbs[0], op.attrs[0])
    if code == "retag":
        return kbs[0]
    if code == "cmp":
        decided = _cmp_decide(op.attrs[0], intervals[args[0]],
                              intervals[args[1]], kbs[0], kbs[1])
        return _BOOL_BITS if decided is None else const_bits(decided)
    if code in ("band", "bor", "bxor"):
        wl, signed = op.attrs
        wa, wb = _window_bits(kbs[0], wl), _window_bits(kbs[1], wl)
        if code == "band":
            out = KnownBits(wa.zeros | wb.zeros, wa.ones & wb.ones)
        elif code == "bor":
            out = KnownBits(wa.zeros & wb.zeros, wa.ones | wb.ones)
        else:
            agreed = wa.known & wb.known
            bits = wa.ones ^ wb.ones
            out = KnownBits(~bits & agreed, bits & agreed)
        return _fold_bits(out, wl, signed)
    if code == "bnot":
        wl, signed = op.attrs
        window = _mask(wl)
        src = kbs[0]
        out = KnownBits((src.ones & window) | ~window, src.zeros & window)
        return _fold_bits(out, wl, signed)
    if code == "mux":
        sel = intervals[args[0]]
        if sel is not None and sel.is_constant:
            return kbs[1] if sel.lo else kbs[2]
        return join_bits(kbs[1], kbs[2])
    if code == "bitsel":
        index = op.attrs[0]
        src = kbs[0]
        if (src.zeros >> index) & 1:
            return const_bits(0)
        if (src.ones >> index) & 1:
            return const_bits(1)
        return _BOOL_BITS
    if code == "slice":
        hi, lo = op.attrs
        window = _mask(hi - lo + 1)
        src = kbs[0]
        return KnownBits(((src.zeros >> lo) & window) | ~window,
                         (src.ones >> lo) & window)
    if code == "concat":
        zeros, ones = -1, 0
        position = sum(op.attrs)
        for kb, width in zip(kbs, op.attrs):
            position -= width
            window = _mask(width)
            region = window << position
            zeros = (zeros & ~region) | ((kb.zeros & window) << position)
            ones |= (kb.ones & window) << position
        return KnownBits(zeros, ones)
    if code == "quantize":
        src_op = block.ops[args[0]]
        if src_op.frac is None:
            return TOP_BITS  # float source: the interval bounds it
        return _quantize_bits(kbs[0], intervals[args[0]], src_op.frac,
                              op.attrs[0])
    if code == "toint":
        return TOP_BITS
    return TOP_BITS


def _below(demand: int) -> int:
    """Every bit at or below the highest demanded bit (carry closure)."""
    if demand == 0:
        return 0
    if demand < 0:
        return -1
    return _mask(demand.bit_length())


def _window_demand(demand: int, wl: int, signed: bool) -> int:
    """Demand on a sign-folded window value, mapped inside the window."""
    if not signed:
        return demand & _mask(wl)
    low = demand & _mask(wl - 1)
    if demand >> (wl - 1):
        low |= 1 << (wl - 1)  # every replicated bit is the fold bit
    return low


def store_window(target) -> Optional[int]:
    """The demand a store places on its committed value.

    The lowered value is already quantized into the target's format, so
    its low ``wl`` bits determine it exactly; unformatted targets demand
    everything.
    """
    fmt = getattr(target, "fmt", None)
    if fmt is None:
        return -1
    return _mask(fmt.wl)


def _backward_demand(block: IRBlock, known: List[KnownBits],
                     store_demand: Optional[Callable[[Store],
                                                     Optional[int]]] = None
                     ) -> List[int]:
    """Backward bit-liveness: demand masks from observables to leaves."""
    demand = [0] * len(block.ops)
    for root in block.roots:
        demand[root] = -1
    for store in block.stores:
        d = store_demand(store) if store_demand is not None else None
        if d is None:
            d = store_window(store.target)
        demand[store.value] |= d
    for vid in reversed(range(len(block.ops))):
        d = demand[vid]
        if d == 0:
            continue
        op = block.ops[vid]
        args = op.args
        if not args:
            continue
        if op.frac is None:
            for a in args:
                demand[a] = -1
            continue
        code = op.opcode
        if code in ("add", "sub", "mul"):
            below = _below(d)
            demand[args[0]] |= below
            demand[args[1]] |= below
        elif code == "neg":
            demand[args[0]] |= _below(d)
        elif code in ("abs", "cmp", "toint"):
            for a in args:
                demand[a] = -1
        elif code == "shl":
            demand[args[0]] |= d >> op.attrs[0]
        elif code == "ashr":
            demand[args[0]] |= d << op.attrs[0]
        elif code == "retag":
            demand[args[0]] |= d
        elif code in ("band", "bor", "bxor"):
            wl, signed = op.attrs
            window = _window_demand(d, wl, signed)
            if code == "bxor":
                demand[args[0]] |= window
                demand[args[1]] |= window
            else:
                # A bit the sibling pins to the op's absorbing element
                # (0 for and, 1 for or) is dead on this operand: the
                # sibling keeps its real value under our flips.
                sibling = (known[args[1]], known[args[0]])
                for a, other in zip(args, sibling):
                    kill = other.zeros if code == "band" else other.ones
                    demand[a] |= window & ~kill
        elif code == "bnot":
            wl, signed = op.attrs
            demand[args[0]] |= _window_demand(d, wl, signed)
        elif code == "mux":
            demand[args[0]] = -1  # any flipped selector bit can retarget
            demand[args[1]] |= d
            demand[args[2]] |= d
        elif code == "bitsel":
            demand[args[0]] |= 1 << op.attrs[0]
        elif code == "slice":
            hi, lo = op.attrs
            demand[args[0]] |= (d & _mask(hi - lo + 1)) << lo
        elif code == "concat":
            position = sum(op.attrs)
            for a, width in zip(args, op.attrs):
                position -= width
                demand[a] |= (d >> position) & _mask(width)
        elif code == "quantize":
            fmt: FxFormat = op.attrs[0]
            src = block.ops[args[0]]
            if src.frac is None:
                demand[args[0]] = -1
            elif fmt.overflow is Overflow.ERROR:
                # The raise is observable even when the result is not.
                demand[args[0]] = -1
            elif fmt.overflow is Overflow.SATURATE:
                demand[args[0]] = -1  # the clamp compares the whole value
            else:  # WRAP: a pure shift-and-fold, bit for bit
                window = _window_demand(d, fmt.wl, fmt.signed)
                shift = _quantize_shift(src.frac, fmt)
                if shift < 0:
                    demand[args[0]] |= window >> -shift
                elif shift == 0:
                    demand[args[0]] |= window
                elif fmt.rounding is Rounding.ROUND:
                    demand[args[0]] |= _below(window << shift)
                else:
                    demand[args[0]] |= window << shift
        else:
            for a in args:
                demand[a] = -1
    return demand


@dataclass
class BitsAnalysis:
    """The reduced product of known bits, liveness and intervals."""

    block: IRBlock
    #: Forward known-bits fact per value id.
    known: List[KnownBits] = field(default_factory=list)
    #: Interval per value id, refined by the product (at least as tight
    #: as the plain interval analysis).
    intervals: List[Optional[Interval]] = field(default_factory=list)
    #: Backward demand mask per value id (0 = fully dead).
    demand: List[int] = field(default_factory=list)
    #: Quantize vids proved overflow-free on their refined source range.
    quantize_safe: Dict[int, bool] = field(default_factory=dict)
    #: The unrefined interval analysis (findings feed the L4xx rules).
    base: Optional[Analysis] = None

    def dead_mask(self, vid: int) -> int:
        """Bits of *vid* no observable ever reads, within its width."""
        return _mask(self.block.ops[vid].width) & ~self.demand[vid]


def analyze_bits(block: IRBlock, leaf_interval=None,
                 store_demand: Optional[Callable[[Store], Optional[int]]]
                 = None) -> BitsAnalysis:
    """Run the reduced-product bit analysis over *block*.

    *leaf_interval* is forwarded to the interval domain.  *store_demand*
    optionally overrides the demand a store contributes (return None to
    fall back to the format window) — the L5xx dead-bit rule passes a
    hook that zeroes internal wires so only architectural observables
    generate demand.
    """
    result = BitsAnalysis(block)
    result.base = analyze(block, leaf_interval=leaf_interval)
    intervals: List[Optional[Interval]] = result.intervals
    known: List[KnownBits] = result.known
    for vid, op in enumerate(block.ops):
        refined = transfer(block, op, intervals, vid,
                           leaf_interval=leaf_interval)
        intervals.append(refined)
        kb = _transfer_bits(block, op, vid, known, intervals)
        kb = meet_bits(kb, bits_from_interval(refined))
        known.append(kb)
        intervals[vid] = _tighten(refined, kb)
        if op.opcode == "quantize":
            src = block.ops[op.args[0]]
            result.quantize_safe[vid] = _quantize_safe(
                intervals[op.args[0]], src.frac, op.attrs[0])
    result.demand = _backward_demand(block, known, store_demand)
    return result


# ---------------------------------------------------------------------------
# The narrow_bitwidth pass body.

#: Opcodes whose rendered width is structural (HDL emits the exact
#: concatenation) — relabelling them would desynchronize the back-ends.
_NO_NARROW = frozenset({"read", "concat"})


def _range_width(interval: Optional[Interval]) -> Optional[int]:
    if interval is None:
        return None
    return max(signed_width(interval), 1)


def _demand_width(demand: int) -> Optional[int]:
    """Width covering every demanded bit, plus one guard bit.

    The guard bit keeps ``numeric_std.resize`` — which preserves the
    sign bit rather than truncating two's-complement-style — faithful
    on the highest demanded bit.
    """
    if demand < 0:
        return None
    if demand == 0:
        return 1
    return demand.bit_length() + 2


def narrow_block(block: IRBlock) -> Tuple[IRBlock, bool]:
    """Rewrite *block* with bit-analysis facts (the pass body).

    Three rewrites, each justified by the reduced product and checked
    by translation validation when the PassManager runs with
    ``validate=``:

    * ops whose refined interval is a single constant become ``const``
      (skipping ``Overflow.ERROR`` quantizes that may raise);
    * quantizes proved overflow-free on every reachable value become
      pure shifts — the saturation comparators they would synthesize
      disappear;
    * every op's width label drops to the minimum of its range-exact
      width and its demanded width (+1 guard bit); operator allocation
      sizes instances straight from these labels, so narrower labels
      are narrower hardware.
    """
    analysis = analyze_bits(block)
    out = IRBlock()
    remap: Dict[int, int] = {}
    changed = False

    for vid, op in enumerate(block.ops):
        args = tuple(remap[a] for a in op.args)
        interval = analysis.intervals[vid]
        if op.frac is None:
            remap[vid] = out.emit(IROp(op.opcode, args, op.attrs, op.frac,
                                       op.width))
            continue

        width = op.width
        if op.opcode not in _NO_NARROW:
            candidates = [width]
            range_w = _range_width(interval)
            if range_w is not None:
                candidates.append(range_w)
            demand_w = _demand_width(analysis.demand[vid])
            if demand_w is not None:
                candidates.append(demand_w)
            narrowed = max(1, min(candidates))
            if narrowed < width:
                width = narrowed
                changed = True

        fmt: Optional[FxFormat] = (op.attrs[0] if op.opcode == "quantize"
                                   else None)
        safe = analysis.quantize_safe.get(vid, False)
        can_const = (interval is not None and interval.is_constant
                     and op.opcode not in LEAF_OPS
                     and (fmt is None or safe
                          or fmt.overflow is not Overflow.ERROR))
        if can_const:
            remap[vid] = out.emit(IROp("const", (), (interval.lo,),
                                       op.frac, width))
            changed = True
            continue

        if op.opcode == "mux":
            sel = analysis.intervals[op.args[0]]
            if sel is not None and sel.is_constant:
                remap[vid] = args[1] if sel.lo else args[2]
                changed = True
                continue

        if fmt is not None and safe:
            src_op = block.ops[op.args[0]]
            if src_op.frac is not None:
                shift = _quantize_shift(src_op.frac, fmt)
                if shift == 0:
                    new_id = out.emit(IROp("retag", (args[0],), (),
                                           op.frac, width))
                elif shift < 0:
                    new_id = out.emit(IROp("shl", (args[0],), (-shift,),
                                           op.frac, width))
                elif fmt.rounding is Rounding.ROUND:
                    half = out.emit(IROp("const", (), (1 << (shift - 1),),
                                         src_op.frac, shift + 1))
                    src_width = out.ops[args[0]].width
                    total = out.emit(IROp(
                        "add", (args[0], half), (), src_op.frac,
                        max(src_width, shift + 1) + 1))
                    new_id = out.emit(IROp("ashr", (total,), (shift,),
                                           op.frac, width))
                else:
                    new_id = out.emit(IROp("ashr", (args[0],), (shift,),
                                           op.frac, width))
                remap[vid] = new_id
                changed = True
                continue

        remap[vid] = out.emit(IROp(op.opcode, args, op.attrs, op.frac,
                                   width))

    out.stores = [Store(s.target, remap[s.value]) for s in block.stores]
    out.roots = [remap[r] for r in block.roots]
    return out, changed


# ---------------------------------------------------------------------------
# Wordlength reporting.

@dataclass(frozen=True)
class SignalWordlength:
    """Minimal-format advice for one committed signal."""

    signal: str
    sfg: str
    wl: int
    iwl: int
    min_wl: int
    min_iwl: int
    signed: bool
    #: Bits of the format window the analysis proves constant.
    const_bits: int
    #: Bits of the format window no observable demands.
    dead_bits: int

    @property
    def savings(self) -> int:
        return max(self.wl - self.min_wl, 0)


@dataclass
class WordlengthReport:
    """Per-signal minimal widths for a design (exploration seed)."""

    rows: List[SignalWordlength] = field(default_factory=list)

    @property
    def total_bits(self) -> int:
        return sum(row.wl for row in self.rows)

    @property
    def minimal_bits(self) -> int:
        return sum(min(row.min_wl, row.wl) for row in self.rows)

    def publish(self, metrics) -> None:
        """Push per-signal stats into a metrics registry.

        Duck-typed on ``counter(name).inc(amount)`` (the
        :class:`repro.obs.metrics.MetricsRegistry` protocol); counters
        land under ``wordlength/<sfg>.<signal>/<field>`` (the SFG
        qualifier keeps same-named signals in different SFGs distinct).
        """
        for row in self.rows:
            base = f"wordlength/{row.sfg}.{row.signal}"
            metrics.counter(f"{base}/wl").inc(row.wl)
            metrics.counter(f"{base}/min_wl").inc(min(row.min_wl, row.wl))
            if row.const_bits:
                metrics.counter(f"{base}/const_bits").inc(row.const_bits)
            if row.dead_bits:
                metrics.counter(f"{base}/dead_bits").inc(row.dead_bits)

    def format_text(self) -> str:
        lines = [f"{'signal':24} {'format':>12} {'minimal':>12} "
                 f"{'const':>6} {'dead':>5}"]
        for row in sorted(self.rows, key=lambda r: (-r.savings, r.signal)):
            fmt = f"({row.wl},{row.iwl})"
            minimal = f"({row.min_wl},{row.min_iwl})"
            lines.append(f"{row.signal:24} {fmt:>12} {minimal:>12} "
                         f"{row.const_bits:>6} {row.dead_bits:>5}")
        lines.append(f"total {self.total_bits} bits, "
                     f"minimal {self.minimal_bits} bits")
        return "\n".join(lines)


def _design_sfgs(design):
    """Every (process, sfg) pair of a design object, duck-typed."""
    if hasattr(design, "all_sfgs"):      # a Process
        return [(design, sfg) for sfg in design.all_sfgs()]
    if hasattr(design, "timed_processes"):   # a System
        out = []
        for process in design.timed_processes():
            out.extend((process, sfg) for sfg in process.all_sfgs())
        return out
    return [(None, design)]              # a bare SFG


def wordlength_report(design) -> WordlengthReport:
    """Per-signal minimal ``(wl, iwl)`` for every committed signal.

    Walks every SFG of *design* (a System, Process or SFG), lowers it,
    runs :func:`analyze_bits`, and reports — for each store with a
    format — the smallest format (at the same binary point) that holds
    the refined value interval, plus how many window bits are provably
    constant and how many are never demanded by any observable.
    """
    from ..ir.lower import lower_sfg

    report = WordlengthReport()
    for _process, sfg in _design_sfgs(design):
        try:
            block = lower_sfg(sfg)
        except ReproError:
            continue  # unlowerable SFGs are other rules' findings
        analysis = analyze_bits(block)
        for store in block.stores:
            fmt = getattr(store.target, "fmt", None)
            if fmt is None:
                continue
            interval = analysis.intervals[store.value]
            if interval is None:
                interval = fmt_interval(fmt)
            min_wl, min_iwl, signed = minimal_format(interval, fmt)
            window = _mask(fmt.wl)
            kb = analysis.known[store.value]
            const = bin(kb.known & window).count("1")
            dead = bin(window & ~analysis.demand[store.value]).count("1")
            report.rows.append(SignalWordlength(
                signal=getattr(store.target, "name", "?"),
                sfg=getattr(sfg, "name", "?"),
                wl=fmt.wl, iwl=fmt.iwl,
                min_wl=min_wl, min_iwl=min_iwl, signed=signed,
                const_bits=const, dead_bits=dead))
    return report
