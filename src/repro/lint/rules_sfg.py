"""SFG-scope rules: the paper's semantic checks, with source locations.

These subsume the historical ``core/checks.py`` SFG checks (paper §3.1:
dangling input and dead code detection) — each finding now points at the
exact modeling line that caused it.
"""

from __future__ import annotations

from typing import Iterator, Set

from ..core.errors import CheckError
from ..core.sfg import SFG
from ..core.signal import Sig
from .diagnostics import Diagnostic, ERROR, WARNING
from .rule import LintContext, Rule, register


@register
class DanglingInput(Rule):
    code = "L101"
    name = "dangling-input"
    scope = "sfg"
    severity = WARNING
    description = "a declared SFG input is never read"

    def check(self, sfg: SFG, ctx: LintContext) -> Iterator[Diagnostic]:
        reads: Set[Sig] = set()
        for assignment in sfg.assignments:
            reads |= assignment.reads()
        for inp in sfg.inputs:
            if inp not in reads:
                yield self.diag(
                    f"SFG {sfg.name!r}: input {inp.name!r} is never read",
                    obj=inp)


@register
class DrivenInput(Rule):
    code = "L102"
    name = "driven-input"
    scope = "sfg"
    severity = ERROR
    description = "a declared SFG input is also assigned inside the SFG"

    def check(self, sfg: SFG, ctx: LintContext) -> Iterator[Diagnostic]:
        inputs = set(sfg.inputs)
        for assignment in sfg.assignments:
            if assignment.target in inputs:
                yield self.diag(
                    f"SFG {sfg.name!r}: input {assignment.target.name!r} "
                    "is also assigned",
                    obj=assignment.target, loc=assignment.loc)


@register
class UndrivenSignal(Rule):
    code = "L103"
    name = "undriven-signal"
    scope = "sfg"
    severity = ERROR
    description = "a plain signal is read but neither driven nor an input"

    def check(self, sfg: SFG, ctx: LintContext) -> Iterator[Diagnostic]:
        targets = sfg.targets()
        inputs = set(sfg.inputs)
        reported: Set[Sig] = set()
        for assignment in sfg.assignments:
            for sig in sorted(assignment.reads(), key=lambda s: s.name):
                if sig.is_register() or sig in targets or sig in inputs:
                    continue
                if sig in reported:
                    continue
                reported.add(sig)
                yield self.diag(
                    f"SFG {sfg.name!r}: signal {sig.name!r} is read but is "
                    "neither driven, an input, nor a register",
                    obj=sig, loc=assignment.loc)


@register
class UndrivenOutput(Rule):
    code = "L104"
    name = "undriven-output"
    scope = "sfg"
    severity = ERROR
    description = "a declared SFG output is never driven (and not a register)"

    def check(self, sfg: SFG, ctx: LintContext) -> Iterator[Diagnostic]:
        targets = sfg.targets()
        for out in sfg.outputs:
            if out not in targets and not out.is_register():
                yield self.diag(
                    f"SFG {sfg.name!r}: output {out.name!r} is never driven",
                    obj=out)


@register
class DeadCode(Rule):
    code = "L105"
    name = "dead-code"
    scope = "sfg"
    severity = WARNING
    description = "an assigned wire reaches no output, register, or use"

    def check(self, sfg: SFG, ctx: LintContext) -> Iterator[Diagnostic]:
        useful: Set[Sig] = set(sfg.outputs)
        for assignment in sfg.assignments:
            if assignment.target.is_register():
                useful |= assignment.reads()
        changed = True
        while changed:
            changed = False
            for assignment in sfg.assignments:
                if assignment.target in useful:
                    new = assignment.reads() - useful
                    if new:
                        useful |= new
                        changed = True
        for assignment in sfg.assignments:
            target = assignment.target
            if not target.is_register() and target not in useful:
                yield self.diag(
                    f"SFG {sfg.name!r}: assignment to {target.name!r} is dead "
                    "(reaches no output or register)",
                    obj=assignment, loc=assignment.loc)


@register
class CombinationalLoop(Rule):
    code = "L106"
    name = "combinational-loop"
    scope = "sfg"
    severity = ERROR
    description = "the SFG's wires form a combinational cycle"

    def check(self, sfg: SFG, ctx: LintContext) -> Iterator[Diagnostic]:
        try:
            sfg.ordered_assignments()
        except CheckError as exc:
            yield self.diag(str(exc), obj=sfg)
