"""Interval (value-range) analysis over lowered IR blocks.

The dataflow analysis behind the overflow-proof rules: every IR value id
is mapped to a conservative ``[lo, hi]`` interval of its *raw* integer
value (at the op's binary point ``frac``).  Leaf reads start from the
signal's :class:`~repro.fixpt.FxFormat` range — the strongest invariant
that holds on every cycle — and ranges propagate forward through
``add``/``sub``/``mul``/shift/``mux``/bit ops exactly as
:func:`repro.ir.ops.execute` computes them, so the reference interpreter
is the soundness oracle (the test suite brute-forces small wordlengths
against it, and cross-checks every constant the IR const-folding pass
proves).

``quantize`` ops are where wordlength effects happen, so that is where
the analysis *judges*: it computes the rounded value interval at the
target binary point and compares it against the format's representable
raw range, classifying each step as safe, possibly overflowing, or
**certainly** overflowing (the entire reachable range falls outside the
format — the paper's §3.3 fixed-point refinement gone wrong, proven
without simulation).  Float-domain ops (``frac is None``) map to the
unknown interval; formats recover the range at the next boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..fixpt import FxFormat, Overflow, Rounding
from ..ir.ops import IRBlock, IROp

#: The unknown interval (float domain / unbounded).
TOP = None


@dataclass(frozen=True)
class Interval:
    """An inclusive raw-integer range ``[lo, hi]``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    @property
    def is_constant(self) -> bool:
        return self.lo == self.hi

    def hull(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def clamp(self, lo: int, hi: int) -> "Interval":
        return Interval(min(max(self.lo, lo), hi), min(max(self.hi, lo), hi))

    def __contains__(self, raw: int) -> bool:
        return self.lo <= raw <= self.hi

    def __str__(self) -> str:
        return f"[{self.lo}, {self.hi}]"


def fmt_interval(fmt: FxFormat) -> Interval:
    """The raw range representable by *fmt*."""
    return Interval(fmt.raw_min, fmt.raw_max)


@dataclass(frozen=True)
class Finding:
    """One judgement made while propagating ranges."""

    kind: str          # "overflow" | "collapse"
    vid: int           # the quantize op's value id
    fmt: FxFormat
    #: Rounded value interval at the target binary point, before the
    #: overflow policy is applied.
    value: Interval
    #: True when the entire interval falls outside the format.
    certain: bool = False

    def describe(self) -> str:
        scale = 2.0 ** -self.fmt.frac_bits
        lo, hi = self.value.lo * scale, self.value.hi * scale
        if self.kind == "collapse":
            return (f"quantize into {self.fmt} collapses the whole value "
                    f"range [{lo:g}, {hi:g}] to one constant")
        word = "always" if self.certain else "can"
        return (f"quantize into {self.fmt} {word} overflow{'s' if self.certain else ''}: "
                f"value range [{lo:g}, {hi:g}] vs representable "
                f"[{float(self.fmt.min_value):g}, {float(self.fmt.max_value):g}] "
                f"({self.fmt.overflow.value} on overflow)")


@dataclass
class Analysis:
    """The result of :func:`analyze` on one block."""

    block: IRBlock
    intervals: List[Optional[Interval]] = field(default_factory=list)
    findings: List[Finding] = field(default_factory=list)

    def of(self, vid: int) -> Optional[Interval]:
        """The interval of value id *vid* (None = unknown)."""
        return self.intervals[vid]

    def store_interval(self, index: int) -> Optional[Interval]:
        """The interval committed by store *index*."""
        return self.intervals[self.block.stores[index].value]


def _shift_value(raw: int, shift: int, rounding: Rounding) -> int:
    """The rounding-aware shift :func:`quantize_raw_at` performs (monotonic)."""
    if shift < 0:
        return raw << -shift
    if shift == 0:
        return raw
    if rounding is Rounding.ROUND:
        return (raw + (1 << (shift - 1))) >> shift
    return raw >> shift


def shifted_interval(source: Interval, shift: int,
                     rounding: Rounding) -> Interval:
    """*source* pushed through the quantize shift (before the overflow
    policy) — the value interval :func:`quantize_raw_at` judges."""
    return Interval(_shift_value(source.lo, shift, rounding),
                    _shift_value(source.hi, shift, rounding))


def _signed_bits(raw: int) -> int:
    """Signed-vector bits needed to represent *raw* exactly."""
    if raw >= 0:
        return raw.bit_length() + 1
    return (-raw - 1).bit_length() + 1


def signed_width(value: Interval) -> int:
    """Smallest signed-vector width holding every raw in *value*."""
    return max(_signed_bits(value.lo), _signed_bits(value.hi))


def minimal_format(value: Interval, fmt: FxFormat):
    """The smallest ``(wl, iwl, signed)`` holding *value* at *fmt*'s
    binary point.

    *value* is a raw interval at ``fmt.frac_bits``; the suggested format
    keeps the binary point (``wl - iwl``) and the signedness unless the
    value forces a sign bit.  This is the advice L4xx overflow findings
    and the L5xx bit rules both append, so the two families stay
    consistent.
    """
    signed = fmt.signed or value.lo < 0
    if signed:
        wl = max(signed_width(value), 1)
    else:
        wl = max(value.hi.bit_length(), 1)
    return wl, wl - fmt.frac_bits, signed


def describe_format(wl: int, iwl: int, signed: bool) -> str:
    """Human form of a suggested format, matching FxFormat's repr."""
    sign = "" if signed else ", signed=False"
    return f"FxFormat({wl}, {iwl}{sign})"


def _mul(a: Interval, b: Interval) -> Interval:
    products = (a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi)
    return Interval(min(products), max(products))


def analyze(block: IRBlock,
            leaf_interval=None) -> Analysis:
    """Propagate raw-value intervals through every op of *block*.

    *leaf_interval* optionally maps a leaf signal to a tighter
    :class:`Interval` than its format range (e.g. a primary input with a
    known stimulus range); return None from it to fall back to the
    format.
    """
    result = Analysis(block)
    iv: List[Optional[Interval]] = result.intervals
    for vid, op in enumerate(block.ops):
        iv.append(_transfer(block, op, iv, result.findings, vid,
                            leaf_interval))
    return result


def transfer(block: IRBlock, op: IROp, intervals: List[Optional[Interval]],
             vid: int, findings: Optional[List[Finding]] = None,
             leaf_interval=None) -> Optional[Interval]:
    """Single-op interval transfer over caller-supplied operand facts.

    The public entry for reduced-product clients (:mod:`repro.lint.bits`
    re-runs the transfer over *refined* operand intervals).  *intervals*
    must hold an entry for every operand id; quantize judgements are
    appended to *findings* when given and discarded otherwise.
    """
    sink: List[Finding] = [] if findings is None else findings
    return _transfer(block, op, intervals, sink, vid, leaf_interval)


def _transfer(block: IRBlock, op: IROp, iv: List[Optional[Interval]],
              findings: List[Finding], vid: int, leaf_interval):
    code = op.opcode
    args = [iv[a] for a in op.args]

    if code == "const":
        return Interval(op.attrs[0], op.attrs[0])
    if code == "fconst":
        return TOP
    if code == "read":
        sig = op.attrs[0]
        if leaf_interval is not None:
            got = leaf_interval(sig)
            if got is not None:
                return got
        fmt = getattr(sig, "fmt", None)
        if op.frac is None or fmt is None:
            return TOP
        return fmt_interval(fmt)

    # Fixed-output-range ops recover from unknown operands.
    if code == "cmp" or code == "bitsel":
        return Interval(0, 1)
    if code == "slice":
        hi, lo = op.attrs
        return Interval(0, (1 << (hi - lo + 1)) - 1)
    if code == "concat":
        total = sum(op.attrs)
        return Interval(0, (1 << total) - 1)
    if code in ("band", "bor", "bxor", "bnot"):
        wl, signed = op.attrs
        if signed:
            return Interval(-(1 << (wl - 1)), (1 << (wl - 1)) - 1)
        return Interval(0, (1 << wl) - 1)
    if code == "quantize":
        fmt: FxFormat = op.attrs[0]
        bound = fmt_interval(fmt)
        src_op = block.ops[op.args[0]]
        source = args[0]
        if src_op.frac is None or source is TOP:
            return bound  # float-domain source: only the format bounds it
        shift = src_op.frac - fmt.frac_bits
        value = Interval(_shift_value(source.lo, shift, fmt.rounding),
                         _shift_value(source.hi, shift, fmt.rounding))
        certain = value.hi < bound.lo or value.lo > bound.hi
        overflows = certain or value.lo < bound.lo or value.hi > bound.hi
        if overflows:
            findings.append(Finding("overflow", vid, fmt, value, certain))
            if fmt.overflow is Overflow.WRAP:
                return bound  # wrapping is not monotonic: give up precision
            result = value.clamp(bound.lo, bound.hi)
        else:
            result = value
        if result.is_constant and not source.is_constant and not overflows:
            findings.append(Finding("collapse", vid, fmt, value))
        return result

    # Everything below propagates unknowns.
    if any(a is TOP for a in args) or op.frac is None:
        return TOP

    if code == "add":
        return Interval(args[0].lo + args[1].lo, args[0].hi + args[1].hi)
    if code == "sub":
        return Interval(args[0].lo - args[1].hi, args[0].hi - args[1].lo)
    if code == "mul":
        return _mul(args[0], args[1])
    if code == "neg":
        return Interval(-args[0].hi, -args[0].lo)
    if code == "abs":
        lo = 0 if args[0].lo <= 0 <= args[0].hi else min(abs(args[0].lo),
                                                         abs(args[0].hi))
        return Interval(lo, max(abs(args[0].lo), abs(args[0].hi)))
    if code == "shl":
        bits = op.attrs[0]
        return Interval(args[0].lo << bits, args[0].hi << bits)
    if code == "ashr":
        bits = op.attrs[0]
        return Interval(args[0].lo >> bits, args[0].hi >> bits)
    if code == "retag":
        return args[0]
    if code == "mux":
        return args[1].hull(args[2])
    if code == "toint":
        return TOP if args[0] is TOP else args[0]
    return TOP  # tofloat and anything unrecognized
