"""Bit-level rules: constant, dead and wasted bits on lowered SFGs.

Each SFG is lowered to the shared IR and swept by the reduced-product
bit analysis (:mod:`repro.lint.bits`).  Liveness demand is seeded from
*architectural* observables only — registers and declared SFG outputs —
so an internal wire's own format window generates no demand and its
genuinely unread bits surface.  Four rules interpret the facts, all at
INFO severity (wordlength advice, not defects):

* **L501 constant-bits** — bits of a committed value the product proves
  constant on every cycle, with the minimal ``(wl, iwl)`` when the top
  of the format is redundant.  Whole-word constants are L404's finding
  and are skipped here, as are clamp artifacts under an overflow.
* **L502 dead-bits** — bits of an internal wire no register, output or
  root ever observes (narrowing the wire is free by construction).
* **L503 sign-extension-waste** — a signed format whose value is
  provably non-negative: the sign bit and its extension logic carry no
  information.
* **L504 truncation-discards-live-bits** — a truncating quantize whose
  dropped low bits are not provably constant: information the
  wordlength boundary silently destroys (consider ``Rounding.ROUND``
  or a finer binary point).
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..core.errors import ReproError
from ..core.sfg import SFG
from ..fixpt import Rounding
from ..ir.lower import lower_sfg
from .bits import BitsAnalysis, analyze_bits
from .diagnostics import Diagnostic, INFO
from .interval import describe_format, minimal_format
from .rule import LintContext, Rule, register
from .rules_interval import _ancestors, _loc_of


def analyze_sfg_bits(sfg: SFG) -> Optional[BitsAnalysis]:
    """Lower *sfg* and run the bit analysis with architectural demand.

    Returns None when the SFG cannot be lowered (other rules own those
    findings).  Stores to registers and declared outputs demand their
    format window; internal wires demand nothing of their own, so their
    liveness comes entirely from downstream readers.
    """
    try:
        block = lower_sfg(sfg)
    except ReproError:
        return None
    externals = set(sfg.outputs) | set(sfg.registers())

    def store_demand(store):
        if store.target in externals:
            return None  # fall back to the format window
        return 0

    return analyze_bits(block, store_demand=store_demand)


def _popcount(mask: int) -> int:
    return bin(mask).count("1")


class _BitsRule(Rule):
    scope = "sfg"
    severity = INFO

    def check(self, sfg: SFG, ctx: LintContext) -> Iterator[Diagnostic]:
        if not (ctx.config.bit_analysis and ctx.config.interval_analysis):
            return
        analysis = ctx.bits_analysis(sfg)
        if analysis is None:
            return
        yield from self.judge(sfg, analysis, ctx)

    def judge(self, sfg: SFG, analysis: BitsAnalysis,
              ctx: LintContext) -> Iterator[Diagnostic]:
        raise NotImplementedError


def _overflowed_vids(analysis: BitsAnalysis) -> set:
    return {finding.vid for finding in analysis.base.findings
            if finding.kind == "overflow"}


@register
class ConstantBits(_BitsRule):
    code = "L501"
    name = "constant-bits"
    severity = INFO
    description = "bits of a committed value are provably constant"

    def judge(self, sfg: SFG, analysis: BitsAnalysis,
              ctx: LintContext) -> Iterator[Diagnostic]:
        assignments = sfg.ordered_assignments()
        overflowed = _overflowed_vids(analysis)
        for index, store in enumerate(analysis.block.stores):
            assignment = assignments[index]
            fmt = getattr(store.target, "fmt", None)
            if fmt is None or not assignment.expr.signals():
                continue
            interval = analysis.intervals[store.value]
            if interval is not None and interval.is_constant:
                continue  # the whole word is constant: L404's finding
            if overflowed & _ancestors(analysis.block, store.value):
                continue  # clamp artifacts: L401/L402's find
            window = (1 << fmt.wl) - 1
            known = analysis.known[store.value].known & window
            if not known:
                continue
            advice = ""
            if interval is not None:
                wl, iwl, signed = minimal_format(interval, fmt)
                if wl < fmt.wl:
                    advice = (f"; {describe_format(wl, iwl, signed)} "
                              f"would hold it")
            yield self.diag(
                f"SFG {sfg.name!r}: {_popcount(known)} of "
                f"{store.target.name!r}'s {fmt.wl} bits are provably "
                f"constant{advice}",
                obj=assignment, loc=assignment.loc)


@register
class DeadBits(_BitsRule):
    code = "L502"
    name = "dead-bits"
    severity = INFO
    description = "bits of an internal wire are never observed"

    def judge(self, sfg: SFG, analysis: BitsAnalysis,
              ctx: LintContext) -> Iterator[Diagnostic]:
        assignments = sfg.ordered_assignments()
        externals = set(sfg.outputs) | set(sfg.registers())
        for index, store in enumerate(analysis.block.stores):
            assignment = assignments[index]
            fmt = getattr(store.target, "fmt", None)
            if fmt is None or store.target in externals:
                continue
            window = (1 << fmt.wl) - 1
            dead = window & ~analysis.demand[store.value]
            if not dead:
                continue
            yield self.diag(
                f"SFG {sfg.name!r}: {_popcount(dead)} of "
                f"{store.target.name!r}'s {fmt.wl} bits are dead — no "
                f"register, output or guard ever reads them",
                obj=assignment, loc=assignment.loc)


@register
class SignExtensionWaste(_BitsRule):
    code = "L503"
    name = "sign-extension-waste"
    severity = INFO
    description = "a signed format's value is provably non-negative"

    def judge(self, sfg: SFG, analysis: BitsAnalysis,
              ctx: LintContext) -> Iterator[Diagnostic]:
        assignments = sfg.ordered_assignments()
        overflowed = _overflowed_vids(analysis)
        for index, store in enumerate(analysis.block.stores):
            assignment = assignments[index]
            fmt = getattr(store.target, "fmt", None)
            if fmt is None or not fmt.signed:
                continue
            if not assignment.expr.signals():
                continue
            interval = analysis.intervals[store.value]
            if interval is None or interval.lo < 0:
                continue
            if interval.is_constant:
                continue  # L404's finding
            if overflowed & _ancestors(analysis.block, store.value):
                continue
            yield self.diag(
                f"SFG {sfg.name!r}: {store.target.name!r} is signed but "
                f"provably non-negative (range [{interval.lo}, "
                f"{interval.hi}] raw) — the sign bit carries no "
                f"information",
                obj=assignment, loc=assignment.loc)


@register
class TruncationDiscardsLiveBits(_BitsRule):
    code = "L504"
    name = "truncation-discards-live-bits"
    severity = INFO
    description = "a truncating quantize drops bits that carry information"

    def judge(self, sfg: SFG, analysis: BitsAnalysis,
              ctx: LintContext) -> Iterator[Diagnostic]:
        block = analysis.block
        for vid, op in enumerate(block.ops):
            if op.opcode != "quantize":
                continue
            fmt = op.attrs[0]
            if fmt.rounding is not Rounding.TRUNCATE:
                continue
            src = block.ops[op.args[0]]
            if src.frac is None:
                continue
            shift = src.frac - fmt.frac_bits
            if shift <= 0:
                continue
            if not analysis.demand[vid]:
                continue  # the result itself is dead
            dropped = (1 << shift) - 1
            live = dropped & analysis.known[op.args[0]].unknown
            if not live:
                continue  # every dropped bit is a known constant
            yield self.diag(
                f"SFG {sfg.name!r}: quantize into {fmt} truncates "
                f"{_popcount(live)} live of {shift} dropped fractional "
                f"bits (consider Rounding.ROUND or a finer binary point)",
                obj=sfg, loc=_loc_of(block, vid, sfg))
