"""Engine self-profiling: wall-time attribution per schedulable unit.

When profiling is enabled the cycle scheduler attributes wall time to
each SFG evaluation step and the compiled simulator to each lowered
``IRBlock``, so a BENCH regression can be localized to a specific block
instead of "the simulator got slower".  Off by default; when off the
engines skip the clock reads entirely (cycle engine: one ``is None``
test per step; compiled engine: the instrumentation is simply not
emitted into the generated source).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class BlockTime:
    """Accumulated wall time of one schedulable unit."""

    __slots__ = ("label", "calls", "seconds")

    def __init__(self, label: str):
        self.label = label
        self.calls = 0
        self.seconds = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {"calls": self.calls, "seconds": self.seconds}

    def __repr__(self) -> str:
        return f"BlockTime({self.label!r}, {self.calls} calls, {self.seconds:.6f}s)"


class EngineProfile:
    """Wall-time records of one capture, keyed by hierarchical label."""

    def __init__(self) -> None:
        self._records: Dict[str, BlockTime] = {}

    def block(self, label: str) -> BlockTime:
        """The record for *label*, created on first use."""
        record = self._records.get(label)
        if record is None:
            record = BlockTime(label)
            self._records[label] = record
        return record

    def add(self, label: str, seconds: float) -> None:
        """Attribute *seconds* of wall time to *label* (hot path)."""
        record = self._records.get(label)
        if record is None:
            record = BlockTime(label)
            self._records[label] = record
        record.calls += 1
        record.seconds += seconds

    def __contains__(self, label: str) -> bool:
        return label in self._records

    def __getitem__(self, label: str) -> BlockTime:
        return self._records[label]

    def records(self) -> Dict[str, BlockTime]:
        return dict(self._records)

    def hottest(self, count: int = 10) -> List[BlockTime]:
        """The *count* most expensive blocks, hottest first."""
        ranked = sorted(self._records.values(),
                        key=lambda r: (r.seconds, r.calls, r.label),
                        reverse=True)
        return ranked[:count]

    def total_seconds(self) -> float:
        return sum(r.seconds for r in self._records.values())

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        return {label: self._records[label].as_dict()
                for label in sorted(self._records)}
