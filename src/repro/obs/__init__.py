"""Unified observability: probes, profiles, event traces, reports.

One :class:`Capture` object instruments any of the four execution
engines — pass it as the ``obs`` argument of
:class:`~repro.sim.cycle.CycleScheduler`,
:class:`~repro.sim.compiled.CompiledSimulator`,
:class:`~repro.sim.dataflow.DataflowScheduler` or
:class:`~repro.synth.gatesim.GateSimulator` — and collects:

* a metrics registry (counters / gauges / histograms, hierarchical names);
* per-signal toggle counts (switching-activity proxy for power);
* per-FSM-state occupancy, transition fires and coverage;
* opt-in engine self-profiling (wall time per SFG / lowered IR block);
* a structured JSONL event trace (FSM transitions, firings, deadlocks,
  watchdog expiries, fault-campaign events) with source locations.

``Capture.save(dir)`` serializes everything; ``python -m repro.obs dir``
renders the report.

Layering contract (enforced by ``tools/check_layering.py``): this
package imports only ``core``, ``ir`` and ``fixpt``.  Engines import
obs; obs never imports an engine.
"""

from .activity import ActivityProfile, ToggleStats
from .aggregate import merge_captures
from .capture import (
    Capture,
    Instrumentation,
    Probe,
    fsm_watchlist,
    register_watchlist,
)
from .engineprof import BlockTime, EngineProfile
from .events import EventTrace, read_events
from .fsmprof import FsmProfile, FsmStats, TransitionStats
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .report import (
    diff_captures,
    load_capture,
    render_diff,
    render_json,
    render_text,
    summarize,
)
from .spans import (
    Span,
    SpanContext,
    SpanTracer,
    critical_path,
    read_spans,
    span_tree,
)
from .tail import TailState, follow, render_tail

__all__ = [
    "ActivityProfile",
    "BlockTime",
    "Capture",
    "Counter",
    "EngineProfile",
    "EventTrace",
    "FsmProfile",
    "FsmStats",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "MetricsRegistry",
    "Probe",
    "Span",
    "SpanContext",
    "SpanTracer",
    "TailState",
    "ToggleStats",
    "TransitionStats",
    "critical_path",
    "diff_captures",
    "follow",
    "fsm_watchlist",
    "load_capture",
    "merge_captures",
    "read_events",
    "read_spans",
    "render_diff",
    "render_json",
    "render_tail",
    "render_text",
    "span_tree",
    "summarize",
]
