"""``python -m repro.obs`` — reports, live tails and capture diffs.

Usage::

    python -m repro.obs report CAPTURE [--json] [--top N]
    python -m repro.obs tail   CAPTURE [--interval S] [--once] [--json]
    python -m repro.obs diff   OLD NEW [--threshold PCT] [--json]

``CAPTURE`` is a directory written by :meth:`repro.obs.Capture.save`
(or by the sharded runner's ``--capture``), or a bare JSONL event
stream.  For backward compatibility a bare path without a subcommand
renders the report: ``python -m repro.obs chaos_run/events.jsonl``.

``tail`` follows a *running* campaign's journal — per-shard state,
fault throughput, ETA — and exits when the run ends.  ``diff``
compares two captures' scalar metrics and exits 1 when any change
exceeds the threshold (a regression gate for CI).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .report import (
    diff_captures,
    load_capture,
    render_diff,
    render_json,
    render_text,
)
from .tail import follow, render_tail


def _cmd_report(args: argparse.Namespace) -> int:
    try:
        data = load_capture(args.capture)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        if args.json:
            print(render_json(data, top=args.top))
        else:
            print(render_text(data, top=args.top))
        sys.stdout.flush()
    except BrokenPipeError:
        # Reader (head, less) closed the pipe: not an error.
        sys.stderr.close()
    return 0


def _cmd_tail(args: argparse.Namespace) -> int:
    try:
        state = follow(args.capture, interval=args.interval,
                       once=args.once, timeout=args.timeout)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 130
    if args.json:
        print(json.dumps(state.snapshot(), indent=2, default=str))
    if state.finished and state.complete is False:
        return 2  # run ended but shards were abandoned
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    try:
        old = load_capture(args.old)
        new = load_capture(args.new)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    diff = diff_captures(old, new, threshold=args.threshold / 100.0)
    if args.json:
        print(json.dumps(diff, indent=2, default=str))
    else:
        print(render_diff(diff))
    return 1 if diff["flagged"] else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Backward compatibility: a bare capture path means "report".
    if argv and argv[0] not in ("report", "tail", "diff") \
            and argv[0] not in ("-h", "--help"):
        argv = ["report"] + argv

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability reports, live campaign tails and "
                    "capture diffs.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    report = commands.add_parser(
        "report", help="render the report of a captured run")
    report.add_argument("capture",
                        help="capture directory (Capture.save / runner "
                             "--capture) or a bare JSONL event stream")
    report.add_argument("--json", action="store_true",
                        help="emit the report as JSON instead of text")
    report.add_argument("--top", type=int, default=10, metavar="N",
                        help="rows in the toggle / hot-block tables")
    report.set_defaults(func=_cmd_report)

    tail = commands.add_parser(
        "tail", help="follow a running campaign's journal live")
    tail.add_argument("capture",
                      help="runner capture directory (containing "
                           "journal.jsonl) or the journal file itself")
    tail.add_argument("--interval", type=float, default=0.5, metavar="S",
                      help="refresh period in seconds (default 0.5)")
    tail.add_argument("--once", action="store_true",
                      help="render one snapshot and exit")
    tail.add_argument("--timeout", type=float, default=None, metavar="S",
                      help="stop following after S seconds")
    tail.add_argument("--json", action="store_true",
                      help="print the final snapshot as JSON")
    tail.set_defaults(func=_cmd_tail)

    diff = commands.add_parser(
        "diff", help="compare two captures' metrics (regression gate)")
    diff.add_argument("old", help="baseline capture directory")
    diff.add_argument("new", help="candidate capture directory")
    diff.add_argument("--threshold", type=float, default=0.0, metavar="PCT",
                      help="flag relative changes beyond PCT percent "
                           "(default 0 — any change flags)")
    diff.add_argument("--json", action="store_true",
                      help="emit the diff as JSON instead of a table")
    diff.set_defaults(func=_cmd_diff)

    args = parser.parse_args(argv)
    return args.func(args)
