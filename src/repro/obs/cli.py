"""``python -m repro.obs`` — render a captured run's report.

Usage::

    python -m repro.obs CAPTURE_DIR [--json] [--top N]

``CAPTURE_DIR`` is a directory written by
:meth:`repro.obs.Capture.save` (``metrics.json`` plus optional
``events.jsonl`` / ``trace.vcd``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .report import load_capture, render_json, render_text


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render the observability report of a captured run.",
    )
    parser.add_argument("capture",
                        help="capture directory (Capture.save) or a bare "
                             "JSONL event stream (e.g. a runner's --events "
                             "file)")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON instead of text")
    parser.add_argument("--top", type=int, default=10, metavar="N",
                        help="rows in the toggle / hot-block tables")
    args = parser.parse_args(argv)

    try:
        data = load_capture(args.capture)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        if args.json:
            print(render_json(data, top=args.top))
        else:
            print(render_text(data, top=args.top))
        sys.stdout.flush()
    except BrokenPipeError:
        # Reader (head, less) closed the pipe: not an error.
        sys.stderr.close()
    return 0
