"""Follow a running sharded campaign live: per-shard state, rate, ETA.

The sharded runner's write-ahead journal doubles as a progress stream:
alongside the fsync'd completion records (``meta`` / ``shard_done`` /
``shard_abandoned`` / ``run_end``) the runner appends lightweight
``shard_dispatched``, ``progress`` and ``heartbeat`` records as the run
advances.  ``python -m repro.obs tail <dir-or-journal>`` reads that
file *as it grows* — no imports from :mod:`repro.runner`, no pipes into
the running process — and renders a refreshing status panel: each
shard's state (pending / running / done / abandoned), the in-flight
shards' item progress, overall fault throughput (work items per
second), and the ETA extrapolated from it.

Everything except the follow loop is pure: :class:`TailState` folds
journal records, :func:`TailState.snapshot` summarizes, and
:func:`render_tail` formats — all unit-testable without a runner or a
filesystem.

Layering (contract #8): imports only sibling obs modules and stdlib —
the journal is read as plain JSONL, so watching a campaign never
requires the orchestration layer.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, List, Optional, TextIO


#: Journal record kinds that advance the tail's model of the run.
_PROGRESS_KINDS = ("meta", "shard_dispatched", "progress", "shard_done",
                   "shard_retried", "shard_abandoned", "heartbeat",
                   "run_end")


class TailState:
    """Folds journal records into a live model of one sharded run."""

    def __init__(self) -> None:
        self.meta: Optional[Dict[str, object]] = None
        self.plan: List[List[int]] = []
        self.work_size = 0
        #: shard id -> {"status", "worker", "done", "total", "attempt"}
        self.shards: Dict[int, Dict[str, object]] = {}
        #: worker id -> last reported state string.
        self.workers: Dict[str, str] = {}
        self.t_last = 0.0
        self.finished = False
        self.complete: Optional[bool] = None

    # -- folding ------------------------------------------------------------------

    def feed(self, record: Dict[str, object]) -> None:
        """Fold one journal record (unknown kinds are ignored)."""
        kind = record.get("kind")
        t = record.get("t")
        if isinstance(t, (int, float)):
            self.t_last = max(self.t_last, float(t))
        if kind == "meta":
            self.meta = record
            self.plan = [list(span) for span in record.get("plan", [])]
            self.work_size = int(record.get("work_size", 0) or 0)
            for shard_id, span in enumerate(self.plan):
                self.shards[shard_id] = {
                    "status": "pending", "worker": None, "attempt": 0,
                    "done": 0, "total": span[1] - span[0],
                }
            return
        shard = self._shard(record)
        if kind == "shard_dispatched" and shard is not None:
            shard["status"] = "running"
            shard["worker"] = record.get("worker")
            shard["attempt"] = record.get("attempt", 0)
            if record.get("worker"):
                self.workers[str(record["worker"])] = "busy"
        elif kind == "progress" and shard is not None:
            shard["status"] = "running"
            shard["done"] = int(record.get("done", 0) or 0)
            if record.get("total") is not None:
                shard["total"] = int(record["total"])
            if record.get("worker"):
                shard["worker"] = record["worker"]
                self.workers[str(record["worker"])] = "busy"
        elif kind == "shard_done" and shard is not None:
            shard["status"] = "done"
            shard["done"] = shard["total"]
            if shard.get("worker"):
                self.workers[str(shard["worker"])] = "idle"
            shard["worker"] = None
        elif kind == "shard_retried" and shard is not None:
            shard["status"] = "pending"
            shard["done"] = 0
            shard["worker"] = None
            shard["attempt"] = record.get("attempt", shard["attempt"])
        elif kind == "shard_abandoned" and shard is not None:
            shard["status"] = "abandoned"
            shard["worker"] = None
        elif kind == "heartbeat":
            workers = record.get("workers")
            if isinstance(workers, dict):
                self.workers = {str(k): str(v) for k, v in workers.items()}
        elif kind == "run_end":
            self.finished = True
            self.complete = bool(record.get("complete", False))

    def _shard(self, record: Dict[str, object]
               ) -> Optional[Dict[str, object]]:
        shard = record.get("shard")
        if shard is None:
            return None
        shard = int(shard)
        if shard not in self.shards:
            # A journal tailed from mid-file: synthesize a placeholder.
            self.shards[shard] = {"status": "pending", "worker": None,
                                  "attempt": 0, "done": 0, "total": 0}
        return self.shards[shard]

    # -- summary ------------------------------------------------------------------

    def items_done(self) -> int:
        done = 0
        for shard in self.shards.values():
            if shard["status"] == "done":
                done += int(shard["total"])
            elif shard["status"] == "running":
                done += min(int(shard["done"]), int(shard["total"]))
        return done

    def snapshot(self) -> Dict[str, object]:
        """The current run state as plain data (also the ``--json`` form)."""
        by_status: Dict[str, int] = {}
        for shard in self.shards.values():
            status = str(shard["status"])
            by_status[status] = by_status.get(status, 0) + 1
        done = self.items_done()
        elapsed = self.t_last
        rate = done / elapsed if elapsed > 0 and done else 0.0
        remaining = max(self.work_size - done, 0)
        eta = remaining / rate if rate > 0 else None
        meta = self.meta or {}
        return {
            "netlist": meta.get("netlist"),
            "job": (meta.get("job") or {}).get("kind"),
            "shards": {str(k): dict(v)
                       for k, v in sorted(self.shards.items())},
            "by_status": by_status,
            "work_size": self.work_size,
            "items_done": done,
            "elapsed": elapsed,
            "rate": rate,
            "eta_seconds": eta,
            "workers": dict(sorted(self.workers.items())),
            "finished": self.finished,
            "complete": self.complete,
        }


def render_tail(snapshot: Dict[str, object], max_shards: int = 40) -> str:
    """Human-readable panel for one :meth:`TailState.snapshot`."""
    lines: List[str] = []
    work = snapshot.get("work_size") or 0
    done = snapshot.get("items_done") or 0
    pct = 100.0 * done / work if work else 0.0
    name = snapshot.get("netlist") or "?"
    lines.append(f"campaign {name} — {done}/{work} work items ({pct:.1f}%)")

    shards = snapshot.get("shards") or {}
    shown = 0
    for shard_id in sorted(shards, key=int):
        if shown >= max_shards:
            lines.append(f"  ... {len(shards) - shown} more shards")
            break
        shard = shards[shard_id]
        status = shard["status"]
        where = f" on {shard['worker']}" if shard.get("worker") else ""
        attempt = (f" (attempt {shard['attempt']})"
                   if shard.get("attempt") else "")
        progress = ""
        if status == "running":
            progress = f"  {shard['done']}/{shard['total']}"
        lines.append(
            f"  shard {int(shard_id):>3}  {status:<9}{where}"
            f"{progress}{attempt}")
        shown += 1

    workers = snapshot.get("workers") or {}
    if workers:
        lines.append("  workers: " + ", ".join(
            f"{wid} {state}" for wid, state in workers.items()))

    rate = snapshot.get("rate") or 0.0
    eta = snapshot.get("eta_seconds")
    if snapshot.get("finished"):
        verdict = "complete" if snapshot.get("complete") else "PARTIAL"
        lines.append(f"  finished ({verdict}) after "
                     f"{snapshot.get('elapsed', 0.0):.1f}s — "
                     f"{rate:.1f} items/s")
    else:
        eta_text = f"{eta:.1f}s" if eta is not None else "—"
        lines.append(f"  throughput {rate:.1f} items/s, ETA {eta_text}")
    return "\n".join(lines)


def resolve_journal(path: str) -> str:
    """Accept a journal file or a capture directory containing one."""
    if os.path.isdir(path):
        candidate = os.path.join(path, "journal.jsonl")
        if not os.path.isfile(candidate):
            raise FileNotFoundError(
                f"{path!r} has no journal.jsonl — point tail at a runner "
                "capture directory or at the journal file itself"
            )
        return candidate
    if not os.path.isfile(path):
        raise FileNotFoundError(f"no journal at {path!r}")
    return path


def _feed_available(handle: TextIO, state: TailState, buffer: List[str]
                    ) -> int:
    """Feed every complete line currently readable; returns lines fed."""
    fed = 0
    for chunk in handle:
        line = (buffer.pop() + chunk) if buffer else chunk
        if not line.endswith("\n"):
            buffer.append(line)  # torn mid-write; complete it next poll
            break
        line = line.strip()
        if not line:
            continue
        try:
            state.feed(json.loads(line))
        except json.JSONDecodeError:
            continue  # a record being appended right now
        fed += 1
    return fed


def follow(path: str, stream: Optional[TextIO] = None,
           interval: float = 0.5, once: bool = False,
           timeout: Optional[float] = None,
           clock=time.monotonic, sleep=time.sleep) -> TailState:
    """Follow a journal until ``run_end`` (or *once* / *timeout*).

    Renders a fresh panel every *interval* seconds; on a TTY the panel
    repaints in place.  Returns the final :class:`TailState`.
    """
    stream = stream if stream is not None else sys.stdout
    journal = resolve_journal(path)
    state = TailState()
    buffer: List[str] = []
    start = clock()
    clear = "\x1b[H\x1b[2J" if getattr(stream, "isatty", lambda: False)() \
        else ""
    with open(journal, "r", encoding="utf-8") as handle:
        while True:
            _feed_available(handle, state, buffer)
            panel = render_tail(state.snapshot())
            stream.write(f"{clear}{panel}\n")
            if not clear:
                stream.write("\n")
            stream.flush()
            if once or state.finished:
                return state
            if timeout is not None and clock() - start >= timeout:
                return state
            sleep(interval)
