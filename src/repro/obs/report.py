"""Render a captured run as a text or JSON report.

Loads the directory written by :meth:`repro.obs.Capture.save`
(``metrics.json`` plus optional ``events.jsonl``) and renders the
questions an ASIC designer asks first: which signals toggle most
(switching-activity / power proxy), how much of each controller FSM the
stimulus exercised, where the engine spent its wall time, and what
discrete events the run produced.  No engine import is needed to read a
capture — the report works on serialized data only.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from .events import read_events


def load_capture(directory: str) -> Dict[str, object]:
    """Load a capture directory into one dict (``events`` inlined).

    Also accepts a bare JSONL event stream (a file path): the sharded
    campaign runner journals its lifecycle events without a metrics
    capture, and ``python -m repro.obs report`` renders those timelines
    too.
    """
    if os.path.isfile(directory):
        return {"event_list": read_events(directory)}
    metrics_path = os.path.join(directory, "metrics.json")
    if not os.path.isfile(metrics_path):
        raise FileNotFoundError(
            f"{directory!r} is not a capture directory (no metrics.json); "
            "write one with Capture.save(directory)"
        )
    with open(metrics_path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    events_path = os.path.join(directory, "events.jsonl")
    if os.path.isfile(events_path):
        data["event_list"] = read_events(events_path)
    return data


def _top_toggles(activity: Dict[str, Dict], count: int) -> List[Dict]:
    rows = [
        {"name": name, **record} for name, record in activity.items()
    ]
    rows.sort(key=lambda r: (r.get("toggles", 0), r.get("changes", 0),
                             r["name"]),
              reverse=True)
    return rows[:count]


def _hot_blocks(profile: Dict[str, Dict], count: int) -> List[Dict]:
    rows = [{"label": label, **record} for label, record in profile.items()]
    rows.sort(key=lambda r: (r.get("seconds", 0.0), r.get("calls", 0),
                             r["label"]),
              reverse=True)
    return rows[:count]


#: Lifecycle kinds the sharded campaign runner emits; their presence in
#: a stream switches on the run-timeline section of the report.
RUNNER_KINDS = ("run_start", "worker_spawned", "worker_died",
                "shard_dispatched", "shard_completed", "shard_retried",
                "shard_abandoned", "run_end")


def _describe_runner_event(event: Dict[str, object]) -> str:
    kind = event.get("kind")
    if kind == "run_start":
        return (f"{event.get('shards')} shards over "
                f"{event.get('workers')} workers "
                f"({event.get('work')} work items, "
                f"{event.get('reused', 0)} from journal)")
    if kind == "worker_spawned":
        return f"{event.get('worker')} (pid {event.get('pid')})"
    if kind == "worker_died":
        where = (f" holding shard {event['shard']}"
                 if event.get("shard") is not None else "")
        cause = " [deadline kill]" if event.get("timed_out") else ""
        return (f"{event.get('worker')} exitcode "
                f"{event.get('exitcode')}{where}{cause}")
    if kind == "shard_dispatched":
        return (f"shard {event.get('shard')} {event.get('span')} -> "
                f"{event.get('worker')} (attempt {event.get('attempt')})")
    if kind == "shard_completed":
        return (f"shard {event.get('shard')} on {event.get('worker')}: "
                f"{event.get('results')} results")
    if kind == "shard_retried":
        return (f"shard {event.get('shard')} failed "
                f"({event.get('error')}), backoff "
                f"{event.get('backoff')}s")
    if kind == "shard_abandoned":
        return (f"shard {event.get('shard')} after "
                f"{event.get('attempts')} attempts: {event.get('error')}")
    if kind == "run_end":
        return (f"complete={event.get('complete')} "
                f"({event.get('completed')} run, "
                f"{event.get('retries')} retries, "
                f"{event.get('abandoned')} abandoned, "
                f"{event.get('worker_deaths')} worker deaths, "
                f"{event.get('wall_seconds')}s)")
    return ""


def runner_timeline(event_list: List[Dict]) -> List[Dict[str, object]]:
    """The runner lifecycle rows of an event stream, in emission order."""
    return [
        {"t": event.get("t"), "kind": event.get("kind"),
         "detail": _describe_runner_event(event)}
        for event in event_list
        if event.get("kind") in RUNNER_KINDS
    ]


def summarize(data: Dict[str, object], top: int = 10) -> Dict[str, object]:
    """The report's content as plain data (the ``--json`` output)."""
    activity = data.get("activity", {}) or {}
    fsm = data.get("fsm", {}) or {}
    profile = data.get("profile", {}) or {}
    events = data.get("events", {}) or {}
    timeline: List[Dict[str, object]] = []
    if "event_list" in data:
        timeline = runner_timeline(data["event_list"])
    if not events and "event_list" in data:
        for event in data["event_list"]:
            kind = event.get("kind", "?")
            events[kind] = events.get(kind, 0) + 1
    return {
        "runner_timeline": timeline,
        "ir_passes": _pass_table(data.get("metrics", {}) or {}),
        "wordlengths": _wordlength_table(data.get("metrics", {}) or {}),
        "signals": len(activity),
        "top_toggles": _top_toggles(activity, top),
        "fsm_coverage": {
            name: {
                "state_coverage": record.get("state_coverage"),
                "transition_coverage": record.get("transition_coverage"),
                "cycles": record.get("cycles"),
                "occupancy": record.get("occupancy", {}),
                "uncovered_states": record.get("uncovered_states", []),
                "uncovered_transitions":
                    record.get("uncovered_transitions", []),
            }
            for name, record in fsm.items()
        },
        "hot_blocks": _hot_blocks(profile, top),
        "events": events,
    }


def _pass_table(metrics: Dict[str, object]) -> Dict[str, Dict[str, int]]:
    """Per-pass statistics published by a ``PassManager`` (engines call
    ``pass_manager.publish(obs.metrics)``), re-grouped from the flat
    ``ir_passes/<pass>/<field>`` counter names."""
    table: Dict[str, Dict[str, int]] = {}
    for name, record in metrics.items():
        if not name.startswith("ir_passes/"):
            continue
        try:
            _, pass_name, field = name.split("/", 2)
        except ValueError:
            continue
        value = record.get("value", 0) if isinstance(record, dict) else record
        table.setdefault(pass_name, {})[field] = int(value or 0)
    return table


def _wordlength_table(metrics: Dict[str, object]) -> Dict[str, Dict[str, int]]:
    """Per-signal wordlength advice published by
    :meth:`repro.lint.bits.WordlengthReport.publish`, re-grouped from the
    flat ``wordlength/<signal>/<field>`` counter names."""
    table: Dict[str, Dict[str, int]] = {}
    for name, record in metrics.items():
        if not name.startswith("wordlength/"):
            continue
        signal, _, field = name[len("wordlength/"):].rpartition("/")
        if not signal:
            continue
        value = record.get("value", 0) if isinstance(record, dict) else record
        table.setdefault(signal, {})[field] = int(value or 0)
    return table


def render_text(data: Dict[str, object], top: int = 10) -> str:
    """Human-readable report of one capture."""
    summary = summarize(data, top)
    lines: List[str] = []

    lines.append(f"observability report — {summary['signals']} signals")
    rows = summary["top_toggles"]
    if rows:
        lines.append("")
        lines.append(f"top toggling signals (of {summary['signals']})")
        lines.append(f"  {'signal':<40} {'toggles':>10} {'changes':>10} "
                     f"{'rate':>8}")
        for row in rows:
            rate = row.get("toggle_rate", 0.0) or 0.0
            lines.append(
                f"  {row['name']:<40} {row.get('toggles', 0):>10} "
                f"{row.get('changes', 0):>10} {rate:>8.3f}"
            )

    passes = summary["ir_passes"]
    if passes:
        lines.append("")
        lines.append("IR pass pipeline")
        lines.append(f"  {'pass':<24} {'runs':>6} {'changed':>8} "
                     f"{'ops-':>6} {'us':>8} {'validated':>10} {'proved':>7}")
        for name in sorted(passes):
            row = passes[name]
            lines.append(
                f"  {name:<24} {row.get('runs', 0):>6} "
                f"{row.get('changed', 0):>8} {row.get('ops_removed', 0):>6} "
                f"{row.get('time_us', 0):>8} {row.get('validated', 0):>10} "
                f"{row.get('proved', 0):>7}"
            )

    wordlengths = summary["wordlengths"]
    if wordlengths:
        lines.append("")
        lines.append("wordlength advice (known-bits / liveness analysis)")
        lines.append(f"  {'signal':<32} {'wl':>4} {'min':>4} {'save':>5} "
                     f"{'const':>6} {'dead':>5}")
        total = saved = 0
        ordered = sorted(
            wordlengths,
            key=lambda s: (wordlengths[s].get("min_wl", 0)
                           - wordlengths[s].get("wl", 0), s))
        for signal in ordered:
            row = wordlengths[signal]
            wl = row.get("wl", 0)
            min_wl = row.get("min_wl", wl)
            total += wl
            saved += max(wl - min_wl, 0)
            lines.append(
                f"  {signal:<32} {wl:>4} {min_wl:>4} "
                f"{max(wl - min_wl, 0):>5} {row.get('const_bits', 0):>6} "
                f"{row.get('dead_bits', 0):>5}"
            )
        lines.append(f"  total {total} bits allocated, "
                     f"{saved} provably removable")

    coverage = summary["fsm_coverage"]
    if coverage:
        lines.append("")
        lines.append("FSM coverage")
        for name in sorted(coverage):
            record = coverage[name]
            sc = record["state_coverage"]
            tc = record["transition_coverage"]
            lines.append(
                f"  {name:<40} states {100.0 * (sc or 0.0):5.1f}%  "
                f"transitions {100.0 * (tc or 0.0):5.1f}%  "
                f"({record['cycles']} cycles)"
            )
            occupancy = record["occupancy"]
            total = sum(occupancy.values()) or 1
            for state in occupancy:
                share = 100.0 * occupancy[state] / total
                lines.append(f"    {state:<22} {occupancy[state]:>8} cycles "
                             f"({share:5.1f}%)")
            if record["uncovered_states"]:
                lines.append("    uncovered states: "
                             + ", ".join(record["uncovered_states"]))
            if record["uncovered_transitions"]:
                indices = ", ".join(
                    str(i) for i in record["uncovered_transitions"])
                lines.append(f"    uncovered transitions: [{indices}]")

    hot = summary["hot_blocks"]
    if hot:
        lines.append("")
        lines.append("hot blocks (engine self-profile)")
        lines.append(f"  {'block':<48} {'calls':>10} {'seconds':>12}")
        for row in hot:
            lines.append(f"  {row['label']:<48} {row.get('calls', 0):>10} "
                         f"{row.get('seconds', 0.0):>12.6f}")

    events = summary["events"]
    if events:
        lines.append("")
        lines.append("events")
        for kind in sorted(events):
            lines.append(f"  {kind:<24} {events[kind]:>8}")

    timeline = summary.get("runner_timeline") or []
    if timeline:
        lines.append("")
        lines.append(f"run timeline ({len(timeline)} lifecycle events)")
        lines.append(f"  {'t':>9}  {'event':<18} detail")
        for row in timeline:
            t = row.get("t")
            stamp = f"{t:9.3f}" if isinstance(t, (int, float)) else " " * 9
            lines.append(f"  {stamp}  {row['kind']:<18} {row['detail']}")

    return "\n".join(lines)


def render_json(data: Dict[str, object], top: int = 10) -> str:
    """The summary as pretty-printed JSON."""
    return json.dumps(summarize(data, top), indent=2, default=str)
