"""Render a captured run as a text or JSON report.

Loads the directory written by :meth:`repro.obs.Capture.save`
(``metrics.json`` plus optional ``events.jsonl``) and renders the
questions an ASIC designer asks first: which signals toggle most
(switching-activity / power proxy), how much of each controller FSM the
stimulus exercised, where the engine spent its wall time, and what
discrete events the run produced.  No engine import is needed to read a
capture — the report works on serialized data only.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from .events import read_events
from .spans import critical_path, read_spans, span_tree


def load_capture(directory: str) -> Dict[str, object]:
    """Load a capture directory into one dict (``events`` inlined).

    Also accepts a bare JSONL event stream (a file path): the sharded
    campaign runner journals its lifecycle events without a metrics
    capture, and ``python -m repro.obs report`` renders those timelines
    too.

    A *partial* capture directory — a run that died before
    ``Capture.save`` finished, or a runner capture that only streamed
    events/spans — loads gracefully: whatever of ``metrics.json``,
    ``events.jsonl`` and ``spans.jsonl`` is present is read, and the
    report says what was found (``capture_files`` / missing keys).
    Only a directory with *none* of them raises.
    """
    if os.path.isfile(directory):
        return {"event_list": read_events(directory)}
    metrics_path = os.path.join(directory, "metrics.json")
    events_path = os.path.join(directory, "events.jsonl")
    spans_path = os.path.join(directory, "spans.jsonl")
    found = [os.path.basename(p) for p in (metrics_path, events_path,
                                           spans_path) if os.path.isfile(p)]
    if not found:
        raise FileNotFoundError(
            f"{directory!r} is not a capture directory (no metrics.json, "
            "events.jsonl or spans.jsonl); write one with "
            "Capture.save(directory)"
        )
    data: Dict[str, object] = {}
    if os.path.isfile(metrics_path):
        with open(metrics_path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    if os.path.isfile(events_path):
        data["event_list"] = read_events(events_path)
    if os.path.isfile(spans_path):
        data["span_list"] = read_spans(spans_path)
    data["capture_files"] = found
    return data


def _top_toggles(activity: Dict[str, Dict], count: int) -> List[Dict]:
    rows = [
        {"name": name, **record} for name, record in activity.items()
    ]
    rows.sort(key=lambda r: (r.get("toggles", 0), r.get("changes", 0),
                             r["name"]),
              reverse=True)
    return rows[:count]


def _hot_blocks(profile: Dict[str, Dict], count: int) -> List[Dict]:
    rows = [{"label": label, **record} for label, record in profile.items()]
    rows.sort(key=lambda r: (r.get("seconds", 0.0), r.get("calls", 0),
                             r["label"]),
              reverse=True)
    return rows[:count]


#: Lifecycle kinds the sharded campaign runner emits; their presence in
#: a stream switches on the run-timeline section of the report.
RUNNER_KINDS = ("run_start", "worker_spawned", "worker_died",
                "shard_dispatched", "shard_completed", "shard_retried",
                "shard_abandoned", "run_end")

#: Per-cycle / per-fault simulation kinds: counted in the events table
#: but never expanded into timeline rows (they would drown it).
SIM_KINDS = ("cycle", "fsm_transition", "fire", "fault", "deadlock",
             "watchdog", "overflow", "campaign_start", "campaign_end")

#: High-frequency runner kinds: summarized, not rendered line by line.
BULK_KINDS = ("progress", "heartbeat")


def _describe_generic(event: Dict[str, object]) -> str:
    """Forward-compat fallback: render any event as ``key=value`` pairs.

    The event stream is append-only and forward compatible — a reader
    must never silently drop a kind it does not know, so unknown kinds
    get this generic line instead of vanishing from the timeline.
    """
    return ", ".join(
        f"{key}={event[key]}" for key in sorted(event)
        if key not in ("kind", "seq", "t")
    )


def _describe_runner_event(event: Dict[str, object]) -> str:
    kind = event.get("kind")
    if kind == "run_start":
        return (f"{event.get('shards')} shards over "
                f"{event.get('workers')} workers "
                f"({event.get('work')} work items, "
                f"{event.get('reused', 0)} from journal)")
    if kind == "worker_spawned":
        return f"{event.get('worker')} (pid {event.get('pid')})"
    if kind == "worker_died":
        where = (f" holding shard {event['shard']}"
                 if event.get("shard") is not None else "")
        cause = " [deadline kill]" if event.get("timed_out") else ""
        return (f"{event.get('worker')} exitcode "
                f"{event.get('exitcode')}{where}{cause}")
    if kind == "shard_dispatched":
        return (f"shard {event.get('shard')} {event.get('span')} -> "
                f"{event.get('worker')} (attempt {event.get('attempt')})")
    if kind == "shard_completed":
        return (f"shard {event.get('shard')} on {event.get('worker')}: "
                f"{event.get('results')} results")
    if kind == "shard_retried":
        return (f"shard {event.get('shard')} failed "
                f"({event.get('error')}), backoff "
                f"{event.get('backoff')}s")
    if kind == "shard_abandoned":
        return (f"shard {event.get('shard')} after "
                f"{event.get('attempts')} attempts: {event.get('error')}")
    if kind == "run_end":
        return (f"complete={event.get('complete')} "
                f"({event.get('completed')} run, "
                f"{event.get('retries')} retries, "
                f"{event.get('abandoned')} abandoned, "
                f"{event.get('worker_deaths')} worker deaths, "
                f"{event.get('wall_seconds')}s)")
    return _describe_generic(event)


def runner_timeline(event_list: List[Dict]) -> List[Dict[str, object]]:
    """The runner lifecycle rows of an event stream, in emission order.

    Renders only when the stream carries runner lifecycle kinds at all.
    Simulation kinds (:data:`SIM_KINDS`) stay in the events table, and
    the high-frequency :data:`BULK_KINDS` are summarized there too —
    but *every other* kind, including ones this reader has never heard
    of, gets a row (generic ``key=value`` detail), so a newer runner's
    stream never loses lifecycle information in an older report.
    """
    if not any(event.get("kind") in RUNNER_KINDS for event in event_list):
        return []
    skip = set(SIM_KINDS) | set(BULK_KINDS)
    return [
        {"t": event.get("t"), "kind": event.get("kind"),
         "detail": _describe_runner_event(event)}
        for event in event_list
        if event.get("kind") not in skip
    ]


def _span_rows(span_list: List[Dict[str, object]]
               ) -> List[Dict[str, object]]:
    """Depth-annotated rows of the span tree, in tree order."""
    rows: List[Dict[str, object]] = []

    def walk(node: Dict[str, object], depth: int) -> None:
        record = node["record"]
        rows.append({
            "name": record.get("name"), "depth": depth,
            "dur": record.get("dur"), "status": record.get("status"),
            "attrs": record.get("attrs", {}),
        })
        for child in node["children"]:
            walk(child, depth + 1)

    for root in span_tree(span_list):
        walk(root, 0)
    return rows


def _span_summary(span_list: List[Dict[str, object]]) -> Dict[str, object]:
    """Tree rows, phase totals and the critical path of one span stream."""
    rows = _span_rows(span_list)
    # Phase totals: wall time per distinct depth-1 span name (compile
    # vs simulate vs merge under the root campaign span).
    phases: Dict[str, float] = {}
    for row in rows:
        if row["depth"] == 1 and row["dur"] is not None:
            name = str(row["name"])
            phases[name] = phases.get(name, 0.0) + float(row["dur"])
    path = [{"name": r.get("name"), "dur": r.get("dur"),
             "status": r.get("status")} for r in critical_path(span_list)]
    return {
        "count": len(span_list),
        "failed": sum(1 for r in span_list if r.get("status") == "failed"),
        "tree": rows,
        "phases": {name: phases[name] for name in sorted(phases)},
        "critical_path": path,
    }


def summarize(data: Dict[str, object], top: int = 10) -> Dict[str, object]:
    """The report's content as plain data (the ``--json`` output)."""
    activity = data.get("activity", {}) or {}
    fsm = data.get("fsm", {}) or {}
    profile = data.get("profile", {}) or {}
    events = data.get("events", {}) or {}
    timeline: List[Dict[str, object]] = []
    if "event_list" in data:
        timeline = runner_timeline(data["event_list"])
    if not events and "event_list" in data:
        for event in data["event_list"]:
            kind = event.get("kind", "?")
            events[kind] = events.get(kind, 0) + 1
    spans: Dict[str, object] = {}
    if data.get("span_list"):
        spans = _span_summary(data["span_list"])
    return {
        "capture_files": data.get("capture_files"),
        "spans": spans,
        "runner_timeline": timeline,
        "ir_passes": _pass_table(data.get("metrics", {}) or {}),
        "wordlengths": _wordlength_table(data.get("metrics", {}) or {}),
        "signals": len(activity),
        "top_toggles": _top_toggles(activity, top),
        "fsm_coverage": {
            name: {
                "state_coverage": record.get("state_coverage"),
                "transition_coverage": record.get("transition_coverage"),
                "cycles": record.get("cycles"),
                "occupancy": record.get("occupancy", {}),
                "uncovered_states": record.get("uncovered_states", []),
                "uncovered_transitions":
                    record.get("uncovered_transitions", []),
            }
            for name, record in fsm.items()
        },
        "hot_blocks": _hot_blocks(profile, top),
        "events": events,
    }


def _pass_table(metrics: Dict[str, object]) -> Dict[str, Dict[str, int]]:
    """Per-pass statistics published by a ``PassManager`` (engines call
    ``pass_manager.publish(obs.metrics)``), re-grouped from the flat
    ``ir_passes/<pass>/<field>`` counter names."""
    table: Dict[str, Dict[str, int]] = {}
    for name, record in metrics.items():
        if not name.startswith("ir_passes/"):
            continue
        try:
            _, pass_name, field = name.split("/", 2)
        except ValueError:
            continue
        value = record.get("value", 0) if isinstance(record, dict) else record
        table.setdefault(pass_name, {})[field] = int(value or 0)
    return table


def _wordlength_table(metrics: Dict[str, object]) -> Dict[str, Dict[str, int]]:
    """Per-signal wordlength advice published by
    :meth:`repro.lint.bits.WordlengthReport.publish`, re-grouped from the
    flat ``wordlength/<signal>/<field>`` counter names."""
    table: Dict[str, Dict[str, int]] = {}
    for name, record in metrics.items():
        if not name.startswith("wordlength/"):
            continue
        signal, _, field = name[len("wordlength/"):].rpartition("/")
        if not signal:
            continue
        value = record.get("value", 0) if isinstance(record, dict) else record
        table.setdefault(signal, {})[field] = int(value or 0)
    return table


def render_text(data: Dict[str, object], top: int = 10) -> str:
    """Human-readable report of one capture."""
    summary = summarize(data, top)
    lines: List[str] = []

    lines.append(f"observability report — {summary['signals']} signals")
    found = summary.get("capture_files")
    if found is not None:
        lines.append("capture contents: " + ", ".join(found))
        missing = [name for name in ("metrics.json", "events.jsonl",
                                     "spans.jsonl") if name not in found]
        if missing:
            lines.append("  (partial capture — missing: "
                         + ", ".join(missing) + ")")
    rows = summary["top_toggles"]
    if rows:
        lines.append("")
        lines.append(f"top toggling signals (of {summary['signals']})")
        lines.append(f"  {'signal':<40} {'toggles':>10} {'changes':>10} "
                     f"{'rate':>8}")
        for row in rows:
            rate = row.get("toggle_rate", 0.0) or 0.0
            lines.append(
                f"  {row['name']:<40} {row.get('toggles', 0):>10} "
                f"{row.get('changes', 0):>10} {rate:>8.3f}"
            )

    passes = summary["ir_passes"]
    if passes:
        lines.append("")
        lines.append("IR pass pipeline")
        lines.append(f"  {'pass':<24} {'runs':>6} {'changed':>8} "
                     f"{'ops-':>6} {'us':>8} {'validated':>10} {'proved':>7}")
        for name in sorted(passes):
            row = passes[name]
            lines.append(
                f"  {name:<24} {row.get('runs', 0):>6} "
                f"{row.get('changed', 0):>8} {row.get('ops_removed', 0):>6} "
                f"{row.get('time_us', 0):>8} {row.get('validated', 0):>10} "
                f"{row.get('proved', 0):>7}"
            )

    wordlengths = summary["wordlengths"]
    if wordlengths:
        lines.append("")
        lines.append("wordlength advice (known-bits / liveness analysis)")
        lines.append(f"  {'signal':<32} {'wl':>4} {'min':>4} {'save':>5} "
                     f"{'const':>6} {'dead':>5}")
        total = saved = 0
        ordered = sorted(
            wordlengths,
            key=lambda s: (wordlengths[s].get("min_wl", 0)
                           - wordlengths[s].get("wl", 0), s))
        for signal in ordered:
            row = wordlengths[signal]
            wl = row.get("wl", 0)
            min_wl = row.get("min_wl", wl)
            total += wl
            saved += max(wl - min_wl, 0)
            lines.append(
                f"  {signal:<32} {wl:>4} {min_wl:>4} "
                f"{max(wl - min_wl, 0):>5} {row.get('const_bits', 0):>6} "
                f"{row.get('dead_bits', 0):>5}"
            )
        lines.append(f"  total {total} bits allocated, "
                     f"{saved} provably removable")

    coverage = summary["fsm_coverage"]
    if coverage:
        lines.append("")
        lines.append("FSM coverage")
        for name in sorted(coverage):
            record = coverage[name]
            sc = record["state_coverage"]
            tc = record["transition_coverage"]
            lines.append(
                f"  {name:<40} states {100.0 * (sc or 0.0):5.1f}%  "
                f"transitions {100.0 * (tc or 0.0):5.1f}%  "
                f"({record['cycles']} cycles)"
            )
            occupancy = record["occupancy"]
            total = sum(occupancy.values()) or 1
            for state in occupancy:
                share = 100.0 * occupancy[state] / total
                lines.append(f"    {state:<22} {occupancy[state]:>8} cycles "
                             f"({share:5.1f}%)")
            if record["uncovered_states"]:
                lines.append("    uncovered states: "
                             + ", ".join(record["uncovered_states"]))
            if record["uncovered_transitions"]:
                indices = ", ".join(
                    str(i) for i in record["uncovered_transitions"])
                lines.append(f"    uncovered transitions: [{indices}]")

    hot = summary["hot_blocks"]
    if hot:
        lines.append("")
        lines.append("hot blocks (engine self-profile)")
        lines.append(f"  {'block':<48} {'calls':>10} {'seconds':>12}")
        for row in hot:
            lines.append(f"  {row['label']:<48} {row.get('calls', 0):>10} "
                         f"{row.get('seconds', 0.0):>12.6f}")

    events = summary["events"]
    if events:
        lines.append("")
        lines.append("events")
        for kind in sorted(events):
            lines.append(f"  {kind:<24} {events[kind]:>8}")

    timeline = summary.get("runner_timeline") or []
    if timeline:
        lines.append("")
        lines.append(f"run timeline ({len(timeline)} lifecycle events)")
        lines.append(f"  {'t':>9}  {'event':<18} detail")
        for row in timeline:
            t = row.get("t")
            stamp = f"{t:9.3f}" if isinstance(t, (int, float)) else " " * 9
            lines.append(f"  {stamp}  {row['kind']:<18} {row['detail']}")

    spans = summary.get("spans") or {}
    if spans:
        lines.append("")
        lines.append(f"span tree ({spans['count']} spans, "
                     f"{spans['failed']} failed)")
        for row in spans["tree"]:
            dur = row.get("dur")
            stamp = f"{dur:10.3f}s" if isinstance(dur, (int, float)) \
                else " " * 11
            mark = "  FAILED" if row.get("status") == "failed" else ""
            attrs = row.get("attrs") or {}
            detail = "  [" + ", ".join(
                f"{k}={attrs[k]}" for k in sorted(attrs)) + "]" \
                if attrs else ""
            lines.append(f"  {stamp}  {'  ' * row['depth']}{row['name']}"
                         f"{mark}{detail}")
        phases = spans.get("phases") or {}
        if phases:
            lines.append("  phase totals: " + ", ".join(
                f"{name} {phases[name]:.3f}s" for name in sorted(phases)))
        path = spans.get("critical_path") or []
        if path:
            lines.append("  critical path: " + " -> ".join(
                f"{r['name']} ({r['dur']:.3f}s)" if r.get("dur") is not None
                else str(r["name"]) for r in path))

    return "\n".join(lines)


def render_json(data: Dict[str, object], top: int = 10) -> str:
    """The summary as pretty-printed JSON."""
    return json.dumps(summarize(data, top), indent=2, default=str)


# -- capture diff ---------------------------------------------------------------


def _scalar_view(data: Dict[str, object]) -> Dict[str, float]:
    """Flatten a capture into comparable named scalars.

    Covers metric values (counter/gauge values, histogram counts and
    totals), per-signal toggle counts and event-kind counts — the
    numbers a regression gate cares about.  Spans and engine profiles
    are timing data and deliberately excluded: they vary run to run.
    """
    out: Dict[str, float] = {}
    for name, record in (data.get("metrics", {}) or {}).items():
        if not isinstance(record, dict):
            out[f"metric/{name}"] = float(record)
            continue
        kind = record.get("type")
        if kind == "histogram":
            out[f"metric/{name}/count"] = float(record.get("count", 0))
            out[f"metric/{name}/total"] = float(record.get("total", 0.0))
        elif record.get("value") is not None:
            out[f"metric/{name}"] = float(record["value"])
    for name, record in (data.get("activity", {}) or {}).items():
        out[f"toggles/{name}"] = float(record.get("toggles", 0))
    events = data.get("events", {}) or {}
    if not events and "event_list" in data:
        for event in data["event_list"]:
            kind = event.get("kind", "?")
            events[kind] = events.get(kind, 0) + 1
    for kind, count in events.items():
        out[f"events/{kind}"] = float(count)
    return out


def diff_captures(a: Dict[str, object], b: Dict[str, object],
                  threshold: float = 0.0) -> Dict[str, object]:
    """Compare two loaded captures' scalars with threshold gating.

    Returns rows for every name whose value differs (or exists on only
    one side), each with ``old`` / ``new`` / ``delta`` / ``rel`` (the
    relative change, ``None`` when old is 0 or the name is one-sided)
    and ``flagged`` — True when the relative change exceeds
    *threshold*, or the name appeared/disappeared, or old is 0 (no
    baseline to scale by).  ``threshold=0.05`` means "fail the gate on
    any metric that moved more than 5%".
    """
    left, right = _scalar_view(a), _scalar_view(b)
    rows: List[Dict[str, object]] = []
    for name in sorted(set(left) | set(right)):
        old, new = left.get(name), right.get(name)
        if old == new:
            continue
        rel: Optional[float] = None
        if old is not None and new is not None and old != 0:
            rel = (new - old) / abs(old)
        flagged = rel is None or abs(rel) > threshold
        rows.append({
            "name": name, "old": old, "new": new,
            "delta": (new or 0.0) - (old or 0.0),
            "rel": rel, "flagged": flagged,
        })
    return {
        "threshold": threshold,
        "compared": len(set(left) | set(right)),
        "rows": rows,
        "flagged": sum(1 for row in rows if row["flagged"]),
    }


def render_diff(diff: Dict[str, object]) -> str:
    """Human-readable table of one :func:`diff_captures` result."""
    lines: List[str] = []
    lines.append(
        f"capture diff — {diff['compared']} scalars compared, "
        f"{len(diff['rows'])} changed, {diff['flagged']} over the "
        f"{100.0 * diff['threshold']:.1f}% threshold")
    if diff["rows"]:
        lines.append(f"  {'name':<44} {'old':>12} {'new':>12} "
                     f"{'change':>9}")
        for row in diff["rows"]:
            old = "—" if row["old"] is None else f"{row['old']:g}"
            new = "—" if row["new"] is None else f"{row['new']:g}"
            rel = row.get("rel")
            change = f"{100.0 * rel:+8.1f}%" if rel is not None else "      new" \
                if row["old"] is None else "  removed" if row["new"] is None \
                else "     ±inf"
            mark = "  <-- FLAGGED" if row["flagged"] else ""
            lines.append(f"  {row['name']:<44} {old:>12} {new:>12} "
                         f"{change}{mark}")
    return "\n".join(lines)
