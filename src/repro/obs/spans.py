"""Distributed tracing: spans over the compile -> simulate -> merge pipeline.

A *span* is one timed unit of work — synthesizing a netlist, executing a
shard, merging worker results — with a name, a wall-clock start, a
monotonic-clock duration, a status (``ok`` / ``failed``) and arbitrary
attributes.  Spans nest: every span records its parent, and the whole
run shares one ``trace`` id, so a reader can rebuild the tree of what
happened where and attribute the wall time of a campaign to its phases
(the critical-path section of ``python -m repro.obs report``).

Cross-process continuation is the point: a :class:`SpanContext` is the
JSON-serializable (trace, span) pair identifying one open span.  The
sharded runner threads it through the job wire form
(:class:`~repro.runner.jobs.CampaignJob`), each worker opens a
:class:`SpanTracer` *continued from* that context, and the worker's
shard spans — shipped back as plain dicts over the reply pipe — nest
under the parent campaign span exactly as if one process had run
everything.  Serialized spans land in ``spans.jsonl`` next to the
existing ``events.jsonl``.

Timing model: ``start`` is wall-clock (``time.time``) so spans from
different processes land on one comparable axis; ``dur`` is measured on
the monotonic clock so a span's own duration is immune to wall-clock
steps.  Span ids are random (uuid4) — spans are timing observations,
never part of the deterministic merged telemetry
(:mod:`repro.obs.aggregate` owns that).

A disabled tracer (``SpanTracer(enabled=False)``) is free: ``span()``
returns a shared no-op context manager, no record is ever allocated —
the same "instrumentation you didn't ask for is instrumentation you
don't pay for" contract the rest of :mod:`repro.obs` honours.

Layering (contract #8 in ``tools/check_layering.py``): this module
imports only ``repro.core`` and stdlib — the runner imports it, never
the reverse.
"""

from __future__ import annotations

import json
import time
import uuid
from typing import Callable, Dict, List, Optional, Sequence, TextIO, Union

from ..core.errors import ReproError


class SpanContext:
    """The serializable identity of one open span: ``(trace, span)``."""

    __slots__ = ("trace", "span")

    def __init__(self, trace: str, span: str):
        self.trace = trace
        self.span = span

    def to_json(self) -> Dict[str, str]:
        return {"trace": self.trace, "span": self.span}

    @classmethod
    def from_json(cls, record: Optional[Dict[str, str]]
                  ) -> Optional["SpanContext"]:
        if not record:
            return None
        return cls(str(record["trace"]), str(record["span"]))

    def __eq__(self, other) -> bool:
        return (isinstance(other, SpanContext)
                and self.trace == other.trace and self.span == other.span)

    def __repr__(self) -> str:
        return f"SpanContext(trace={self.trace!r}, span={self.span!r})"


class Span:
    """One timed unit of work; close it via the tracer's context manager."""

    __slots__ = ("name", "trace", "span_id", "parent_id", "start", "dur",
                 "status", "attrs", "_t0")

    def __init__(self, name: str, trace: str, span_id: str,
                 parent_id: Optional[str], attrs: Dict[str, object],
                 wall: float, mono: float):
        self.name = name
        self.trace = trace
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = wall
        self.dur: Optional[float] = None
        self.status = "ok"
        self.attrs = attrs
        self._t0 = mono

    def context(self) -> SpanContext:
        """This span's context, for threading into a child process."""
        return SpanContext(self.trace, self.span_id)

    def set(self, **attrs) -> "Span":
        """Attach attributes after the span opened (e.g. result counts)."""
        self.attrs.update(attrs)
        return self

    def fail(self) -> "Span":
        """Mark the span failed (kept failed even if closed normally)."""
        self.status = "failed"
        return self

    def as_record(self) -> Dict[str, object]:
        """The JSON-safe wire/file form of a (closed) span."""
        record: Dict[str, object] = {
            "name": self.name, "trace": self.trace, "span": self.span_id,
            "parent": self.parent_id,
            "start": round(self.start, 6),
            "dur": round(self.dur, 6) if self.dur is not None else None,
            "status": self.status,
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, status={self.status!r}, "
                f"dur={self.dur})")


class _NoopSpan:
    """The shared do-nothing span a disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self

    def fail(self) -> "_NoopSpan":
        return self

    def context(self) -> None:
        return None


_NOOP = _NoopSpan()


class _SpanHandle:
    """Context-manager wrapper closing one span on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "SpanTracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __getattr__(self, name):
        return getattr(self._span, name)

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.fail()
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer.close(self._span)
        return False


class SpanTracer:
    """Creates, nests, serializes and absorbs spans for one process.

    Parameters
    ----------
    enabled:
        A disabled tracer costs nothing and records nothing.
    parent:
        A :class:`SpanContext` (or its JSON dict) from another process;
        root spans opened here become children of it, continuing the
        parent's trace.
    clock / wall:
        Injectable monotonic / wall clocks (tests).
    """

    def __init__(self, enabled: bool = True,
                 parent: Optional[Union[SpanContext, Dict[str, str]]] = None,
                 clock: Callable[[], float] = time.monotonic,
                 wall: Callable[[], float] = time.time):
        self.enabled = enabled
        if isinstance(parent, dict):
            parent = SpanContext.from_json(parent)
        self._parent = parent
        self._clock = clock
        self._wall = wall
        self.trace = parent.trace if parent is not None else uuid.uuid4().hex
        self._stack: List[Span] = []
        self._records: List[Dict[str, object]] = []

    # -- creation ----------------------------------------------------------------

    def span(self, name: str, **attrs):
        """Open a nested span; use as a context manager.

        The span closes (duration stamped, record appended) when the
        ``with`` block exits; an exception marks it ``failed`` and
        propagates.
        """
        if not self.enabled:
            return _NOOP
        return _SpanHandle(self, self.begin(name, **attrs))

    def begin(self, name: str, **attrs) -> Optional[Span]:
        """Open a span without a context manager; pair with :meth:`close`."""
        if not self.enabled:
            return None
        parent_id = (self._stack[-1].span_id if self._stack
                     else (self._parent.span if self._parent is not None
                           else None))
        span = Span(name, self.trace, uuid.uuid4().hex, parent_id,
                    dict(attrs), wall=self._wall(), mono=self._clock())
        self._stack.append(span)
        return span

    def close(self, span: Optional[Span]) -> None:
        """Close *span* (and any unclosed children, innermost first)."""
        if span is None or not self.enabled:
            return
        while self._stack:
            top = self._stack.pop()
            top.dur = self._clock() - top._t0
            self._records.append(top.as_record())
            if top is span:
                return
        raise ReproError(f"span {span.name!r} is not open on this tracer")

    def current_context(self) -> Optional[SpanContext]:
        """The innermost open span's context (or the continued parent's)."""
        if self._stack:
            return self._stack[-1].context()
        return self._parent

    # -- records -----------------------------------------------------------------

    def emit(self, name: str, *, parent: Optional[SpanContext] = None,
             start: Optional[float] = None, dur: float = 0.0,
             status: str = "ok", **attrs) -> Optional[Dict[str, object]]:
        """Record a span directly (no open/close pair).

        Used for spans observed from the outside — e.g. the parent
        synthesizing a ``failed`` span for a worker that was SIGKILLed
        and could never report its own.
        """
        if not self.enabled:
            return None
        if parent is None:
            parent = self.current_context()
        record: Dict[str, object] = {
            "name": name, "trace": self.trace, "span": uuid.uuid4().hex,
            "parent": parent.span if parent is not None else None,
            "start": round(start if start is not None else self._wall(), 6),
            "dur": round(dur, 6), "status": status,
        }
        if attrs:
            record["attrs"] = dict(attrs)
        self._records.append(record)
        return record

    def add(self, records: Sequence[Dict[str, object]]) -> None:
        """Absorb serialized spans from another process (worker replies)."""
        if not self.enabled:
            return
        self._records.extend(dict(r) for r in records)

    def records(self) -> List[Dict[str, object]]:
        """Every closed/absorbed span record, in completion order."""
        return list(self._records)

    def drain(self) -> List[Dict[str, object]]:
        """Pop the accumulated records (worker-side: ship, then forget)."""
        records, self._records = self._records, []
        return records

    def __len__(self) -> int:
        return len(self._records)

    def write_jsonl(self, stream: TextIO) -> int:
        """Write every record as JSON lines; returns the count."""
        for record in self._records:
            stream.write(json.dumps(record, default=str) + "\n")
        return len(self._records)


def read_spans(source: Union[str, TextIO]) -> List[Dict[str, object]]:
    """Parse a ``spans.jsonl`` stream from a path or open text stream.

    Blank lines are skipped; a malformed line raises ``ValueError``
    naming the line (same contract as
    :func:`repro.obs.events.read_events`).
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return read_spans(handle)
    spans: List[Dict[str, object]] = []
    for lineno, line in enumerate(source, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            spans.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"spans line {lineno} is not valid JSON: {exc}"
            ) from None
    return spans


# -- tree / critical path -------------------------------------------------------


def span_tree(records: Sequence[Dict[str, object]]
              ) -> List[Dict[str, object]]:
    """Nest span records into trees: ``{"record", "children"}`` nodes.

    Roots are spans whose parent is None or absent from *records* (a
    worker batch read without its parent still renders).  Children sort
    by wall-clock start, then name — stable across dict order.
    """
    nodes = {r["span"]: {"record": r, "children": []} for r in records}
    roots: List[Dict[str, object]] = []
    for record in records:
        parent = record.get("parent")
        if parent is not None and parent in nodes \
                and parent != record["span"]:
            nodes[parent]["children"].append(nodes[record["span"]])
        else:
            roots.append(nodes[record["span"]])

    def sort(children: List[Dict[str, object]]) -> None:
        children.sort(key=lambda n: (n["record"].get("start") or 0.0,
                                     str(n["record"].get("name"))))
        for child in children:
            sort(child["children"])

    sort(roots)
    return roots


def critical_path(records: Sequence[Dict[str, object]]
                  ) -> List[Dict[str, object]]:
    """The chain of spans dominating the trace's wall time.

    From the longest root, repeatedly descend into the longest child —
    the answer to "where did the time go": e.g. ``campaign -> simulate
    -> shard 7``.
    """
    def duration(node: Dict[str, object]) -> float:
        return node["record"].get("dur") or 0.0

    roots = span_tree(records)
    if not roots:
        return []
    path: List[Dict[str, object]] = []
    node = max(roots, key=duration)
    while node is not None:
        path.append(node["record"])
        node = max(node["children"], key=duration) \
            if node["children"] else None
    return path
