"""Deterministic merge of many capture fragments into one campaign view.

A sharded campaign produces one small telemetry fragment per shard —
the JSON form of a :class:`~repro.obs.capture.Capture`
(``Capture.as_dict()``): metrics, toggle activity, FSM profiles, engine
profiles, event-kind counts.  This module folds N fragments into one
capture-shaped dict so the whole campaign reads like a single run:

* **counters** sum;
* **gauges** keep the *last* value in fold order plus the global
  min/max and the summed sample count;
* **histograms** merge bucket-wise (bounds must agree — merging
  distributions bucketed differently would silently lie);
* **toggle activity** sums samples/changes/toggles and recomputes the
  rate (widths must agree);
* **FSM profiles** union: occupancy and transition fires sum, and
  coverage / uncovered lists are *recomputed* from the merged counts
  via the real :class:`~repro.obs.fsmprof.FsmStats` logic — a state
  covered in any shard is covered in the merge;
* **engine profiles** sum calls and seconds;
* **event-kind counts** sum.

Determinism contract: the merge is a pure fold over the input sequence
with all result keys emitted sorted, so for fragments keyed by *shard*
(deterministic simulation output, fed in shard order) the merged dict —
and its ``json.dumps(..., sort_keys=True)`` byte form — is identical
regardless of worker count, crash history or retry schedule.  That is
the runner's existing byte-identical report guarantee extended to
telemetry.

Layering (contract #8): imports only ``repro.core`` and sibling obs
modules.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.errors import ReproError
from .fsmprof import FsmStats


def _merge_counter(name: str, merged: Dict[str, object],
                   record: Dict[str, object]) -> None:
    merged["value"] = int(merged.get("value", 0)) + int(record.get("value", 0))


def _merge_gauge(name: str, merged: Dict[str, object],
                 record: Dict[str, object]) -> None:
    if record.get("value") is not None:
        merged["value"] = record["value"]
    for key, pick in (("min", min), ("max", max)):
        ours, theirs = merged.get(key), record.get(key)
        if ours is None:
            merged[key] = theirs
        elif theirs is not None:
            merged[key] = pick(ours, theirs)
    merged["samples"] = (int(merged.get("samples", 0))
                         + int(record.get("samples", 0)))


def _merge_histogram(name: str, merged: Dict[str, object],
                     record: Dict[str, object]) -> None:
    if list(merged.get("bounds", [])) != list(record.get("bounds", [])):
        raise ReproError(
            f"histogram {name!r}: cannot merge fragments with different "
            f"bucket bounds ({merged.get('bounds')} != "
            f"{record.get('bounds')})"
        )
    ours = list(merged.get("buckets", []))
    theirs = list(record.get("buckets", []))
    merged["buckets"] = [a + b for a, b in zip(ours, theirs)]
    merged["count"] = int(merged.get("count", 0)) + int(record.get("count", 0))
    merged["total"] = float(merged.get("total", 0.0)) \
        + float(record.get("total", 0.0))


_METRIC_MERGERS = {
    "counter": _merge_counter,
    "gauge": _merge_gauge,
    "histogram": _merge_histogram,
}


def merge_metrics(fragments: Sequence[Dict[str, Dict[str, object]]]
                  ) -> Dict[str, Dict[str, object]]:
    """Fold N ``MetricsRegistry.as_dict()`` forms into one."""
    merged: Dict[str, Dict[str, object]] = {}
    for fragment in fragments:
        for name in fragment:
            record = fragment[name]
            kind = record.get("type")
            ours = merged.get(name)
            if ours is None:
                merged[name] = dict(record)
                continue
            if ours.get("type") != kind:
                raise ReproError(
                    f"metric {name!r}: fragment kinds disagree "
                    f"({ours.get('type')} != {kind})"
                )
            merger = _METRIC_MERGERS.get(kind)
            if merger is None:
                raise ReproError(f"metric {name!r}: unknown kind {kind!r}")
            merger(name, ours, record)
    return {name: merged[name] for name in sorted(merged)}


def merge_activity(fragments: Sequence[Dict[str, Dict[str, object]]]
                   ) -> Dict[str, Dict[str, object]]:
    """Fold N ``ActivityProfile.as_dict()`` forms into one."""
    merged: Dict[str, Dict[str, object]] = {}
    for fragment in fragments:
        for name in fragment:
            record = fragment[name]
            ours = merged.get(name)
            if ours is None:
                merged[name] = dict(record)
                continue
            if ours.get("width") != record.get("width"):
                raise ReproError(
                    f"signal {name!r}: fragment widths disagree "
                    f"({ours.get('width')} != {record.get('width')})"
                )
            for key in ("samples", "changes", "toggles"):
                ours[key] = int(ours.get(key, 0)) + int(record.get(key, 0))
    out: Dict[str, Dict[str, object]] = {}
    for name in sorted(merged):
        record = merged[name]
        samples = int(record.get("samples", 0))
        record["toggle_rate"] = (
            int(record.get("toggles", 0)) / samples if samples else 0.0)
        out[name] = record
    return out


def merge_fsm(fragments: Sequence[Dict[str, Dict[str, object]]]
              ) -> Dict[str, Dict[str, object]]:
    """Fold N ``FsmProfile.as_dict()`` forms into one.

    Coverage and the uncovered lists are recomputed from the merged
    occupancy / fire counts through :class:`FsmStats` itself, so the
    merge can never disagree with what a single-process run would have
    reported for the same observations.
    """
    merged: Dict[str, FsmStats] = {}
    for fragment in fragments:
        for name in fragment:
            record = fragment[name]
            transitions = [
                (t.get("src"), t.get("dst"), t.get("label"), t.get("srcloc"))
                for t in record.get("transitions", [])
            ]
            stats = merged.get(name)
            if stats is None:
                stats = FsmStats(name, list(record.get("states", [])),
                                 transitions,
                                 initial=record.get("initial"))
                merged[name] = stats
            elif stats.states != list(record.get("states", [])) \
                    or stats.initial != record.get("initial"):
                raise ReproError(
                    f"fsm {name!r}: fragment state spaces disagree"
                )
            stats.cycles += int(record.get("cycles", 0))
            for state, count in record.get("occupancy", {}).items():
                stats.occupancy[state] = \
                    stats.occupancy.get(state, 0) + int(count)
            for t in record.get("transitions", []):
                stats.transitions[int(t["index"])].fires += \
                    int(t.get("fires", 0))
    return {name: merged[name].as_dict() for name in sorted(merged)}


def merge_profile(fragments: Sequence[Dict[str, Dict[str, object]]]
                  ) -> Dict[str, Dict[str, object]]:
    """Fold N ``EngineProfile.as_dict()`` forms into one (sums)."""
    merged: Dict[str, Dict[str, object]] = {}
    for fragment in fragments:
        for label in fragment:
            record = fragment[label]
            ours = merged.setdefault(label, {"calls": 0, "seconds": 0.0})
            ours["calls"] = int(ours["calls"]) + int(record.get("calls", 0))
            ours["seconds"] = float(ours["seconds"]) \
                + float(record.get("seconds", 0.0))
    return {label: merged[label] for label in sorted(merged)}


def merge_event_kinds(fragments: Sequence[Dict[str, int]]) -> Dict[str, int]:
    """Fold N event-kind count dicts into one (sums)."""
    merged: Dict[str, int] = {}
    for fragment in fragments:
        for kind in fragment:
            merged[kind] = merged.get(kind, 0) + int(fragment[kind])
    return {kind: merged[kind] for kind in sorted(merged)}


def merge_captures(fragments: Sequence[Optional[Dict[str, object]]]
                   ) -> Dict[str, object]:
    """Fold N ``Capture.as_dict()`` fragments into one capture dict.

    ``None`` entries are skipped (a shard that shipped no telemetry —
    e.g. an abandoned one — contributes nothing but costs nothing).
    The result is save-compatible: write it as ``metrics.json`` and
    ``python -m repro.obs report`` renders it like any single run.
    """
    present: List[Dict[str, object]] = [f for f in fragments if f]
    return {
        "metrics": merge_metrics(
            [f.get("metrics", {}) or {} for f in present]),
        "activity": merge_activity(
            [f.get("activity", {}) or {} for f in present]),
        "fsm": merge_fsm([f.get("fsm", {}) or {} for f in present]),
        "profile": merge_profile(
            [f.get("profile", {}) or {} for f in present]),
        "events": merge_event_kinds(
            [f.get("events", {}) or {} for f in present]),
    }
