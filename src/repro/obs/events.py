"""The structured event trace: one JSON object per line.

Alongside the waveform (VCD) view of a run, the event trace records the
*discrete* happenings — FSM transitions, untimed firings, deadlocks,
watchdog expiries, injected faults — each with the simulation cycle and,
where the model carries one, the ``srcloc`` of the construction site
that caused it.  The schema is deliberately small and stable:

``kind``
    The event type.  Current kinds: ``cycle`` (periodic cycle-boundary
    marker), ``fsm_transition`` (a state change; ``fsm``, ``src``,
    ``dst``, ``srcloc``), ``fire`` (an untimed process firing;
    ``process``), ``deadlock`` (``pending``, ``channels``,
    ``iterations``, ``trace``), ``watchdog`` (``budget``, ``cycles``,
    ``seconds``), ``fault`` (``fault``, ``net``, ``detected``,
    ``detect_cycle``, ``detect_output``, ``class_size``),
    ``campaign_start`` / ``campaign_end``, and ``overflow``.
``seq``
    Monotone sequence number (the line's position in the stream).
``cycle``
    The simulation cycle the event belongs to (None when acyclic, e.g.
    data-flow firings are tagged with the firing count instead).

All other fields are kind-specific payload.  Unknown kinds/fields must
be tolerated by readers — the stream is append-only and forward
compatible.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional, TextIO, Union


class EventTrace:
    """Collects events in memory and (optionally) streams them as JSONL."""

    def __init__(self, stream: Optional[TextIO] = None):
        self.events: List[Dict[str, object]] = []
        self._stream = stream
        self._seq = 0

    def emit(self, kind: str, cycle: Optional[int] = None,
             **fields) -> Dict[str, object]:
        """Record one event; returns the event dict."""
        event: Dict[str, object] = {"kind": kind, "seq": self._seq}
        self._seq += 1
        if cycle is not None:
            event["cycle"] = cycle
        event.update(fields)
        self.events.append(event)
        if self._stream is not None:
            self._stream.write(json.dumps(event, default=str) + "\n")
        return event

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: str) -> List[Dict[str, object]]:
        """All recorded events of one kind, in emission order."""
        return [e for e in self.events if e["kind"] == kind]

    def kinds(self) -> Dict[str, int]:
        """Event count per kind."""
        out: Dict[str, int] = {}
        for event in self.events:
            kind = event["kind"]
            out[kind] = out.get(kind, 0) + 1
        return out

    def write_jsonl(self, stream: TextIO) -> int:
        """Write every buffered event as JSON lines; returns the count."""
        for event in self.events:
            stream.write(json.dumps(event, default=str) + "\n")
        return len(self.events)


def read_events(source: Union[str, TextIO]) -> List[Dict[str, object]]:
    """Parse a JSONL event stream from a path or open text stream.

    Blank lines are skipped; malformed lines raise ``ValueError`` with
    the offending line number (a truncated trailing line — a run that
    died mid-write — is reported, not silently dropped).
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return read_events(handle)
    events: List[Dict[str, object]] = []
    for lineno, line in enumerate(source, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"events line {lineno} is not valid JSON: {exc}"
            ) from None
    return events
