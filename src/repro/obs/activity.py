"""Switching-activity profiling: per-signal toggle counts.

Toggle counts are the standard ASIC-flow proxy for dynamic power: a
signal's contribution scales with how many of its bits flip per cycle.
The profile records, per hierarchical signal name, both the *value
change* count (did the word change at all this cycle) and the *bit
toggle* count (Hamming distance between consecutive raw values).  Both
engines that carry register state — the interpreted cycle scheduler and
the compiled simulator — feed the same records from the same raw-integer
domain, so the counts are engine-independent and lockstep-comparable.

Float-valued signals (no :class:`~repro.fixpt.FxFormat`) have no bit
pattern; a value change counts as one toggle.

Lane-parallel engines feed :meth:`ToggleStats.observe_raw_lanes`, which
keeps one last-value per lane and sums Hamming toggles across lanes —
N lanes contribute N samples per cycle.  Mixing scalar and lane
observations on one record, or changing a record's lane count, raises
:class:`~repro.core.errors.ReproError`: a lane-packed word fed to the
scalar path would silently miscount toggles, and that is never allowed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import ReproError


class ToggleStats:
    """Observed switching activity of one signal."""

    __slots__ = ("name", "width", "samples", "changes", "toggles", "_last",
                 "_mask")

    def __init__(self, name: str, width: Optional[int] = None,
                 initial: Optional[int] = None):
        self.name = name
        #: Bit width (None for float-valued signals).
        self.width = width
        self.samples = 0
        #: Cycles on which the value differed from the previous cycle.
        self.changes = 0
        #: Total bit flips (Hamming distance between consecutive values).
        self.toggles = 0
        self._last = initial
        # Negative raws are two's complement; mask before XOR so the
        # Hamming distance is computed over the signal's actual bits.
        self._mask = (1 << width) - 1 if width else None

    def observe_raw(self, raw: int) -> None:
        """Account one cycle's raw (two's-complement integer) value."""
        last = self._last
        if isinstance(last, list):
            raise ReproError(
                f"signal {self.name!r}: scalar observation on a "
                "lane-parallel record — use observe_raw_lanes"
            )
        self.samples += 1
        if last is not None and raw != last:
            self.changes += 1
            diff = raw ^ last
            if self._mask is not None:
                diff &= self._mask
            self.toggles += bin(diff).count("1")
        self._last = raw

    def observe_raw_lanes(self, raws: Sequence[int]) -> None:
        """Account one cycle's per-lane raw values (one sample per lane).

        Toggle counts aggregate across lanes: the Hamming distance is
        taken lane-wise against each lane's own previous value, never
        across a packed word.
        """
        last = self._last
        if last is not None and not isinstance(last, list):
            raise ReproError(
                f"signal {self.name!r}: lane observation on a scalar "
                "record — one record cannot mix lane widths"
            )
        if last is not None and len(last) != len(raws):
            raise ReproError(
                f"signal {self.name!r}: lane count changed from "
                f"{len(last)} to {len(raws)} mid-capture"
            )
        self.samples += len(raws)
        if last is not None:
            mask = self._mask
            for prev, raw in zip(last, raws):
                if raw != prev:
                    self.changes += 1
                    diff = raw ^ prev
                    if mask is not None:
                        diff &= mask
                    self.toggles += bin(diff).count("1")
        self._last = list(raws)

    def observe_value(self, value: object) -> None:
        """Account one cycle's value without a bit pattern (floats)."""
        last = self._last
        if isinstance(last, list):
            raise ReproError(
                f"signal {self.name!r}: scalar observation on a "
                "lane-parallel record — use observe_raw_lanes"
            )
        self.samples += 1
        if last is not None and value != last:
            self.changes += 1
            self.toggles += 1
        self._last = value

    @property
    def toggle_rate(self) -> float:
        """Mean bit flips per sampled cycle."""
        return self.toggles / self.samples if self.samples else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "width": self.width,
            "samples": self.samples,
            "changes": self.changes,
            "toggles": self.toggles,
            "toggle_rate": self.toggle_rate,
        }

    def __repr__(self) -> str:
        return (f"ToggleStats({self.name!r}, changes={self.changes}, "
                f"toggles={self.toggles})")


class ActivityProfile:
    """All toggle records of one capture, keyed by hierarchical name."""

    def __init__(self) -> None:
        self._records: Dict[str, ToggleStats] = {}

    def record(self, name: str, width: Optional[int] = None,
               initial: Optional[int] = None) -> ToggleStats:
        """The record for *name*, created on first use."""
        stats = self._records.get(name)
        if stats is None:
            stats = ToggleStats(name, width, initial)
            self._records[name] = stats
        return stats

    def __contains__(self, name: str) -> bool:
        return name in self._records

    def __getitem__(self, name: str) -> ToggleStats:
        return self._records[name]

    def records(self) -> Dict[str, ToggleStats]:
        return dict(self._records)

    def top(self, count: int = 10) -> List[ToggleStats]:
        """The *count* most-toggling signals, busiest first."""
        ranked = sorted(self._records.values(),
                        key=lambda r: (r.toggles, r.changes, r.name),
                        reverse=True)
        return ranked[:count]

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        return {name: self._records[name].as_dict()
                for name in sorted(self._records)}
