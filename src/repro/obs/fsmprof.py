"""FSM occupancy and transition-fire profiling.

For every finite state machine in a run the profile records how many
cycles were spent in each state (occupancy — the controller-side
switching-activity / power proxy) and how many times each transition
fired, from which it derives state and transition *coverage*: the
fraction of the machine actually exercised by the stimulus.  Uncovered
states and transitions are exactly the verification holes an FSM
coverage report exists to surface.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class TransitionStats:
    """Fire count of one FSM transition."""

    __slots__ = ("index", "src", "dst", "label", "srcloc", "fires")

    def __init__(self, index: int, src: str, dst: str, label: str,
                 srcloc: Optional[str]):
        self.index = index
        self.src = src
        self.dst = dst
        self.label = label
        self.srcloc = srcloc
        self.fires = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "src": self.src,
            "dst": self.dst,
            "label": self.label,
            "srcloc": self.srcloc,
            "fires": self.fires,
        }


class FsmStats:
    """Occupancy and transition fires of one FSM."""

    def __init__(self, name: str, states: List[str],
                 transitions: List[Tuple[str, str, str, Optional[str]]],
                 initial: Optional[str] = None):
        self.name = name
        self.states = list(states)
        #: Cycles spent in each state (sampled post-commit each cycle).
        self.occupancy: Dict[str, int] = {s: 0 for s in states}
        self.transitions: List[TransitionStats] = [
            TransitionStats(i, src, dst, label, loc)
            for i, (src, dst, label, loc) in enumerate(transitions)
        ]
        self.initial = initial
        self.cycles = 0

    # -- per-cycle accounting (hot path) ---------------------------------------

    def observe(self, state: str, transition_index: Optional[int]) -> None:
        """Account one cycle: post-commit *state*, fired transition."""
        self.cycles += 1
        self.occupancy[state] += 1
        if transition_index is not None:
            self.transitions[transition_index].fires += 1

    # -- coverage ----------------------------------------------------------------

    def states_visited(self) -> List[str]:
        """States occupied at least one cycle (plus the initial state)."""
        visited = [s for s in self.states if self.occupancy[s] > 0]
        if self.initial is not None and self.initial not in visited:
            # The machine *starts* in the initial state even if it leaves
            # on the first cycle and never returns.
            if self.cycles > 0:
                visited.insert(0, self.initial)
        return visited

    def state_coverage(self) -> float:
        """Fraction of states visited (1.0 for a state-less machine)."""
        if not self.states:
            return 1.0
        return len(self.states_visited()) / len(self.states)

    def transition_coverage(self) -> float:
        """Fraction of transitions fired at least once."""
        if not self.transitions:
            return 1.0
        fired = sum(1 for t in self.transitions if t.fires > 0)
        return fired / len(self.transitions)

    def uncovered_states(self) -> List[str]:
        visited = set(self.states_visited())
        return [s for s in self.states if s not in visited]

    def uncovered_transitions(self) -> List[TransitionStats]:
        return [t for t in self.transitions if t.fires == 0]

    def as_dict(self) -> Dict[str, object]:
        return {
            "states": self.states,
            "initial": self.initial,
            "cycles": self.cycles,
            "occupancy": dict(self.occupancy),
            "transitions": [t.as_dict() for t in self.transitions],
            "state_coverage": self.state_coverage(),
            "transition_coverage": self.transition_coverage(),
            "uncovered_states": self.uncovered_states(),
            "uncovered_transitions": [t.index for t in
                                      self.uncovered_transitions()],
        }


class FsmProfile:
    """All FSM records of one capture, keyed by hierarchical name."""

    def __init__(self) -> None:
        self._records: Dict[str, FsmStats] = {}

    def record(self, name: str, states: List[str],
               transitions: List[Tuple[str, str, str, Optional[str]]],
               initial: Optional[str] = None) -> FsmStats:
        stats = self._records.get(name)
        if stats is None:
            stats = FsmStats(name, states, transitions, initial)
            self._records[name] = stats
        return stats

    def __contains__(self, name: str) -> bool:
        return name in self._records

    def __getitem__(self, name: str) -> FsmStats:
        return self._records[name]

    def records(self) -> Dict[str, FsmStats]:
        return dict(self._records)

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        return {name: self._records[name].as_dict()
                for name in sorted(self._records)}
