"""The capture object: one run's instrumentation, shared by every engine.

A :class:`Capture` bundles the metrics registry, the activity / FSM /
engine profiles, the structured event trace and the user probes, and
hands each engine exactly the observer callable it needs:

* :meth:`cycle_monitor` — a per-cycle monitor for the interpreted
  :class:`~repro.sim.cycle.CycleScheduler`;
* :meth:`compiled_observer` — the end-of-cycle hook the
  :class:`~repro.sim.compiled.CompiledSimulator` conditionally *emits
  into its generated source* (nothing is emitted when the hook is None,
  so a bare compiled simulation carries zero instrumentation code);
* :meth:`dataflow_observer` — a per-pass hook for the data-flow
  scheduler (firing counters, queue-depth high-water marks);
* :meth:`gate_monitor` — a post-settle monitor for the gate-level
  simulator (primary-output toggle counts).

The register traversal used for toggle accounting
(:func:`register_watchlist`) is *identical* to the compiled simulator's
own register collection, so the interpreted and compiled engines observe
the same registers under the same hierarchical names in the same order —
that is what makes toggle counts lockstep-comparable across engines.

Layering: this module (like all of :mod:`repro.obs`) imports only
``core``/``ir``/``fixpt``.  Engines import *it*, never the reverse;
anything engine-shaped arrives duck-typed (schedulers, tracers).
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, List, Optional, Sequence, TextIO, Tuple

from ..core.signal import Register, Sig
from ..core.system import Channel, System
from ..fixpt import Fx
from .activity import ActivityProfile, ToggleStats
from .engineprof import EngineProfile
from .events import EventTrace
from .fsmprof import FsmProfile, FsmStats
from .metrics import MetricsRegistry
from .spans import SpanTracer


def register_watchlist(system: System) -> List[Tuple[str, Register]]:
    """Every register of *system* with its hierarchical name.

    The traversal (timed processes in addition order, each process's
    ``all_sfgs()``, each SFG's ``registers()``, de-duplicated by
    identity) matches the compiled simulator's register collection
    exactly; a register shared between processes is owned by the first
    process that reaches it in both engines.
    """
    out: List[Tuple[str, Register]] = []
    seen = set()
    for process in system.timed_processes():
        for sfg in process.all_sfgs():
            for reg in sfg.registers():
                if id(reg) not in seen:
                    seen.add(id(reg))
                    out.append((f"{process.name}/{reg.name}", reg))
    return out


def fsm_watchlist(system: System) -> List[Tuple[str, object]]:
    """Every FSM of *system* with its hierarchical name, in timed order."""
    return [(f"{p.name}/{p.fsm.name}", p.fsm)
            for p in system.timed_processes() if p.fsm is not None]


def _transition_meta(fsm) -> List[Tuple[str, str, str, Optional[str]]]:
    """(src, dst, action-label, srcloc) per transition, in FSM order."""
    meta = []
    for t in fsm.transitions:
        label = "+".join(s.name for s in t.sfgs)
        loc = str(t.loc) if t.loc is not None else None
        meta.append((t.source.name, t.target.name, label, loc))
    return meta


class Probe:
    """One attached probe: a ``fn(cycle, value)`` fed every cycle."""

    __slots__ = ("name", "target", "fn")

    def __init__(self, name: str, target, fn: Callable[[int, object], None]):
        self.name = name
        self.target = target
        self.fn = fn

    def __repr__(self) -> str:
        return f"Probe({self.name!r})"


class Capture:
    """One run's worth of instrumentation, attachable to any engine.

    Parameters
    ----------
    activity:
        Record per-signal toggle counts (default on).
    fsm:
        Record per-FSM-state occupancy and transition fires (default on).
    events:
        Record the structured event trace (default on).
    profile:
        Engine self-profiling — wall time per SFG / per lowered IR block.
        Off by default; costs one clock read pair per scheduled unit.
    trace_fires:
        Emit a ``fire`` event per untimed firing (off by default: firing
        events dominate the trace on data-flow-heavy systems).
    cycle_markers:
        When > 0, emit a ``cycle`` marker event every N cycles.
    event_stream:
        Optional text stream events are written through to as they
        happen (crash-safe JSONL), in addition to the in-memory buffer.
    spans:
        Record a span trace (:class:`~repro.obs.spans.SpanTracer`).
        Off by default; when enabled, :meth:`save` writes
        ``spans.jsonl`` next to ``events.jsonl``.
    """

    def __init__(self, activity: bool = True, fsm: bool = True,
                 events: bool = True, profile: bool = False,
                 trace_fires: bool = False, cycle_markers: int = 0,
                 event_stream: Optional[TextIO] = None,
                 spans: bool = False):
        self.metrics = MetricsRegistry()
        self.activity: Optional[ActivityProfile] = \
            ActivityProfile() if activity else None
        self.fsm: Optional[FsmProfile] = FsmProfile() if fsm else None
        self.events: Optional[EventTrace] = \
            EventTrace(event_stream) if events else None
        self.profile: Optional[EngineProfile] = \
            EngineProfile() if profile else None
        self.spans: SpanTracer = SpanTracer(enabled=spans)
        self.trace_fires = trace_fires
        self.cycle_markers = cycle_markers
        self._probes: Dict[int, List[Probe]] = {}
        self._tracers: List[object] = []

    # -- probes -------------------------------------------------------------------

    def probe(self, target, fn: Optional[Callable[[int, object], None]] = None,
              name: Optional[str] = None) -> Probe:
        """Attach a probe to a ``Sig``, ``Register`` or ``Channel``.

        ``fn(cycle, value)`` is called once per simulated cycle with the
        post-commit value (registers), the settled value (plain
        signals), or this cycle's token (channels — skipped on cycles
        the channel carries none).  With no *fn*, the probe feeds a
        gauge named ``probe/<name>`` in the metrics registry.
        """
        if name is None:
            name = getattr(target, "name", None) or f"probe{len(self._probes)}"
        if fn is None:
            gauge = self.metrics.gauge(f"probe/{name}")

            def fn(cycle: int, value, _g=gauge) -> None:
                try:
                    _g.set(float(value))
                except (TypeError, ValueError):
                    pass

        probe = Probe(name, target, fn)
        self._probes.setdefault(id(target), []).append(probe)
        return probe

    def probes_for(self, target) -> List[Probe]:
        return list(self._probes.get(id(target), ()))

    # -- event convenience ---------------------------------------------------------

    def event(self, kind: str, cycle: Optional[int] = None, **fields) -> None:
        """Emit an event if the event trace is enabled (no-op otherwise)."""
        if self.events is not None:
            self.events.emit(kind, cycle=cycle, **fields)

    # -- cycle scheduler ----------------------------------------------------------

    def cycle_monitor(self, scheduler) -> Optional[Callable]:
        """A per-cycle monitor for a :class:`CycleScheduler`, or None.

        Returns None when nothing needs per-cycle work (activity, FSM
        and events off, no probes) so the scheduler attaches no monitor
        at all — disabled instrumentation costs nothing per cycle.
        """
        system = scheduler.system

        reg_obs: List[Tuple[ToggleStats, Register, bool]] = []
        if self.activity is not None:
            for name, reg in register_watchlist(system):
                if reg.fmt is not None:
                    stats = self.activity.record(
                        name, width=reg.fmt.wl, initial=reg.init.raw)
                    reg_obs.append((stats, reg, True))
                else:
                    stats = self.activity.record(name, initial=reg.init)
                    reg_obs.append((stats, reg, False))

        fsm_obs: List[Tuple[Optional[FsmStats], object, Dict[int, int], str]] = []
        if self.fsm is not None or self.events is not None:
            for name, fsm in fsm_watchlist(system):
                stats = None
                if self.fsm is not None:
                    stats = self.fsm.record(
                        name, [s.name for s in fsm.states],
                        _transition_meta(fsm),
                        initial=fsm.initial_state.name
                        if fsm.initial_state else None)
                index_of = {id(t): i for i, t in enumerate(fsm.transitions)}
                fsm_obs.append((stats, fsm, index_of, name))

        probe_runs: List[Tuple[str, object, Callable]] = []
        for probes in self._probes.values():
            for p in probes:
                kind = "chan" if isinstance(p.target, Channel) else \
                    ("reg" if isinstance(p.target, Register) else "sig")
                probe_runs.append((kind, p.target, p.fn))

        events = self.events
        markers = self.cycle_markers
        want_fsm_events = events is not None
        if not reg_obs and not fsm_obs and not probe_runs and not markers:
            return None

        def monitor(sched) -> None:
            cycle = sched.cycle - 1  # monitors run after the increment
            for stats, reg, is_fx in reg_obs:
                value = reg.current
                if is_fx:
                    stats.observe_raw(value.raw)
                else:
                    stats.observe_value(value)
            for stats, fsm, index_of, name in fsm_obs:
                taken = fsm.last_taken
                index = index_of.get(id(taken)) if taken is not None else None
                if stats is not None:
                    stats.observe(fsm.current.name, index)
                if (want_fsm_events and taken is not None
                        and taken.source is not taken.target):
                    events.emit("fsm_transition", cycle=cycle, fsm=name,
                                src=taken.source.name, dst=taken.target.name,
                                srcloc=str(taken.loc))
            for kind, target, fn in probe_runs:
                if kind == "chan":
                    if target.valid:
                        fn(cycle, target.value)
                elif kind == "reg":
                    fn(cycle, target.current)
                else:
                    fn(cycle, target.value)
            if markers and cycle % markers == 0:
                events.emit("cycle", cycle=cycle)

        return monitor

    # -- compiled simulator --------------------------------------------------------

    def compiled_observer(self, registers: Sequence[Tuple[str, Register]],
                          fsms: Sequence[Tuple[str, object]]
                          ) -> Optional[Callable]:
        """The end-of-cycle hook the compiled simulator emits, or None.

        ``registers`` / ``fsms`` arrive in the generated step function's
        own ordering; the hook receives, per cycle, the tuple of raw
        register values, the tuple of FSM state indices and the tuple of
        selected transition indices, matching those orderings.  When the
        hook is None the simulator emits no instrumentation at all.
        """
        reg_obs = []
        for index, (name, reg) in enumerate(registers):
            stats = None
            if self.activity is not None:
                if reg.fmt is not None:
                    stats = self.activity.record(
                        name, width=reg.fmt.wl, initial=reg.init.raw)
                else:
                    stats = self.activity.record(name, initial=reg.init)
            fns = [p.fn for p in self._probes.get(id(reg), ())]
            if stats is not None or fns:
                reg_obs.append((index, stats, reg.fmt, fns))

        fsm_obs = []
        for index, (name, fsm) in enumerate(fsms):
            stats = None
            if self.fsm is not None:
                stats = self.fsm.record(
                    name, [s.name for s in fsm.states], _transition_meta(fsm),
                    initial=fsm.initial_state.name if fsm.initial_state
                    else None)
            if stats is not None or self.events is not None:
                state_names = [s.name for s in fsm.states]
                fsm_obs.append((index, stats, state_names,
                                _transition_meta(fsm), name))

        events = self.events
        markers = self.cycle_markers
        if not reg_obs and not fsm_obs and not markers:
            return None

        counter = [0]

        def hook(regs, states, trs) -> None:
            cycle = counter[0]
            counter[0] = cycle + 1
            for index, stats, fmt, fns in reg_obs:
                value = regs[index]
                if stats is not None:
                    if fmt is not None:
                        stats.observe_raw(value)
                    else:
                        stats.observe_value(value)
                for fn in fns:
                    fn(cycle, Fx(raw=value, fmt=fmt)
                       if fmt is not None else value)
            for index, stats, state_names, tmeta, name in fsm_obs:
                tr = trs[index]
                if stats is not None:
                    stats.observe(state_names[states[index]], tr)
                if events is not None:
                    src, dst, _label, loc = tmeta[tr]
                    if src != dst:
                        events.emit("fsm_transition", cycle=cycle, fsm=name,
                                    src=src, dst=dst, srcloc=loc)
            if markers and cycle % markers == 0:
                events.emit("cycle", cycle=cycle)

        return hook

    # -- data-flow scheduler --------------------------------------------------------

    def dataflow_observer(self, scheduler) -> Optional[Callable]:
        """A per-pass hook for a :class:`DataflowScheduler`, or None.

        Called after every scheduler pass with the processes fired that
        pass; maintains per-process firing counters, per-channel
        queue-depth high-water gauges, and optional ``fire`` events.
        """
        want_fires = self.trace_fires and self.events is not None
        if self.activity is None and not want_fires:
            # Queue/firing accounting rides on the activity switch.
            return None
        system = scheduler.system
        channels = list(system.channels)
        depth_gauges = [
            (chan, self.metrics.gauge(f"dataflow/queue/{chan.name}"))
            for chan in channels
        ]
        fire_counters: Dict[int, object] = {}
        for process in system.untimed_processes():
            fire_counters[id(process)] = self.metrics.counter(
                f"dataflow/{process.name}/firings")
        events = self.events

        def observer(fired) -> None:
            for process in fired:
                fire_counters[id(process)].inc()
                if want_fires:
                    events.emit("fire", process=process.name,
                                firing=process.firings)
            for chan, gauge in depth_gauges:
                gauge.set(chan.tokens())

        return observer

    # -- gate-level simulator --------------------------------------------------------

    def gate_monitor(self, sim) -> Optional[Callable]:
        """A post-settle monitor for a :class:`GateSimulator`, or None.

        Samples every primary-output bus (unsigned raw domain) into the
        activity profile under ``<netlist>/<output>`` names.  On a
        word-parallel simulator (``sim.lanes > 1``) every lane is
        sampled and aggregated per lane — a lane-packed word is never
        fed to the scalar toggle path, so Hamming counts stay exact.
        """
        if self.activity is None:
            return None
        netlist = sim.netlist
        bus_obs = [
            (self.activity.record(f"{netlist.name}/{name}", width=len(bus)),
             bus)
            for name, bus in netlist.outputs.items()
        ]
        if not bus_obs:
            return None
        if getattr(sim, "lanes", 1) > 1:
            def monitor(gatesim) -> None:
                for stats, bus in bus_obs:
                    stats.observe_raw_lanes(
                        gatesim.read_bus_lanes(bus, signed=False))

            return monitor

        def monitor(gatesim) -> None:
            for stats, bus in bus_obs:
                stats.observe_raw(gatesim.read_bus(bus, signed=False))

        return monitor

    # -- serialization ---------------------------------------------------------------

    def attach_vcd(self, tracer) -> None:
        """Register a waveform tracer so :meth:`save` writes its VCD.

        Duck-typed: anything with a ``write_vcd(stream)`` method works
        (the :class:`~repro.sim.tracing.Tracer` — obs cannot import it).
        """
        self._tracers.append(tracer)

    def as_dict(self) -> Dict[str, object]:
        """The JSON-serializable capture summary (``metrics.json``)."""
        return {
            "metrics": self.metrics.as_dict(),
            "activity": self.activity.as_dict()
            if self.activity is not None else {},
            "fsm": self.fsm.as_dict() if self.fsm is not None else {},
            "profile": self.profile.as_dict()
            if self.profile is not None else {},
            "events": self.events.kinds() if self.events is not None else {},
        }

    def save(self, directory: str) -> str:
        """Write the capture to *directory* for ``python -m repro.obs``.

        Produces ``metrics.json`` (all profiles), ``events.jsonl`` (when
        events are enabled) and one VCD per attached tracer
        (``trace.vcd``, ``trace1.vcd``, ...).  Returns *directory*.
        """
        os.makedirs(directory, exist_ok=True)
        with open(os.path.join(directory, "metrics.json"), "w",
                  encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2, default=str)
            handle.write("\n")
        if self.events is not None:
            with open(os.path.join(directory, "events.jsonl"), "w",
                      encoding="utf-8") as handle:
                self.events.write_jsonl(handle)
        if self.spans.enabled and len(self.spans):
            with open(os.path.join(directory, "spans.jsonl"), "w",
                      encoding="utf-8") as handle:
                self.spans.write_jsonl(handle)
        for index, tracer in enumerate(self._tracers):
            name = "trace.vcd" if index == 0 else f"trace{index}.vcd"
            with open(os.path.join(directory, name), "w",
                      encoding="utf-8") as handle:
                tracer.write_vcd(handle)
        return directory


#: Descriptive alias: ``Instrumentation(...)`` reads better at call sites
#: that configure a capture up front.
Instrumentation = Capture
