"""Counters, gauges and histograms keyed by hierarchical names.

The registry is the shared vocabulary of the observability layer: every
profile (activity, FSM occupancy, engine self-profiling) ultimately
renders into plain metric values so a captured run can be serialized to
one ``metrics.json`` and re-read by the report CLI without importing any
engine.  Names are hierarchical with ``/`` separators, e.g.
``dect_transceiver/pcctrl/pc`` — the same convention Hardcaml-style
tracing tools use for scoped signal paths.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def as_dict(self) -> Dict[str, object]:
        return {"type": "counter", "value": self.value}

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time value that also remembers its observed extremes."""

    __slots__ = ("name", "value", "min_value", "max_value", "samples")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None
        self.min_value: Optional[float] = None
        self.max_value: Optional[float] = None
        self.samples = 0

    def set(self, value: float) -> None:
        self.value = value
        self.samples += 1
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value

    def as_dict(self) -> Dict[str, object]:
        return {
            "type": "gauge",
            "value": self.value,
            "min": self.min_value,
            "max": self.max_value,
            "samples": self.samples,
        }

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


#: Default histogram bucket boundaries: powers of two up to 64k.
_DEFAULT_BOUNDS = tuple(1 << i for i in range(17))


class Histogram:
    """A bucketed distribution (upper-bound buckets plus overflow)."""

    __slots__ = ("name", "bounds", "buckets", "count", "total")

    def __init__(self, name: str, bounds: Sequence[float] = _DEFAULT_BOUNDS):
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(sorted(bounds))
        self.buckets: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.buckets[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "count": self.count,
            "total": self.total,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count})"


class MetricsRegistry:
    """All metrics of one capture, keyed by hierarchical name.

    ``counter``/``gauge``/``histogram`` create on first use and return
    the existing instrument afterwards; asking for an existing name with
    a different instrument kind is an error (one name, one meaning).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, cls, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str,
                  bounds: Sequence[float] = _DEFAULT_BOUNDS) -> Histogram:
        return self._get(name, Histogram, bounds)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str):
        return self._metrics[name]

    def names(self, prefix: str = "") -> List[str]:
        """All metric names under *prefix*, sorted."""
        return sorted(n for n in self._metrics if n.startswith(prefix))

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """JSON-serializable view of every metric."""
        return {name: self._metrics[name].as_dict()
                for name in sorted(self._metrics)}
