"""Datapath synthesis with word-level operator sharing.

The paper's section 6 relies on the Cathedral-3 back-end: *"bit-parallel
hardware implementation starting from a set of signal flow graphs ...
operator sharing at word level"*.  This module reproduces that flow:

* every SFG of a component is an *instruction*; the FSM guarantees that
  the SFGs of different transitions never execute in the same cycle;
* word-level operations (add, multiply, compare, ...) of mutually
  exclusive instructions are bound to shared operator *instances*;
* the operands of a shared instance are selected by AND-OR multiplexers
  steered by the controller's transition-select lines;
* each instance is expanded to gates once (ripple adders, array
  multipliers, ... from :mod:`repro.synth.bitops`).

With ``share=False`` every operation gets a dedicated operator — the
direct-mapped baseline used by the sharing ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.errors import SynthesisError
from ..core.expr import Expr
from ..core.sfg import SFG
from ..core.signal import Sig
from ..ir import IRBlock, PassManager, lower_expr, lower_sfg
from . import bitops
from .bitops import Word, or_tree
from .gates import GateKind
from .netlist import Net, Netlist


@dataclass
class _Instance:
    """One allocated word-level operator."""

    key: tuple
    input_buses: List[List[Net]]  # reserved nets, driven at finalize
    output: Word
    #: Per time slot: (select net or None for always, operand words).
    candidates: List[Tuple[Optional[Net], List[Word]]] = field(
        default_factory=list)


class OperatorAllocator:
    """Allocates, binds and multiplexes word-level operators.

    Usage: for each mutually exclusive time slot (one FSM transition),
    call :meth:`begin_slot` with the slot's select net, then build
    expressions; ops are bound to instances shared across slots.  Call
    :meth:`finalize` once at the end to wire the operand multiplexers.
    """

    def __init__(self, nl: Netlist, share: bool = True,
                 width_bucket: int = 1):
        self.nl = nl
        self.share = share
        #: Optionally round shared-instance operand widths up to a
        #: multiple of this bucket (ALU-style width classes).  The
        #: demand pre-scan (:meth:`note_demand`) usually makes this
        #: unnecessary; the default keeps exact widths.
        self.width_bucket = max(1, width_bucket)
        self._pools: Dict[tuple, List[_Instance]] = {}
        self._slot_sel: Optional[Net] = None
        self._slot_used: set = set()
        self._demands: Dict[tuple, List[int]] = {}
        #: Statistics: operations requested vs instances created.
        self.operations = 0
        self.instances = 0

    def begin_slot(self, select: Optional[Net]) -> None:
        """Start binding for a new time slot (FSM transition)."""
        self._slot_sel = select
        self._slot_used: set = set()

    def note_demand(self, kind: str, shapes: Sequence[Tuple[int, int]]) -> None:
        """Pre-register an operand-shape demand (from the sizing pre-scan).

        Instances created later for this kind/frac key are sized at the
        element-wise maximum of all noted demands, so the widest
        instruction can share the same operator as the narrowest.
        """
        key = (kind, tuple(frac for _w, frac in shapes))
        noted = self._demands.get(key)
        if noted is None:
            self._demands[key] = [width for width, _f in shapes]
        else:
            for i, (width, _f) in enumerate(shapes):
                noted[i] = max(noted[i], width)

    def operate(self, kind: str, operands: Sequence[Word],
                build: Callable[[Netlist, List[Word]], Word]) -> Word:
        """Bind one word-level operation; returns the instance output.

        Operators of the same kind and fraction alignment share an
        instance across mutually exclusive slots; a narrower operand is
        sign-extended into a wider instance (word-level sharing).
        """
        self.operations += 1
        shapes = tuple((w.width, w.frac) for w in operands)
        key = (kind, tuple(frac for _w, frac in shapes))
        dedicated = not self.share or self._slot_sel is None
        if dedicated:
            # Direct mapping: build the operator on the operand nets.
            self.instances += 1
            return build(self.nl, list(operands))
        pool = self._pools.setdefault(key, [])
        instance = None
        for candidate in pool:
            if id(candidate) in self._slot_used:
                continue
            fits = all(
                len(bus) >= width
                for bus, (width, _frac) in zip(candidate.input_buses, shapes)
            )
            if fits:
                instance = candidate
                break
        if instance is None:
            bucket = self.width_bucket
            noted = self._demands.get(key, [])

            def sized(index: int, width: int) -> int:
                if index < len(noted):
                    width = max(width, noted[index])
                return ((width + bucket - 1) // bucket) * bucket

            input_buses = [
                self.nl.new_bus(sized(i, width), f"op{len(pool)}_{kind}_in")
                for i, (width, _frac) in enumerate(shapes)
            ]
            input_words = [
                Word(list(bus), frac)
                for bus, (_w, frac) in zip(input_buses, shapes)
            ]
            output = build(self.nl, input_words)
            instance = _Instance(key, input_buses, output)
            pool.append(instance)
            self.instances += 1
        self._slot_used.add(id(instance))
        instance.candidates.append((self._slot_sel, list(operands)))
        return instance.output

    def finalize(self) -> None:
        """Drive every shared instance's operand buses with AND-OR muxes."""
        nl = self.nl
        for pool in self._pools.values():
            for instance in pool:
                for op_index, bus in enumerate(instance.input_buses):
                    for bit_index, target_net in enumerate(bus):
                        terms: List[Net] = []
                        for select, operands in instance.candidates:
                            word = operands[op_index]
                            # Sign-extend narrower operands into the
                            # (possibly wider) shared instance.
                            source = word.nets[bit_index] \
                                if bit_index < word.width else word.msb
                            terms.append(
                                nl.add(GateKind.AND2, [select, source])
                            )
                        if len(terms) == 1:
                            nl.add(GateKind.BUF, [terms[0]], output=target_net)
                        else:
                            node = terms[0]
                            for term in terms[1:-1]:
                                node = nl.add(GateKind.OR2, [node, term])
                            nl.add(GateKind.OR2, [node, terms[-1]],
                                   output=target_net)

    def sharing_report(self) -> Dict[str, int]:
        """Operations bound vs operator instances created."""
        return {"operations": self.operations, "instances": self.instances}


def _bool_net(nl: Netlist, word: Word) -> Net:
    """Reduce a word to its truth value (any bit set)."""
    if word.width == 1:
        return word.nets[0]
    return or_tree(nl, word.nets)


_BIT_CHAR = {"band": "&", "bor": "|", "bxor": "^"}
_BIT_GATE = {"band": GateKind.AND2, "bor": GateKind.OR2, "bxor": GateKind.XOR2}


class ExprSynthesizer:
    """Expands lowered IR blocks to words through an operator allocator.

    The instruction set arrives as :class:`~repro.ir.ops.IRBlock` values
    (one per SFG or FSM guard); every word-level IR op becomes one
    ``operate`` call, so the demand pre-scan and the synthesis pass are
    guaranteed to agree — both read the same ops, widths and fracs.
    """

    def __init__(self, nl: Netlist, alloc: OperatorAllocator,
                 leaf_word: Callable[[Sig], Word], optimize: bool = True,
                 passes=None, validate: str = "off"):
        self.nl = nl
        self.alloc = alloc
        self.leaf_word = leaf_word
        #: Run the IR pass pipeline over every lowered block; ``passes``
        #: names the pipeline and ``validate`` turns on translation
        #: validation of each application.
        self.optimize = optimize
        self.pass_manager = PassManager(
            "default" if passes is None else passes, validate=validate)
        #: Per-pass statistics across every lowered block.
        self.pass_stats = self.pass_manager.stats
        self._sfg_blocks: Dict[int, IRBlock] = {}
        self._expr_blocks: Dict[int, IRBlock] = {}

    # -- lowering (cached per SFG / guard expression) ----------------------------

    def _lowered(self, cache: Dict[int, IRBlock], key: int, build) -> IRBlock:
        block = cache.get(key)
        if block is None:
            block = build()
            if self.optimize:
                block = self.pass_manager.run(block)
            cache[key] = block
        return block

    def sfg_block(self, sfg: SFG) -> IRBlock:
        return self._lowered(
            self._sfg_blocks, id(sfg),
            lambda: lower_sfg(sfg, require_formats=True,
                              error_cls=SynthesisError))

    def guard_block(self, expr: Expr) -> IRBlock:
        return self._lowered(
            self._expr_blocks, id(expr),
            lambda: lower_expr(expr, require_formats=True,
                               error_cls=SynthesisError))

    # -- sizing pre-scan ---------------------------------------------------------

    def prescan_block(self, block: IRBlock) -> None:
        """Note every operator demand of *block* with the allocator.

        Run over every instruction block before synthesis so shared
        instances are created at the widest demanded operand widths.
        The shapes come straight from the IR op widths, which are
        exactly the word shapes :meth:`synth_block` produces.
        """
        for op in block.ops:
            kind = self._alloc_kind(op)
            if kind is None:
                continue
            shapes = [(block.ops[arg].width, block.ops[arg].frac)
                      for arg in op.args]
            self.alloc.note_demand(kind, shapes)

    @staticmethod
    def _alloc_kind(op) -> Optional[tuple]:
        code = op.opcode
        if code in ("add", "sub", "mul", "neg", "abs", "mux"):
            return code
        if code == "bnot":
            return "not"
        if code == "cmp":
            return f"cmp{op.attrs[0]}"
        if code in _BIT_CHAR:
            return f"bit{_BIT_CHAR[code]}"
        if code == "quantize":
            fmt = op.attrs[0]
            return ("cast", fmt.wl, fmt.iwl, fmt.signed, fmt.rounding,
                    fmt.overflow)
        return None  # wiring-only ops never allocate an operator

    # -- synthesis ---------------------------------------------------------------

    def synth_block(self, block: IRBlock) -> Dict[int, Word]:
        """Expand every op of *block* to gates; returns id -> Word.

        Callers pick results through ``block.stores`` (assignment
        targets) and ``block.roots`` (guard conditions).
        """
        words: Dict[int, Word] = {}
        for vid, op in enumerate(block.ops):
            args = [words[arg] for arg in op.args]
            words[vid] = self._synth_op(op, args)
        return words

    def _synth_op(self, op, args: List[Word]) -> Word:
        nl = self.nl
        code = op.opcode
        if code == "read":
            return self.leaf_word(op.attrs[0])
        if code == "const":
            return bitops.const_word(nl, op.attrs[0], op.width, op.frac)
        if code == "add":
            return self.alloc.operate(
                "add", args, lambda n, ws: bitops.add(n, *ws))
        if code == "sub":
            return self.alloc.operate(
                "sub", args, lambda n, ws: bitops.sub(n, *ws))
        if code == "mul":
            return self.alloc.operate(
                "mul", args, lambda n, ws: bitops.multiply(n, *ws))
        if code == "neg":
            return self.alloc.operate(
                "neg", args, lambda n, ws: bitops.negate(n, ws[0]))
        if code == "abs":
            return self.alloc.operate(
                "abs", args, lambda n, ws: bitops.absolute(n, ws[0]))
        if code == "shl":
            shifted = bitops.shift_left(nl, args[0], op.attrs[0])
            return Word(list(shifted.nets), op.frac)
        if code == "ashr":
            bits = op.attrs[0]
            nets = list(args[0].nets[bits:]) or [args[0].msb]
            return Word(nets, op.frac)
        if code == "retag":
            return Word(list(args[0].nets), op.frac)
        if code == "cmp":
            pyop = op.attrs[0]

            def build(n, ws, pyop=pyop):
                a, b = ws
                if pyop == "==":
                    bit = bitops.equal(n, a, b)
                elif pyop == "!=":
                    bit = n.add(GateKind.INV, [bitops.equal(n, a, b)])
                elif pyop == "<":
                    bit = bitops.less_than(n, a, b)
                elif pyop == ">=":
                    bit = n.add(GateKind.INV, [bitops.less_than(n, a, b)])
                elif pyop == ">":
                    bit = bitops.less_than(n, b, a)
                else:  # <=
                    bit = n.add(GateKind.INV, [bitops.less_than(n, b, a)])
                return Word([bit, n.const(0)], 0)

            return self.alloc.operate(f"cmp{pyop}", args, build)
        if code in _BIT_GATE:
            kind = _BIT_GATE[code]
            return self.alloc.operate(
                f"bit{_BIT_CHAR[code]}", args,
                lambda n, ws, kind=kind: bitops.bitwise(n, kind, *ws))
        if code == "bnot":
            return self.alloc.operate(
                "not", args, lambda n, ws: bitops.invert(n, ws[0]))
        if code == "mux":
            def build_mux(n, ws):
                return bitops.mux_word(n, _bool_net(n, ws[0]), ws[1], ws[2])

            return self.alloc.operate("mux", args, build_mux)
        if code == "bitsel":
            word = args[0]
            index = op.attrs[0]
            bit = word.nets[index] if index < word.width else word.msb
            return Word([bit, nl.const(0)], 0)
        if code == "slice":
            hi, lo = op.attrs
            word = args[0]
            nets = [word.nets[i] if i < word.width else word.msb
                    for i in range(lo, hi + 1)]
            nets.append(nl.const(0))  # unsigned headroom
            return Word(nets, 0)
        if code == "concat":
            pieces: List[Net] = []
            for word, width in zip(reversed(args), reversed(op.attrs)):
                for i in range(width):
                    pieces.append(
                        word.nets[i] if i < word.width else word.msb)
            pieces.append(nl.const(0))
            return Word(pieces, 0)
        if code == "quantize":
            fmt = op.attrs[0]
            return self.alloc.operate(
                ("cast", fmt.wl, fmt.iwl, fmt.signed, fmt.rounding,
                 fmt.overflow),
                args,
                lambda n, ws, fmt=fmt: bitops.quantize(n, ws[0], fmt),
            )
        raise SynthesisError(f"cannot synthesize IR opcode {code!r}")
