"""Datapath synthesis with word-level operator sharing.

The paper's section 6 relies on the Cathedral-3 back-end: *"bit-parallel
hardware implementation starting from a set of signal flow graphs ...
operator sharing at word level"*.  This module reproduces that flow:

* every SFG of a component is an *instruction*; the FSM guarantees that
  the SFGs of different transitions never execute in the same cycle;
* word-level operations (add, multiply, compare, ...) of mutually
  exclusive instructions are bound to shared operator *instances*;
* the operands of a shared instance are selected by AND-OR multiplexers
  steered by the controller's transition-select lines;
* each instance is expanded to gates once (ripple adders, array
  multipliers, ... from :mod:`repro.synth.bitops`).

With ``share=False`` every operation gets a dedicated operator — the
direct-mapped baseline used by the sharing ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..fixpt import Fx, FxFormat, quantize_raw
from ..core.errors import SynthesisError
from ..core.expr import (
    BinOp,
    BitSelect,
    Cast,
    Concat,
    Constant,
    Expr,
    Mux,
    SliceSelect,
    UnOp,
)
from ..core.signal import Register, Sig
from . import bitops
from .bitops import Word, or_tree
from .gates import GateKind
from .netlist import Net, Netlist


@dataclass
class _Instance:
    """One allocated word-level operator."""

    key: tuple
    input_buses: List[List[Net]]  # reserved nets, driven at finalize
    output: Word
    #: Per time slot: (select net or None for always, operand words).
    candidates: List[Tuple[Optional[Net], List[Word]]] = field(
        default_factory=list)


class OperatorAllocator:
    """Allocates, binds and multiplexes word-level operators.

    Usage: for each mutually exclusive time slot (one FSM transition),
    call :meth:`begin_slot` with the slot's select net, then build
    expressions; ops are bound to instances shared across slots.  Call
    :meth:`finalize` once at the end to wire the operand multiplexers.
    """

    def __init__(self, nl: Netlist, share: bool = True,
                 width_bucket: int = 1):
        self.nl = nl
        self.share = share
        #: Optionally round shared-instance operand widths up to a
        #: multiple of this bucket (ALU-style width classes).  The
        #: demand pre-scan (:meth:`note_demand`) usually makes this
        #: unnecessary; the default keeps exact widths.
        self.width_bucket = max(1, width_bucket)
        self._pools: Dict[tuple, List[_Instance]] = {}
        self._slot_sel: Optional[Net] = None
        self._slot_used: set = set()
        self._demands: Dict[tuple, List[int]] = {}
        #: Statistics: operations requested vs instances created.
        self.operations = 0
        self.instances = 0

    def begin_slot(self, select: Optional[Net]) -> None:
        """Start binding for a new time slot (FSM transition)."""
        self._slot_sel = select
        self._slot_used: set = set()

    def note_demand(self, kind: str, shapes: Sequence[Tuple[int, int]]) -> None:
        """Pre-register an operand-shape demand (from the sizing pre-scan).

        Instances created later for this kind/frac key are sized at the
        element-wise maximum of all noted demands, so the widest
        instruction can share the same operator as the narrowest.
        """
        key = (kind, tuple(frac for _w, frac in shapes))
        noted = self._demands.get(key)
        if noted is None:
            self._demands[key] = [width for width, _f in shapes]
        else:
            for i, (width, _f) in enumerate(shapes):
                noted[i] = max(noted[i], width)

    def operate(self, kind: str, operands: Sequence[Word],
                build: Callable[[Netlist, List[Word]], Word]) -> Word:
        """Bind one word-level operation; returns the instance output.

        Operators of the same kind and fraction alignment share an
        instance across mutually exclusive slots; a narrower operand is
        sign-extended into a wider instance (word-level sharing).
        """
        self.operations += 1
        shapes = tuple((w.width, w.frac) for w in operands)
        key = (kind, tuple(frac for _w, frac in shapes))
        dedicated = not self.share or self._slot_sel is None
        if dedicated:
            # Direct mapping: build the operator on the operand nets.
            self.instances += 1
            return build(self.nl, list(operands))
        pool = self._pools.setdefault(key, [])
        instance = None
        for candidate in pool:
            if id(candidate) in self._slot_used:
                continue
            fits = all(
                len(bus) >= width
                for bus, (width, _frac) in zip(candidate.input_buses, shapes)
            )
            if fits:
                instance = candidate
                break
        if instance is None:
            bucket = self.width_bucket
            noted = self._demands.get(key, [])

            def sized(index: int, width: int) -> int:
                if index < len(noted):
                    width = max(width, noted[index])
                return ((width + bucket - 1) // bucket) * bucket

            input_buses = [
                self.nl.new_bus(sized(i, width), f"op{len(pool)}_{kind}_in")
                for i, (width, _frac) in enumerate(shapes)
            ]
            input_words = [
                Word(list(bus), frac)
                for bus, (_w, frac) in zip(input_buses, shapes)
            ]
            output = build(self.nl, input_words)
            instance = _Instance(key, input_buses, output)
            pool.append(instance)
            self.instances += 1
        self._slot_used.add(id(instance))
        instance.candidates.append((self._slot_sel, list(operands)))
        return instance.output

    def finalize(self) -> None:
        """Drive every shared instance's operand buses with AND-OR muxes."""
        nl = self.nl
        for pool in self._pools.values():
            for instance in pool:
                for op_index, bus in enumerate(instance.input_buses):
                    for bit_index, target_net in enumerate(bus):
                        terms: List[Net] = []
                        for select, operands in instance.candidates:
                            word = operands[op_index]
                            # Sign-extend narrower operands into the
                            # (possibly wider) shared instance.
                            source = word.nets[bit_index] \
                                if bit_index < word.width else word.msb
                            terms.append(
                                nl.add(GateKind.AND2, [select, source])
                            )
                        if len(terms) == 1:
                            nl.add(GateKind.BUF, [terms[0]], output=target_net)
                        else:
                            node = terms[0]
                            for term in terms[1:-1]:
                                node = nl.add(GateKind.OR2, [node, term])
                            nl.add(GateKind.OR2, [node, terms[-1]],
                                   output=target_net)

    def sharing_report(self) -> Dict[str, int]:
        """Operations bound vs operator instances created."""
        return {"operations": self.operations, "instances": self.instances}


def _bool_net(nl: Netlist, word: Word) -> Net:
    """Reduce a word to its truth value (any bit set)."""
    if word.width == 1:
        return word.nets[0]
    return or_tree(nl, word.nets)


class ExprSynthesizer:
    """Expands expression DAGs to words through an operator allocator."""

    def __init__(self, nl: Netlist, alloc: OperatorAllocator,
                 leaf_word: Callable[[Sig], Word]):
        self.nl = nl
        self.alloc = alloc
        self.leaf_word = leaf_word

    # -- sizing pre-scan ---------------------------------------------------------

    def prescan(self, expr: Expr) -> Tuple[int, int]:
        """Estimate the (width, frac) of *expr* and note operator demands.

        Run over every instruction before synthesis so shared instances
        are created at the widest demanded operand widths.  The estimate
        mirrors the word shapes the real pass produces; small mismatches
        merely cost an extra fallback instance, never correctness.
        """
        if isinstance(expr, Sig):
            fmt = expr.result_fmt()
            if fmt is None:
                raise SynthesisError(f"signal {expr.name!r} has no format")
            from ..hdl.vhdl import vector_width

            return vector_width(fmt), fmt.frac_bits
        if isinstance(expr, Constant):
            fmt = expr.result_fmt()
            if fmt is None:
                raise SynthesisError(f"constant {expr.value!r} has no format")
            from ..hdl.vhdl import vector_width

            return vector_width(fmt), fmt.frac_bits
        if isinstance(expr, BinOp):
            op = expr.op
            lshape = self.prescan(expr.left)
            if op in ("<<", ">>"):
                bits = int(expr.right.evaluate())
                if op == "<<":
                    return lshape[0] + bits, lshape[1]
                return lshape[0], lshape[1] + bits
            rshape = self.prescan(expr.right)
            shapes = [lshape, rshape]
            if op in ("+", "-"):
                self.alloc.note_demand("add" if op == "+" else "sub", shapes)
                frac = max(lshape[1], rshape[1])
                width = max(lshape[0] + frac - lshape[1],
                            rshape[0] + frac - rshape[1]) + 1
                return width, frac
            if op == "*":
                self.alloc.note_demand("mul", shapes)
                return lshape[0] + rshape[0], lshape[1] + rshape[1]
            if op in ("==", "!=", "<", "<=", ">", ">="):
                self.alloc.note_demand(f"cmp{op}", shapes)
                return 2, 0
            self.alloc.note_demand(f"bit{op}", shapes)
            return max(lshape[0], rshape[0]), lshape[1]
        if isinstance(expr, UnOp):
            shape = self.prescan(expr.operand)
            if expr.op == "-":
                self.alloc.note_demand("neg", [shape])
                return shape[0] + 1, shape[1]
            if expr.op == "abs":
                self.alloc.note_demand("abs", [shape])
                return shape[0] + 1, shape[1]
            self.alloc.note_demand("not", [shape])
            return shape
        if isinstance(expr, Mux):
            shapes = [self.prescan(expr.sel), self.prescan(expr.if_true),
                      self.prescan(expr.if_false)]
            self.alloc.note_demand("mux", shapes)
            _s, t, f = shapes
            frac = max(t[1], f[1])
            return max(t[0] + frac - t[1], f[0] + frac - f[1]), frac
        if isinstance(expr, Cast):
            shape = self.prescan(expr.operand)
            fmt = expr.fmt
            self.alloc.note_demand(
                ("cast", fmt.wl, fmt.iwl, fmt.signed, fmt.rounding,
                 fmt.overflow), [shape])
            from ..hdl.vhdl import vector_width

            return vector_width(fmt), fmt.frac_bits
        if isinstance(expr, BitSelect):
            self.prescan(expr.operand)
            return 2, 0
        if isinstance(expr, SliceSelect):
            self.prescan(expr.operand)
            return expr.width + 1, 0
        if isinstance(expr, Concat):
            total = 0
            for child in expr.children:
                self.prescan(child)
                total += child.require_fmt().wl
            return total + 1, 0
        raise SynthesisError(f"cannot pre-scan {expr!r}")

    def synth(self, expr: Expr) -> Word:
        """Expand *expr* to gates, binding operators via the allocator."""
        nl = self.nl
        if isinstance(expr, Sig):
            return self.leaf_word(expr)
        if isinstance(expr, Constant):
            fmt = expr.result_fmt()
            if fmt is None:
                raise SynthesisError(
                    f"constant {expr.value!r} has no fixed-point format"
                )
            raw = expr.value.raw if isinstance(expr.value, Fx) \
                else quantize_raw(expr.value, fmt)
            from ..hdl.vhdl import vector_width

            return bitops.const_word(
                nl, raw, vector_width(fmt), fmt.frac_bits
            )
        if isinstance(expr, BinOp):
            return self._binop(expr)
        if isinstance(expr, UnOp):
            operand = self.synth(expr.operand)
            if expr.op == "-":
                return self.alloc.operate(
                    "neg", [operand], lambda n, ws: bitops.negate(n, ws[0])
                )
            if expr.op == "abs":
                return self.alloc.operate(
                    "abs", [operand], lambda n, ws: bitops.absolute(n, ws[0])
                )
            return self.alloc.operate(
                "not", [operand], lambda n, ws: bitops.invert(n, ws[0])
            )
        if isinstance(expr, Mux):
            sel = self.synth(expr.sel)
            if_true = self.synth(expr.if_true)
            if_false = self.synth(expr.if_false)

            def build(n, ws):
                return bitops.mux_word(n, _bool_net(n, ws[0]), ws[1], ws[2])

            return self.alloc.operate("mux", [sel, if_true, if_false], build)
        if isinstance(expr, Cast):
            operand = self.synth(expr.operand)
            fmt = expr.fmt
            return self.alloc.operate(
                ("cast", fmt.wl, fmt.iwl, fmt.signed, fmt.rounding,
                 fmt.overflow),
                [operand],
                lambda n, ws: bitops.quantize(n, ws[0], fmt),
            )
        if isinstance(expr, BitSelect):
            operand = self.synth(expr.operand)
            aligned = bitops.align(nl, operand, 0)
            if expr.index >= aligned.width:
                bit = aligned.msb  # sign extension
            else:
                bit = aligned.nets[expr.index]
            return Word([bit, nl.const(0)], 0)
        if isinstance(expr, SliceSelect):
            operand = self.synth(expr.operand)
            aligned = bitops.align(nl, operand, 0)
            nets = []
            for i in range(expr.lo, expr.hi + 1):
                nets.append(
                    aligned.nets[i] if i < aligned.width else aligned.msb
                )
            nets.append(nl.const(0))  # unsigned headroom
            return Word(nets, 0)
        if isinstance(expr, Concat):
            pieces: List[Net] = []
            for child in reversed(expr.children):
                fmt = child.require_fmt()
                word = bitops.align(nl, self.synth(child), 0)
                for i in range(fmt.wl):
                    pieces.append(
                        word.nets[i] if i < word.width else word.msb
                    )
            pieces.append(nl.const(0))
            return Word(pieces, 0)
        raise SynthesisError(f"cannot synthesize {expr!r}")

    def _binop(self, expr: BinOp) -> Word:
        nl = self.nl
        op = expr.op
        left = self.synth(expr.left)
        if op in ("<<", ">>"):
            bits = int(expr.right.evaluate())
            if op == "<<":
                return bitops.shift_left(nl, left, bits)
            return bitops.shift_right(nl, left, bits)
        right = self.synth(expr.right)
        if op == "+":
            return self.alloc.operate(
                "add", [left, right], lambda n, ws: bitops.add(n, *ws)
            )
        if op == "-":
            return self.alloc.operate(
                "sub", [left, right], lambda n, ws: bitops.sub(n, *ws)
            )
        if op == "*":
            return self.alloc.operate(
                "mul", [left, right], lambda n, ws: bitops.multiply(n, *ws)
            )
        if op in ("==", "!=", "<", "<=", ">", ">="):
            def build(n, ws, op=op):
                a, b = ws
                if op == "==":
                    bit = bitops.equal(n, a, b)
                elif op == "!=":
                    bit = n.add(GateKind.INV, [bitops.equal(n, a, b)])
                elif op == "<":
                    bit = bitops.less_than(n, a, b)
                elif op == ">=":
                    bit = n.add(GateKind.INV, [bitops.less_than(n, a, b)])
                elif op == ">":
                    bit = bitops.less_than(n, b, a)
                else:  # <=
                    bit = n.add(GateKind.INV, [bitops.less_than(n, b, a)])
                return Word([bit, n.const(0)], 0)

            return self.alloc.operate(f"cmp{op}", [left, right], build)
        # Bitwise.
        kind = {"&": GateKind.AND2, "|": GateKind.OR2,
                "^": GateKind.XOR2}[op]
        return self.alloc.operate(
            f"bit{op}", [left, right],
            lambda n, ws: bitops.bitwise(n, kind, *ws),
        )
