"""Levelized gate-level netlist simulation.

This is the "VHDL/Verilog (netlist)" row of Table 1: simulation after
synthesis, three orders of magnitude slower than compiled behavioural
simulation because every cell is evaluated every cycle.  The simulator
levelizes the combinational gates once, then evaluates the whole array
per clock cycle and finally clocks the DFFs.

Word-parallel lanes
-------------------
The netlist defines *what* every net computes; ``lanes`` decides *how
many* independent stimulus vectors evaluate it per step.  Each entry of
:attr:`values` is an int whose bit L holds lane L's boolean, so one
bitwise Python operation per gate simulates all lanes at once (classic
bit-sliced simulation; ``lanes=64`` fills a machine word).  ``lanes=1``
is bit-exact with the historical scalar simulator.  Saboteurs
(:meth:`force` / :meth:`flip`) take a lane subset, which is what lets a
fault campaign map one fault universe per bit-lane.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import SimulationError
from .gates import GateKind, evaluate_gate, evaluate_gate_word
from .netlist import Net, Netlist


def _lane_mask(lanes: Optional[Iterable[int]], all_mask: int) -> int:
    """An iterable of lane indices (or None = every lane) as a bit mask."""
    if lanes is None:
        return all_mask
    mask = 0
    for lane in lanes:
        mask |= 1 << lane
    return mask & all_mask


class GateSimulator:
    """Cycle-based two-valued simulation of a :class:`Netlist`.

    ``lanes`` independent stimulus vectors run per step (default 1); all
    lanes share the netlist and the clock, and differ only in pin values
    and injected faults.
    """

    def __init__(self, netlist: Netlist, obs=None, lanes: int = 1):
        if lanes < 1:
            raise SimulationError(f"lanes must be >= 1, got {lanes}")
        self.netlist = netlist
        self.lanes = lanes
        self.lane_mask = (1 << lanes) - 1
        #: Lane-packed net values: bit L of ``values[net]`` is lane L.
        self.values: List[int] = [0] * netlist._net_count
        self._order = netlist.levelize()
        self._dffs = netlist.dffs()
        for dff in self._dffs:
            self.values[dff.output] = -(dff.init & 1) & self.lane_mask
        self.cycle = 0
        self.monitors = []
        #: Word-level gate evaluations performed so far (one per gate per
        #: settle, independent of lane count — the denominator of the
        #: batched campaign's "fewer gate-evaluation steps" claim).
        self.gate_evals = 0
        #: Optional :class:`repro.obs.Capture` instrumenting this run.
        self.obs = obs
        if obs is not None:
            monitor = obs.gate_monitor(self)
            if monitor is not None:
                self.monitors.append(monitor)
        #: Saboteur hooks: nets forced to constant values (stuck-at
        #: faults) and nets whose settled value is inverted during
        #: propagation (transient bit flips), each on a lane subset.
        #: ``_forces[net]`` is ``(set_mask, bits)`` — lanes in *set_mask*
        #: read the corresponding bit of *bits*; ``_flips[net]`` is an
        #: xor mask.  Managed with :meth:`force`, :meth:`flip` and
        #: :meth:`release`.
        self._forces: Dict[Net, Tuple[int, int]] = {}
        self._flips: Dict[Net, int] = {}
        self._comb_driven = {gate.output for gate in self._order}
        # Settle the combinational logic against the initial state.
        self._propagate()

    # -- pin access ------------------------------------------------------------

    def set_input(self, name: str, raw: int) -> None:
        """Drive a primary input bus with two's-complement *raw*.

        The value is broadcast to every lane; use :meth:`set_input_lanes`
        for per-lane stimulus.
        """
        bus = self._input_bus(name)
        mask = self.lane_mask
        for i, net in enumerate(bus):
            self.values[net] = -((raw >> i) & 1) & mask

    def set_input_lanes(self, name: str, raws: Sequence[int]) -> None:
        """Drive a primary input bus with one raw value per lane."""
        bus = self._input_bus(name)
        if len(raws) != self.lanes:
            raise SimulationError(
                f"input {name!r}: got {len(raws)} values for "
                f"{self.lanes} lanes"
            )
        for i, net in enumerate(bus):
            packed = 0
            for lane, raw in enumerate(raws):
                packed |= ((raw >> i) & 1) << lane
            self.values[net] = packed

    def _input_bus(self, name: str) -> Sequence[Net]:
        try:
            return self.netlist.inputs[name]
        except KeyError:
            raise SimulationError(
                f"netlist {self.netlist.name!r} has no input {name!r}"
            ) from None

    def read_bus(self, nets: Sequence[Net], signed: bool = True,
                 lane: int = 0) -> int:
        """Read one lane of a bus as a two's-complement (or unsigned) int."""
        raw = 0
        for i, net in enumerate(nets):
            raw |= ((self.values[net] >> lane) & 1) << i
        if signed and nets and (raw >> (len(nets) - 1)) & 1:
            raw -= 1 << len(nets)
        return raw

    def read_bus_lanes(self, nets: Sequence[Net],
                       signed: bool = True) -> List[int]:
        """Read a bus on every lane: one integer per lane."""
        return [self.read_bus(nets, signed, lane)
                for lane in range(self.lanes)]

    def output(self, name: str, signed: bool = True, lane: int = 0) -> int:
        """Read one lane of a primary output bus."""
        return self.read_bus(self._output_bus(name), signed, lane)

    def output_lanes(self, name: str, signed: bool = True) -> List[int]:
        """Read a primary output bus on every lane."""
        return self.read_bus_lanes(self._output_bus(name), signed)

    def _output_bus(self, name: str) -> Sequence[Net]:
        try:
            return self.netlist.outputs[name]
        except KeyError:
            raise SimulationError(
                f"netlist {self.netlist.name!r} has no output {name!r}"
            ) from None

    # -- fault injection ---------------------------------------------------------

    def force(self, net: Net, value: int,
              lanes: Optional[Iterable[int]] = None) -> None:
        """Stuck-at saboteur: hold *net* at *value* until released.

        The force overrides the driving gate (or pin / DFF output) during
        every propagation, and propagates through the downstream cone —
        the standard stuck-at fault model.  *lanes* restricts the
        saboteur to a lane subset (default: every lane), so different
        lanes can carry different faults.
        """
        lm = _lane_mask(lanes, self.lane_mask)
        bits = -(value & 1) & lm
        set_mask, old_bits = self._forces.get(net, (0, 0))
        self._forces[net] = (set_mask | lm, (old_bits & ~lm) | bits)

    def flip(self, net: Net, lanes: Optional[Iterable[int]] = None) -> None:
        """Transient saboteur: invert *net*'s settled value while armed.

        Models a single-event upset; arm before a :meth:`step` and
        :meth:`release` afterwards for a one-cycle bit flip.  *lanes*
        restricts the flip to a lane subset.
        """
        self._flips[net] = self._flips.get(net, 0) \
            | _lane_mask(lanes, self.lane_mask)

    def release(self, net: Optional[Net] = None,
                lanes: Optional[Iterable[int]] = None) -> None:
        """Remove injected faults.

        ``release()`` clears everything; ``release(net)`` clears both
        saboteurs on one net; *lanes* restricts either form to a lane
        subset.
        """
        if lanes is None:
            if net is None:
                self._forces.clear()
                self._flips.clear()
            else:
                self._forces.pop(net, None)
                self._flips.pop(net, None)
            return
        lm = _lane_mask(lanes, self.lane_mask)
        targets = [net] if net is not None else \
            list(self._forces.keys() | self._flips.keys())
        for target in targets:
            got = self._forces.get(target)
            if got is not None:
                set_mask, bits = got
                set_mask &= ~lm
                if set_mask:
                    self._forces[target] = (set_mask, bits & set_mask)
                else:
                    self._forces.pop(target, None)
            fm = self._flips.get(target)
            if fm is not None:
                fm &= ~lm
                if fm:
                    self._flips[target] = fm
                else:
                    self._flips.pop(target, None)

    # -- simulation -------------------------------------------------------------------

    def _propagate(self) -> None:
        values = self.values
        order = self._order
        mask = self.lane_mask
        self.gate_evals += len(order)
        if not self._forces and not self._flips:
            if mask == 1:
                # Scalar fast path: identical to the historical simulator.
                for gate in order:
                    values[gate.output] = evaluate_gate(
                        gate.kind, [values[n] for n in gate.inputs]
                    )
                return
            for gate in order:
                values[gate.output] = evaluate_gate_word(
                    gate.kind, [values[n] for n in gate.inputs], mask
                )
            return
        forces, flips = self._forces, self._flips
        # Faults on pins and DFF outputs (no combinational driver) apply
        # before the array evaluation; the rest are applied in place.
        # A force beats a flip on the same (net, lane).
        for net, (set_mask, bits) in forces.items():
            if net not in self._comb_driven:
                values[net] = (values[net] & ~set_mask) | bits
        for net, flip_mask in flips.items():
            if net not in self._comb_driven:
                got = forces.get(net)
                if got is not None:
                    flip_mask &= ~got[0]
                values[net] ^= flip_mask
        for gate in order:
            out = gate.output
            value = evaluate_gate_word(
                gate.kind, [values[n] for n in gate.inputs], mask
            )
            got = forces.get(out)
            if got is not None:
                set_mask, bits = got
                value = (value & ~set_mask) | bits
            flip_mask = flips.get(out)
            if flip_mask is not None:
                if got is not None:
                    flip_mask &= ~got[0]
                value ^= flip_mask
            values[out] = value

    #: Hooks called after the logic settles, before the clock edge — the
    #: moment when this cycle's output values are valid (matching the
    #: cycle scheduler's pre-commit monitors).
    monitors: List = None

    def step(self, inputs: Optional[Mapping[str, object]] = None) -> None:
        """One clock cycle: drive pins, settle logic, sample, clock DFFs.

        Scalar int pin values broadcast to every lane; list/tuple values
        carry one raw per lane.
        """
        if inputs:
            for name, raw in inputs.items():
                if isinstance(raw, (list, tuple)):
                    self.set_input_lanes(name, raw)
                else:
                    self.set_input(name, raw)
        self._propagate()
        if self.monitors:
            for monitor in self.monitors:
                monitor(self)
        # Sample every D before updating any Q (edge semantics).
        sampled = [self.values[dff.inputs[0]] for dff in self._dffs]
        for dff, value in zip(self._dffs, sampled):
            self.values[dff.output] = value
        self.cycle += 1

    def run(self, cycles: int,
            inputs_fn=None) -> None:
        """Simulate *cycles* clock cycles."""
        for _ in range(cycles):
            self.step(inputs_fn(self.cycle) if inputs_fn else None)

    def run_batch(self, batch) -> None:
        """Run a :class:`repro.sim.stimuli.StimulusBatch` to completion.

        The batch's lane count must match the simulator's.
        """
        if batch.lanes != self.lanes:
            raise SimulationError(
                f"stimulus batch has {batch.lanes} lanes, "
                f"simulator has {self.lanes}"
            )
        for cycle in range(batch.cycles):
            self.step(batch.pins_at(cycle))

    def settled_outputs(self, lane: int = 0) -> Dict[str, int]:
        """All primary outputs of one lane after the last settle."""
        return {name: self.output(name, lane=lane)
                for name in self.netlist.outputs}

    def settled_outputs_lanes(self) -> Dict[str, List[int]]:
        """All primary outputs of every lane after the last settle."""
        return {name: self.output_lanes(name)
                for name in self.netlist.outputs}

    # -- checkpoint / restore ---------------------------------------------------------

    def save_state(self) -> Dict[str, object]:
        """Deterministic checkpoint: every net value plus the cycle count.

        The checkpoint is lane-aware: it records the simulator's lane
        count and every lane-packed net word.  Injected faults are *not*
        part of the checkpoint — restoring a golden snapshot into a
        sabotaged simulator keeps the saboteurs armed, which is exactly
        what a fault campaign needs.
        """
        return {"cycle": self.cycle, "values": list(self.values),
                "lanes": self.lanes}

    def restore_state(self, state: Dict[str, object]) -> None:
        """Restore a checkpoint taken with :meth:`save_state`."""
        lanes = state.get("lanes", 1)
        if lanes != self.lanes:
            raise SimulationError(
                f"checkpoint has {lanes} lanes, simulator has {self.lanes}"
            )
        self.cycle = state["cycle"]
        self.values[:] = state["values"]
