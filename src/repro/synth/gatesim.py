"""Levelized gate-level netlist simulation.

This is the "VHDL/Verilog (netlist)" row of Table 1: simulation after
synthesis, three orders of magnitude slower than compiled behavioural
simulation because every cell is evaluated every cycle.  The simulator
levelizes the combinational gates once, then evaluates the whole array
per clock cycle and finally clocks the DFFs.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..core.errors import SimulationError
from .gates import GateKind, evaluate_gate
from .netlist import Net, Netlist


class GateSimulator:
    """Cycle-based two-valued simulation of a :class:`Netlist`."""

    def __init__(self, netlist: Netlist, obs=None):
        self.netlist = netlist
        self.values: List[int] = [0] * netlist._net_count
        self._order = netlist.levelize()
        self._dffs = netlist.dffs()
        for dff in self._dffs:
            self.values[dff.output] = dff.init
        self.cycle = 0
        self.monitors = []
        #: Optional :class:`repro.obs.Capture` instrumenting this run.
        self.obs = obs
        if obs is not None:
            monitor = obs.gate_monitor(self)
            if monitor is not None:
                self.monitors.append(monitor)
        #: Saboteur hooks: nets forced to a constant value (stuck-at
        #: faults) and nets whose settled value is inverted during
        #: propagation (transient bit flips).  Managed with
        #: :meth:`force`, :meth:`flip` and :meth:`release`.
        self._forces: Dict[Net, int] = {}
        self._flips: set = set()
        self._comb_driven = {gate.output for gate in self._order}
        # Settle the combinational logic against the initial state.
        self._propagate()

    # -- pin access ------------------------------------------------------------

    def set_input(self, name: str, raw: int) -> None:
        """Drive a primary input bus with two's-complement *raw*."""
        try:
            bus = self.netlist.inputs[name]
        except KeyError:
            raise SimulationError(
                f"netlist {self.netlist.name!r} has no input {name!r}"
            ) from None
        for i, net in enumerate(bus):
            self.values[net] = (raw >> i) & 1

    def read_bus(self, nets: Sequence[Net], signed: bool = True) -> int:
        """Read a bus as a two's-complement (or unsigned) integer."""
        raw = 0
        for i, net in enumerate(nets):
            raw |= self.values[net] << i
        if signed and nets and (raw >> (len(nets) - 1)) & 1:
            raw -= 1 << len(nets)
        return raw

    def output(self, name: str, signed: bool = True) -> int:
        """Read a primary output bus."""
        try:
            bus = self.netlist.outputs[name]
        except KeyError:
            raise SimulationError(
                f"netlist {self.netlist.name!r} has no output {name!r}"
            ) from None
        return self.read_bus(bus, signed)

    # -- fault injection ---------------------------------------------------------

    def force(self, net: Net, value: int) -> None:
        """Stuck-at saboteur: hold *net* at *value* until released.

        The force overrides the driving gate (or pin / DFF output) during
        every propagation, and propagates through the downstream cone —
        the standard stuck-at fault model.
        """
        self._forces[net] = value & 1

    def flip(self, net: Net) -> None:
        """Transient saboteur: invert *net*'s settled value while armed.

        Models a single-event upset; arm before a :meth:`step` and
        :meth:`release` afterwards for a one-cycle bit flip.
        """
        self._flips.add(net)

    def release(self, net: Optional[Net] = None) -> None:
        """Remove one injected fault (or all of them when *net* is None)."""
        if net is None:
            self._forces.clear()
            self._flips.clear()
        else:
            self._forces.pop(net, None)
            self._flips.discard(net)

    # -- simulation -------------------------------------------------------------------

    def _propagate(self) -> None:
        values = self.values
        if not self._forces and not self._flips:
            for gate in self._order:
                values[gate.output] = evaluate_gate(
                    gate.kind, [values[n] for n in gate.inputs]
                )
            return
        forces, flips = self._forces, self._flips
        # Faults on pins and DFF outputs (no combinational driver) apply
        # before the array evaluation; the rest are applied in place.
        for net, value in forces.items():
            if net not in self._comb_driven:
                values[net] = value
        for net in flips:
            if net not in self._comb_driven and net not in forces:
                values[net] ^= 1
        for gate in self._order:
            out = gate.output
            if out in forces:
                values[out] = forces[out]
                continue
            value = evaluate_gate(gate.kind, [values[n] for n in gate.inputs])
            if out in flips:
                value ^= 1
            values[out] = value

    #: Hooks called after the logic settles, before the clock edge — the
    #: moment when this cycle's output values are valid (matching the
    #: cycle scheduler's pre-commit monitors).
    monitors: List = None

    def step(self, inputs: Optional[Mapping[str, int]] = None) -> None:
        """One clock cycle: drive pins, settle logic, sample, clock DFFs."""
        if inputs:
            for name, raw in inputs.items():
                self.set_input(name, raw)
        self._propagate()
        if self.monitors:
            for monitor in self.monitors:
                monitor(self)
        # Sample every D before updating any Q (edge semantics).
        sampled = [self.values[dff.inputs[0]] for dff in self._dffs]
        for dff, value in zip(self._dffs, sampled):
            self.values[dff.output] = value
        self.cycle += 1

    def run(self, cycles: int,
            inputs_fn=None) -> None:
        """Simulate *cycles* clock cycles."""
        for _ in range(cycles):
            self.step(inputs_fn(self.cycle) if inputs_fn else None)

    def settled_outputs(self) -> Dict[str, int]:
        """All primary outputs after the last settle."""
        return {name: self.output(name) for name in self.netlist.outputs}

    # -- checkpoint / restore ---------------------------------------------------------

    def save_state(self) -> Dict[str, object]:
        """Deterministic checkpoint: every net value plus the cycle count.

        Injected faults are *not* part of the checkpoint — restoring a
        golden snapshot into a sabotaged simulator keeps the saboteurs
        armed, which is exactly what a fault campaign needs.
        """
        return {"cycle": self.cycle, "values": list(self.values)}

    def restore_state(self, state: Dict[str, object]) -> None:
        """Restore a checkpoint taken with :meth:`save_state`."""
        self.cycle = state["cycle"]
        self.values[:] = state["values"]
