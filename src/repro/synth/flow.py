"""The divide-and-conquer synthesis flow (paper Figure 8).

For each timed component:

* **controller synthesis** — the FSM becomes a state register plus
  transition-select lines (:mod:`repro.synth.controller`), after the guard
  conditions are synthesized from the datapath registers;
* **datapath synthesis** — the SFG instruction set is expanded to shared
  word-level operators and gates (:mod:`repro.synth.datapath`);
* **linkage** — select lines steer operand multiplexers, register
  write-priority muxes and output-port gating;
* **post-optimization** — constant propagation, structural hashing and a
  dead-gate sweep (:mod:`repro.synth.optimize`).

The result simulates in :class:`~repro.synth.gatesim.GateSimulator` and
can be verified cycle-by-cycle against a :class:`~repro.sim.PortLog`
captured from the system simulation — the paper's generated-testbench
verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..fixpt import Fx, FxFormat, quantize_raw
from ..core.errors import SynthesisError
from ..core.fsm import Transition
from ..core.process import TimedProcess, UntimedProcess
from ..core.sfg import SFG
from ..core.signal import Register, Sig
from ..core.system import System
from ..ir.formats import vector_width
from ..sim.stimuli import PortLog
from . import bitops
from .bitops import Word
from .controller import ControllerResult, synthesize_controller
from .datapath import ExprSynthesizer, OperatorAllocator
from .gates import GateKind
from .gatesim import GateSimulator
from .netlist import Net, Netlist
from .optimize import optimize_netlist


@dataclass
class ComponentSynthesis:
    """Synthesis outcome for one timed component."""

    process: TimedProcess
    netlist: Netlist
    controller: Optional[ControllerResult]
    sharing: Dict[str, int]

    @property
    def gate_count(self) -> int:
        return self.netlist.gate_count()

    @property
    def area(self) -> float:
        return self.netlist.area()


def synthesize_process(process: TimedProcess, share: bool = True,
                       encoding: str = "binary", two_level: bool = False,
                       optimize: bool = True,
                       expose_registers: bool = False,
                       ir_passes: bool = True, passes=None,
                       validate: str = "off") -> ComponentSynthesis:
    """Synthesize one timed component to a gate-level netlist.

    ``ir_passes`` runs the IR optimization pipeline over every lowered
    instruction before expansion to gates; disable it for the ablation
    baseline.  ``passes`` picks the pipeline (``"default"``,
    ``"aggressive"`` or an explicit sequence) and ``validate`` turns on
    translation validation of every IR pass application *and* a
    netlist-level miter check of the post-synthesis optimizer
    (:func:`repro.synth.equiv.check_netlists`).
    """
    nl = Netlist(process.name)
    all_sfgs = process.all_sfgs()

    # Registers: pre-allocate Q buses so everything can read them.
    registers: List[Register] = []
    seen: Set[int] = set()
    for sfg in all_sfgs:
        for reg in sfg.registers():
            if id(reg) not in seen:
                seen.add(id(reg))
                registers.append(reg)
    reg_q: Dict[int, Word] = {}
    for reg in registers:
        fmt = _fmt_of(reg)
        bus = nl.new_bus(vector_width(fmt), reg.name)
        reg_q[id(reg)] = Word(bus, fmt.frac_bits)

    # Primary inputs.
    input_word: Dict[int, Word] = {}
    for port in process.in_ports():
        fmt = _fmt_of(port.sig)
        bus = nl.add_input(port.name, vector_width(fmt))
        input_word[id(port.sig)] = Word(bus, fmt.frac_bits)

    alloc = OperatorAllocator(nl, share=share)

    # Leaf resolution with a per-slot intermediate namespace.
    internal: Dict[int, Word] = {}

    def leaf_word(sig: Sig) -> Word:
        if id(sig) in internal:
            return internal[id(sig)]
        if isinstance(sig, Register):
            try:
                return reg_q[id(sig)]
            except KeyError:
                raise SynthesisError(
                    f"register {sig.name!r} is read but belongs to no SFG "
                    f"of component {process.name!r}"
                ) from None
        if id(sig) in input_word:
            return input_word[id(sig)]
        raise SynthesisError(
            f"signal {sig.name!r} in component {process.name!r} is neither "
            "an intermediate, a register, nor an input port"
        )

    synthesizer = ExprSynthesizer(nl, alloc, leaf_word, optimize=ir_passes,
                                  passes=passes, validate=validate)

    # Guard conditions (always active: dedicated operators).
    controller = None
    ordinal = 0
    if process.fsm is not None:
        alloc.begin_slot(None)
        condition_nets: Dict[Transition, Optional[Net]] = {}
        cache: Dict[int, Net] = {}
        for transition in process.fsm.transitions:
            expr = transition.condition.expr
            if expr is None:
                condition_nets[transition] = None
                continue
            net = cache.get(id(expr))
            if net is None:
                block = synthesizer.guard_block(expr)
                words = synthesizer.synth_block(block)
                word = words[block.roots[0]]
                net = bitops.or_tree(nl, word.nets) if word.width > 1 \
                    else word.nets[0]
                cache[id(expr)] = net
            condition_nets[transition] = net
        controller = synthesize_controller(
            nl, process.fsm, condition_nets, encoding=encoding,
            two_level=two_level,
        )

    # Datapath: walk each transition (a time slot), then the static SFGs.
    # Register-write candidates, in execution order (later = higher
    # priority, matching the simulator's last-write-wins semantics).
    reg_candidates: Dict[int, List[Tuple[int, Net, Word]]] = {}
    out_candidates: Dict[int, List[Tuple[int, Net, Word]]] = {}
    port_sig_ids = {id(p.sig): p for p in process.out_ports()}

    def run_sfg(sfg: SFG, select: Net) -> None:
        nonlocal ordinal
        block = synthesizer.sfg_block(sfg)
        words = synthesizer.synth_block(block)
        for store in block.stores:
            target = store.target
            # The lowered store value already went through the target-
            # format quantize, so it is the committed word.
            quantized = words[store.value]
            ordinal += 1
            if isinstance(target, Register):
                reg_candidates.setdefault(id(target), []).append(
                    (ordinal, select, quantized)
                )
            else:
                internal[id(target)] = quantized
                if id(target) in port_sig_ids:
                    out_candidates.setdefault(id(target), []).append(
                        (ordinal, select, quantized)
                    )

    if process.fsm is not None:
        # Sizing pre-scan: register every instruction's operator demands
        # so shared instances are created wide enough for all of them.
        # Demands come from the same lowered blocks synthesis will
        # expand, so the noted shapes are exact.
        for transition in process.fsm.transitions:
            for sfg in transition.sfgs:
                synthesizer.prescan_block(synthesizer.sfg_block(sfg))
        for transition in process.fsm.transitions:
            select = controller.select[transition]
            alloc.begin_slot(select)
            internal.clear()
            for sfg in transition.sfgs:
                run_sfg(sfg, select)
    # Static SFGs execute every cycle, after the transition's SFGs.
    alloc.begin_slot(None)
    internal.clear()
    const1 = nl.const(1)
    for sfg in process.static_sfgs:
        run_sfg(sfg, const1)

    alloc.finalize()

    # Register D: priority mux chain, hold (Q) as the base case.
    for reg in registers:
        fmt = _fmt_of(reg)
        q = reg_q[id(reg)]
        candidates = sorted(reg_candidates.get(id(reg), []))
        d = q
        for _ordinal, select, word in candidates:
            d = bitops.mux_word(nl, select, word, d)
            d = Word(d.nets[:q.width], q.frac)
        init = reg.init.raw if isinstance(reg.init, Fx) else int(reg.init)
        for i, q_net in enumerate(q.nets):
            nl.add(GateKind.DFF, [d.nets[i]], output=q_net,
                   init=(init >> i) & 1)

    # Primary outputs: priority mux chain over the driving instructions,
    # constant 0 when no driver is active (matching the RTL default).
    for port in process.out_ports():
        fmt = _fmt_of(port.sig)
        width = vector_width(fmt)
        if isinstance(port.sig, Register):
            nl.set_output(port.name, reg_q[id(port.sig)].nets[:width])
            continue
        candidates = sorted(out_candidates.get(id(port.sig), []))
        value = bitops.const_word(nl, 0, width, fmt.frac_bits)
        for _ordinal, select, word in candidates:
            value = bitops.mux_word(nl, select, word, value)
            value = Word(value.nets[:width], fmt.frac_bits)
        nl.set_output(port.name, value.nets)

    if expose_registers:
        for reg in registers:
            nl.set_output(f"reg__{reg.name}", reg_q[id(reg)].nets)

    if optimize:
        nl = optimize_netlist(nl, validate=validate)

    return ComponentSynthesis(
        process=process,
        netlist=nl,
        controller=controller,
        sharing=alloc.sharing_report(),
    )


def _fmt_of(sig: Sig) -> FxFormat:
    if sig.fmt is None:
        raise SynthesisError(
            f"signal {sig.name!r} has no fixed-point format; synthesis "
            "needs bit-true wordlengths"
        )
    return sig.fmt


@dataclass
class SystemSynthesis:
    """Synthesis outcome for a whole system."""

    system: System
    components: List[ComponentSynthesis]
    ram_macros: List[UntimedProcess]

    @property
    def total_gates(self) -> int:
        return sum(c.gate_count for c in self.components)

    @property
    def total_area(self) -> float:
        return sum(c.area for c in self.components)


def synthesize_system(system: System, share: bool = True,
                      encoding: str = "binary",
                      optimize: bool = True,
                      ir_passes: bool = True, passes=None,
                      validate: str = "off") -> SystemSynthesis:
    """Synthesize every timed component of *system* (Fig. 8 flow)."""
    components = [
        synthesize_process(p, share=share, encoding=encoding,
                           optimize=optimize, ir_passes=ir_passes,
                           passes=passes, validate=validate)
        for p in system.timed_processes()
    ]
    return SystemSynthesis(
        system=system,
        components=components,
        ram_macros=list(system.untimed_processes()),
    )


def verify_component(log: PortLog, synthesis: ComponentSynthesis,
                     signed_outputs: bool = True) -> List[str]:
    """Replay a captured port log against the synthesized netlist.

    This is the generated-testbench verification of Fig. 8: the inputs
    recorded during system simulation drive the netlist; every recorded
    output token is compared.  Returns a list of mismatch descriptions
    (empty = verified).
    """
    process = log.process
    sim = GateSimulator(synthesis.netlist)
    mismatches: List[str] = []
    out_fmts = {p.name: _fmt_of(p.sig) for p in process.out_ports()}

    for cycle in range(log.cycles):
        pins: Dict[str, int] = {}
        for port in process.in_ports():
            token = log.inputs[port.name][cycle]
            if token is not None:
                pins[port.name] = _to_raw(token, _fmt_of(port.sig))

        captured: Dict[str, int] = {}

        def sample(gsim, captured=captured):
            for name in out_fmts:
                captured[name] = gsim.output(name)

        sim.monitors = [sample]
        sim.step(pins)
        for name, fmt in out_fmts.items():
            expected_token = log.outputs[name][cycle]
            if expected_token is None:
                continue
            expected = _to_raw(expected_token, fmt)
            actual = captured[name]
            if actual != expected:
                mismatches.append(
                    f"{process.name}.{name} cycle {cycle}: netlist gives "
                    f"{actual}, simulation recorded {expected}"
                )
    return mismatches


def _to_raw(token, fmt: FxFormat) -> int:
    if isinstance(token, Fx):
        return token.raw
    return quantize_raw(token, fmt)
